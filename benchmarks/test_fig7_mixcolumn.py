"""Bench: regenerate Fig. 7 — the Mix Column polynomial multiply."""

from repro.analysis.figures import fig7_mix_column
from repro.gf.polyring import INV_MIX_POLY, MIX_POLY, ColumnPolynomial, \
    ring_mul


def test_fig7_mix_column(benchmark):
    text = benchmark(fig7_mix_column)
    print("\n" + text)
    # The figure's fixed polynomial and its inverse.
    assert MIX_POLY.coeffs == (0x02, 0x01, 0x01, 0x03)
    assert MIX_POLY * INV_MIX_POLY == ColumnPolynomial((1, 0, 0, 0))
    # FIPS-197 worked column.
    assert ring_mul((0xDB, 0x13, 0x53, 0x45), MIX_POLY.coeffs) == \
        (0x8E, 0x4D, 0xA1, 0xBC)
    assert "0x8e" in text
