"""Bench: §4's bus-width claim, *measured* on RTL wrappers.

"a simple interface could be built using 32 or 16 data bus.  Lower
bus sizes could not be sufficient to provide or to take the data from
device in full rate operation."

An actual shift-register wrapper around the core is driven with the
2-cycle beat protocol at 8/16/32 bits; the steady-state block period
is measured from result timestamps.
"""

import random

from repro.aes.cipher import AES128
from repro.ip.buswrap import NarrowBusHost


def measure_period(width: int, seed: int = 5):
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    host = NarrowBusHost(width)
    host.load_key(key)
    blocks = [bytes(rng.randrange(256) for _ in range(16))
              for _ in range(5)]
    results, stamps = host.stream(blocks)
    golden = AES128(key)
    assert results == [golden.encrypt_block(b) for b in blocks]
    gaps = [b - a for a, b in zip(stamps, stamps[1:])][:-1]
    return gaps


def test_bus_width_full_rate_measured(benchmark):
    def sweep():
        return {w: measure_period(w) for w in (8, 16, 32)}

    periods = benchmark(sweep)
    print("\nsteady-state block period by wrapper bus width "
          "(core needs 50):")
    for width, gaps in periods.items():
        verdict = "full rate" if all(g == 50 for g in gaps) else \
            "BUS BOUND"
        print(f"  {width:>2}-bit bus: {gaps} -> {verdict}")
    # 16 and 32 bits keep the 50-cycle core rate.
    assert all(g == 50 for g in periods[16])
    assert all(g == 50 for g in periods[32])
    # 8 bits degrades to the transfer time (64 cycles of beats).
    assert all(g > 50 for g in periods[8])
    assert max(periods[8]) >= 64
