"""Bench: raw model performance (simulator speed + modeled device
throughput).

Times the Python cycle-accurate simulation itself (blocks/second of
*simulation*) and cross-checks the modeled device throughput
(Mbit/s at the Table 2 clock) — keeping the two clearly separate.
"""

from repro.aes.cipher import AES128
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant
from repro.ip.testbench import Testbench
from benchmarks.conftest import random_blocks


def test_cycle_accurate_streaming(benchmark, rng):
    key = bytes(range(16))
    blocks = random_blocks(rng, 8)

    def stream():
        bench = Testbench(Variant.ENCRYPT)
        bench.load_key(key)
        return bench.stream_blocks(blocks)

    results, stamps = benchmark(stream)
    golden = AES128(key)
    assert results == [golden.encrypt_block(b) for b in blocks]
    # Modeled device throughput at the Acex clock.
    fit = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
    cycles = stamps[-1] - stamps[0]
    blocks_done = len(blocks) - 1
    mbps = blocks_done * 128 * 1000 / (cycles * fit.clock_ns)
    print(f"\nmodeled device rate: {mbps:.1f} Mbps at "
          f"{fit.clock_ns:.0f} ns (paper: 182)")
    assert abs(mbps - 182.9) < 1.0


def test_behavioral_model_throughput(benchmark, rng):
    """The golden model's software speed (for context only — the
    paper's numbers are hardware)."""
    key = bytes(range(16))
    aes = AES128(key)
    blocks = random_blocks(rng, 16)

    def encrypt_all():
        return [aes.encrypt_block(b) for b in blocks]

    out = benchmark(encrypt_all)
    assert len(out) == 16
    assert out[0] == aes.encrypt_block(blocks[0])
