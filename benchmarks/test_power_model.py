"""Bench: the paper's future work — power analysis of the architecture.

Integrates register toggles, S-box reads and clock-tree load over real
cycle-accurate runs and reports mW / nJ-per-block for both families.
Absolute values are model-grade; the asserted relations (family
scaling, workload scaling) are structural.
"""

from repro.analysis.power import measure_power
from repro.ip.control import Variant
from benchmarks.conftest import random_blocks


def test_power_per_family(benchmark, rng):
    key = bytes(range(16))
    blocks = random_blocks(rng, 4)

    def measure_both_families():
        acex = measure_power(blocks, key, variant=Variant.ENCRYPT,
                             family="Acex1K")
        cyclone = measure_power(blocks, key, variant=Variant.ENCRYPT,
                                family="Cyclone")
        return acex, cyclone

    acex, cyclone = benchmark(measure_both_families)
    print("\n" + acex.render())
    print(cyclone.render())
    # The 2.5 V -> 1.5 V, 0.22 um -> 0.13 um move cuts energy hard —
    # the paper's motivation for eyeing mobile systems.
    assert cyclone.energy_per_block_nj < 0.5 * acex.energy_per_block_nj
    assert acex.dynamic_mw > 0


def test_power_scales_with_traffic(benchmark, rng):
    key = bytes(range(16))

    def measure_pair():
        light = measure_power(random_blocks(rng, 2), key)
        heavy = measure_power(random_blocks(rng, 8), key)
        return light, heavy

    light, heavy = benchmark(measure_pair)
    print(f"\n2 blocks: {light.energy_pj:.0f} pJ; "
          f"8 blocks: {heavy.energy_pj:.0f} pJ")
    assert heavy.energy_pj > 3 * light.energy_pj
    # Streaming amortizes nothing per block (no pipeline): per-block
    # energy stays within a band.
    ratio = heavy.energy_per_block_nj / light.energy_per_block_nj
    assert 0.6 < ratio < 1.4


def test_decrypt_vs_encrypt_power(benchmark, rng):
    key = bytes(range(16))
    blocks = random_blocks(rng, 4)

    def measure_directions():
        enc = measure_power(blocks, key, variant=Variant.BOTH,
                            direction="encrypt")
        dec = measure_power(blocks, key, variant=Variant.BOTH,
                            direction="decrypt")
        return enc, dec

    enc, dec = benchmark(measure_directions)
    print(f"\nencrypt: {enc.energy_per_block_nj:.1f} nJ/block; "
          f"decrypt: {dec.energy_per_block_nj:.1f} nJ/block")
    ratio = dec.energy_per_block_nj / enc.energy_per_block_nj
    assert 0.6 < ratio < 1.6
