"""Bench: an authenticated channel on the cheapest device.

GCM (SP 800-38D) only ever uses the AES *encrypt* direction — for the
CTR keystream and for the tag's final masking — so a full AEAD channel
runs on the paper's smallest device (the encrypt-only variant, 2114
LCs).  This bench counts the block-cipher invocations a GCM packet
needs, maps them onto the modeled device, and verifies the channel
end-to-end against the NIST vector."""

from repro.aes.cipher import AES128
from repro.aes.gcm import gcm_decrypt, gcm_encrypt
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


def aes_calls_for_gcm(plaintext_len: int, iv_len: int = 12) -> int:
    """Block-cipher invocations per GCM packet.

    1 for H = E(0), 1 for the tag mask E(J0), plus one per CTR block.
    (H is per-key in practice; counted per-packet here as the
    conservative bound.)
    """
    ctr_blocks = -(-plaintext_len // 16)
    return 2 + ctr_blocks


def test_gcm_channel_on_encrypt_only_device(benchmark):
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    payload = bytes(range(256)) * 4  # a 1024-byte packet
    aad = b"seq=7;src=A;dst=B"

    def round_trip():
        ct, tag = gcm_encrypt(key, iv, payload, aad)
        return gcm_decrypt(key, iv, ct, tag, aad)

    recovered = benchmark(round_trip)
    assert recovered == payload

    fit = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
    calls = aes_calls_for_gcm(len(payload))
    device_ns = calls * fit.latency_cycles * fit.clock_ns
    goodput = len(payload) * 8 * 1000 / device_ns  # Mbit/s
    print(f"\nGCM packet: {len(payload)} B payload -> {calls} AES "
          f"calls on the encrypt-only device")
    print(f"device time {device_ns / 1000:.1f} us @ "
          f"{fit.clock_ns:.0f} ns -> {goodput:.0f} Mbps AEAD goodput "
          f"(raw block rate {fit.throughput_mbps:.0f} Mbps)")
    # AEAD overhead is two extra blocks per packet: goodput stays
    # within ~5 % of the raw rate for KB-sized packets.
    assert goodput > 0.94 * fit.throughput_mbps


def test_gcm_matches_nist_through_channel(benchmark):
    """The channel construction reproduces the published tag."""
    key = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
    iv = bytes.fromhex("cafebabefacedbaddecaf888")
    plaintext = bytes.fromhex(
        "d9313225f88406e5a55909c5aff5269a"
        "86a7a9531534f7da2e4c303d8a318a72"
        "1c3c0c95956809532fcf0e2449a6b525"
        "b16aedf5aa0de657ba637b39"
    )
    aad = bytes.fromhex(
        "feedfacedeadbeeffeedfacedeadbeefabaddad2"
    )

    def encrypt():
        return gcm_encrypt(key, iv, plaintext, aad)

    ct, tag = benchmark(encrypt)
    assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"
    # The CTR layer is the same AES the device runs: cross-check the
    # first keystream block against the golden model.
    j1 = iv + (2).to_bytes(4, "big")
    stream0 = AES128(key).encrypt_block(j1)
    assert bytes(c ^ s for c, s in zip(ct[:16], stream0)) == \
        plaintext[:16]
