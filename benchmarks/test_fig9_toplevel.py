"""Bench: regenerate Fig. 9 — the top level with Data_In/Out processes.

The figure's point is I/O decoupling; the bench demonstrates it by
writing the next block while the previous one is still processing and
confirming zero-gap result spacing.
"""

from repro.aes.cipher import AES128
from repro.analysis.figures import fig9_top_level
from repro.ip.control import Variant
from repro.ip.testbench import Testbench
from benchmarks.conftest import random_blocks


def overlap_run(blocks, key):
    bench = Testbench(Variant.ENCRYPT)
    bench.load_key(key)
    return bench.stream_blocks(blocks)


def test_fig9_top_level_overlap(benchmark, rng):
    print("\n" + fig9_top_level(Variant.BOTH))
    key = bytes(range(16))
    blocks = random_blocks(rng, 5)
    results, stamps = benchmark(overlap_run, blocks, key)
    golden = AES128(key)
    assert results == [golden.encrypt_block(b) for b in blocks]
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    # The Data_In register hides the bus entirely: one result every
    # 50 cycles, no inter-block gap.
    assert gaps == [50] * 4
