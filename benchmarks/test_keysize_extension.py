"""Extension bench: AES-192/256 variants of the paper's architecture.

The paper implements AES-128 and notes the standard's other key
sizes; this bench prices the extension through the same model:
latency grows with the round count (60/70 cycles), the clock is
untouched, and the area delta is confined to the key unit."""

from repro.arch.keysize import AES_VARIANTS, key_size_table
from repro.ip.control import Variant
from repro.ip.multikey import MultiKeyTestbench


def test_key_size_extension(benchmark):
    def build():
        return {opt.key_bits: opt.performance(Variant.ENCRYPT,
                                              "Acex1K")
                for opt in AES_VARIANTS}

    perf = benchmark(build)
    print("\n" + key_size_table())
    print("\n" + key_size_table(Variant.ENCRYPT, "Cyclone"))

    assert perf[128]["latency_cycles"] == 50
    assert perf[192]["latency_cycles"] == 60
    assert perf[256]["latency_cycles"] == 70
    # Clock constant, throughput inversely proportional to rounds.
    assert perf[128]["clock_ns"] == perf[256]["clock_ns"]
    assert perf[256]["throughput_mbps"] < perf[128]["throughput_mbps"]
    # Area grows by the key unit only: under 20 % even for AES-256.
    growth = (perf[256]["logic_elements"]
              / perf[128]["logic_elements"])
    assert growth < 1.20


def test_key_size_hardware_measured(benchmark):
    """The extension is not just arithmetic: the cycle-accurate
    multi-key-size core hits the modeled latency, FIPS-verified."""
    from repro.aes.vectors import (
        FIPS197_APPENDIX_C1, FIPS197_APPENDIX_C2, FIPS197_APPENDIX_C3,
    )

    vectors = {128: FIPS197_APPENDIX_C1, 192: FIPS197_APPENDIX_C2,
               256: FIPS197_APPENDIX_C3}

    def run_all():
        measured = {}
        for bits, vector in vectors.items():
            bench = MultiKeyTestbench(bits)
            bench.load_key(vector.key)
            ct, latency = bench.encrypt(vector.plaintext)
            assert ct == vector.ciphertext
            measured[bits] = latency
        return measured

    measured = benchmark(run_all)
    print("\nmeasured latency on the multi-key-size core:", measured)
    assert measured == {128: 50, 192: 60, 256: 70}
