"""Bench: regenerate Fig. 1 — the state_t variable."""

from repro.analysis.figures import fig1_state
from repro.aes.state import State


def test_fig1_state_matrix(benchmark):
    text = benchmark(fig1_state)
    print("\n" + text)
    # Column-major layout: matrix row 0 carries bytes 0,4,8,12.
    assert "00 04 08 0c" in text
    state = State(bytes(range(16)))
    assert [state.get(0, c) for c in range(4)] == [0, 4, 8, 12]
    assert [state.get(r, 0) for r in range(4)] == [0, 1, 2, 3]
