"""Bench: regenerate Table 1 (device signals)."""

from repro.analysis.tables import table1_text
from repro.ip.control import Variant
from repro.ip.interface import pin_count


def test_table1_device_signals(benchmark):
    text = benchmark(table1_text, Variant.BOTH)
    print("\n" + text)
    # Paper Table 1 rows and the resulting pin totals.
    for signal in ("clk", "setup", "wr_data", "wr_key", "din",
                   "enc/dec", "data_ok", "dout"):
        assert signal in text
    assert pin_count(Variant.ENCRYPT) == 261
    assert pin_count(Variant.BOTH) == 262
