"""Bench: SEU fault-injection campaign (paper ref. [16]).

Reproduces the companion work's experiment on the cycle-accurate
model: random register bit flips during encryption, classified against
the golden model, with per-register sensitivity ranking.
"""

from repro.analysis.seu import run_campaign
from repro.ip.control import Variant


def test_seu_campaign_overview(benchmark):
    result = benchmark.pedantic(
        run_campaign, args=(60,), kwargs={"seed": 2003},
        iterations=1, rounds=1,
    )
    print("\n" + result.render())
    assert result.total == 60
    # AES diffusion makes live-state flips fatal: a random campaign
    # over all registers lands well above a coin flip.
    assert result.corruption_rate >= 0.3
    # But dead-time windows exist: some injections are masked.
    assert result.count("masked") > 0


def test_seu_state_registers_most_sensitive(benchmark):
    def targeted():
        state = run_campaign(
            24, seed=7,
            targets=[f"aes_state_{i}" for i in range(4)],
        )
        buffer = run_campaign(
            24, seed=7,
            targets=[f"aes_buf_{i}" for i in range(4)],
        )
        return state, buffer

    state, buffer = benchmark.pedantic(targeted, iterations=1, rounds=1)
    print(f"\nstate-register corruption rate : "
          f"{state.corruption_rate:.0%}")
    print(f"input-buffer corruption rate   : "
          f"{buffer.corruption_rate:.0%}")
    # The hardening priority ranking the campaign exists to produce:
    # in-flight state is critical, the consumed input buffer is not.
    assert state.corruption_rate > 0.9
    assert buffer.corruption_rate < 0.2


def test_seu_encrypt_only_direction_immune(benchmark):
    """A flipped direction bit cannot hurt a single-direction device —
    its direction is hardwired (no mux exists)."""
    result = benchmark.pedantic(
        run_campaign, args=(12,),
        kwargs={"seed": 3, "variant": Variant.ENCRYPT,
                "targets": ["aes_direction"]},
        iterations=1, rounds=1,
    )
    print(f"\ndirection-register campaign on encrypt-only device: "
          f"{result.count('masked')}/{result.total} masked")
    assert result.count("masked") == result.total
