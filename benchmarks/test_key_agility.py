"""Bench: key agility — what the on-the-fly schedule's setup pass
costs as a function of blocks-per-key.

The area win of not storing round keys is paid back on every key
change of a decrypt-capable device (the 40-cycle setup pass).  For
bulk transport (thousands of blocks per key) the tax vanishes; for
key-agile workloads (e.g. per-packet keying) it bites.  This bench
measures the effective decryption rate over the blocks-per-key axis
on the cycle-accurate model."""

import random

from repro.aes.cipher import AES128
from repro.ip.control import Variant, key_setup_cycles
from repro.ip.testbench import Testbench


def effective_cycles_per_block(blocks_per_key: int,
                               sessions: int = 3,
                               seed: int = 21) -> float:
    rng = random.Random(seed)
    bench = Testbench(Variant.DECRYPT)
    start = bench.simulator.cycle
    blocks_done = 0
    for _ in range(sessions):
        key = bytes(rng.randrange(256) for _ in range(16))
        bench.load_key(key)
        golden = AES128(key)
        blocks = [bytes(rng.randrange(256) for _ in range(16))
                  for _ in range(blocks_per_key)]
        results, _ = bench.stream_blocks(blocks)
        assert results == [golden.decrypt_block(b) for b in blocks]
        blocks_done += blocks_per_key
    return (bench.simulator.cycle - start) / blocks_done


def test_key_agility_curve(benchmark):
    def sweep():
        return {n: effective_cycles_per_block(n)
                for n in (1, 2, 8, 32)}

    curve = benchmark.pedantic(sweep, iterations=1, rounds=1)
    print("\neffective decrypt cost vs blocks-per-key "
          "(50-cycle blocks + 41-cycle key change):")
    for n, cycles in curve.items():
        overhead = cycles / 50 - 1
        print(f"  {n:>3} blocks/key: {cycles:6.1f} cycles/block "
              f"(+{overhead:.0%} key-change tax)")
    # One block per key: the full setup pass amortizes over one block.
    assert curve[1] >= 50 + key_setup_cycles()
    # Bulk traffic: the tax falls under 5 %.
    assert curve[32] < 50 * 1.05
    # Monotone amortization.
    values = list(curve.values())
    assert values == sorted(values, reverse=True)
