"""Shared helpers for the reproduction benchmarks.

Every bench regenerates one table, figure or claim from the paper,
prints it (run with ``-s`` to see the output), asserts its shape
against the paper, and times the regeneration with pytest-benchmark.
"""

from __future__ import annotations

import random

import pytest


@pytest.fixture
def rng() -> random.Random:
    return random.Random(2003)  # the paper's year


def random_blocks(rng: random.Random, count: int):
    return [bytes(rng.randrange(256) for _ in range(16))
            for _ in range(count)]
