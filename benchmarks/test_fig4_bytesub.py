"""Bench: regenerate Fig. 4 — the Byte Sub table lookup."""

from repro.analysis.figures import fig4_byte_sub
from repro.aes.constants import SBOX
from repro.aes.state import State
from repro.aes.transforms import sub_bytes


def test_fig4_byte_sub_lookup(benchmark):
    text = benchmark(fig4_byte_sub)
    print("\n" + text)
    assert "S[00]=63" in text
    # Byte Sub really is a per-byte memory lookup.
    state = State(bytes(range(16)))
    out = sub_bytes(state)
    assert out.to_bytes() == bytes(SBOX[b] for b in range(16))
