"""Bench: regenerate Fig. 2 — the encryption schedule diagram."""

from repro.analysis.figures import fig2_schedule


def test_fig2_encryption_schedule(benchmark):
    text = benchmark(fig2_schedule)
    print("\n" + text)
    lines = [ln for ln in text.splitlines() if ln.startswith("round")]
    # 1 initial Add Key + 9 x 4 + 3 (final round skips Mix Column).
    assert len(lines) == 40
    assert lines[0].endswith("add_key")
    assert lines[1].endswith("byte_sub")
    assert text.count("mix_column") == 9
    # Function order inside a full round (paper §3).
    round1 = [ln.split(": ")[1] for ln in lines
              if ln.startswith("round  1")]
    assert round1 == ["byte_sub", "shift_row", "mix_column", "add_key"]
