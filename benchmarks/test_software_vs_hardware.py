"""Bench: the paper's §1 motivation — hardware offload vs software.

Compares three ways to produce AES-128 ciphertext:

- the straightforward behavioral model (spec-shaped software);
- the T-table implementation (how optimized software does it, fused
  rounds + 32 Kbit of tables);
- the modeled IP (one block per 50 clocks at the Table 2 clock).

Python wall-clock numbers are interpreter-bound and only ordinal; the
structural comparison (table memory vs S-box memory, operations per
block) carries the point.
"""

import random
import time

from repro.aes.cipher import AES128
from repro.aes.fast import FastAES128, t_table_memory_bits
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


def test_software_structures_agree(benchmark, rng):
    key = bytes(rng.randrange(256) for _ in range(16))
    blocks = [bytes(rng.randrange(256) for _ in range(16))
              for _ in range(24)]
    plain = AES128(key)
    fast = FastAES128(key)

    def both():
        return ([plain.encrypt_block(b) for b in blocks],
                [fast.encrypt_block(b) for b in blocks])

    spec_out, ttable_out = benchmark(both)
    assert spec_out == ttable_out


def test_hardware_offload_story(benchmark, rng):
    key = bytes(rng.randrange(256) for _ in range(16))
    blocks = [bytes(rng.randrange(256) for _ in range(16))
              for _ in range(32)]

    def run_fast():
        fast = FastAES128(key)
        return [fast.encrypt_block(b) for b in blocks]

    out = benchmark(run_fast)
    assert out == [AES128(key).encrypt_block(b) for b in blocks]

    # Software speed on this interpreter (ordinal only).
    start = time.perf_counter()
    FastAES128(key).encrypt_ecb(b"".join(blocks))
    sw_seconds = time.perf_counter() - start
    sw_mbps = len(blocks) * 128 / sw_seconds / 1e6

    # The modeled device.
    fit = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
    print(f"\nT-table software on this Python interpreter: "
          f"~{sw_mbps:.2f} Mbps")
    print(f"modeled IP on EP1K100 (2001-era silicon): "
          f"{fit.throughput_mbps:.0f} Mbps at "
          f"{fit.clock_ns:.0f} ns/clk")
    print(f"table memory: software {t_table_memory_bits()} bits vs "
          f"device {fit.memory_bits} bits of S-box ROM")
    # The structural claims:
    assert t_table_memory_bits() == 2 * fit.memory_bits
    assert fit.throughput_mbps > 150  # a fixed, load-independent rate
