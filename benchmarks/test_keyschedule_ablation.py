"""Ablation bench: on-the-fly round keys vs precomputed storage.

DESIGN.md calls out the on-the-fly key schedule as the paper's second
area lever (no round-key storage).  This bench quantifies both sides:

- storage cost avoided: 11 round keys x 128 bits, plus the write
  machinery;
- time cost incurred: the 40-cycle setup pass per key change on
  decrypt-capable devices, and the 4-cycle/round key-generation floor
  that caps wide datapaths (§6).
"""

from repro.arch.spec import ArchitectureSpec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant, key_setup_cycles
from repro.ip.testbench import Testbench


def compile_key_pair():
    otf = ArchitectureSpec("otf", Variant.ENCRYPT, sub_width=32,
                           wide_width=128, key_schedule="on_the_fly")
    pre = ArchitectureSpec("pre", Variant.ENCRYPT, sub_width=32,
                           wide_width=128, key_schedule="precomputed")
    return (compile_spec(otf, "Acex1K", strict=False),
            compile_spec(pre, "Acex1K", strict=False))


def test_key_storage_tradeoff(benchmark):
    otf, pre = benchmark(compile_key_pair)
    print(f"\non-the-fly : {otf.logic_elements} LEs, "
          f"{otf.memory_bits} mem bits")
    print(f"precomputed: {pre.logic_elements} LEs, "
          f"{pre.memory_bits} mem bits")
    # On-the-fly spends KStran S-boxes (8 Kbit); precomputed spends a
    # round-key RAM block instead.
    assert otf.memory_bits == 16384
    assert pre.memory_bits == 8192 + 2048  # data S-boxes + key RAM
    # At the paper's 32-bit design point the schedules tie on speed —
    # the key unit exactly keeps up (4 words per 4 ByteSub cycles).
    assert otf.spec.cycles_per_round == 5
    assert pre.spec.cycles_per_round == 5


def test_key_change_latency_cost(benchmark):
    """The price of on-the-fly decryption: a 40-cycle pass per key."""

    def key_churn():
        bench = Testbench(Variant.DECRYPT)
        total = 0
        for seed in range(3):
            total += bench.load_key(bytes([seed] * 16))
        return total

    total = benchmark(key_churn)
    per_key = total / 3
    print(f"\nkey-change cost: {per_key:.0f} cycles "
          f"(1 wr_key edge + {key_setup_cycles()} setup)")
    assert per_key == 1 + key_setup_cycles() == 41


def test_key_schedule_caps_wide_datapath(benchmark):
    """§6: the 128-bit datapath runs at the key unit's pace unless
    keys are precomputed."""

    def sweep():
        wide_otf = ArchitectureSpec("w1", Variant.ENCRYPT,
                                    sub_width=128, wide_width=128)
        wide_pre = ArchitectureSpec("w2", Variant.ENCRYPT,
                                    sub_width=128, wide_width=128,
                                    key_schedule="precomputed")
        return wide_otf, wide_pre

    wide_otf, wide_pre = benchmark(sweep)
    print(f"\n128-bit datapath: on-the-fly "
          f"{wide_otf.cycles_per_round} cycles/round vs precomputed "
          f"{wide_pre.cycles_per_round}")
    assert wide_otf.cycles_per_round == 4  # key-schedule bound
    assert wide_pre.cycles_per_round == 2  # datapath bound


def test_key_storage_in_hardware(benchmark):
    """Both strategies exist as cycle-accurate cores; measure the
    trade directly: the on-the-fly encrypt device re-keys for free,
    the precomputed one pays the expansion pass — but stores the
    schedule and decrypts every key size."""
    from repro.ip.precomputed import PrecomputedTestbench

    def run_both():
        otf = Testbench(Variant.ENCRYPT)
        otf_cost = otf.load_key(bytes(range(16)))
        pre = PrecomputedTestbench(128, Variant.ENCRYPT)
        pre_cost = pre.load_key(bytes(range(16)))
        a, la = otf.encrypt(bytes(16))
        b, lb = pre.encrypt(bytes(16))
        assert a == b and la == lb == 50
        return otf_cost, pre_cost, pre.core.key_store_bits

    otf_cost, pre_cost, store_bits = benchmark(run_both)
    print(f"\nencrypt-device key change: on-the-fly {otf_cost} "
          f"cycle(s), precomputed {pre_cost} cycles")
    print(f"precomputed round-key store: {store_bits} bits")
    assert otf_cost == 1          # just the wr_key edge
    assert pre_cost == 41         # edge + 40-cycle expansion
    assert store_bits == 44 * 32  # 11 round keys
