"""Bench: regenerate Fig. 3 — the KStran sub-function."""

from repro.analysis.figures import fig3_kstran
from repro.aes.key_schedule import expand_key, kstran


def test_fig3_kstran_steps(benchmark):
    text = benchmark(fig3_kstran, 0x09CF4F3C, 1)
    print("\n" + text)
    # The FIPS-197 Appendix A walkthrough values.
    assert "cf4f3c09" in text  # after the left byte-shift
    assert "8a84eb01" in text  # after Byte Sub
    assert "8b84eb01" in text  # after the Rcon XOR
    # KStran is exactly the w[i-1] transform of the expansion.
    key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    words = expand_key(key, 10)
    assert words[4] == words[0] ^ kstran(words[3], 1)
