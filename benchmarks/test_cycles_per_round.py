"""Bench: §4 claim — mixed 32/128 processing cuts the round from 12
cycles to 5.

The cycle counts are *measured* on the cycle-accurate model (latency /
rounds), not just quoted from the spec table.
"""

from repro.arch.spec import ArchitectureSpec
from repro.ip.control import NUM_ROUNDS, Variant, \
    all_32bit_cycles_per_round
from repro.ip.testbench import Testbench


def measure_latency():
    bench = Testbench(Variant.ENCRYPT)
    bench.load_key(bytes(16))
    _, latency = bench.encrypt(bytes(16))
    return latency


def test_five_cycles_per_round_measured(benchmark):
    latency = benchmark(measure_latency)
    cycles_per_round = latency / NUM_ROUNDS
    print(f"\nmeasured: {latency} cycles/block = "
          f"{cycles_per_round:.0f} cycles/round "
          f"(paper: 5; all-32-bit baseline: "
          f"{all_32bit_cycles_per_round()})")
    assert latency == 50
    assert cycles_per_round == 5
    # The paper's stated baseline.
    assert all_32bit_cycles_per_round() == 12
    all32 = ArchitectureSpec("all32", Variant.ENCRYPT, sub_width=32,
                             wide_width=32)
    assert all32.cycles_per_round == 12
    # The claimed saving: 12 -> 5.
    assert all32.cycles_per_round - cycles_per_round == 7
