"""Bench: the §6 width discussion as a measured design-space sweep.

Claims quantified:
- 8/16-bit shrinks cost far more latency than they save area;
- a 128-bit widening is capped by the one-word-per-cycle key schedule
  (only with precomputed keys does it pay off — and then it no longer
  fits the paper's device);
- the paper's mixed 32/128 point is the efficiency knee among designs
  that fit the EP1K100.
"""

from repro.arch.explorer import explore_widths, knee_design, sweep_report
from repro.ip.control import Variant


def test_width_sweep_on_acex(benchmark):
    reports = benchmark(explore_widths, "Acex1K", Variant.ENCRYPT)
    print("\n" + sweep_report(reports))
    by_name = {r.spec.name: r for r in reports}
    mixed = by_name["mixed-32-128-encrypt"]

    # Claim 1: narrow designs lose big.
    assert by_name["uniform-8-encrypt"].latency_ns > 4 * mixed.latency_ns
    assert by_name["uniform-16-encrypt"].latency_ns > \
        3 * mixed.latency_ns

    # Claim 2: the wide design is key-schedule-bound...
    full = by_name["full-128-encrypt"]
    assert full.spec.cycles_per_round == 4  # not 2
    assert full.throughput_mbps < 1.4 * mixed.throughput_mbps
    # ...unless keys are precomputed, which costs fit.
    pre = by_name["full-128-precomp-encrypt"]
    assert pre.throughput_mbps > 2 * mixed.throughput_mbps
    assert not pre.fits and not full.fits

    # Claim 3: the paper's point is the knee among fitting designs.
    assert knee_design(reports).spec.name == "mixed-32-128-encrypt"


def test_width_sweep_kstran_floor(benchmark):
    """§6: 'the 8 k used in KStran will not decrease' — narrow designs
    keep paying the key-schedule memory."""
    reports = benchmark(explore_widths, "Acex1K", Variant.ENCRYPT)
    for report in reports:
        if report.spec.key_schedule == "on_the_fly":
            kstran_bits = 8192
            assert report.spec.rom_bits >= kstran_bits
    by_name = {r.spec.name: r for r in reports}
    narrow = by_name["uniform-8-encrypt"]
    print(f"\n8-bit design memory: {narrow.spec.rom_bits} bits "
          f"(8192 of it KStran) vs mixed "
          f"{by_name['mixed-32-128-encrypt'].spec.rom_bits}")
    # The 8-bit design only sheds data S-boxes: 10240 vs 16384 bits,
    # a 37 % memory saving for ~5x less throughput.
    assert narrow.spec.rom_bits == 2048 + 8192
