"""Bench: diffusion statistics of the implemented cipher.

Supports the paper's §2/§3 security framing with measurements: the
implemented Rijndael exhibits the avalanche/diffusion behaviour a
sound AES must (full diffusion in two rounds, ~50 % avalanche)."""

from repro.analysis.avalanche import (
    avalanche_effect,
    diffusion_by_round,
    key_avalanche_effect,
)


def test_avalanche_statistics(benchmark):
    report = benchmark.pedantic(
        avalanche_effect, kwargs={"samples": 48, "seed": 10},
        iterations=1, rounds=1,
    )
    key_report = key_avalanche_effect(samples=32, seed=11)
    print("\nplaintext " + report.render())
    print("key       " + key_report.render())
    assert 0.45 <= report.mean_fraction <= 0.55
    assert 0.45 <= key_report.mean_fraction <= 0.55


def test_diffusion_profile(benchmark):
    profile = benchmark.pedantic(
        diffusion_by_round, kwargs={"in_bit": 5, "samples": 12,
                                    "seed": 13},
        iterations=1, rounds=1,
    )
    print("\nflipped bits after each round (1-bit input difference):")
    for rnd, value in enumerate(profile):
        bar = "#" * int(value / 2)
        print(f"  round {rnd:>2}: {value:5.1f}  {bar}")
    # The paper's Fig. 2 pipeline achieves full diffusion in 2 rounds:
    # ShiftRow scatters one column's difference, MixColumn fills all
    # four columns.
    assert profile[0] == 1.0
    assert profile[1] <= 32.0
    assert profile[2] > 40.0
