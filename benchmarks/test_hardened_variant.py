"""Ablation bench: the radiation-hardened IP (paper §6 / ref. [16]).

Compares matched SEU campaigns on the baseline and hardened cores and
prices the mitigation through the area model: TMR control + parity
detection cuts undetected corruption severalfold for <10 % extra LEs.
"""

from repro.analysis.seu import run_campaign
from repro.ip.hardened import hardening_overhead


def paired_campaigns(injections: int = 50, seed: int = 99):
    plain = run_campaign(injections, seed=seed, hardened=False)
    hard = run_campaign(injections, seed=seed, hardened=True)
    return plain, hard


def test_hardening_effectiveness(benchmark):
    plain, hard = benchmark.pedantic(paired_campaigns, iterations=1,
                                     rounds=1)
    print("\nbaseline core:")
    print(plain.render(top=5))
    print("\nhardened core (TMR control + state parity):")
    print(hard.render(top=5))
    cost = hardening_overhead()
    print(f"\nhardening cost: +{cost['extra_flipflops']} FFs, "
          f"+{cost['extra_luts']} LUTs ≈ +{cost['extra_les']} LEs "
          f"({100 * cost['extra_les'] / 2114:.1f}% of the encrypt "
          "device)")
    # Undetected corruption must drop...
    assert hard.corruption_rate < plain.corruption_rate
    # ...while the wrong outputs that remain are mostly flagged.
    assert hard.count("detected") > 0
    # And the area price stays under 10 % of the device.
    assert cost["extra_les"] < 0.10 * 2114


def test_control_plane_immunity(benchmark):
    """Control-register upsets: fatal on the baseline, voted out on
    the hardened core."""

    def targeted():
        baseline = run_campaign(
            20, seed=13, hardened=False,
            targets=["aes_round", "aes_step", "aes_top"],
        )
        hardened = run_campaign(
            20, seed=13, hardened=True,
            targets=[f"aes_{reg}_tmr{i}"
                     for reg in ("round", "step", "top")
                     for i in range(3)],
        )
        return baseline, hardened

    baseline, hardened = benchmark.pedantic(targeted, iterations=1,
                                            rounds=1)
    bad_plain = baseline.count("corrupted") + baseline.count("hung")
    bad_hard = hardened.count("corrupted") + hardened.count("hung")
    print(f"\ncontrol-register upsets: baseline {bad_plain}/20 fatal, "
          f"hardened {bad_hard}/20 fatal")
    assert bad_plain > 5       # the baseline FSM is fragile
    assert bad_hard == 0       # single-copy flips are out-voted
