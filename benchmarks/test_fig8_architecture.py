"""Bench: regenerate Fig. 8 — the encrypt/decrypt core architecture.

Beyond printing the inventory, this bench *executes* the architecture:
the combined core runs an encrypt and a decrypt on the cycle-accurate
model and must agree with the golden model at the 50-cycle latency.
"""

from repro.aes.cipher import AES128
from repro.analysis.figures import fig8_architecture
from repro.ip.control import Variant
from repro.ip.testbench import Testbench


def run_both_core():
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    block = bytes.fromhex("00112233445566778899aabbccddeeff")
    bench = Testbench(Variant.BOTH)
    bench.load_key(key)
    ct, enc_latency = bench.encrypt(block)
    pt, dec_latency = bench.decrypt(ct)
    return key, block, ct, pt, enc_latency, dec_latency


def test_fig8_architecture_executes(benchmark):
    print("\n" + fig8_architecture())
    key, block, ct, pt, enc_latency, dec_latency = benchmark(
        run_both_core
    )
    golden = AES128(key)
    assert ct == golden.encrypt_block(block)
    assert pt == block
    assert enc_latency == dec_latency == 50
    # The structural inventory of the figure.
    core = Testbench(Variant.BOTH).core
    assert core.sbox_f is not None and core.sbox_i is not None
    assert len(core.state) == 4
    assert all(reg.width == 32 for reg in core.state)
