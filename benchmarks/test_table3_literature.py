"""Bench: regenerate Table 3 — literature comparison.

Each published baseline is modeled from its design style and run
through the same synthesis flow as the paper's IP.  Absolute numbers
for the corrupted cells are unrecoverable (see EXPERIMENTS.md); the
bench asserts the table's *shape*: the low-cost design is slowest, the
pipelined processor is fastest and biggest, the paper's IP has the
least memory among the EAB designs.
"""

from repro.analysis.tables import table3_text
from repro.arch.baselines import table3_rows
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


def test_table3_reproduction(benchmark):
    rows = benchmark(table3_rows)
    print("\n" + table3_text())
    ours = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")

    mbps = {k: v["modeled_mbps"] for k, v in rows.items()}
    assert mbps["zigiotto"] == min(mbps.values())
    assert mbps["hammercores"] == max(mbps.values())
    # The paper's positioning: smaller/slower than the high-
    # performance designs, faster than the low-cost one.
    assert mbps["zigiotto"] < ours.throughput_mbps < mbps["panato-hp"]
    # Legible reported anchors survive.
    assert rows["zigiotto"]["reported_lcs"] == 1965
    assert rows["zigiotto"]["reported_mbps"] == 61.2
    assert rows["hammercores"]["reported_memory"] == 57344
    # Memory story: our mixed design needs the least EAB bits of the
    # memory-based designs.
    for key in ("mroczkowski", "panato-hp", "hammercores"):
        assert ours.memory_bits < rows[key]["modeled_memory"]
