"""Bench: regenerate Fig. 5 — the S-box table (2048-bit ROM)."""

from repro.analysis.figures import fig5_sbox
from repro.aes.constants import SBOX, SBOX_ROM_BITS
from repro.ip.sbox_unit import SubWordUnit


def test_fig5_sbox_table(benchmark):
    text = benchmark(fig5_sbox)
    print("\n" + text)
    # The table the figure prints is derived from GF(2^8) algebra, yet
    # matches the FIPS-197 published corners.
    assert SBOX[0x00] == 0x63 and SBOX[0xFF] == 0x16
    assert "63 7c 77 7b" in text
    # The paper's memory arithmetic built on this figure:
    assert SBOX_ROM_BITS == 2048
    assert SubWordUnit("u").rom_bits == 4 * 2048  # 32-bit unit
    assert 16 * SBOX_ROM_BITS == 32768  # a 128-bit ByteSub would need
