"""Bench: regenerate Table 2 — performance and occupation.

Runs the full synthesis-estimation flow (netlist -> map -> time) for
all six (variant, family) pairs and compares every cell with the
paper.  This is the paper's headline result.
"""

from repro.analysis.metrics import combined_slowdown
from repro.analysis.tables import PAPER_TABLE2, table2_fits
from repro.fpga.calibration import LC_TOLERANCE
from repro.fpga.report import render_table2


def test_table2_full_reproduction(benchmark):
    reports = benchmark(table2_fits)
    print("\n" + render_table2(reports))
    print("\nmodel vs paper:")
    by_key = {(r.spec.variant.value, r.device.family): r
              for r in reports}
    for key, (lcs, memory, pins, latency, clk, mbps) in \
            sorted(PAPER_TABLE2.items()):
        report = by_key[key]
        err = 100.0 * (report.logic_elements - lcs) / lcs
        print(f"  {key[0]:<8}{key[1]:<9} "
              f"LC {report.logic_elements:>5} vs {lcs:>5} "
              f"({err:+.1f}%)  mem {report.memory_bits:>6} "
              f"lat {report.latency_ns:>4.0f}ns clk "
              f"{report.clock_ns:>3.0f}ns "
              f"{report.throughput_mbps:6.1f} Mbps (paper {mbps})")
        assert abs(err) <= 100 * LC_TOLERANCE
        assert report.memory_bits == memory
        assert report.pins == pins
        assert report.latency_ns == latency
        assert report.clock_ns == clk
        assert abs(report.throughput_mbps - mbps) <= 1.0


def test_table2_combined_device_slowdown(benchmark):
    """§5 claim: ~22 % throughput drop when both directions share a
    device."""
    reports = benchmark(table2_fits)
    by_key = {(r.spec.variant.value, r.device.family): r
              for r in reports}
    for family in ("Acex1K", "Cyclone"):
        drop = combined_slowdown(
            by_key[("encrypt", family)].throughput_mbps,
            by_key[("both", family)].throughput_mbps,
        )
        print(f"\n{family}: combined-device throughput drop "
              f"{drop:.0%} (paper: ~22%)")
        assert 0.17 <= drop <= 0.25
