"""Bench: regenerate Fig. 6 — the (I)Shift Row transformation."""

from repro.analysis.figures import fig6_shift_row
from repro.aes.state import State
from repro.aes.transforms import inv_shift_rows, shift_offsets, shift_rows


def test_fig6_shift_row(benchmark):
    text = benchmark(fig6_shift_row)
    print("\n" + text)
    # "once in the second row, twice in the third and so on".
    assert shift_offsets(4) == (0, 1, 2, 3)
    state = State(bytes(range(16)))
    out = shift_rows(state)
    assert out.row(0) == state.row(0)
    assert out.row(1) == (5, 9, 13, 1)
    assert out.row(2) == (10, 14, 2, 6)
    assert out.row(3) == (15, 3, 7, 11)
    assert inv_shift_rows(out) == state
