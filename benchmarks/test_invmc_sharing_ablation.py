"""Ablation bench: shared-correction InvMixColumn vs a flat network.

The decrypt device's InvMixColumn can be built two ways:

- **flat**: direct XOR trees from the 0E/0B/0D/09 coefficients —
  688 LUTs per 128 bits (term counts 11..19 per output bit);
- **shared**: InvMC = correction o MC, reusing the forward network —
  the forward 304 LUTs + a 64-LUT xtime^2 correction layer.

The paper's Table 2 decrypt-vs-encrypt delta (103 LCs) is only
consistent with the shared form; this bench shows what the flat form
would have cost.
"""

from repro.fpga.calibration import LOGIC_FIT
from repro.fpga.primitives import (
    inv_mix_column_terms,
    inv_mix_network_luts,
    mix_column_terms,
    mix_network_luts,
)


def both_forms():
    return (inv_mix_network_luts(shared=True),
            inv_mix_network_luts(shared=False))


def test_invmc_sharing_saves_half(benchmark):
    shared, flat = benchmark(both_forms)
    forward = mix_network_luts()
    print(f"\nMixColumn forward network : {forward} LUTs")
    print(f"InvMixColumn shared form  : {shared} LUTs "
          f"(+{shared - forward} over forward)")
    print(f"InvMixColumn flat form    : {flat} LUTs "
          f"(+{flat - forward} over forward)")
    print(f"flat-form decrypt device would cost "
          f"~{(flat - shared) * LOGIC_FIT:.0f} extra LEs")
    assert shared == forward + 64
    assert flat > 2 * forward
    # The paper's observed enc->dec delta (103 LEs) brackets the
    # shared form and excludes the flat one.
    shared_delta_les = (shared - forward) * LOGIC_FIT
    flat_delta_les = (flat - forward) * LOGIC_FIT
    assert 60 <= shared_delta_les <= 130
    assert flat_delta_les > 300


def test_term_structure_behind_the_depths(benchmark):
    fwd, inv = benchmark(
        lambda: (mix_column_terms(), inv_mix_column_terms())
    )
    print(f"\nforward terms/bit: min {min(fwd)} max {max(fwd)} "
          f"avg {sum(fwd) / 32:.2f}")
    print(f"inverse terms/bit: min {min(inv)} max {max(inv)} "
          f"avg {sum(inv) / 32:.2f}")
    # The inverse coefficients (09/0B/0D/0E) more than double the XOR
    # term density — the physics behind both the flat form's area and
    # the decrypt clock period.
    assert sum(inv) > 2 * sum(fwd)
