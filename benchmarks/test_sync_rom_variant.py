"""Ablation bench: the synchronous-ROM variant (the paper's future
work).

The paper could not use Cyclone's M4K blocks because they only read
synchronously; it spent 1943 extra LEs per 8 S-boxes instead and left
the registered-ROM redesign to future work.  This bench builds that
redesign and quantifies the trade on the EP1C20:

- LEs drop back to roughly the Acex level (S-boxes return to RAM);
- the round stretches to 6 cycles (60-cycle latency);
- net: a much smaller device at ~85 % of the async-in-LUTs speed.
"""

from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant
from repro.ip.testbench import Testbench


def compile_pair():
    spec_async = paper_spec(Variant.ENCRYPT)
    spec_sync = paper_spec(Variant.ENCRYPT, sync_rom=True)
    return (compile_spec(spec_async, "Cyclone"),
            compile_spec(spec_sync, "Cyclone"))


def test_sync_rom_tradeoff_on_cyclone(benchmark):
    lut_rom, m4k_rom = benchmark(compile_pair)
    print(f"\nCyclone encrypt device:")
    print(f"  async (paper, S-boxes in LCs): "
          f"{lut_rom.logic_elements} LEs, {lut_rom.memory_bits} mem "
          f"bits, {lut_rom.latency_ns:.0f} ns, "
          f"{lut_rom.throughput_mbps:.0f} Mbps")
    print(f"  sync (future work, M4K ROMs) : "
          f"{m4k_rom.logic_elements} LEs, {m4k_rom.memory_bits} mem "
          f"bits, {m4k_rom.latency_ns:.0f} ns, "
          f"{m4k_rom.throughput_mbps:.0f} Mbps")
    # The M4K build moves 16384 bits back into embedded memory...
    assert m4k_rom.memory_bits == 16384
    assert lut_rom.memory_bits == 0
    # ...and sheds the ~8 x 243 LE ROM penalty.
    assert lut_rom.logic_elements - m4k_rom.logic_elements > 1500
    # The cost: 60-cycle blocks.
    assert m4k_rom.latency_cycles == 60
    assert lut_rom.latency_cycles == 50
    # Net throughput gives up less than 25 %.
    assert m4k_rom.throughput_mbps > 0.75 * lut_rom.throughput_mbps


def run_sync_core():
    bench = Testbench(Variant.ENCRYPT, sync_rom=True)
    bench.load_key(bytes(16))
    return bench.encrypt(bytes(16))


def test_sync_rom_core_is_functional(benchmark):
    from repro.aes.cipher import AES128

    result, latency = benchmark(run_sync_core)
    assert result == AES128(bytes(16)).encrypt_block(bytes(16))
    assert latency == 60


def test_sync_rom_full_table2(benchmark):
    """The future-work build, run through the whole Table 2 flow: all
    three variants on both families with registered-ROM S-boxes."""
    from repro.fpga.report import render_table2
    from repro.fpga.synthesis import compile_table2

    reports = benchmark(compile_table2, sync_rom=True)
    print("\nTable 2 as it would look for the sync-ROM redesign:")
    print(render_table2(reports))
    by_key = {(r.spec.variant.value, r.device.family): r
              for r in reports}
    # Cyclone gets its memory back in every variant...
    assert by_key[("encrypt", "Cyclone")].memory_bits == 16384
    assert by_key[("both", "Cyclone")].memory_bits == 32768
    # ...and every variant pays the 6-cycle round.
    assert all(r.latency_cycles == 60 for r in reports)
    # On Acex the redesign is strictly worse (EABs already read
    # asynchronously): same memory, longer blocks.
    paper_acex = compile_table2(families=("Acex1K",))
    for sync, asynch in zip(
        [by_key[(v, "Acex1K")] for v in ("encrypt", "decrypt", "both")],
        paper_acex,
    ):
        assert sync.memory_bits == asynch.memory_bits
        assert sync.latency_ns > asynch.latency_ns
