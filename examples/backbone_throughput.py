"""Backbone channel scenario: the paper's high-throughput motivation.

"At backbone communication channels, or at heavily loaded server, it
is not possible to lose processing speed running cryptography
algorithms in general software." (§1)

This example streams a CTR-mode packet flow through the cycle-accurate
device back to back (the Data_In/Out registers hide the bus), measures
the achieved cycles/block, and converts to line rate on both of the
paper's devices.  It then asks the provisioning question a network
architect would: how many IP instances does a given line rate need?
"""

import math
import random

from repro.aes.cipher import AES128
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant
from repro.ip.core import DIR_ENCRYPT
from repro.ip.testbench import Testbench


def ctr_counter_blocks(nonce: bytes, count: int):
    return [nonce + c.to_bytes(8, "big") for c in range(count)]


def main() -> None:
    rng = random.Random(7)
    key = bytes(rng.randrange(256) for _ in range(16))
    nonce = bytes(rng.randrange(256) for _ in range(8))

    # A CTR keystream only needs the *encrypt* direction — provision
    # the cheap device even for a bidirectional link.
    device = Testbench(Variant.ENCRYPT)
    device.load_key(key)

    packets = 12  # one 16-byte keystream block per packet here
    counters = ctr_counter_blocks(nonce, packets)
    keystream, stamps = device.stream_blocks(counters,
                                             direction=DIR_ENCRYPT)

    golden = AES128(key)
    assert keystream == [golden.encrypt_block(c) for c in counters]
    gaps = [b - a for a, b in zip(stamps, stamps[1:])]
    cycles_per_block = sum(gaps) / len(gaps)
    print(f"streamed {packets} CTR blocks; steady-state spacing "
          f"{cycles_per_block:.0f} cycles/block (zero bus gap)")

    print("\nline rate per device instance:")
    fits = {}
    for family in ("Acex1K", "Cyclone"):
        fit = compile_spec(paper_spec(Variant.ENCRYPT), family)
        fits[family] = fit
        mbps = 128 * 1000 / (cycles_per_block * fit.clock_ns)
        print(f"  {family:<8} {fit.device.name:<18} "
              f"clk {fit.clock_ns:>2.0f} ns -> {mbps:6.1f} Mbps")

    # Provisioning: how many instances for common line rates?
    print("\ninstances needed (and LEs) per line rate:")
    for line_mbps in (155, 622, 1000):  # OC-3, OC-12, GigE
        row = [f"  {line_mbps:>5} Mbps:"]
        for family, fit in fits.items():
            per = fit.throughput_mbps
            n = math.ceil(line_mbps / per)
            row.append(f"{family} x{n} ({n * fit.logic_elements} LEs)")
        print("  ".join(row))

    # Statistical sanity of the keystream the channel rides on.
    from repro.analysis.randomness import keystream_battery, \
        render_battery

    # Extend the device's stream with the software model (bit-exact)
    # so the battery has a decent sample size.
    long_stream = b"".join(keystream) + b"".join(
        golden.encrypt_block(c)
        for c in ctr_counter_blocks(nonce, 96)[packets:]
    )
    outcomes = keystream_battery(long_stream)
    print("\n" + render_battery(outcomes))
    assert all(o.passed for o in outcomes)

    # XOR the keystream over a payload to close the loop.
    payload = bytes(rng.randrange(256) for _ in range(packets * 16))
    stream = b"".join(keystream)
    ciphertext = bytes(p ^ s for p, s in zip(payload, stream))
    recovered = bytes(c ^ s for c, s in zip(ciphertext, stream))
    assert recovered == payload
    print(f"\n{len(payload)} payload bytes protected and recovered "
          "bit-exactly.")


if __name__ == "__main__":
    main()
