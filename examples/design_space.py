"""Design-space tour: the paper's §6 conclusions, measured.

Sweeps datapath width (8/16/32, mixed 32/128, full 128), compares
key-schedule strategies, shows the sync-ROM future-work variant on
Cyclone, and places the paper's design against the Table 3 literature.

Run:  python examples/design_space.py
"""

from repro.analysis.tables import table3_text
from repro.arch.explorer import explore_widths, knee_design, sweep_report
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


def main() -> None:
    # --- the width spectrum on the paper's Acex1K part ---------------
    print("width sweep on EP1K100 (encrypt variant):\n")
    reports = explore_widths("Acex1K", Variant.ENCRYPT)
    print(sweep_report(reports))
    knee = knee_design(reports)
    print(f"\nefficiency knee among fitting designs: {knee.spec.name} "
          f"({knee.efficiency_mbps_per_kle:.1f} Mbps/kLE)")

    # --- the key-schedule wall (§6) -----------------------------------
    by_name = {r.spec.name: r for r in reports}
    full = by_name["full-128-encrypt"]
    pre = by_name["full-128-precomp-encrypt"]
    print(f"\n128-bit datapath: {full.spec.cycles_per_round} cycles/"
          "round with on-the-fly keys (key unit makes one word/cycle)"
          f" vs {pre.spec.cycles_per_round} with precomputed keys —")
    print("  'larger architectures do not provide a large increase of "
          "performance, as the key generation is slower' (§6)")
    print(f"  ...and neither 128-bit point fits the EP1K100 "
          f"(fits: {full.fits}/{pre.fits}).")

    # --- the sync-ROM future-work variant on Cyclone ------------------
    print("\nCyclone encrypt device, async (paper) vs sync-ROM "
          "(future work):")
    for sync in (False, True):
        fit = compile_spec(paper_spec(Variant.ENCRYPT, sync_rom=sync),
                           "Cyclone")
        tag = "sync M4K " if sync else "LC S-box "
        print(f"  {tag}: {fit.logic_elements:>5} LEs, "
              f"{fit.memory_bits:>6} mem bits, "
              f"{fit.latency_ns:4.0f} ns, "
              f"{fit.throughput_mbps:5.0f} Mbps")

    # --- the literature landscape (Table 3) ---------------------------
    print("\n" + table3_text())


if __name__ == "__main__":
    main()
