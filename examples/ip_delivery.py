"""IP delivery: produce the soft-IP package a customer would receive.

The paper's artifact is a *soft IP* — HDL plus memory initialization
plus verification collateral.  This example assembles that package
from the living model:

- VHDL design units (linted) and S-box ``.mif`` files per variant;
- a known-answer verification file (FIPS vectors + latency contract);
- a waveform (``.vcd``) of a real encryption for the datasheet.

Run:  python examples/ip_delivery.py [output_dir]
"""

import sys
from pathlib import Path

from repro.aes.vectors import ALL_VECTORS
from repro.hdl import generate_core_vhdl, lint_vhdl
from repro.ip.control import Variant, block_latency, key_setup_cycles
from repro.ip.testbench import Testbench
from repro.rtl.trace import Trace
from repro.rtl.vcd import trace_to_vcd


def write_verification_file(path: Path) -> None:
    """Known-answer vectors + timing contract, re-verified on export."""
    lines = [
        "# Rijndael IP verification collateral",
        f"# latency: {block_latency()} cycles/block; "
        f"key setup: {key_setup_cycles()} cycles (decrypt-capable)",
        "# columns: key, plaintext, ciphertext (hex)",
    ]
    for vector in ALL_VECTORS:
        if len(vector.key) != 16:
            continue  # the device implements AES-128
        bench = Testbench(Variant.BOTH)
        bench.load_key(vector.key)
        ct, latency = bench.encrypt(vector.plaintext)
        assert ct == vector.ciphertext and latency == block_latency()
        lines.append(
            f"{vector.key.hex()} {vector.plaintext.hex()} "
            f"{vector.ciphertext.hex()}  # {vector.source}"
        )
    path.write_text("\n".join(lines) + "\n")


def write_waveform(path: Path) -> None:
    """A datasheet waveform: key load, one block, data_ok strobe."""
    bench = Testbench(Variant.ENCRYPT)
    core = bench.core
    trace = Trace(bench.simulator,
                  [core.data_ok, core.top, core.round, core.step,
                   *core.state])
    bench.load_key(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
    bench.encrypt(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
    path.write_text(trace_to_vcd(trace, clock_ns=14))


def main() -> None:
    outdir = Path(sys.argv[1] if len(sys.argv) > 1 else "ip_package")
    total = 0
    for variant in Variant:
        vdir = outdir / variant.value
        vdir.mkdir(parents=True, exist_ok=True)
        files = generate_core_vhdl(variant)
        for name, text in sorted(files.items()):
            if name.endswith(".vhd"):
                lint_vhdl(text, name)  # never ship broken HDL
            (vdir / name).write_text(text)
            total += 1
        print(f"{variant.value:<8}: {len(files)} design files "
              f"-> {vdir}")

    write_verification_file(outdir / "known_answers.txt")
    write_waveform(outdir / "encrypt_block.vcd")
    total += 2
    print(f"verification collateral + waveform -> {outdir}")
    print(f"\nIP package complete: {total} files under {outdir}/")


if __name__ == "__main__":
    main()
