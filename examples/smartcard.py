"""Smart card scenario: the paper's low-cost application target.

"A low cost and small design can be used in smart card applications,
allowing a wide range of equipment to operate securely."  (§1)

A smart card authenticates with a challenge-response: the terminal
sends a random challenge, the card answers AES-128(K, challenge).
This example provisions the smallest device (encrypt-only), wraps its
128-bit core interface behind the 16-bit bus the paper recommends for
constrained integrations, and reports the per-transaction budget a
card designer cares about: cycles, time, and energy.
"""

import random

from repro.aes.cipher import AES128
from repro.analysis.power import measure_power
from repro.arch.spec import paper_spec
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant
from repro.ip.interface import BEAT_CYCLES, bus_utilization, \
    min_bus_width_for_full_rate
from repro.ip.testbench import Testbench


def transfer_cycles(bits: int, bus_width: int) -> int:
    """Host-visible cycles to move ``bits`` over a narrow wrapper bus."""
    beats = -(-bits // bus_width)
    return beats * BEAT_CYCLES


def main() -> None:
    rng = random.Random(42)
    card_key = bytes(rng.randrange(256) for _ in range(16))

    # --- the card's silicon budget -----------------------------------
    fit = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
    print("card crypto block (encrypt-only device, EP1K100):")
    print(f"  {fit.logic_elements} LCs ({fit.logic_pct:.0f}% of the "
          f"device), {fit.memory_bits} ROM bits, clk {fit.clock_ns:.0f} ns")

    width = min_bus_width_for_full_rate()
    print(f"  wrapper bus: {width}-bit "
          f"(bus busy {bus_utilization(width):.0%} of a block period; "
          "the paper: 'lower bus sizes could not be sufficient')")

    # --- challenge-response transactions ------------------------------
    card = Testbench(Variant.ENCRYPT)
    card.load_key(card_key)
    terminal_view = AES128(card_key)  # the issuer knows the key too

    transactions = 5
    total_core = 0
    for i in range(transactions):
        challenge = bytes(rng.randrange(256) for _ in range(16))
        response, latency = card.encrypt(challenge)
        total_core += latency
        assert response == terminal_view.encrypt_block(challenge)
        print(f"  txn {i}: challenge {challenge[:4].hex()}.. -> "
              f"response {response[:4].hex()}.. ({latency} cycles)")

    bus = transfer_cycles(128, width) * 2  # challenge in + response out
    per_txn = total_core // transactions + bus
    time_us = per_txn * fit.clock_ns / 1000.0
    print(f"\nper-transaction: {total_core // transactions} core + "
          f"{bus} bus cycles = {per_txn} cycles = {time_us:.2f} us "
          f"@ {fit.clock_ns:.0f} ns")

    # --- energy (the mobile/contactless concern) ----------------------
    blocks = [bytes(rng.randrange(256) for _ in range(16))
              for _ in range(8)]
    power = measure_power(blocks, card_key, variant=Variant.ENCRYPT,
                          family="Cyclone")
    print(f"energy per authentication (Cyclone-class process): "
          f"{power.energy_per_block_nj:.1f} nJ "
          f"({power.dynamic_mw:.2f} mW while streaming)")


if __name__ == "__main__":
    main()
