"""Quickstart: the golden model, the cycle-accurate IP, and Table 2.

Run:  python examples/quickstart.py
"""

from repro import AES128, Testbench, Variant, compile_spec, paper_spec
from repro.analysis.tables import table2_text


def main() -> None:
    key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")

    # 1. The behavioral golden model (FIPS-197).
    aes = AES128(key)
    ciphertext = aes.encrypt_block(plaintext)
    print("golden model")
    print(f"  plaintext : {plaintext.hex()}")
    print(f"  ciphertext: {ciphertext.hex()}")
    assert aes.decrypt_block(ciphertext) == plaintext

    # 2. The paper's IP, cycle-accurate, through the bus protocol.
    bench = Testbench(Variant.BOTH)
    setup_cycles = bench.load_key(key)
    hw_ct, enc_latency = bench.encrypt(plaintext)
    hw_pt, dec_latency = bench.decrypt(hw_ct)
    print("\ncycle-accurate IP (BOTH variant)")
    print(f"  key setup   : {setup_cycles} cycles "
          "(wr_key + 40-cycle pass)")
    print(f"  encrypt     : {hw_ct.hex()}  ({enc_latency} cycles)")
    print(f"  decrypt     : {hw_pt.hex()}  ({dec_latency} cycles)")
    assert hw_ct == ciphertext and hw_pt == plaintext
    assert enc_latency == dec_latency == 50  # 10 rounds x 5 cycles

    # 3. Synthesis estimate for one design point...
    fit = compile_spec(paper_spec(Variant.ENCRYPT), "Acex1K")
    print("\nsynthesis estimate, encrypt device on EP1K100 (Acex1K)")
    print(fit.render())

    # ...and the paper's whole Table 2.
    print("\nTable 2, regenerated:")
    print(table2_text())


if __name__ == "__main__":
    main()
