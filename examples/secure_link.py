"""Secure link: the paper's §2 deployment story, end to end.

"Because a symmetric algorithm computation is simpler than an
asymmetric one, the second way is used to transmit the symmetric key.
After that, all communication is made using a symmetrical algorithm."

This example builds exactly that: two parties agree on an AES-128
session key with a (toy, textbook) Diffie-Hellman exchange, load it
into their Rijndael IP devices — A has an encrypt-only device, B a
decrypt-only device, the paper's cheapest pairing for a simplex link —
and stream a CBC-protected message across, measuring the cycle cost
the devices spend.

Run:  python examples/secure_link.py
"""

import hashlib
import secrets

from repro.aes.modes import BLOCK, pkcs7_pad, pkcs7_unpad
from repro.ip.control import Variant
from repro.ip.testbench import Testbench

# A small published safe prime (RFC 5114-style toy size — real
# deployments use 2048+ bits; the exchange structure is identical).
DH_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B",
    16,
)
DH_GENERATOR = 2


def dh_keypair():
    # Private exponents come from the OS CSPRNG (the secrets module):
    # a seeded Mersenne Twister exponent is recoverable from its
    # outputs, which collapses the whole exchange.
    private = 2 + secrets.randbelow(DH_PRIME - 4)
    public = pow(DH_GENERATOR, private, DH_PRIME)
    return private, public


def session_key(shared_secret: int) -> bytes:
    """Derive the AES-128 key from the DH shared secret (KDF = SHA-256
    truncated, the usual construction)."""
    digest = hashlib.sha256(
        shared_secret.to_bytes((DH_PRIME.bit_length() + 7) // 8, "big")
    ).digest()
    return digest[:16]


def xor_blocks(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cbc_encrypt_on_device(bench: Testbench, iv: bytes,
                          plaintext: bytes):
    """CBC over the *hardware model*: the chaining XOR is host-side
    glue, each block encryption runs on the IP.  Returns (ciphertext,
    total device cycles)."""
    feedback = iv
    out = bytearray()
    cycles = 0
    for i in range(0, len(plaintext), BLOCK):
        block = xor_blocks(plaintext[i:i + BLOCK], feedback)
        feedback, latency = bench.encrypt(block)
        cycles += latency
        out.extend(feedback)
    return bytes(out), cycles


def cbc_decrypt_on_device(bench: Testbench, iv: bytes,
                          ciphertext: bytes):
    feedback = iv
    out = bytearray()
    cycles = 0
    for i in range(0, len(ciphertext), BLOCK):
        block = ciphertext[i:i + BLOCK]
        plain, latency = bench.decrypt(block)
        cycles += latency
        out.extend(xor_blocks(plain, feedback))
        feedback = block
    return bytes(out), cycles


def main() -> None:
    print("note: all secret material (DH exponents, session key, IV) "
          "is drawn\nfrom the secrets module (OS CSPRNG); the "
          "exchange structure is unchanged.")

    # --- key agreement (the asymmetric leg of §2) -------------------
    a_private, a_public = dh_keypair()
    b_private, b_public = dh_keypair()
    a_secret = pow(b_public, a_private, DH_PRIME)
    b_secret = pow(a_public, b_private, DH_PRIME)
    assert a_secret == b_secret
    kek = session_key(a_secret)
    # The KEK itself is never printed — key material in stdout is the
    # taint.secret-in-format failure mode this repo lints against.
    print(f"DH exchange complete; {len(kek) * 8}-bit "
          "key-encryption key derived (not shown)")

    # --- key transport: "the second way is used to transmit the
    # symmetric key" (§2) — A wraps a fresh session key under the DH
    # KEK with AES Key Wrap (RFC 3394) and sends it to B.
    from repro.aes.auth import key_unwrap, key_wrap

    key = secrets.token_bytes(16)
    wrapped = key_wrap(kek, key)
    received_key = key_unwrap(kek, wrapped)  # B's side, integrity-checked
    assert received_key == key
    print(f"session key transported wrapped ({len(wrapped)} bytes);"
          " integrity verified")

    # --- device provisioning ----------------------------------------
    # A sends, B receives: encrypt-only + decrypt-only devices — the
    # paper's §4 point that "if either decrypt or encrypt function are
    # not needed, just one device could be implemented".
    alice = Testbench(Variant.ENCRYPT)
    bob = Testbench(Variant.DECRYPT)
    a_setup = alice.load_key(key)
    b_setup = bob.load_key(key)
    print(f"key setup: A (encrypt-only) {a_setup} cycle(s), "
          f"B (decrypt-only) {b_setup} cycles "
          "(the 40-cycle pass derives B's last round key)")

    # --- the protected message ---------------------------------------
    message = (
        b"Internet banking and other telecommunications operations "
        b"need a standard: AES-128 as shipped in this low-area IP."
    )
    from repro.aes.auth import cmac, cmac_verify

    iv = secrets.token_bytes(16)
    padded = pkcs7_pad(message)
    ciphertext, enc_cycles = cbc_encrypt_on_device(alice, iv, padded)
    tag = cmac(key, iv + ciphertext)  # encrypt-then-MAC
    # --- B's side: verify, then decrypt -------------------------------
    assert cmac_verify(key, iv + ciphertext, tag)
    received, dec_cycles = cbc_decrypt_on_device(bob, iv, ciphertext)
    recovered = pkcs7_unpad(received)

    blocks = len(padded) // BLOCK
    print(f"\nmessage: {len(message)} bytes -> {blocks} CBC blocks")
    print(f"ciphertext[0:32] = {ciphertext[:32].hex()}")
    print(f"A spent {enc_cycles} device cycles "
          f"({enc_cycles // blocks}/block), "
          f"B spent {dec_cycles} ({dec_cycles // blocks}/block)")
    assert recovered == message
    print("B recovered the message bit-exactly.")

    # At the paper's Acex1K clocks this message costs:
    for ns_per_cycle, who, cycles in ((14, "A@14ns", enc_cycles),
                                      (15, "B@15ns", dec_cycles)):
        print(f"  {who}: {cycles * ns_per_cycle} ns on EP1K100")


if __name__ == "__main__":
    main()
