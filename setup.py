"""Setup shim: enables `pip install -e .` on environments without the
`wheel` package (legacy editable install path)."""
from setuptools import setup

setup()
