"""repro — reproduction of "A Low Device Occupation IP to Implement
Rijndael Algorithm" (Panato, Barcelos, Reis; DATE 2003).

The paper builds a low-area AES-128 soft IP with a mixed 32/128-bit
datapath and on-the-fly round keys, and evaluates three device
variants on Altera Acex1K and Cyclone FPGAs.  This library rebuilds
the whole stack in Python:

- :mod:`repro.gf` / :mod:`repro.aes` — GF(2^8) algebra and the
  behavioral Rijndael golden model (full AES-128/192/256 + modes);
- :mod:`repro.rtl` — a cycle-based RTL simulation kernel;
- :mod:`repro.ip` — the paper's IP, cycle-accurate (5 cycles/round,
  50-cycle blocks, Table 1 pin protocol, I/O overlap);
- :mod:`repro.fpga` — device models, technology mapping and static
  timing that regenerate Table 2;
- :mod:`repro.arch` — the design space (§6) and Table 3 baselines;
- :mod:`repro.analysis` — tables, figures, the power model (the
  paper's future work) and SEU fault injection (its ref. [16]).

Quick start::

    from repro import AES128, Testbench, Variant

    aes = AES128(bytes(16))                      # golden model
    ct = aes.encrypt_block(bytes(16))

    bench = Testbench(Variant.BOTH)              # cycle-accurate IP
    bench.load_key(bytes(16))
    hw_ct, latency = bench.encrypt(bytes(16))    # latency == 50
    assert hw_ct == ct
"""

from repro.aes.cipher import AES128, Rijndael, decrypt_block, encrypt_block
from repro.arch.spec import ArchitectureSpec, paper_spec
from repro.fpga.synthesis import compile_spec, compile_table2
from repro.ip.control import Variant
from repro.ip.testbench import Testbench

__version__ = "1.0.0"

__all__ = [
    "AES128",
    "ArchitectureSpec",
    "Rijndael",
    "Testbench",
    "Variant",
    "compile_spec",
    "compile_table2",
    "decrypt_block",
    "encrypt_block",
    "paper_spec",
    "__version__",
]
