"""Batched software throughput engine and benchmark harness.

The paper's §1 motivation is that backbone channels "cannot lose
processing speed running cryptography algorithms in general software".
This subpackage is the software side of that argument, engineered the
way high-traffic deployments actually run block ciphers:

- :mod:`repro.perf.backends` — pluggable bulk-encryption backends: the
  straightforward model (:class:`repro.aes.cipher.AES128`, the golden
  reference), the per-block T-table path (:mod:`repro.aes.fast`), and
  a word-sliced *batch* T-table backend that amortizes key expansion
  through an LRU round-key cache and processes many blocks per call —
  vectorized with numpy when available, pure Python otherwise.
- :mod:`repro.perf.engine` — :class:`~repro.perf.engine.BatchEngine`,
  one interface over every backend with ``concurrent.futures``
  sharding for the parallelizable modes (ECB, CTR keystream, GCTR).
  Feedback modes (CBC/CFB) stay serial by construction — the paper's
  point that chaining makes per-block latency the whole story.
- :mod:`repro.perf.bench` — the benchmark harness: a pinned workload
  matrix (backend x mode x message size), a bit-for-bit equivalence
  gate against the golden model before any timing, and the persisted
  ``BENCH_software_throughput.json`` trajectory that later PRs assert
  no-regression against.

The bulk paths of :mod:`repro.aes.modes` and :mod:`repro.aes.gcm`
route through :func:`repro.perf.engine.default_engine`.
"""

from repro.perf.backends import (
    Backend,
    BaselineBackend,
    RoundKeyCache,
    SlicedBackend,
    TTableBackend,
    available_backends,
    get_backend,
    have_numpy,
    numpy_version,
)
from repro.perf.engine import (
    BackendMismatch,
    BatchEngine,
    default_engine,
    forget_key,
)
from repro.perf.evp import EvpBackend, have_evp, openssl_version

__all__ = [
    "Backend",
    "BackendMismatch",
    "BaselineBackend",
    "BatchEngine",
    "EvpBackend",
    "RoundKeyCache",
    "SlicedBackend",
    "TTableBackend",
    "available_backends",
    "default_engine",
    "forget_key",
    "get_backend",
    "have_evp",
    "have_numpy",
    "numpy_version",
    "openssl_version",
]
