"""Bulk-encryption backends for the batch throughput engine.

A backend turns ``(key, many 16-byte blocks)`` into ciphertext in one
call.  Three are provided, in increasing order of software ambition:

``baseline``
    The straightforward model, exactly as the mode layer used it
    before the engine existed: construct :class:`repro.aes.cipher.
    AES128` (one key expansion per call) and loop block by block.
    This is the reference every other backend must match bit-for-bit,
    and the denominator of every speedup the bench reports.

``ttable``
    The per-block T-table path (:class:`repro.aes.fast.FastAES128`):
    fused round tables, still one Python method call per block.

``sliced``
    The batch backend this module exists for.  Round keys come from a
    shared :class:`RoundKeyCache` (an LRU keyed by the raw key), so a
    hot key pays for expansion once across calls — the software
    analogue of the paper's ``wr_key``-once-stream-many usage model.
    The state is held *word-sliced*: four parallel vectors of 32-bit
    column words for the whole batch, walked round-by-round so the
    table lookups run in a tight inner loop over all blocks at once.
    When numpy is importable the vectors are ``uint32`` arrays and the
    lookups are fancy-indexed gathers; otherwise a pure-Python sliced
    loop runs.  numpy is detected, never required.

All backends are encrypt-only, like :mod:`repro.aes.fast`: the batch
modes (ECB encrypt, CTR, GCTR) only ever use the encrypt direction —
the same property that lets the paper's smallest device variant serve
CTR links.
"""

from __future__ import annotations

import struct as _struct
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.aes.cipher import AES128
from repro.aes.constants import SBOX
from repro.aes.fast import T0, T1, T2, T3, FastAES128
from repro.aes.key_schedule import expand_key

try:  # optional vectorization — detected, never required
    import numpy as _np
except ImportError:  # pragma: no cover - exercised where numpy absent
    _np = None

BLOCK = 16

#: AES-128 round count; the schedule is 4 * (_ROUNDS + 1) words.
_ROUNDS = 10


def have_numpy() -> bool:
    """True when the sliced backend will vectorize with numpy."""
    return _np is not None


def numpy_version() -> Optional[str]:
    """The detected numpy version, or ``None`` when absent."""
    return None if _np is None else str(_np.__version__)


#: Packed layout of one cached schedule: 44 big-endian 32-bit words.
_SCHEDULE = _struct.Struct(f">{4 * (_ROUNDS + 1)}I")


class RoundKeyCache:
    """LRU cache of expanded AES-128 schedules, keyed by the raw key.

    The paper's device expands on the fly precisely to avoid storing
    schedules; software has the opposite economics — expansion is ~5x
    the cost of one T-table block, so a streaming channel that
    re-keys rarely should pay it once.  Capacity is bounded so a
    multi-tenant server cannot grow the cache without limit.

    Hygiene: each schedule lives in a private ``bytearray`` that is
    **overwritten with zeros** when its entry is evicted, discarded
    or cleared — derived key material never waits in freed memory
    for the allocator to hand it to someone else.  ``words`` unpacks
    a fresh tuple per call, so callers never hold a reference into
    the wipeable buffer.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[bytes, bytearray]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def capacity(self) -> int:
        """Maximum number of cached schedules."""
        return self._capacity

    @staticmethod
    def _wipe(packed: bytearray) -> None:
        packed[:] = bytes(len(packed))

    def words(self, key: bytes) -> Tuple[int, ...]:
        """The 44-word schedule for ``key``, expanding on first use."""
        key = bytes(key)
        if len(key) != BLOCK:
            raise ValueError(
                f"AES-128 key must be {BLOCK} bytes, got {len(key)}"
            )
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            return _SCHEDULE.unpack(entry)
        schedule = tuple(expand_key(key, _ROUNDS))
        packed = bytearray(_SCHEDULE.size)
        _SCHEDULE.pack_into(packed, 0, *schedule)
        self._entries[key] = packed
        if len(self._entries) > self._capacity:
            _, evicted = self._entries.popitem(last=False)
            self._wipe(evicted)
        return schedule

    def discard(self, key: bytes) -> None:
        """Zeroize and drop one key's schedule, if cached.

        The serve layer calls this (via ``engine.forget_key``) on
        session teardown so a closed session's schedule does not
        outlive it in the process-wide cache.
        """
        entry = self._entries.pop(bytes(key), None)
        if entry is not None:
            self._wipe(entry)

    def clear(self) -> None:
        """Zeroize and drop every cached schedule (hygiene hook)."""
        for entry in self._entries.values():
            self._wipe(entry)
        self._entries.clear()


class Backend:
    """Interface every bulk backend implements.

    ``encrypt_blocks`` receives validated input — a 16-byte key and a
    16-byte-aligned buffer — and returns the ECB encryption of every
    block.  Engines layer counter generation, XOR and sharding on top.
    """

    #: Registry/bench name; subclasses override.
    name = "abstract"

    @property
    def vectorized(self) -> bool:
        """True when the hot loop runs vectorized (numpy)."""
        return False

    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        """Encrypt every 16-byte block of ``data`` under ``key``."""
        raise NotImplementedError


class BaselineBackend(Backend):
    """The pre-engine software path: per-call expansion, per-block loop."""

    name = "baseline"

    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        aes = AES128(key)
        return b"".join(
            aes.encrypt_block(data[i:i + BLOCK])
            for i in range(0, len(data), BLOCK)
        )


class TTableBackend(Backend):
    """Per-block T-table path (:class:`repro.aes.fast.FastAES128`)."""

    name = "ttable"

    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        return FastAES128(key).encrypt_ecb(data)


class SlicedBackend(Backend):
    """Word-sliced batch T-table backend with an LRU round-key cache.

    ``vectorize=None`` (the default) auto-detects numpy;
    ``vectorize=False`` forces the pure-Python sliced loop (the tests
    run both against the golden model); ``vectorize=True`` demands
    numpy and raises if it is missing.
    """

    name = "sliced"

    def __init__(self, cache: Optional[RoundKeyCache] = None,
                 vectorize: Optional[bool] = None):
        if vectorize is None:
            vectorize = _np is not None
        if vectorize and _np is None:
            raise RuntimeError("numpy is not available; "
                               "use vectorize=False")
        self._vectorize = bool(vectorize)
        self._cache = cache if cache is not None else RoundKeyCache()

    @property
    def cache(self) -> RoundKeyCache:
        """The round-key LRU this backend amortizes expansion through."""
        return self._cache

    @property
    def vectorized(self) -> bool:
        """True when the numpy gather path is active."""
        return self._vectorize

    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        if not data:
            return b""
        rk = self._cache.words(key)
        if self._vectorize:
            return _encrypt_numpy(rk, data)
        return _encrypt_sliced(rk, data)


def _encrypt_sliced(rk: Tuple[int, ...], data: bytes) -> bytes:
    """Pure-Python word-sliced batch: rounds outer, blocks inner."""
    t0, t1, t2, t3 = T0, T1, T2, T3
    k0, k1, k2, k3 = rk[0], rk[1], rk[2], rk[3]
    s0: List[int] = []
    s1: List[int] = []
    s2: List[int] = []
    s3: List[int] = []
    for i in range(0, len(data), BLOCK):
        s0.append(int.from_bytes(data[i:i + 4], "big") ^ k0)
        s1.append(int.from_bytes(data[i + 4:i + 8], "big") ^ k1)
        s2.append(int.from_bytes(data[i + 8:i + 12], "big") ^ k2)
        s3.append(int.from_bytes(data[i + 12:i + 16], "big") ^ k3)

    for rnd in range(1, _ROUNDS):
        base = 4 * rnd
        k0, k1, k2, k3 = rk[base], rk[base + 1], rk[base + 2], \
            rk[base + 3]
        n0: List[int] = []
        n1: List[int] = []
        n2: List[int] = []
        n3: List[int] = []
        for a, b, c, d in zip(s0, s1, s2, s3):
            n0.append(t0[a >> 24] ^ t1[(b >> 16) & 0xFF]
                      ^ t2[(c >> 8) & 0xFF] ^ t3[d & 0xFF] ^ k0)
            n1.append(t0[b >> 24] ^ t1[(c >> 16) & 0xFF]
                      ^ t2[(d >> 8) & 0xFF] ^ t3[a & 0xFF] ^ k1)
            n2.append(t0[c >> 24] ^ t1[(d >> 16) & 0xFF]
                      ^ t2[(a >> 8) & 0xFF] ^ t3[b & 0xFF] ^ k2)
            n3.append(t0[d >> 24] ^ t1[(a >> 16) & 0xFF]
                      ^ t2[(b >> 8) & 0xFF] ^ t3[c & 0xFF] ^ k3)
        s0, s1, s2, s3 = n0, n1, n2, n3

    sbox = SBOX
    k0, k1, k2, k3 = rk[40], rk[41], rk[42], rk[43]
    out = bytearray()
    for a, b, c, d in zip(s0, s1, s2, s3):
        o0 = ((sbox[a >> 24] << 24) | (sbox[(b >> 16) & 0xFF] << 16)
              | (sbox[(c >> 8) & 0xFF] << 8) | sbox[d & 0xFF]) ^ k0
        o1 = ((sbox[b >> 24] << 24) | (sbox[(c >> 16) & 0xFF] << 16)
              | (sbox[(d >> 8) & 0xFF] << 8) | sbox[a & 0xFF]) ^ k1
        o2 = ((sbox[c >> 24] << 24) | (sbox[(d >> 16) & 0xFF] << 16)
              | (sbox[(a >> 8) & 0xFF] << 8) | sbox[b & 0xFF]) ^ k2
        o3 = ((sbox[d >> 24] << 24) | (sbox[(a >> 16) & 0xFF] << 16)
              | (sbox[(b >> 8) & 0xFF] << 8) | sbox[c & 0xFF]) ^ k3
        out.extend(o0.to_bytes(4, "big"))
        out.extend(o1.to_bytes(4, "big"))
        out.extend(o2.to_bytes(4, "big"))
        out.extend(o3.to_bytes(4, "big"))
    return bytes(out)


# Table arrays for the numpy gather path, built lazily so importing
# this module never requires numpy.
_NP_TABLES = None


def _np_tables():
    global _NP_TABLES
    if _NP_TABLES is None:
        _NP_TABLES = (
            _np.array(T0, dtype=_np.uint32),
            _np.array(T1, dtype=_np.uint32),
            _np.array(T2, dtype=_np.uint32),
            _np.array(T3, dtype=_np.uint32),
            _np.array(SBOX, dtype=_np.uint32),
        )
    return _NP_TABLES


def _encrypt_numpy(rk: Tuple[int, ...], data: bytes) -> bytes:
    """Vectorized word-sliced batch: uint32 gathers over all blocks."""
    t0, t1, t2, t3, sbox = _np_tables()
    state = _np.frombuffer(data, dtype=">u4").reshape(-1, 4)
    state = state.astype(_np.uint32)
    s0 = state[:, 0] ^ _np.uint32(rk[0])
    s1 = state[:, 1] ^ _np.uint32(rk[1])
    s2 = state[:, 2] ^ _np.uint32(rk[2])
    s3 = state[:, 3] ^ _np.uint32(rk[3])

    mask = _np.uint32(0xFF)
    for rnd in range(1, _ROUNDS):
        base = 4 * rnd
        n0 = (t0[s0 >> 24] ^ t1[(s1 >> 16) & mask]
              ^ t2[(s2 >> 8) & mask] ^ t3[s3 & mask]
              ^ _np.uint32(rk[base]))
        n1 = (t0[s1 >> 24] ^ t1[(s2 >> 16) & mask]
              ^ t2[(s3 >> 8) & mask] ^ t3[s0 & mask]
              ^ _np.uint32(rk[base + 1]))
        n2 = (t0[s2 >> 24] ^ t1[(s3 >> 16) & mask]
              ^ t2[(s0 >> 8) & mask] ^ t3[s1 & mask]
              ^ _np.uint32(rk[base + 2]))
        n3 = (t0[s3 >> 24] ^ t1[(s0 >> 16) & mask]
              ^ t2[(s1 >> 8) & mask] ^ t3[s2 & mask]
              ^ _np.uint32(rk[base + 3]))
        s0, s1, s2, s3 = n0, n1, n2, n3

    def final(a, b, c, d, word):
        return ((sbox[a >> 24] << _np.uint32(24))
                | (sbox[(b >> 16) & mask] << _np.uint32(16))
                | (sbox[(c >> 8) & mask] << _np.uint32(8))
                | sbox[d & mask]) ^ _np.uint32(word)

    out = _np.empty((len(s0), 4), dtype=_np.uint32)
    out[:, 0] = final(s0, s1, s2, s3, rk[40])
    out[:, 1] = final(s1, s2, s3, s0, rk[41])
    out[:, 2] = final(s2, s3, s0, s1, rk[42])
    out[:, 3] = final(s3, s0, s1, s2, rk[43])
    return out.astype(">u4").tobytes()


def available_backends() -> Dict[str, Backend]:
    """Fresh instances of every backend, keyed by registry name."""
    backends: Dict[str, Backend] = {
        BaselineBackend.name: BaselineBackend(),
        TTableBackend.name: TTableBackend(),
        SlicedBackend.name: SlicedBackend(),
    }
    # The OpenSSL-EVP ceiling registers only where a libcrypto passes
    # its load-time FIPS-197 self-test; ``auto`` still means sliced —
    # the ceiling is opt-in, not a silent default.
    from repro.perf.evp import EvpBackend, have_evp
    if have_evp():
        backends[EvpBackend.name] = EvpBackend()
    return backends


def get_backend(name: str) -> Backend:
    """Instantiate a backend by registry name (``auto`` -> sliced)."""
    if name == "auto":
        return SlicedBackend()
    backends = available_backends()
    if name not in backends:
        if name == "evp":
            raise ValueError(
                "backend 'evp' needs a loadable OpenSSL libcrypto, "
                "which is unavailable here (try 'sliced')")
        known = ", ".join(sorted(backends))
        raise ValueError(f"unknown backend {name!r}; "
                         f"choose from {known} (or 'auto')")
    return backends[name]
