"""The batch throughput engine: one interface over every backend.

:class:`BatchEngine` is the software counterpart of the paper's IP
wrapper: the caller hands it a key and a buffer, and the engine picks
how the blocks actually get processed — which backend runs the T-table
math, and whether the buffer is sharded across worker threads with
``concurrent.futures``.

Only the *parallelizable* primitives live here: ECB encryption, CTR
keystream generation, and GCTR (GCM's 32-bit-counter variant).  Each
encrypts an independent block stream, so a buffer can be cut into
contiguous shards and processed concurrently.  The feedback modes
(CBC, CFB) are deliberately absent: block *i* needs ciphertext
*i - 1*, so no amount of batching hides per-block latency — in
hardware terms, the paper's 50-cycle block latency is the whole story
for a chained mode, and :mod:`repro.aes.modes` keeps those loops
serial.

Hot-swapping backends behind this one interface mirrors the dynamic-
reconfiguration direction of the related FPGA work: the caller's code
does not change when the implementation under it does.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Union

from repro.obs.metrics import global_registry
from repro.obs.tracing import trace_span
from repro.perf.backends import Backend, get_backend

BLOCK = 16

#: Below this many blocks a shard is not worth a thread hop.
MIN_SHARD_BLOCKS = 256

# Engine instrumentation: children are bound once at import so the
# per-call cost on the hot path is a dict-free method call.
_REGISTRY = global_registry()
_OPS = _REGISTRY.counter(
    "repro_engine_ops_total",
    "Batch-engine primitive invocations",
    labels=("primitive",),
)
_BLOCKS = _REGISTRY.counter(
    "repro_engine_blocks_total",
    "16-byte blocks processed by the batch engine",
)
_SHARD_SECONDS = _REGISTRY.histogram(
    "repro_engine_shard_seconds",
    "Wall-clock seconds spent encrypting one shard",
    labels=("backend",),
)
_WORKERS_EFFECTIVE = _REGISTRY.gauge(
    "repro_engine_workers_effective",
    "Effective worker count of the last sharded call",
)
_BACKEND_SELECTED = _REGISTRY.counter(
    "repro_engine_backend_selected_total",
    "Backend choices made at engine construction",
    labels=("backend",),
)
_OPS_ENCRYPT = _OPS.labels(primitive="encrypt_blocks")
_OPS_KEYSTREAM = _OPS.labels(primitive="keystream")
_OPS_GCTR = _OPS.labels(primitive="gctr")


class BackendMismatch(ValueError):
    """A backend disagreed bit-for-bit with the golden model."""


class BatchEngine:
    """Batched encryption over a pluggable backend.

    ``backend`` is a registry name (``baseline`` / ``ttable`` /
    ``sliced`` / ``auto``) or a :class:`~repro.perf.backends.Backend`
    instance.  ``workers`` > 1 shards large buffers across a thread
    pool; the default of 1 keeps everything on the calling thread
    (CPython's GIL serializes the pure-Python backends anyway — the
    sharding pays off for vectorized or future native backends, and
    the shard plan is identical either way, so results never depend
    on the worker count).
    """

    def __init__(self, backend: Union[str, Backend] = "auto",
                 workers: int = 1):
        if isinstance(backend, str):
            backend = get_backend(backend)
        self._backend = backend
        self._workers = max(1, int(workers))
        self._effective_workers = 1
        _BACKEND_SELECTED.labels(backend=backend.name).inc()

    @property
    def backend(self) -> Backend:
        """The backend currently doing the block math."""
        return self._backend

    @property
    def workers(self) -> int:
        """Configured shard ceiling for the parallelizable primitives."""
        return self._workers

    @property
    def effective_workers(self) -> int:
        """Workers the last call actually used.

        The shard plan can produce fewer shards than the configured
        ``workers`` (small buffers shard less); the executor is sized
        to the shards, never the configured ceiling, and this property
        (plus the ``repro_engine_workers_effective`` gauge) reports
        what really ran.
        """
        return self._effective_workers

    # ------------------------------------------------------------ ECB
    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        """Encrypt an aligned buffer block-by-block (ECB direction)."""
        key = bytes(key)
        if len(key) != BLOCK:
            raise ValueError(
                f"AES-128 key must be {BLOCK} bytes, got {len(key)}"
            )
        data = bytes(data)
        if len(data) % BLOCK:
            raise ValueError(
                f"data must be a multiple of {BLOCK} bytes"
            )
        if not data:
            return b""
        _OPS_ENCRYPT.inc()
        _BLOCKS.inc(len(data) // BLOCK)
        shards = self._shards(data)
        effective = min(self._workers, len(shards))
        self._effective_workers = effective
        _WORKERS_EFFECTIVE.set(effective)
        with trace_span("engine.encrypt_blocks",
                        backend=self._backend.name,
                        blocks=len(data) // BLOCK,
                        shards=len(shards), workers=effective):
            if len(shards) == 1:
                return self._encrypt_shard(key, data)
            with ThreadPoolExecutor(max_workers=effective) as pool:
                parts = pool.map(
                    lambda shard: self._encrypt_shard(key, shard),
                    shards,
                )
                return b"".join(parts)

    def _encrypt_shard(self, key: bytes, shard: bytes) -> bytes:
        """One backend call, timed into the shard-latency histogram."""
        start = time.perf_counter()
        out = self._backend.encrypt_blocks(key, shard)
        _SHARD_SECONDS.labels(backend=self._backend.name).observe(
            time.perf_counter() - start
        )
        return out

    def xcrypt_ecb(self, key: bytes, data: bytes) -> bytes:
        """ECB over the batch path (encrypt direction only).

        Decryption needs the inverse cipher, which stays on the
        straightforward model — every backend here is encrypt-only,
        like the paper's smallest device variant.
        """
        return self.encrypt_blocks(key, data)

    # ------------------------------------------------------------ CTR
    def keystream(self, key: bytes, nonce: bytes, blocks: int,
                  initial: int = 0) -> bytes:
        """CTR keystream: E(nonce || counter), 64-bit counter.

        Matches :func:`repro.aes.modes.ctr_keystream`: an 8-byte
        nonce, the counter big-endian in the low 8 bytes, starting at
        ``initial``.
        """
        nonce = bytes(nonce)
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes")
        if blocks < 0:
            raise ValueError("block count must be non-negative")
        if blocks == 0:
            return b""
        _OPS_KEYSTREAM.inc()
        counters = b"".join(
            nonce + counter.to_bytes(8, "big")
            for counter in range(initial, initial + blocks)
        )
        return self.encrypt_blocks(key, counters)

    def xcrypt_ctr(self, key: bytes, nonce: bytes,
                   data: bytes) -> bytes:
        """CTR encrypt/decrypt (symmetric): data xor keystream."""
        data = bytes(data)
        blocks = (len(data) + BLOCK - 1) // BLOCK
        stream = self.keystream(key, nonce, blocks)
        return _xor_bytes(data, stream[:len(data)])

    # ----------------------------------------------------------- GCTR
    def gctr(self, key: bytes, icb: bytes, data: bytes) -> bytes:
        """SP 800-38D GCTR: 32-bit increment of the low counter word.

        Bit-for-bit the serial ``_gctr`` of :mod:`repro.aes.gcm`,
        including the modulo-2^32 counter wrap — which the GCM entry
        points make unreachable by enforcing the plaintext length
        limit before any counter is consumed.
        """
        icb = bytes(icb)
        if len(icb) != BLOCK:
            raise ValueError(f"ICB must be {BLOCK} bytes")
        data = bytes(data)
        if not data:
            return b""
        _OPS_GCTR.inc()
        blocks = (len(data) + BLOCK - 1) // BLOCK
        head, start = icb[:12], int.from_bytes(icb[12:], "big")
        counters = b"".join(
            head + ((start + i) & 0xFFFFFFFF).to_bytes(4, "big")
            for i in range(blocks)
        )
        stream = self.encrypt_blocks(key, counters)
        return _xor_bytes(data, stream[:len(data)])

    # ------------------------------------------------------- sharding
    def _shards(self, data: bytes) -> List[bytes]:
        """Cut an aligned buffer into contiguous worker shards.

        The plan depends only on the buffer size and the configured
        worker count — never on timing — so output ordering (and thus
        the ciphertext) is deterministic.
        """
        blocks = len(data) // BLOCK
        if self._workers == 1 or blocks < 2 * MIN_SHARD_BLOCKS:
            return [data]
        shard_count = min(self._workers,
                          max(1, blocks // MIN_SHARD_BLOCKS))
        per_shard = -(-blocks // shard_count)  # ceil
        step = per_shard * BLOCK
        return [data[i:i + step] for i in range(0, len(data), step)]


def _xor_bytes(data: bytes, stream: bytes) -> bytes:
    """XOR two equal-length buffers via one bignum op (C speed)."""
    if len(data) != len(stream):
        raise ValueError("XOR operands must be the same length")
    value = int.from_bytes(data, "little") ^ \
        int.from_bytes(stream, "little")
    return value.to_bytes(len(data), "little")


_DEFAULT: Optional[BatchEngine] = None


def default_engine() -> BatchEngine:
    """The process-wide engine the mode layer routes bulk work through.

    Auto-selects the sliced backend (numpy-vectorized when available)
    with serial sharding — the fastest configuration that needs no
    tuning.  Callers wanting a specific backend or worker count build
    their own :class:`BatchEngine`.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = BatchEngine()
    return _DEFAULT


def forget_key(key: bytes) -> None:
    """Key-material hygiene: zeroize per-key caches for ``key``.

    Drops the expanded schedule from the default engine's
    :class:`~repro.perf.backends.RoundKeyCache` and the GHASH byte
    tables derived from the key's hash subkey — both are overwritten
    with zeros, not merely dropped.  The serve layer calls this on
    session teardown; callers with private engines wipe their own
    backend's cache.

    Best-effort by design: a malformed key has nothing cached, and
    hygiene on teardown must never raise into connection cleanup.
    """
    if _DEFAULT is not None:
        cache = getattr(_DEFAULT.backend, "cache", None)
        if cache is not None:
            cache.discard(key)
    try:
        from repro.aes import ghash as _ghash
        from repro.aes.cipher import AES128
        subkey = int.from_bytes(
            AES128(key).encrypt_block(bytes(BLOCK)), "big")
    except (TypeError, ValueError):
        return
    _ghash.forget(subkey)
