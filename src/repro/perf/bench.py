"""Software throughput benchmark: the persisted perf trajectory.

This is the harness behind ``repro-aes bench``.  It does three things,
in a fixed order:

1. **Equivalence gate** — every backend is cross-checked bit-for-bit
   against the straightforward model (:class:`repro.aes.cipher.AES128`)
   on random corpora across every batch primitive (ECB, CTR with a
   partial tail, GCTR across the 32-bit counter wrap) *before* any
   timing happens.  A fast wrong answer is worthless; a mismatch
   raises :class:`~repro.perf.engine.BackendMismatch` and the CLI
   exits non-zero, which is what the CI smoke job keys off.
2. **Pinned workload matrix** — backend x mode x message size, the
   software analogue of the area/throughput trade-off tables in the
   MixColumn-architectures literature.  Slow backends are measured on
   a capped prefix of the payload and scaled (per-block cost is size-
   independent for the streaming modes); the cap is recorded honestly
   in ``measured_blocks``.  A serial CBC row rides along as the
   chained-mode reference — the case where, as the paper argues, no
   batching helps and per-block latency is the whole story.
3. **Trajectory record** — the results land in
   ``BENCH_software_throughput.json`` (schema below) so subsequent
   PRs can assert no-regression against a persisted baseline instead
   of folklore.

JSON schema (``repro-aes/software-throughput/v6``)::

    {
      "schema": "repro-aes/software-throughput/v6",
      "created_unix": 1754000000,
      "quick": true,
      "workers": 1,
      "git_rev": "f5387c8..." | "unknown",
      "host": {"platform": ..., "python": ..., "machine": ...,
               "cpu_count": ..., "numpy": "2.4.6" | null,
               "openssl": "OpenSSL 3.x ..." | null},
      "equivalence": {"backends": [...], "primitives": [...],
                      "corpus_blocks": ..., "mismatches": 0,
                      "ghash_providers": [...],
                      "ghash_cases": ..., "ghash_mismatches": 0},
      "workloads": [
        {"backend": "sliced", "vectorized": true, "mode": "ctr",
         "chained": false, "size_bytes": 1048576, "blocks": 65536,
         "measured_blocks": 65536, "reps": 1, "seconds": ...,
         "blocks_per_s": ..., "mb_per_s": ...,
         "speedup_vs_baseline": ...}
      ],
      "ghash": {
        "providers": ["bitwise", "table", "vector"],
        "workloads": [
          {"provider": "table", "vectorized": false,
           "kind": "digest" | "gcm", "size_bytes": ...,
           "blocks": ..., "measured_blocks": ..., "reps": ...,
           "seconds": ..., "blocks_per_s": ..., "mb_per_s": ...,
           "speedup_vs_bitwise": ...}
        ]
      } | null,
      "obs": {"repro_engine_ops_total": {...}, ...},
      "serve": {"clients": 8, "requests_per_client": 16,
                "mode": "ctr", "payload_bytes": 16384,
                "requests": 128, "errors": 0, "seconds": ...,
                "requests_per_s": ..., "mb_per_s": ...,
                "latency": {"p50_s": ..., "p95_s": ...,
                            "p99_s": ..., "max_s": ...} | null
               } | null,
      "cluster": {"mode": "ctr", "payload_bytes": 16384,
                  "sessions": 8, "requests_per_session": 16,
                  "rows": [
                    {"workers": 1, "requests": ..., "errors": 0,
                     "seconds": ..., "requests_per_s": ...,
                     "mb_per_s": ..., "speedup_vs_single": 1.0}
                  ]} | null
    }

v2 added ``git_rev`` (code-revision provenance, best-effort) and the
``obs`` section (a :mod:`repro.obs.metrics` snapshot of the engine
instrumentation accumulated during the run).  v3 added the ``serve``
section: a loopback run of the :mod:`repro.serve` service (in-process
server, :func:`repro.serve.client.run_load` clients) recording what
the *whole stack* — framing, asyncio scheduling, queueing, crypto —
achieves in requests/sec, next to the raw engine rates above it.  v4
added the ``ghash`` section (provider-by-provider GHASH digest and
end-to-end GCM rates, with ``bitwise`` as the denominator), the
GHASH rows of the equivalence gate, and the ``openssl`` host field
recording whether the EVP ceiling backend was available.  v5 added
the serve row's ``latency`` section: client-observed nearest-rank
p50/p95/p99/max request seconds, so a trajectory of bench files
tracks tail latency next to throughput.  v6 added the ``cluster``
section: the same closed-loop load driven through the
:mod:`repro.serve.cluster` gateway against a multi-process worker
pool, one row per worker count, with ``speedup_vs_single`` recording
how requests/s scales as workers are added (on a single-CPU host the
honest answer is "barely" — the row exists to record that, not to
flatter it).  :func:`load_report` reads v1 through v6, normalizing
older shapes (``serve`` / ``ghash`` / ``latency`` / ``cluster``
become ``None`` where a section predates the schema) — so downstream
comparisons never branch on the version.
"""

from __future__ import annotations

import json
import os
import platform
import random
import subprocess
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.aes.cipher import AES128
from repro.aes.vectors import SP800_38A_ECB128_KEY
from repro.perf.backends import (
    Backend,
    available_backends,
    numpy_version,
)
from repro.obs.metrics import global_registry
from repro.obs.tracing import trace_span
from repro.perf.engine import BackendMismatch, BatchEngine

BLOCK = 16

SCHEMA_V1 = "repro-aes/software-throughput/v1"
SCHEMA_V2 = "repro-aes/software-throughput/v2"
SCHEMA_V3 = "repro-aes/software-throughput/v3"
SCHEMA_V4 = "repro-aes/software-throughput/v4"
SCHEMA_V5 = "repro-aes/software-throughput/v5"
SCHEMA = "repro-aes/software-throughput/v6"

DEFAULT_OUT = "BENCH_software_throughput.json"

#: The pinned message sizes (bytes) of the full and quick matrices.
FULL_SIZES = (16384, 262144, 1048576)
QUICK_SIZES = (16384, 1048576)

#: Parallelizable modes every backend is timed on.
BATCH_MODES = ("ecb", "ctr")

#: Measurement caps, in blocks, per backend name.  The baseline runs
#: ~1.5k blocks/s in CPython, so timing a full 1 MiB through it would
#: dominate the whole bench; a capped prefix gives the same per-block
#: cost.  ``measured_blocks`` records what actually ran.
_MEASURE_CAPS = {"baseline": 2048}
_MEASURE_CAPS_QUICK = {"baseline": 512}

#: Same discipline for the GHASH section: the bitwise provider runs
#: ~50k blocks/s, so it is timed on a capped prefix and scaled.
_GHASH_CAPS = {"bitwise": 4096}
_GHASH_CAPS_QUICK = {"bitwise": 1024}

#: Seed for every corpus/payload this harness generates — pinned so
#: the trajectory compares like against like across PRs.
_SEED = 2003


# ------------------------------------------------------- golden model
def _serial_ecb(key: bytes, data: bytes) -> bytes:
    aes = AES128(key)
    return b"".join(aes.encrypt_block(data[i:i + BLOCK])
                    for i in range(0, len(data), BLOCK))


def _serial_ctr(key: bytes, nonce: bytes, data: bytes) -> bytes:
    aes = AES128(key)
    out = bytearray()
    for index in range(0, len(data), BLOCK):
        counter = (index // BLOCK).to_bytes(8, "big")
        stream = aes.encrypt_block(nonce + counter)
        chunk = data[index:index + BLOCK]
        out.extend(c ^ s for c, s in zip(chunk, stream))
    return bytes(out)


def _serial_gctr(key: bytes, icb: bytes, data: bytes) -> bytes:
    aes = AES128(key)
    head, start = icb[:12], int.from_bytes(icb[12:], "big")
    out = bytearray()
    for index in range(0, len(data), BLOCK):
        counter = (start + index // BLOCK) & 0xFFFFFFFF
        stream = aes.encrypt_block(head + counter.to_bytes(4, "big"))
        chunk = data[index:index + BLOCK]
        out.extend(c ^ s for c, s in zip(chunk, stream))
    return bytes(out)


# --------------------------------------------------- equivalence gate
def cross_check(backends: Optional[Dict[str, Backend]] = None,
                corpus_blocks: int = 48,
                seed: int = _SEED) -> Dict[str, object]:
    """Verify every backend against the straightforward model.

    Raises :class:`BackendMismatch` naming the first divergent
    (backend, primitive) pair; returns the summary recorded in the
    bench JSON when everything agrees.
    """
    if backends is None:
        backends = available_backends()
    rng = random.Random(seed)
    keys = [SP800_38A_ECB128_KEY,
            bytes(rng.randrange(256) for _ in range(16))]
    aligned = rng.randbytes(corpus_blocks * BLOCK)
    ragged = rng.randbytes(corpus_blocks * BLOCK - 7)
    nonce = rng.randbytes(8)
    # An ICB 2 blocks short of the 32-bit wrap: the corpus crosses it.
    icb = rng.randbytes(12) + (0xFFFFFFFE).to_bytes(4, "big")

    primitives: Dict[
        str, Callable[[BatchEngine, bytes], Sequence[bytes]]
    ] = {
        "ecb": lambda eng, key: (eng.xcrypt_ecb(key, aligned),
                                 _serial_ecb(key, aligned)),
        "ctr": lambda eng, key: (eng.xcrypt_ctr(key, nonce, ragged),
                                 _serial_ctr(key, nonce, ragged)),
        "gctr": lambda eng, key: (eng.gctr(key, icb, ragged),
                                  _serial_gctr(key, icb, ragged)),
    }
    for name, backend in sorted(backends.items()):
        engine = BatchEngine(backend)
        for primitive, run in primitives.items():
            for key in keys:
                got, want = run(engine, key)
                if got != want:
                    raise BackendMismatch(
                        f"backend {name!r} diverges from the "
                        f"straightforward model on {primitive} "
                        f"(corpus {corpus_blocks} blocks, "
                        f"seed {seed})"
                    )
    return {
        "backends": sorted(backends),
        "primitives": sorted(primitives),
        "corpus_blocks": corpus_blocks,
        "keys": len(keys),
        "mismatches": 0,
    }


def cross_check_ghash(providers: Optional[Dict[str, object]] = None,
                      seed: int = _SEED) -> Dict[str, object]:
    """Verify every GHASH provider against the golden ``_ghash``.

    The corpus sweeps message lengths 0..3 blocks ± 1 byte, a
    multi-part split (GCM's AAD/ciphertext/lengths layout), and a
    buffer long enough to cross the vector provider's lane
    threshold.  Raises :class:`BackendMismatch` on the first
    divergence; returns the summary merged into the bench JSON's
    ``equivalence`` section.
    """
    from repro.aes import ghash as ghash_mod
    from repro.aes.gcm import _ghash as golden

    if providers is None:
        providers = dict(ghash_mod.available_providers())
    rng = random.Random(seed)
    subkeys = [rng.getrandbits(128) for _ in range(2)]
    lengths = sorted({
        max(0, n * BLOCK + d)
        for n in range(4) for d in (-1, 0, 1)
    } | {2 * ghash_mod.VECTOR_LANES * BLOCK + 5})
    cases = 0
    for subkey in subkeys:
        for length in lengths:
            data = rng.randbytes(length)
            want = golden(
                data=data + bytes((-length) % BLOCK), h=subkey)
            split = rng.randrange(length + 1)
            layouts = [(data,), (data[:split], data[split:])]
            for parts in layouts:
                padded = b"".join(
                    p + bytes((-len(p)) % BLOCK) for p in parts)
                expect = golden(subkey, padded) \
                    if len(parts) > 1 else want
                for name, provider in sorted(providers.items()):
                    cases += 1
                    got = provider.digest(subkey, parts)
                    if got != expect:
                        raise BackendMismatch(
                            f"ghash provider {name!r} diverges from "
                            f"the golden _ghash on a {length}-byte "
                            f"message split {tuple(len(p) for p in parts)} "
                            f"(seed {seed})"
                        )
    return {
        "ghash_providers": sorted(providers),
        "ghash_cases": cases,
        "ghash_mismatches": 0,
    }


# ------------------------------------------------------------- timing
def host_fingerprint() -> Dict[str, object]:
    """Where these numbers were measured (trajectories only compare
    within a fingerprint; CI hosts vary run to run)."""
    from repro.perf.evp import openssl_version
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
        "numpy": numpy_version(),
        "openssl": openssl_version(),
    }


def git_revision(root: Optional[Path] = None) -> str:
    """The commit hash these numbers were measured at, best-effort.

    Returns ``"unknown"`` when git is absent, the tree is not a
    repository, or anything else goes wrong — provenance must never
    fail a bench run.
    """
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True,
            timeout=10, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = proc.stdout.strip()
    if proc.returncode == 0 and rev:
        return rev
    return "unknown"


# ----------------------------------------------------- serve scenario
def serve_scenario(quick: bool = False,
                   clients: Optional[int] = None,
                   requests: Optional[int] = None,
                   payload_bytes: Optional[int] = None
                   ) -> Dict[str, object]:
    """Loopback serve run: in-process server, closed-loop clients.

    The workload matrix above times the engine primitives alone; this
    scenario times the whole service stack — frame codec, asyncio
    scheduling, the bounded queue, executor hand-off and the crypto —
    as a client fleet sees it.  Runs entirely on loopback inside one
    process (no subprocess, no fixed port), so it is as pinned as the
    matrix: same seed, same payload discipline.
    """
    import asyncio

    from repro.serve.client import run_load
    from repro.serve.protocol import Mode
    from repro.serve.server import CryptoServer, ServeConfig

    if clients is None:
        clients = 4 if quick else 8
    if requests is None:
        requests = 8 if quick else 16
    if payload_bytes is None:
        payload_bytes = 4096 if quick else 16384
    session_key = random.Random(_SEED).randbytes(16)

    async def _run() -> Dict[str, object]:
        server = CryptoServer(ServeConfig(port=0))
        await server.start()
        try:
            host, port = server.address
            report = await run_load(
                host, port, session_key,
                clients=clients, requests=requests,
                mode=Mode.CTR, payload_bytes=payload_bytes,
                seed=_SEED,
            )
        finally:
            await server.stop()
        return {
            "clients": clients,
            "requests_per_client": requests,
            "mode": report.mode,
            "payload_bytes": payload_bytes,
            "requests": report.requests,
            "errors": report.errors,
            "seconds": round(report.seconds, 6),
            "requests_per_s": round(report.requests_per_s, 1),
            "mb_per_s": round(report.mb_per_s, 3),
            # v5: client-observed latency percentiles next to the
            # rates (None when no request completed a round-trip).
            "latency": {
                key: round(value, 6)
                for key, value in report.latency.items()
            } or None,
        }

    with trace_span("bench.serve", clients=clients,
                    requests=requests):
        return asyncio.run(_run())


# --------------------------------------------------- cluster scenario
def cluster_scenario(quick: bool = False,
                     worker_counts: Optional[Sequence[int]] = None,
                     sessions: Optional[int] = None,
                     requests: Optional[int] = None,
                     payload_bytes: Optional[int] = None
                     ) -> Dict[str, object]:
    """Gateway-routed cluster run: requests/s versus worker count.

    The serve scenario above times one server process; this one
    stands up the whole :mod:`repro.serve.cluster` topology — a
    supervisor spawning N worker processes plus the session-sharded
    gateway — and drives :func:`repro.serve.client.run_session_load`
    through the gateway, once per worker count.  Each row records the
    closed-loop rate and ``speedup_vs_single`` against the 1-worker
    row, which is the scaling claim the topology exists to make.  On
    a single-CPU host the speedup saturates near 1.0x; the row
    records whatever the host actually delivers (``host.cpu_count``
    above says why).
    """
    import asyncio

    from repro.serve.client import run_session_load
    from repro.serve.cluster import Cluster, ClusterConfig
    from repro.serve.protocol import Mode

    if worker_counts is None:
        worker_counts = (1, 2) if quick else (1, 2, 4)
    counts = tuple(sorted(set(int(w) for w in worker_counts)))
    if not counts or any(w < 1 for w in counts):
        raise ValueError("worker counts must be positive integers")
    if sessions is None:
        sessions = 4 if quick else 8
    if requests is None:
        requests = 8 if quick else 16
    if payload_bytes is None:
        payload_bytes = 4096 if quick else 16384
    base_key = random.Random(_SEED).randbytes(16)

    async def _run(workers: int) -> Dict[str, object]:
        cluster = Cluster(ClusterConfig(workers=workers,
                                        gateway_port=0))
        await cluster.start()
        try:
            host, port = cluster.address
            report = await run_session_load(
                host, port, base_key,
                sessions=sessions, requests=requests,
                mode=Mode.CTR, payload_bytes=payload_bytes,
                seed=_SEED,
            )
        finally:
            await cluster.stop()
        return {
            "workers": workers,
            "requests": report.requests,
            "errors": report.errors,
            "seconds": round(report.seconds, 6),
            "requests_per_s": round(report.requests_per_s, 1),
            "mb_per_s": round(report.mb_per_s, 3),
        }

    rows: List[Dict[str, object]] = []
    for workers in counts:
        with trace_span("bench.cluster", workers=workers,
                        sessions=sessions):
            rows.append(asyncio.run(_run(workers)))

    single = (float(rows[0]["requests_per_s"])  # type: ignore[arg-type]
              if rows[0]["workers"] == 1 else None)
    for row in rows:
        rate = float(row["requests_per_s"])  # type: ignore[arg-type]
        row["speedup_vs_single"] = (
            round(rate / single, 2) if single else None
        )
    return {
        "mode": "ctr",
        "payload_bytes": payload_bytes,
        "sessions": sessions,
        "requests_per_session": requests,
        "rows": rows,
    }


def ghash_section(quick: bool = False,
                  sizes: Optional[Sequence[int]] = None,
                  reps: Optional[int] = None,
                  provider_names: Optional[Sequence[str]] = None
                  ) -> Dict[str, object]:
    """Time every GHASH provider: raw digests and end-to-end GCM.

    Two row kinds per (provider, size): ``digest`` isolates the
    GF(2^128) fold itself; ``gcm`` runs :func:`repro.aes.gcm.
    gcm_encrypt` with the process default provider pinned to the row's
    provider, so the row shows what the mode users actually feel.
    ``bitwise`` — the golden model's cost — is the denominator of
    ``speedup_vs_bitwise`` and is measured on a capped prefix like
    the baseline cipher backend.
    """
    from repro.aes import ghash as ghash_mod
    from repro.aes.gcm import gcm_encrypt

    providers = dict(ghash_mod.available_providers())
    if provider_names:
        unknown = sorted(set(provider_names) - set(providers))
        if unknown:
            raise ValueError(
                f"unknown ghash providers: {', '.join(unknown)}")
        providers = {name: providers[name]
                     for name in provider_names}
    if "bitwise" not in providers:
        providers["bitwise"] = \
            ghash_mod.available_providers()["bitwise"]

    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    sizes = sorted(set(int(s) for s in sizes))
    if reps is None:
        reps = 1 if quick else 3
    caps = _GHASH_CAPS_QUICK if quick else _GHASH_CAPS

    rng = random.Random(_SEED)
    subkey = rng.getrandbits(128)
    key = SP800_38A_ECB128_KEY
    iv = rng.randbytes(12)
    payload = rng.randbytes(max(sizes))

    rows: List[Dict[str, object]] = []
    previous = ghash_mod.default_provider()
    try:
        for name in sorted(providers):
            provider = providers[name]
            cap = caps.get(name)
            for size in sizes:
                blocks = size // BLOCK
                measured = blocks if cap is None \
                    else min(blocks, cap)
                piece = payload[:measured * BLOCK]
                for kind in ("digest", "gcm"):
                    if kind == "digest":
                        fn: Callable[[], object] = (
                            lambda p=piece, prov=provider:
                            prov.digest(subkey, (p,)))
                    else:
                        ghash_mod.set_default_provider(name)
                        fn = (lambda p=piece:
                              gcm_encrypt(key, iv, p))
                    with trace_span("bench.ghash", provider=name,
                                    kind=kind, size_bytes=size):
                        seconds = _measure(fn, reps)
                    per_rep = seconds / reps if reps else 0.0
                    rate = (measured / per_rep) if per_rep > 0 \
                        else 0.0
                    rows.append({
                        "provider": name,
                        "vectorized": provider.vectorized,
                        "kind": kind,
                        "size_bytes": size,
                        "blocks": blocks,
                        "measured_blocks": measured,
                        "reps": reps,
                        "seconds": round(seconds, 6),
                        "blocks_per_s": round(rate, 1),
                        "mb_per_s": round(
                            rate * BLOCK / (1024 * 1024), 3),
                    })
    finally:
        ghash_mod.set_default_provider(previous.name)

    base: Dict[object, float] = {}
    for row in rows:
        if row["provider"] == "bitwise":
            base[(row["kind"], row["size_bytes"])] = \
                float(row["blocks_per_s"])  # type: ignore[arg-type]
    for row in rows:
        denom = base.get((row["kind"], row["size_bytes"]))
        rate = float(row["blocks_per_s"])  # type: ignore[arg-type]
        row["speedup_vs_bitwise"] = (
            round(rate / denom, 2) if denom else None
        )
    return {"providers": sorted(providers), "workloads": rows}


def _measure(fn: Callable[[], object], reps: int) -> float:
    fn()  # warm-up: table/array builds, cache fills
    start = time.perf_counter()
    for _ in range(reps):
        fn()
    return time.perf_counter() - start


def run_bench(quick: bool = False,
              sizes: Optional[Sequence[int]] = None,
              reps: Optional[int] = None,
              backend_names: Optional[Sequence[str]] = None,
              workers: int = 1,
              corpus_blocks: int = 48,
              serve: bool = True,
              ghash: bool = True,
              ghash_names: Optional[Sequence[str]] = None,
              cluster: bool = True
              ) -> Dict[str, object]:
    """Equivalence-gate then time the pinned workload matrix.

    Returns the full report dict (the JSON payload).  ``sizes`` and
    ``reps`` override the pinned matrix for smoke tests; the defaults
    are the persisted-trajectory configuration.  ``ghash=False``
    skips the GHASH section (``"ghash": null``); ``ghash_names``
    restricts it to specific providers (``bitwise`` always rides
    along as the denominator).  ``cluster=False`` skips the
    multi-process cluster scaling section (``"cluster": null``) —
    useful where spawning worker processes is unwelcome (sandboxes,
    coverage runs).
    """
    all_backends = available_backends()
    if backend_names:
        unknown = sorted(set(backend_names) - set(all_backends))
        if unknown:
            raise ValueError(f"unknown backends: {', '.join(unknown)}")
        backends = {name: all_backends[name]
                    for name in backend_names}
    else:
        backends = all_backends
    if "baseline" not in backends:
        # Speedups are *defined* relative to the straightforward
        # model; it always runs.
        backends["baseline"] = all_backends["baseline"]

    with trace_span("bench.cross_check",
                    backends=",".join(sorted(backends))):
        equivalence = cross_check(backends,
                                  corpus_blocks=corpus_blocks)
        equivalence.update(cross_check_ghash())

    if sizes is None:
        sizes = QUICK_SIZES if quick else FULL_SIZES
    sizes = sorted(set(int(s) for s in sizes))
    if any(s < BLOCK or s % BLOCK for s in sizes):
        raise ValueError(
            f"workload sizes must be positive multiples of {BLOCK}"
        )
    if reps is None:
        reps = 1 if quick else 3
    caps = _MEASURE_CAPS_QUICK if quick else _MEASURE_CAPS

    rng = random.Random(_SEED)
    key = SP800_38A_ECB128_KEY
    nonce = rng.randbytes(8)
    iv = rng.randbytes(16)
    payload = rng.randbytes(max(sizes))

    rows: List[Dict[str, object]] = []
    for name in sorted(backends):
        engine = BatchEngine(backends[name], workers=workers)
        cap = caps.get(name)
        for mode in BATCH_MODES:
            for size in sizes:
                blocks = size // BLOCK
                measured = blocks if cap is None else min(blocks, cap)
                piece = payload[:measured * BLOCK]
                if mode == "ecb":
                    fn = lambda p=piece: engine.xcrypt_ecb(key, p)
                else:
                    fn = lambda p=piece: engine.xcrypt_ctr(
                        key, nonce, p)
                with trace_span("bench.workload", backend=name,
                                mode=mode, size_bytes=size):
                    seconds = _measure(fn, reps)
                rows.append(_row(name, backends[name], mode, False,
                                 size, blocks, measured, reps,
                                 seconds))

    # Serial chained-mode reference: CBC through the straightforward
    # model.  No backend can batch it — that is the point.
    from repro.aes.modes import cbc_encrypt
    cbc_size = min(sizes)
    cbc_blocks = cbc_size // BLOCK
    cap = caps.get("baseline")
    measured = cbc_blocks if cap is None else min(cbc_blocks, cap)
    piece = payload[:measured * BLOCK]
    with trace_span("bench.workload", backend="baseline",
                    mode="cbc", size_bytes=cbc_size):
        seconds = _measure(lambda: cbc_encrypt(key, iv, piece), reps)
    rows.append(_row("baseline", backends["baseline"], "cbc", True,
                     cbc_size, cbc_blocks, measured, reps, seconds))

    _attach_speedups(rows)
    ghash_rows = ghash_section(
        quick=quick, sizes=sizes, reps=reps,
        provider_names=ghash_names,
    ) if ghash else None
    serve_row = serve_scenario(quick=quick) if serve else None
    cluster_section = cluster_scenario(quick=quick) if cluster \
        else None
    return {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "quick": bool(quick),
        "workers": int(workers),
        "git_rev": git_revision(),
        "host": host_fingerprint(),
        "equivalence": equivalence,
        "workloads": rows,
        "ghash": ghash_rows,
        "obs": global_registry().snapshot(prefix="repro_engine_"),
        "serve": serve_row,
        "cluster": cluster_section,
    }


def _row(name: str, backend: Backend, mode: str, chained: bool,
         size: int, blocks: int, measured: int, reps: int,
         seconds: float) -> Dict[str, object]:
    per_rep = seconds / reps if reps else 0.0
    blocks_per_s = (measured / per_rep) if per_rep > 0 else 0.0
    return {
        "backend": name,
        "vectorized": backend.vectorized,
        "mode": mode,
        "chained": chained,
        "size_bytes": size,
        "blocks": blocks,
        "measured_blocks": measured,
        "reps": reps,
        "seconds": round(seconds, 6),
        "blocks_per_s": round(blocks_per_s, 1),
        "mb_per_s": round(blocks_per_s * BLOCK / (1024 * 1024), 3),
    }


def _attach_speedups(rows: List[Dict[str, object]]) -> None:
    baseline: Dict[object, float] = {}
    for row in rows:
        if row["backend"] == "baseline":
            baseline[(row["mode"], row["size_bytes"])] = \
                float(row["blocks_per_s"])  # type: ignore[arg-type]
    for row in rows:
        base = baseline.get((row["mode"], row["size_bytes"]))
        rate = float(row["blocks_per_s"])  # type: ignore[arg-type]
        row["speedup_vs_baseline"] = (
            round(rate / base, 2) if base else None
        )


def write_report(report: Dict[str, object], out: Path) -> Path:
    """Persist the trajectory JSON (pretty-printed, trailing newline)."""
    out = Path(out)
    out.write_text(json.dumps(report, indent=2, sort_keys=True)
                   + "\n")
    return out


def load_report(path: Path) -> Dict[str, object]:
    """Read a persisted trajectory file, v1 through v6.

    Older files are normalized to the v6 shape: v1 gains
    ``git_rev="unknown"`` and an empty ``obs``; v1 and v2 gain
    ``serve=None``; v1 through v3 gain ``ghash=None``; v1 through v4
    serve sections gain ``latency=None``; v1 through v5 gain
    ``cluster=None`` (each section predates those schemas) — so
    downstream comparisons never need to branch on the schema.  An
    unrecognized schema raises ``ValueError``.
    """
    report = json.loads(Path(path).read_text())
    schema = report.get("schema")
    if schema == SCHEMA_V1:
        report.setdefault("git_rev", "unknown")
        report.setdefault("obs", {})
        report.setdefault("serve", None)
        report.setdefault("ghash", None)
    elif schema == SCHEMA_V2:
        report.setdefault("serve", None)
        report.setdefault("ghash", None)
    elif schema == SCHEMA_V3:
        report.setdefault("ghash", None)
    elif schema not in (SCHEMA_V4, SCHEMA_V5, SCHEMA):
        raise ValueError(
            f"unrecognized bench schema {schema!r} in {path} "
            f"(expected {SCHEMA_V1!r}, {SCHEMA_V2!r}, {SCHEMA_V3!r}, "
            f"{SCHEMA_V4!r}, {SCHEMA_V5!r} or {SCHEMA!r})"
        )
    serve = report.get("serve")
    if isinstance(serve, dict):
        # v1–v4 serve rows predate the latency-percentile section.
        serve.setdefault("latency", None)
    # v1–v5 predate the cluster scaling section.
    report.setdefault("cluster", None)
    return report


def render_report(report: Dict[str, object]) -> str:
    """Human-readable table of one bench run."""
    lines = []
    host = report["host"]
    numpy_note = host["numpy"] or "absent"  # type: ignore[index]
    rev = str(report.get("git_rev", "unknown"))[:12]
    lines.append(
        f"software throughput "
        f"({'quick' if report['quick'] else 'full'} matrix, "
        f"workers={report['workers']}, numpy={numpy_note}, "
        f"rev={rev})"
    )
    header = (f"{'backend':<10} {'mode':<5} {'size':>9} "
              f"{'blocks/s':>12} {'MB/s':>9} {'vs baseline':>12}")
    lines.append(header)
    lines.append("-" * len(header))
    for row in report["workloads"]:  # type: ignore[union-attr]
        speedup = row["speedup_vs_baseline"]
        speedup_text = f"{speedup:.2f}x" if speedup else "-"
        tag = "*" if row["vectorized"] else " "
        lines.append(
            f"{row['backend']:<10}{tag}{row['mode']:<5} "
            f"{_human_size(row['size_bytes']):>9} "
            f"{row['blocks_per_s']:>12,.0f} "
            f"{row['mb_per_s']:>9.2f} {speedup_text:>12}"
        )
    ghash = report.get("ghash")
    if ghash:
        lines.append("ghash (provider, digest | end-to-end gcm):")
        by_key: Dict[object, Dict[str, object]] = {
            (row["provider"], row["kind"], row["size_bytes"]): row
            for row in ghash["workloads"]  # type: ignore[index]
        }
        providers = ghash["providers"]  # type: ignore[index]
        ghash_rows = ghash["workloads"]  # type: ignore[index]
        sizes_seen = sorted({row["size_bytes"]
                             for row in ghash_rows})
        for provider in providers:  # type: ignore[union-attr]
            for size in sizes_seen:
                digest = by_key.get((provider, "digest", size))
                gcm = by_key.get((provider, "gcm", size))
                if digest is None or gcm is None:
                    continue
                speedup = gcm["speedup_vs_bitwise"]
                speedup_text = (f"{speedup:.2f}x"
                                if speedup else "-")
                tag = "*" if digest["vectorized"] else " "
                lines.append(
                    f"  {provider:<8}{tag}{_human_size(size):>9} "
                    f"{digest['mb_per_s']:>9.2f} MB/s | "
                    f"gcm {gcm['mb_per_s']:>9.2f} MB/s "
                    f"{speedup_text:>9} vs bitwise"
                )
    eq: Dict[str, object] = report["equivalence"]  # type: ignore[assignment]
    backends_n = len(eq["backends"])  # type: ignore[arg-type]
    primitives_n = len(eq["primitives"])  # type: ignore[arg-type]
    lines.append(
        f"equivalence: {backends_n} backend(s) "
        f"x {primitives_n} primitive(s) "
        f"x {eq['keys']} key(s), "
        f"{eq['mismatches']} mismatch(es)"
    )
    if "ghash_providers" in eq:
        ghash_providers = eq["ghash_providers"]
        assert isinstance(ghash_providers, list)
        lines.append(
            f"ghash equivalence: "
            f"{len(ghash_providers)} provider(s), "
            f"{eq['ghash_cases']} case(s), "
            f"{eq['ghash_mismatches']} mismatch(es)"
        )
    serve = report.get("serve")
    if serve:
        lines.append(
            f"serve: {serve['clients']} client(s) x "  # type: ignore[index]
            f"{serve['requests_per_client']} req, "  # type: ignore[index]
            f"{serve['mode']} "  # type: ignore[index]
            f"{_human_size(serve['payload_bytes'])}: "  # type: ignore[index]
            f"{serve['requests_per_s']:,.0f} req/s, "  # type: ignore[index]
            f"{serve['mb_per_s']:.2f} MB/s, "  # type: ignore[index]
            f"{serve['errors']} error(s)"  # type: ignore[index]
        )
        latency = serve.get("latency")  # type: ignore[union-attr]
        if latency:
            lines.append(
                "serve latency: "
                + ", ".join(
                    f"{key[:-2]}={latency[key] * 1000:.2f}ms"
                    for key in ("p50_s", "p95_s", "p99_s", "max_s")
                    if latency.get(key) is not None
                )
            )
    cluster = report.get("cluster")
    if cluster:
        sessions = cluster["sessions"]  # type: ignore[index]
        per_sess = cluster["requests_per_session"]  # type: ignore[index]
        mode_name = cluster["mode"]  # type: ignore[index]
        payload = cluster["payload_bytes"]  # type: ignore[index]
        lines.append(
            f"cluster: {sessions} session(s) x {per_sess} req, "
            f"{mode_name} {_human_size(payload)}:"
        )
        for row in cluster["rows"]:  # type: ignore[index]
            speedup = row["speedup_vs_single"]
            speedup_text = f"{speedup:.2f}x" if speedup else "-"
            lines.append(
                f"  {row['workers']} worker(s): "
                f"{row['requests_per_s']:>8,.0f} req/s, "
                f"{row['mb_per_s']:.2f} MB/s, "
                f"{row['errors']} error(s), "
                f"{speedup_text} vs single"
            )
    lines.append("(* = numpy-vectorized; baseline rows may be "
                 "measured on a capped prefix, see measured_blocks)")
    return "\n".join(lines)


def _human_size(size: int) -> str:
    if size % (1024 * 1024) == 0:
        return f"{size // (1024 * 1024)} MiB"
    if size % 1024 == 0:
        return f"{size // 1024} KiB"
    return f"{size} B"


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    """Tiny direct entry point (``python -m repro.perf.bench``)."""
    report = run_bench(quick="--quick" in (argv or sys.argv[1:]))
    write_report(report, Path(DEFAULT_OUT))
    print(render_report(report))
    return 0
