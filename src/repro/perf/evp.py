"""OpenSSL EVP backend over ctypes: the hardware-AES ceiling.

The RTOS multi-FPGA line of work treats AES engines as swappable
units behind one fabric; the software analogue is registering the
platform's best engine — OpenSSL's EVP AES-128-ECB, which runs on
AES-NI where the CPU has it — behind the same :class:`Backend`
interface the pure-Python backends implement.  The bench equivalence
gate then cross-checks it bit-for-bit like any other backend, and
its rows show how far the Python ladder is from the hardware ceiling.

Everything is guarded: no libcrypto, no exported symbols, or a
failed FIPS-197 self-test simply means :func:`have_evp` is false and
the backend never registers.  No new Python dependencies — ctypes
only.
"""

from __future__ import annotations

import ctypes
import ctypes.util
import threading
from typing import Optional, Tuple

from repro.perf.backends import Backend

_BLOCK = 16

#: FIPS-197 Appendix C.1 known answer, checked once at load: a
#: libcrypto that cannot reproduce it is not used.
_KAT_KEY = bytes(range(16))
_KAT_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_KAT_CIPHERTEXT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

_CANDIDATES: Tuple[Optional[str], ...] = (
    ctypes.util.find_library("crypto"),
    "libcrypto.so.3",
    "libcrypto.so.1.1",
    "libcrypto.so",
    "libcrypto.dylib",
    "libcrypto-3-x64.dll",
)


class _Lib:
    """Resolved libcrypto handle plus the EVP entry points we use."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self.new = lib.EVP_CIPHER_CTX_new
        self.new.restype = ctypes.c_void_p
        self.new.argtypes = ()
        self.free = lib.EVP_CIPHER_CTX_free
        self.free.restype = None
        self.free.argtypes = (ctypes.c_void_p,)
        self.aes_128_ecb = lib.EVP_aes_128_ecb
        self.aes_128_ecb.restype = ctypes.c_void_p
        self.aes_128_ecb.argtypes = ()
        self.init = lib.EVP_EncryptInit_ex
        self.init.restype = ctypes.c_int
        self.init.argtypes = (
            ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
            ctypes.c_char_p, ctypes.c_char_p,
        )
        self.set_padding = lib.EVP_CIPHER_CTX_set_padding
        self.set_padding.restype = ctypes.c_int
        self.set_padding.argtypes = (ctypes.c_void_p, ctypes.c_int)
        self.update = lib.EVP_EncryptUpdate
        self.update.restype = ctypes.c_int
        self.update.argtypes = (
            ctypes.c_void_p, ctypes.c_char_p,
            ctypes.POINTER(ctypes.c_int), ctypes.c_char_p,
            ctypes.c_int,
        )
        version = getattr(lib, "OpenSSL_version", None)
        if version is not None:
            version.restype = ctypes.c_char_p
            version.argtypes = (ctypes.c_int,)
            self.version = version(0).decode("ascii", "replace")
        else:
            self.version = "OpenSSL (version symbol unavailable)"

    def encrypt_ecb(self, key: bytes, data: bytes) -> bytes:
        """Raw AES-128-ECB over ``data`` (padding disabled).

        A fresh context per call keeps the backend thread-safe under
        the batch engine's executor with zero shared state.
        """
        ctx = self.new()
        if not ctx:
            raise RuntimeError("EVP_CIPHER_CTX_new failed")
        try:
            if self.init(ctx, self.aes_128_ecb(), None, key,
                         None) != 1:
                raise RuntimeError("EVP_EncryptInit_ex failed")
            if self.set_padding(ctx, 0) != 1:
                raise RuntimeError(
                    "EVP_CIPHER_CTX_set_padding failed")
            out = ctypes.create_string_buffer(len(data))
            written = ctypes.c_int(0)
            if self.update(ctx, out, ctypes.byref(written), data,
                           len(data)) != 1:
                raise RuntimeError("EVP_EncryptUpdate failed")
            if written.value != len(data):
                raise RuntimeError(
                    f"EVP_EncryptUpdate wrote {written.value} of "
                    f"{len(data)} bytes")
            return out.raw
        finally:
            self.free(ctx)


_LIB: Optional[_Lib] = None
_PROBED = False
_PROBE_LOCK = threading.Lock()


def _probe() -> Optional[_Lib]:
    global _LIB, _PROBED
    if _PROBED:
        return _LIB
    with _PROBE_LOCK:
        if _PROBED:
            return _LIB
        for name in _CANDIDATES:
            if not name:
                continue
            try:
                lib = _Lib(ctypes.CDLL(name))
            except (OSError, AttributeError):
                continue
            try:
                answer = lib.encrypt_ecb(_KAT_KEY, _KAT_PLAINTEXT)
            except RuntimeError:
                continue
            if answer == _KAT_CIPHERTEXT:
                _LIB = lib
                break
        _PROBED = True
    return _LIB


def have_evp() -> bool:
    """Whether a self-test-passing libcrypto was found."""
    return _probe() is not None


def openssl_version() -> Optional[str]:
    """The loaded library's version banner, or None when absent."""
    lib = _probe()
    return lib.version if lib is not None else None


class EvpBackend(Backend):
    """AES-128-ECB through OpenSSL EVP — the platform ceiling."""

    name = "evp"
    vectorized = True

    def encrypt_blocks(self, key: bytes, data: bytes) -> bytes:
        if len(key) != 16:
            raise ValueError("AES-128 key must be 16 bytes")
        if len(data) % _BLOCK:
            raise ValueError(
                f"data length {len(data)} is not a multiple of "
                f"{_BLOCK}")
        lib = _probe()
        if lib is None:
            raise RuntimeError(
                "OpenSSL EVP is unavailable in this environment")
        if not data:
            return b""
        return lib.encrypt_ecb(key, data)


__all__ = ["EvpBackend", "have_evp", "openssl_version"]
