"""Precomputed-key-schedule core: the paper's design choice, inverted.

The paper's IP generates round keys on the fly to avoid storing them.
This module builds the alternative the ablation study needs: a core
that expands the key **once per key load** into a round-key store and
reads it back during rounds.  Consequences, all measurable here:

- encryption pays a key-change cost it didn't have (the expansion
  pass), decryption pays the same cost it already paid;
- the store itself costs memory: 4·(Nr+1) words held in four 32-bit
  banks (word j lives in bank j mod 4, so a round's four words read
  in parallel from distinct banks — one read port each);
- in exchange, **decryption works for any key size** (the on-the-fly
  reverse walk is AES-128-only; see :mod:`repro.ip.multikey`), and a
  wider datapath would no longer be key-schedule-bound (§6).

The round engine is the same mixed 32/128 structure: 4 (I)ByteSub
cycles + 1 wide cycle, Nr × 5 cycles per block.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.aes.constants import RCON
from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.datapath import (
    add_key_128,
    decrypt_mix_stage,
    encrypt_mix_stage,
    int_to_words,
    words_to_int,
)
from repro.ip.keysched_unit import rot_word_hw
from repro.ip.sbox_unit import SubWordUnit
from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator

_IDLE = 0
_EXPAND = 1
_RUN = 2


class PrecomputedKeyCore:
    """AES-128/192/256 encrypt/decrypt core with a round-key store."""

    def __init__(self, simulator: Simulator, key_bits: int = 128,
                 variant: Variant = Variant.BOTH, name: str = "pk"):
        if key_bits not in (128, 192, 256):
            raise ValueError("key_bits must be 128, 192 or 256")
        self.simulator = simulator
        self.key_bits = key_bits
        self.variant = variant
        self.nk = key_bits // 32
        self.rounds = self.nk + 6
        self.total_words = 4 * (self.rounds + 1)
        self.name = name

        # Pins.
        self.setup = Signal(f"{name}_setup", 1)
        self.wr_data = Signal(f"{name}_wr_data", 1)
        self.wr_key = Signal(f"{name}_wr_key", 1)
        self.din = Signal(f"{name}_din", 128)
        self.encdec = Signal(f"{name}_encdec", 1)
        self.dout = Signal(f"{name}_dout", 128)
        self.data_ok = simulator.register(f"{name}_data_ok", 1)

        reg = simulator.register
        self.state = [reg(f"{name}_state_{i}", 32) for i in range(4)]
        self.out = [reg(f"{name}_out_{i}", 32) for i in range(4)]
        self.buf = [reg(f"{name}_buf_{i}", 32) for i in range(4)]
        self.buf_valid = reg(f"{name}_buf_valid", 1)
        self.buf_dir = reg(f"{name}_buf_dir", 1)
        self.key_beat = reg(f"{name}_key_beat", 1)
        # The round-key store: total_words registers standing in for
        # four RAM banks (word j in bank j mod 4).
        self.keyram = [
            reg(f"{name}_keyram_{i}", 32)
            for i in range(self.total_words)
        ]
        self.expand_pos = reg(f"{name}_expand_pos", 6)
        self.key_ready = reg(f"{name}_key_ready", 1)
        self.top = reg(f"{name}_top", 2, reset=_IDLE)
        self.round = reg(f"{name}_round", 4, reset=1)
        self.step = reg(f"{name}_step", 3)
        self.direction = reg(f"{name}_direction", 1)

        self.sbox_f: Optional[SubWordUnit] = (
            SubWordUnit(f"{name}_sbox_f")
            if variant.can_encrypt else None
        )
        self.sbox_i: Optional[SubWordUnit] = (
            SubWordUnit(f"{name}_sbox_i", inverse=True)
            if variant.can_decrypt else None
        )
        # The expansion shares KStran-style S-boxes.
        self.kstran_sbox = SubWordUnit(f"{name}_kstran")

        self.blocks_processed = 0
        self.bus_overruns = 0

        simulator.add_clocked(self._tick)
        simulator.add_comb(self._drive_outputs)

    # ------------------------------------------------------------- queries
    @property
    def busy(self) -> bool:
        return self.top.value != _IDLE

    @property
    def can_accept(self) -> bool:
        return not self.buf_valid.value

    @property
    def latency_cycles(self) -> int:
        return self.rounds * 5

    @property
    def expansion_cycles(self) -> int:
        """Cycles of the per-key expansion pass."""
        return self.total_words - self.nk

    @property
    def key_store_bits(self) -> int:
        """Round-key storage this design pays for."""
        return self.total_words * 32

    def out_block(self) -> bytes:
        return b"".join(r.value.to_bytes(4, "big") for r in self.out)

    # ------------------------------------------------------- clocked logic
    def _tick(self) -> None:
        self.data_ok.next = 0
        self._service_key_port()
        idle_after = self._service_engine()
        self._service_data_port(idle_after)

    def _service_key_port(self) -> None:
        if not (self.wr_key.value and self.setup.value):
            return
        words = int_to_words(self.din.value)
        if self.nk == 4 or self.key_beat.value == 0:
            for index, word in enumerate(words[:min(4, self.nk)]):
                self.keyram[index].next = word
            if self.nk == 4:
                self._begin_expansion()
            else:
                self.key_beat.next = 1
            return
        for offset, word in enumerate(words[: self.nk - 4]):
            self.keyram[4 + offset].next = word
        self.key_beat.next = 0
        self._begin_expansion()

    def _begin_expansion(self) -> None:
        self.expand_pos.next = self.nk
        self.key_ready.next = 0
        self.top.next = _EXPAND

    def _service_engine(self) -> bool:
        if self.wr_key.value and self.setup.value:
            return False
        top = self.top.value
        if top == _EXPAND:
            return self._tick_expand()
        if top == _RUN:
            return self._tick_round()
        return True

    def _tick_expand(self) -> bool:
        i = self.expand_pos.value
        previous = self.keyram[i - 1].value
        if i % self.nk == 0:
            temp = self.kstran_sbox.lookup(rot_word_hw(previous)) ^ (
                RCON[i // self.nk] << 24
            )
        elif self.nk == 8 and i % self.nk == 4:
            temp = self.kstran_sbox.lookup(previous)
        else:
            temp = previous
        self.keyram[i].next = self.keyram[i - self.nk].value ^ temp
        if i + 1 < self.total_words:
            self.expand_pos.next = i + 1
            return False
        self.key_ready.next = 1
        self.top.next = _IDLE
        return True

    # --------------------------------------------------------- data port
    def _pin_direction(self) -> int:
        if self.variant is Variant.ENCRYPT:
            return DIR_ENCRYPT
        if self.variant is Variant.DECRYPT:
            return DIR_DECRYPT
        return self.encdec.value

    def _service_data_port(self, idle_after: bool) -> None:
        wr = self.wr_data.value and not self.setup.value
        direct = None
        if wr:
            direct = (int_to_words(self.din.value),
                      self._pin_direction())
        if idle_after:
            if self.buf_valid.value:
                if self.key_ready.value:
                    self._start_block(
                        tuple(r.value for r in self.buf),
                        self.buf_dir.value,
                    )
                    self.buf_valid.next = 0
                    if direct is not None:
                        self._buffer(*direct)
                    return
                if direct is not None:
                    self.bus_overruns += 1
                return
            if direct is not None:
                if self.key_ready.value:
                    self._start_block(*direct)
                else:
                    self._buffer(*direct)
            return
        if direct is not None:
            if self.buf_valid.value:
                self.bus_overruns += 1
            else:
                self._buffer(*direct)

    def _buffer(self, words, direction: int) -> None:
        for regi, word in zip(self.buf, words):
            regi.next = word
        self.buf_dir.next = direction
        self.buf_valid.next = 1

    def _round_key(self, rnd: int) -> Tuple[int, int, int, int]:
        base = 4 * rnd
        return tuple(self.keyram[base + j].value for j in range(4))

    def _start_block(self, words, direction: int) -> None:
        if direction == DIR_ENCRYPT:
            key0 = self._round_key(0)
            for regi, word, kw in zip(self.state, words, key0):
                regi.next = word ^ kw
            self.round.next = 1
        else:
            for regi, word in zip(self.state, words):
                regi.next = word
            self.round.next = self.rounds
        self.direction.next = direction
        self.step.next = 0
        self.top.next = _RUN

    # -------------------------------------------------------- round engine
    def _active_direction(self) -> int:
        if self.variant is Variant.ENCRYPT:
            return DIR_ENCRYPT
        if self.variant is Variant.DECRYPT:
            return DIR_DECRYPT
        return self.direction.value

    def _tick_round(self) -> bool:
        if self._active_direction() == DIR_ENCRYPT:
            return self._tick_encrypt()
        return self._tick_decrypt()

    def _finish(self, result) -> bool:
        for regi, word in zip(self.out, result):
            regi.next = word
        self.data_ok.next = 1
        self.top.next = _IDLE
        self.blocks_processed += 1
        return True

    def _tick_encrypt(self) -> bool:
        s, r = self.step.value, self.round.value
        assert self.sbox_f is not None
        if s <= 3:
            self.state[s].next = self.sbox_f.lookup(
                self.state[s].value
            )
            self.step.next = s + 1
            return False
        result = encrypt_mix_stage(
            tuple(st.value for st in self.state),
            self._round_key(r),
            last_round=(r == self.rounds),
        )
        if r == self.rounds:
            return self._finish(result)
        for regi, word in zip(self.state, result):
            regi.next = word
        self.round.next = r + 1
        self.step.next = 0
        return False

    def _tick_decrypt(self) -> bool:
        s, r = self.step.value, self.round.value
        assert self.sbox_i is not None
        if s == 0:
            result = decrypt_mix_stage(
                tuple(st.value for st in self.state),
                self._round_key(r),
                first_round=(r == self.rounds),
            )
            for regi, word in zip(self.state, result):
                regi.next = word
            self.step.next = 1
            return False
        slot = s - 1
        substituted = self.sbox_i.lookup(self.state[slot].value)
        if slot < 3:
            self.state[slot].next = substituted
            self.step.next = s + 1
            return False
        if r > 1:
            self.state[3].next = substituted
            self.round.next = r - 1
            self.step.next = 0
            return False
        full = (
            self.state[0].value,
            self.state[1].value,
            self.state[2].value,
            substituted,
        )
        return self._finish(add_key_128(full, self._round_key(0)))

    def _drive_outputs(self) -> None:
        self.dout.value = words_to_int(
            tuple(r.value for r in self.out)
        )


class PrecomputedTestbench:
    """Protocol driver for the precomputed-key core."""

    __test__ = False

    def __init__(self, key_bits: int = 128,
                 variant: Variant = Variant.BOTH):
        self.simulator = Simulator()
        self.core = PrecomputedKeyCore(self.simulator, key_bits,
                                       variant)
        self._idle()

    def _idle(self) -> None:
        core = self.core
        core.setup.value = 0
        core.wr_data.value = 0
        core.wr_key.value = 0
        core.din.value = 0
        core.encdec.value = 0

    def load_key(self, key: bytes, wait: bool = True) -> int:
        key = bytes(key)
        if len(key) * 8 != self.core.key_bits:
            raise ValueError(
                f"expected a {self.core.key_bits}-bit key"
            )
        consumed = 0
        beats = -(-len(key) // 16)
        for beat in range(beats):
            chunk = key[16 * beat:16 * (beat + 1)]
            chunk = chunk + bytes(16 - len(chunk))
            self.core.setup.value = 1
            self.core.wr_key.value = 1
            self.core.din.value = int.from_bytes(chunk, "big")
            self.simulator.step()
            self._idle()
            consumed += 1
        if wait:
            consumed += self.simulator.run_until(
                lambda: not self.core.busy,
                max_cycles=self.core.expansion_cycles + 4,
            )
        return consumed

    def process_block(self, block: bytes,
                      direction: int = DIR_ENCRYPT
                      ) -> Tuple[bytes, int]:
        block = bytes(block)
        if len(block) != 16:
            raise ValueError("blocks are 16 bytes")
        core = self.core
        core.wr_data.value = 1
        core.din.value = int.from_bytes(block, "big")
        core.encdec.value = direction
        self.simulator.step()
        self._idle()
        start = self.simulator.cycle
        self.simulator.run_until(
            lambda: core.data_ok.value == 1,
            max_cycles=4 * core.latency_cycles,
        )
        return core.out_block(), self.simulator.cycle - start

    def encrypt(self, block: bytes) -> Tuple[bytes, int]:
        return self.process_block(block, DIR_ENCRYPT)

    def decrypt(self, block: bytes) -> Tuple[bytes, int]:
        return self.process_block(block, DIR_DECRYPT)
