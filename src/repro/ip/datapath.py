"""The 128-bit combinational stage: (I)Shift Row, (I)Mix Column, Add Key.

These are the paper's full-width functions — executed in a single
clock to bring the round down from 12 cycles (an all-32-bit design) to
5.  They are implemented here at the word/bit level, independently of
the behavioral model in :mod:`repro.aes.transforms`, so that the
cycle-accurate core's agreement with the golden model is a genuine
cross-check rather than a tautology.

State packing convention (shared with the bus interface): the 128-bit
block is 4 words; word *c* is State column *c*; byte 0 of the block is
the **most significant** byte of word 0 and sits at State row 0,
column 0.  Round-key words use the same packing (FIPS-197 agrees).
"""

from __future__ import annotations

from typing import Tuple

Word4 = Tuple[int, int, int, int]

_MASK32 = 0xFFFFFFFF

#: AES (Nb = 4) Shift Row offsets per row (paper Fig. 6).
SHIFT_OFFSETS = (0, 1, 2, 3)


def _check_words(words: Word4) -> Word4:
    if len(words) != 4:
        raise ValueError("the 128-bit stage takes exactly 4 words")
    for w in words:
        if not 0 <= w <= _MASK32:
            raise ValueError(f"word out of range: {w!r}")
    return tuple(words)


def _byte(word: int, row: int) -> int:
    """Byte at State row ``row`` of a column word (row 0 = MSB)."""
    return (word >> (8 * (3 - row))) & 0xFF


def _from_bytes(b0: int, b1: int, b2: int, b3: int) -> int:
    return (b0 << 24) | (b1 << 16) | (b2 << 8) | b3


def shift_rows_128(words: Word4) -> Word4:
    """Shift Row over the whole state in one level of pure wiring.

    new(row, col) = old(row, col + offset[row] mod 4).  Costs no logic
    cells at all — the mapper models it as routing only.
    """
    words = _check_words(words)
    out = []
    for col in range(4):
        out.append(
            _from_bytes(
                *(
                    _byte(words[(col + SHIFT_OFFSETS[row]) % 4], row)
                    for row in range(4)
                )
            )
        )
    return tuple(out)


def inv_shift_rows_128(words: Word4) -> Word4:
    """IShift Row: new(row, col) = old(row, col - offset[row] mod 4)."""
    words = _check_words(words)
    out = []
    for col in range(4):
        out.append(
            _from_bytes(
                *(
                    _byte(words[(col - SHIFT_OFFSETS[row]) % 4], row)
                    for row in range(4)
                )
            )
        )
    return tuple(out)


def _xt(b: int) -> int:
    """xtime: one conditional-XOR logic level in hardware."""
    b <<= 1
    if b & 0x100:
        b ^= 0x11B
    return b & 0xFF


def mix_column_word(word: int) -> int:
    """Mix Column on one column word: multiply by 03·x^3+01·x^2+01·x+02.

    Expanded to the canonical xtime form so the logic depth is visible:
    each output byte is 1 xtime level plus a 4-input XOR (2 levels).
    """
    b0, b1, b2, b3 = (_byte(word, r) for r in range(4))
    return _from_bytes(
        _xt(b0) ^ _xt(b1) ^ b1 ^ b2 ^ b3,
        b0 ^ _xt(b1) ^ _xt(b2) ^ b2 ^ b3,
        b0 ^ b1 ^ _xt(b2) ^ _xt(b3) ^ b3,
        _xt(b0) ^ b0 ^ b1 ^ b2 ^ _xt(b3),
    )


def inv_mix_column_word(word: int) -> int:
    """IMix Column on one column word: multiply by 0B,0D,09,0E.

    The xtime chains run three deep (×8 = xt³), which is why the
    decrypt datapath is the slower one — Table 2 shows 15 ns vs 14 ns
    on Acex1K — and the timing model charges it accordingly.
    """
    b0, b1, b2, b3 = (_byte(word, r) for r in range(4))

    def mul(b: int, c: int) -> int:
        out = 0
        power = b
        while c:
            if c & 1:
                out ^= power
            power = _xt(power)
            c >>= 1
        return out

    return _from_bytes(
        mul(b0, 0x0E) ^ mul(b1, 0x0B) ^ mul(b2, 0x0D) ^ mul(b3, 0x09),
        mul(b0, 0x09) ^ mul(b1, 0x0E) ^ mul(b2, 0x0B) ^ mul(b3, 0x0D),
        mul(b0, 0x0D) ^ mul(b1, 0x09) ^ mul(b2, 0x0E) ^ mul(b3, 0x0B),
        mul(b0, 0x0B) ^ mul(b1, 0x0D) ^ mul(b2, 0x09) ^ mul(b3, 0x0E),
    )


def mix_columns_128(words: Word4) -> Word4:
    """Mix Column over all four columns (columns are independent)."""
    words = _check_words(words)
    return tuple(mix_column_word(w) for w in words)


def inv_mix_columns_128(words: Word4) -> Word4:
    """IMix Column over all four columns."""
    words = _check_words(words)
    return tuple(inv_mix_column_word(w) for w in words)


def add_key_128(words: Word4, key_words: Word4) -> Word4:
    """Add Key: 128 parallel 2-input XORs (one logic level)."""
    words = _check_words(words)
    key_words = _check_words(key_words)
    return tuple(w ^ k for w, k in zip(words, key_words))


def encrypt_mix_stage(
    words: Word4, key_words: Word4, last_round: bool
) -> Word4:
    """The encrypt M-cycle network: AddKey(MixColumn(ShiftRow(state))).

    ``last_round`` bypasses Mix Column (paper §3: the last encryption
    round does not execute Mix Column); in hardware this is a 2:1 mux
    per bit, which the BOTH variant's timing pays for.
    """
    shifted = shift_rows_128(words)
    mixed = shifted if last_round else mix_columns_128(shifted)
    return add_key_128(mixed, key_words)


def decrypt_mix_stage(
    words: Word4, key_words: Word4, first_round: bool
) -> Word4:
    """The decrypt M-cycle network: IShiftRow(IMixColumn(AddKey(state))).

    ``first_round`` (round Nr, the first executed when deciphering)
    bypasses IMix Column.
    """
    keyed = add_key_128(words, key_words)
    mixed = keyed if first_round else inv_mix_columns_128(keyed)
    return inv_shift_rows_128(mixed)


def block_to_words(block: bytes) -> Word4:
    """Split a 16-byte bus block into 4 column words (byte 0 = MSB w0)."""
    block = bytes(block)
    if len(block) != 16:
        raise ValueError(f"block must be 16 bytes, got {len(block)}")
    return tuple(
        int.from_bytes(block[4 * i : 4 * i + 4], "big") for i in range(4)
    )


def words_to_block(words: Word4) -> bytes:
    """Pack 4 column words back into the 16-byte bus block."""
    words = _check_words(words)
    return b"".join(w.to_bytes(4, "big") for w in words)


def words_to_int(words: Word4) -> int:
    """Pack 4 words into one 128-bit integer (word 0 most significant).

    This is the value carried by the 128-bit ``din``/``dout`` signals.
    """
    words = _check_words(words)
    return (words[0] << 96) | (words[1] << 64) | (words[2] << 32) | words[3]


def int_to_words(value: int) -> Word4:
    """Split a 128-bit bus integer into 4 column words."""
    if not 0 <= value < (1 << 128):
        raise ValueError(f"bus value out of range: {value!r}")
    return (
        (value >> 96) & _MASK32,
        (value >> 64) & _MASK32,
        (value >> 32) & _MASK32,
        value & _MASK32,
    )
