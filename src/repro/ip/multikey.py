"""Cycle-accurate AES-192/256 encrypt core — the §3 versions, built.

The paper fixes its device to AES-128 and notes that AES also defines
192- and 256-bit keys.  This module extends the mixed 32/128
architecture to all three key sizes, keeping every headline property:
4 ByteSub cycles + 1 wide cycle per round, on-the-fly keys at one
32-bit word per clock, latency = Nr x 5 cycles (50 / 60 / 70).

The only real design problem is the key schedule: for Nk > 4 the
schedule's natural Nk-word groups no longer align with the 4-word
round keys.  The solution here (and in real multi-key-size IPs) is a
**sliding window**: Nk registers holding the most recent Nk schedule
words w[i-Nk .. i-1].  Each ByteSub cycle produces w[i] from the
window's newest and oldest words (KStran when i mod Nk == 0, the
extra SubWord when Nk == 8 and i mod Nk == 4) and shifts it in.  At
round r's wide cycle the round key w[4r .. 4r+3] sits at window
offset ``4r - i + Nk`` — 0 in steady state, up to Nk - 4 in the final
round once generation has run off the end of the schedule.  That
offset is a small mux in hardware; the invariant is asserted in the
model.

Decryption for Nk > 4 is intentionally out of scope for the on-the-fly
unit (the reverse window walks the schedule backwards through
misaligned KStran boundaries; deployed designs precompute instead) —
the behavioral model covers functional decryption for all sizes.

Key loading uses one ``wr_key`` beat per 128 din bits: 1 beat for
AES-128, 2 beats for AES-192 (words 4..5 in the top half of the
second beat) and AES-256.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.aes.constants import RCON
from repro.ip.datapath import encrypt_mix_stage, int_to_words, \
    words_to_int
from repro.ip.keysched_unit import rot_word_hw
from repro.ip.sbox_unit import SubWordUnit
from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator

_IDLE = 0
_RUN = 2


class MultiKeyEncryptCore:
    """Encrypt-only AES-128/192/256 device (mixed 32/128 datapath)."""

    def __init__(self, simulator: Simulator, key_bits: int = 128,
                 name: str = "mk"):
        if key_bits not in (128, 192, 256):
            raise ValueError("key_bits must be 128, 192 or 256")
        self.simulator = simulator
        self.key_bits = key_bits
        self.nk = key_bits // 32
        self.rounds = self.nk + 6
        self.total_words = 4 * (self.rounds + 1)
        self.name = name

        # Pins (Table 1 shape; enc/dec absent on an encrypt device).
        self.setup = Signal(f"{name}_setup", 1)
        self.wr_data = Signal(f"{name}_wr_data", 1)
        self.wr_key = Signal(f"{name}_wr_key", 1)
        self.din = Signal(f"{name}_din", 128)
        self.dout = Signal(f"{name}_dout", 128)
        self.data_ok = simulator.register(f"{name}_data_ok", 1)

        reg = simulator.register
        self.state = [reg(f"{name}_state_{i}", 32) for i in range(4)]
        self.out = [reg(f"{name}_out_{i}", 32) for i in range(4)]
        self.buf = [reg(f"{name}_buf_{i}", 32) for i in range(4)]
        self.buf_valid = reg(f"{name}_buf_valid", 1)
        # Raw key latch: Nk words, filled over 1-2 wr_key beats.
        self.key = [reg(f"{name}_key_{i}", 32) for i in range(self.nk)]
        self.key_beat = reg(f"{name}_key_beat", 1)
        # The sliding schedule window w[i-Nk .. i-1].
        self.window = [
            reg(f"{name}_win_{i}", 32) for i in range(self.nk)
        ]
        self.sched_pos = reg(f"{name}_sched_pos", 6)  # the index i
        self.top = reg(f"{name}_top", 2, reset=_IDLE)
        self.round = reg(f"{name}_round", 4, reset=1)
        self.step = reg(f"{name}_step", 3)

        self.sbox_f = SubWordUnit(f"{name}_sbox_f")
        self.kstran_sbox = SubWordUnit(f"{name}_kstran")

        self.blocks_processed = 0
        self.bus_overruns = 0

        simulator.add_clocked(self._tick)
        simulator.add_comb(self._drive_outputs)

    # ------------------------------------------------------------- queries
    @property
    def busy(self) -> bool:
        return self.top.value != _IDLE

    @property
    def can_accept(self) -> bool:
        return not self.buf_valid.value

    @property
    def latency_cycles(self) -> int:
        return self.rounds * 5

    @property
    def rom_bits(self) -> int:
        """Same memory as the AES-128 device: Nk never adds S-boxes."""
        return self.sbox_f.rom_bits + self.kstran_sbox.rom_bits

    def out_block(self) -> bytes:
        return b"".join(
            r.value.to_bytes(4, "big") for r in self.out
        )

    # ------------------------------------------------------- clocked logic
    def _tick(self) -> None:
        self.data_ok.next = 0
        self._service_key_port()
        idle_after = self._service_engine()
        self._service_data_port(idle_after)

    def _service_key_port(self) -> None:
        if not (self.wr_key.value and self.setup.value):
            return
        words = int_to_words(self.din.value)
        if self.nk == 4:
            for regi, word in zip(self.key, words):
                regi.next = word
            return
        if self.key_beat.value == 0:
            for regi, word in zip(self.key[0:4], words):
                regi.next = word
            self.key_beat.next = 1
            return
        for regi, word in zip(self.key[4:self.nk], words):
            regi.next = word
        self.key_beat.next = 0

    def _service_engine(self) -> bool:
        if self.top.value != _RUN:
            return True
        return self._tick_round()

    def _service_data_port(self, idle_after: bool) -> None:
        wr = self.wr_data.value and not self.setup.value
        if idle_after:
            if self.buf_valid.value:
                self._start_block(
                    tuple(r.value for r in self.buf)
                )
                self.buf_valid.next = 0
                if wr:
                    self._buffer(int_to_words(self.din.value))
            elif wr:
                self._start_block(int_to_words(self.din.value))
            return
        if wr:
            if self.buf_valid.value:
                self.bus_overruns += 1
            else:
                self._buffer(int_to_words(self.din.value))

    def _buffer(self, words: Tuple[int, int, int, int]) -> None:
        for regi, word in zip(self.buf, words):
            regi.next = word
        self.buf_valid.next = 1

    def _start_block(self, words: Tuple[int, int, int, int]) -> None:
        key_words = [r.value for r in self.key]
        # Initial Add Key folds into the load edge (w0..w3).
        for regi, word, kw in zip(self.state, words, key_words[0:4]):
            regi.next = word ^ kw
        # Window resets to the raw key: w[0 .. Nk-1].
        for regi, word in zip(self.window, key_words):
            regi.next = word
        self.sched_pos.next = self.nk
        self.round.next = 1
        self.step.next = 0
        self.top.next = _RUN

    # -------------------------------------------------------- round engine
    def _next_schedule_word(self) -> Optional[int]:
        """Combinationally compute w[i] from the current window."""
        i = self.sched_pos.value
        if i >= self.total_words:
            return None
        newest = self.window[self.nk - 1].value
        oldest = self.window[0].value
        if i % self.nk == 0:
            temp = self.kstran_sbox.lookup(rot_word_hw(newest)) ^ (
                RCON[i // self.nk] << 24
            )
        elif self.nk == 8 and i % self.nk == 4:
            temp = self.kstran_sbox.lookup(newest)
        else:
            temp = newest
        return oldest ^ temp

    def _shift_window(self, new_word: int) -> None:
        for index in range(self.nk - 1):
            self.window[index].next = self.window[index + 1].value
        self.window[self.nk - 1].next = new_word
        self.sched_pos.next = self.sched_pos.value + 1

    def _round_key(self) -> Tuple[int, int, int, int]:
        """The round key w[4r .. 4r+3], read at its window offset."""
        r = self.round.value
        i = self.sched_pos.value
        offset = 4 * r - i + self.nk
        assert 0 <= offset <= self.nk - 4, (
            f"round-key window invariant broken: offset {offset} "
            f"(round {r}, i {i}, Nk {self.nk})"
        )
        return tuple(
            self.window[offset + j].value for j in range(4)
        )

    def _tick_round(self) -> bool:
        s = self.step.value
        r = self.round.value
        if s <= 3:
            self.state[s].next = self.sbox_f.lookup(
                self.state[s].value
            )
            word = self._next_schedule_word()
            if word is not None:
                self._shift_window(word)
            self.step.next = s + 1
            return False
        result = encrypt_mix_stage(
            tuple(st.value for st in self.state),
            self._round_key(),
            last_round=(r == self.rounds),
        )
        if r == self.rounds:
            for regi, word in zip(self.out, result):
                regi.next = word
            self.data_ok.next = 1
            self.top.next = _IDLE
            self.blocks_processed += 1
            return True
        for regi, word in zip(self.state, result):
            regi.next = word
        self.round.next = r + 1
        self.step.next = 0
        return False

    def _drive_outputs(self) -> None:
        self.dout.value = words_to_int(
            tuple(r.value for r in self.out)
        )


class MultiKeyTestbench:
    """Protocol driver for the multi-key-size encrypt core."""

    __test__ = False

    def __init__(self, key_bits: int = 128):
        self.simulator = Simulator()
        self.core = MultiKeyEncryptCore(self.simulator, key_bits)
        self._idle()

    def _idle(self) -> None:
        core = self.core
        core.setup.value = 0
        core.wr_data.value = 0
        core.wr_key.value = 0
        core.din.value = 0

    def load_key(self, key: bytes) -> int:
        key = bytes(key)
        if len(key) * 8 != self.core.key_bits:
            raise ValueError(
                f"expected a {self.core.key_bits}-bit key, "
                f"got {len(key)} bytes"
            )
        beats = -(-len(key) // 16)
        consumed = 0
        for beat in range(beats):
            chunk = key[16 * beat:16 * (beat + 1)]
            chunk = chunk + bytes(16 - len(chunk))  # top-aligned pad
            self.core.setup.value = 1
            self.core.wr_key.value = 1
            self.core.din.value = int.from_bytes(chunk, "big")
            self.simulator.step()
            self._idle()
            consumed += 1
        return consumed

    def encrypt(self, block: bytes) -> Tuple[bytes, int]:
        block = bytes(block)
        if len(block) != 16:
            raise ValueError("blocks are 16 bytes")
        core = self.core
        core.wr_data.value = 1
        core.din.value = int.from_bytes(block, "big")
        self.simulator.step()
        self._idle()
        start = self.simulator.cycle
        self.simulator.run_until(
            lambda: core.data_ok.value == 1,
            max_cycles=4 * core.latency_cycles,
        )
        return core.out_block(), self.simulator.cycle - start

    def stream(self, blocks: List[bytes]) -> Tuple[List[bytes],
                                                   List[int]]:
        results: List[bytes] = []
        stamps: List[int] = []
        pending = list(blocks)
        if not pending:
            return results, stamps
        first = pending.pop(0)
        self.core.wr_data.value = 1
        self.core.din.value = int.from_bytes(first, "big")
        self.simulator.step()
        self._idle()
        budget = (len(blocks) + 2) * 4 * self.core.latency_cycles
        while len(results) < len(blocks) and budget:
            if pending and self.core.can_accept:
                self.core.wr_data.value = 1
                self.core.din.value = int.from_bytes(pending.pop(0),
                                                     "big")
                self.simulator.step()
                self._idle()
            else:
                self.simulator.step()
            if self.core.data_ok.value == 1:
                results.append(self.core.out_block())
                stamps.append(self.simulator.cycle)
            budget -= 1
        return results, stamps
