"""Cycle-accurate model of the paper's Rijndael IP core.

This package is the reproduction's primary contribution: a register-
transfer-level model of the low-area AES-128 device of Panato et al.,
with the exact micro-architecture the paper describes:

- **Mixed 32/128-bit processing** — Byte Sub (and IByte Sub) run 32
  bits per clock through a 4-S-box unit (8 Kbit of ROM instead of the
  32 Kbit a 128-bit ByteSub would need); Shift Row, Mix Column and Add
  Key run at the full 128 bits in one clock.  A round is therefore
  **5 cycles** and a block is **50 cycles** — matching every latency
  row of the paper's Table 2 (e.g. 700 ns at 14 ns on Acex1K).
- **On-the-fly round keys** — no round-key storage; the key unit owns
  its own 4 S-boxes for KStran and produces one round-key word per
  ByteSub cycle (forward for encryption, reverse for decryption, with
  a 40-cycle setup pass to reach the last round key after ``wr_key``).
- **Three variants** — ENCRYPT, DECRYPT, and BOTH (run-time selected
  by the ``enc/dec`` pin), exactly the three devices of Table 2.
- **Registered bus interface** — ``Data_In`` and ``Out`` processes
  decouple the bus from the cipher, so the next block can be written
  while the current one is processed (zero-gap streaming).

Every run of this model is verifiable bit-for-bit against the
behavioral golden model in :mod:`repro.aes`.
"""

from repro.ip.control import Phase, Variant
from repro.ip.core import RijndaelCore
from repro.ip.interface import DEVICE_SIGNALS, SignalSpec, signal_table
from repro.ip.testbench import Testbench

__all__ = [
    "DEVICE_SIGNALS",
    "Phase",
    "RijndaelCore",
    "SignalSpec",
    "Testbench",
    "Variant",
    "signal_table",
]
