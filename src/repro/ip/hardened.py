"""Radiation-hardened variant of the IP (the paper's §6 pointer).

"There is, also, another effort to produce a VHDL IP version hardened
against radiation [16]."  This module is that effort's architecture on
our model, with the two standard low-cost mitigations:

- **TMR on the control plane** — every FSM/counter/handshake register
  becomes a :class:`TmrRegister`: three flip-flops, bitwise majority
  vote on read.  A single-event upset in any one copy is out-voted
  the next cycle, so control can no longer be derailed by one hit.
  The datapath stays un-triplicated (triplicating 128-bit banks would
  triple the device; the companion work hardens control first).
- **Parity on the state datapath** — each 32-bit state word carries a
  parity flip-flop written on the same edge as the word; a
  combinational checker raises the ``error_detected`` pin whenever
  stored parity disagrees with the word.  An upset in the in-flight
  block is thereby *detected* (the host can retry the block) even
  though it is not corrected.

The SEU campaign in :mod:`repro.analysis.seu` runs against this core
via ``hardened=True`` and classifies detected-but-wrong outputs
separately — reproducing the companion paper's methodology.
"""

from __future__ import annotations

from typing import List

from repro.ip.control import Variant
from repro.ip.core import RijndaelCore
from repro.rtl.signal import Register, Signal, SignalError
from repro.rtl.simulator import Simulator


class TmrRegister:
    """Three flip-flops with bitwise majority-vote read.

    Implements the same ``value`` / ``next`` / ``deposit`` surface as
    :class:`~repro.rtl.signal.Register` so core logic is oblivious.
    The three copies register with the simulator individually, so
    fault injection (which targets physical flip-flops) naturally hits
    one copy at a time — exactly how a real SEU behaves.
    """

    __slots__ = ("name", "width", "copies")

    def __init__(self, simulator: Simulator, name: str, width: int,
                 reset: int = 0):
        self.name = name
        self.width = width
        self.copies: List[Register] = [
            simulator.register(f"{name}_tmr{i}", width, reset)
            for i in range(3)
        ]

    @property
    def value(self) -> int:
        """Bitwise 2-of-3 majority of the copies."""
        a, b, c = (copy.value for copy in self.copies)
        return (a & b) | (a & c) | (b & c)

    @value.setter
    def value(self, _new: int) -> None:
        raise SignalError(
            f"register {self.name!r}: assign .next, not .value"
        )

    @property
    def next(self) -> int:
        return self.copies[0].next

    @next.setter
    def next(self, new: int) -> None:
        for copy in self.copies:
            copy.next = new

    def deposit(self, new: int) -> None:
        """Force all three copies (a *common-mode* fault; single-event
        campaigns hit one copy via its own register instead)."""
        for copy in self.copies:
            copy.deposit(new)

    def reset(self) -> None:
        for copy in self.copies:
            copy.reset()

    def __repr__(self) -> str:
        return (f"TmrRegister({self.name!r}, width={self.width}, "
                f"value={self.value:#x})")


def parity_of(value: int) -> int:
    """Even-parity bit of an integer."""
    return bin(value).count("1") & 1


class HardenedRijndaelCore(RijndaelCore):
    """The IP with TMR control and parity-checked state."""

    def __init__(self, simulator: Simulator,
                 variant: Variant = Variant.BOTH,
                 sync_rom: bool = False, name: str = "aes"):
        self._tmr_registers: List[TmrRegister] = []
        super().__init__(simulator, variant=variant, sync_rom=sync_rom,
                         name=name)
        # Parity plane: one bit per state word, written by snooping
        # the pending (D-input) value of each word every edge.
        self.state_parity = [
            simulator.register(f"{name}_parity_{i}", 1)
            for i in range(4)
        ]
        #: Sticky error latch: set on any parity mismatch, held until
        #: the host acknowledges via :meth:`clear_error`.
        self.error_latch = simulator.register(f"{name}_error_latch", 1)
        #: Raised whenever a mismatch is live or latched — the
        #: host-visible detection pin.
        self.error_detected = Signal(f"{name}_error_detected", 1)
        #: Count of edges on which a mismatch was observed.
        self.errors_flagged = 0
        simulator.add_clocked(self._update_parity)
        simulator.add_comb(self._check_parity)

    def _control_reg(self, name: str, width: int, reset: int = 0):
        tmr = TmrRegister(self.simulator, name, width, reset)
        self._tmr_registers.append(tmr)
        return tmr

    @property
    def tmr_register_names(self) -> List[str]:
        """The logical names of the triplicated control registers."""
        return [tmr.name for tmr in self._tmr_registers]

    # ------------------------------------------------------------ parity
    def _live_mismatch(self) -> bool:
        return any(
            parity_of(word.value) != parity.value
            for word, parity in zip(self.state, self.state_parity)
        )

    def _update_parity(self) -> None:
        # Runs in the same clocked phase as the core tick (after it,
        # by registration order).  First sample the *pre-edge* state
        # against its stored parity — an upset that landed during this
        # cycle is caught here and latched — then schedule parity for
        # the post-edge values (Register.next reflects what each word
        # will hold after this edge).
        if self._live_mismatch():
            self.error_latch.next = 1
            self.errors_flagged += 1
        for word, parity in zip(self.state, self.state_parity):
            parity.next = parity_of(word.next)

    def _check_parity(self) -> None:
        live = self._live_mismatch()
        latched = bool(self.error_latch.value)
        self.error_detected.value = 1 if (live or latched) else 0

    def clear_error(self) -> None:
        """Host acknowledgement: drop the sticky error latch."""
        self.error_latch.deposit(0)
        self.simulator.settle()


def hardening_overhead(variant: Variant = Variant.BOTH) -> dict:
    """Resource cost of the mitigations, through the area model.

    TMR doubles every control flip-flop (two extra copies) and adds a
    majority voter (one LUT per bit); parity adds one flip-flop and a
    32-input XOR tree (11 LUTs) per state word, plus the compare OR.
    Returns the extra LEs on the paper's Acex1K part.
    """
    from repro.fpga.calibration import LOGIC_FIT
    from repro.fpga.primitives import xor_tree_luts

    control_bits = 1 + 1 + 2 + 4 + 3 + 1 + 1 + 4 + 3  # the ctl regs
    extra_ff = 2 * control_bits  # two extra TMR copies
    voter_luts = control_bits  # 3-input majority per bit
    parity_ff = 4
    parity_luts = 4 * (xor_tree_luts(32) + 1) + 2  # trees + compare
    extra_luts = voter_luts + parity_luts
    extra_les = round(extra_ff + LOGIC_FIT * extra_luts)
    return {
        "control_bits": control_bits,
        "extra_flipflops": extra_ff + parity_ff,
        "extra_luts": extra_luts,
        "extra_les": extra_les,
    }
