"""The cycle-accurate Rijndael IP core (paper §4, Figs. 8–9).

One :class:`RijndaelCore` instantiates, on a
:class:`~repro.rtl.Simulator`:

- the pin-level interface of Table 1 (``clk`` is implicit in the
  simulator; ``setup``, ``wr_data``, ``wr_key``, ``din``, ``enc/dec``
  in; ``data_ok``, ``dout`` out);
- the **Data_In process**: a 128-bit capture register plus a one-deep
  pending buffer, so the bus can write the next block while the
  cipher runs (the paper's stated reason for registering the input);
- the **Out process**: a 128-bit result register — "transient results
  in data out are avoided" and the cipher can start the next block
  the same edge the previous result latches;
- the **Rijndael process**: the mixed 32/128-bit round engine — 4
  cycles of 32-bit (I)Byte Sub through a 4-S-box unit, 1 cycle of
  128-bit ShiftRow/MixColumn/AddKey — 5 cycles per round, 50 per
  block;
- the **Round Key process**: on-the-fly key generation in lock-step
  with the ByteSub cycles (forward for encryption; reverse for
  decryption, seeded by a 40-cycle setup pass after ``wr_key``).

Timing contract (asserted by tests):

================  =========================================  ========
event             measured from                              cycles
================  =========================================  ========
block latency     data-capture edge → result/``data_ok``     50
key setup pass    ``wr_key`` edge → ``key_ready``            40
streaming period  result edge → next result edge             50
================  =========================================  ========

With ``sync_rom=True`` (the future-work variant for devices whose
block RAM cannot read asynchronously, e.g. Cyclone M4K) the ROM reads
are pipelined and the round takes 6 cycles: latency 60, setup 50.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.ip.control import NUM_ROUNDS, Phase, Variant, block_latency
from repro.ip.datapath import (
    add_key_128,
    decrypt_mix_stage,
    encrypt_mix_stage,
    int_to_words,
    words_to_int,
)
from repro.ip.keysched_unit import KeyScheduleUnit
from repro.ip.sbox_unit import SubWordUnit
from repro.obs.hwcounters import HwCounters
from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator

Word4 = Tuple[int, int, int, int]

# Top-level FSM encoding (the ``top`` register).
_IDLE = 0
_KEY_SETUP = 1
_RUN = 2

# Direction encoding (the ``enc/dec`` pin and ``direction`` register).
DIR_ENCRYPT = 0
DIR_DECRYPT = 1


class RijndaelCore:
    """The paper's AES-128 device on the RTL simulation kernel."""

    def __init__(
        self,
        simulator: Simulator,
        variant: Variant = Variant.BOTH,
        sync_rom: bool = False,
        name: str = "aes",
    ):
        self.simulator = simulator
        self.variant = variant
        self.sync_rom = sync_rom
        self.name = name

        # ------------------------------------------------------ input pins
        self.setup = Signal(f"{name}_setup", 1)
        self.wr_data = Signal(f"{name}_wr_data", 1)
        self.wr_key = Signal(f"{name}_wr_key", 1)
        self.din = Signal(f"{name}_din", 128)
        #: Only the BOTH device has this pin (Table 1 footnote).
        self.encdec = Signal(f"{name}_encdec", 1)

        # ----------------------------------------------------- output pins
        self.dout = Signal(f"{name}_dout", 128)
        self.data_ok = simulator.register(f"{name}_data_ok", 1)

        # ------------------------------------------------------- registers
        reg = simulator.register
        ctl = self._control_reg  # hardened subclasses triplicate these
        self.state = [reg(f"{name}_state_{i}", 32) for i in range(4)]
        self.out = [reg(f"{name}_out_{i}", 32) for i in range(4)]
        self.buf = [reg(f"{name}_buf_{i}", 32) for i in range(4)]
        self.buf_valid = ctl(f"{name}_buf_valid", 1)
        self.buf_dir = ctl(f"{name}_buf_dir", 1)
        self.top = ctl(f"{name}_top", 2, reset=_IDLE)
        self.round = ctl(f"{name}_round", 4, reset=1)
        self.step = ctl(f"{name}_step", 3)
        self.direction = ctl(f"{name}_direction", 1)
        self.key_ready = ctl(f"{name}_key_ready", 1,
                             reset=0 if variant.needs_setup_pass else 1)
        self.ks_round = ctl(f"{name}_ks_round", 4, reset=1)
        self.ks_word = ctl(f"{name}_ks_word", 3)

        # ----------------------------------------------------------- units
        self.keyunit = KeyScheduleUnit(f"{name}_ksu", sync_rom=sync_rom)
        simulator.adopt(self.keyunit.registers)
        self.sbox_f: Optional[SubWordUnit] = None
        self.sbox_i: Optional[SubWordUnit] = None
        if variant.can_encrypt:
            self.sbox_f = SubWordUnit(f"{name}_sbox_f", inverse=False,
                                      sync_rom=sync_rom)
            simulator.adopt(self.sbox_f.registers)
        if variant.can_decrypt:
            self.sbox_i = SubWordUnit(f"{name}_sbox_i", inverse=True,
                                      sync_rom=sync_rom)
            simulator.adopt(self.sbox_i.registers)

        # ----------------------------------------------- observability only
        #: Cycle-accurate hardware perf counters (not hardware state):
        #: ByteSub sub-cycles, round boundaries, key-schedule words,
        #: bus stalls/overlap, per-block latency records.
        self.counters = HwCounters(name=name)
        #: Blocks completed since construction (not a hardware register).
        self.blocks_processed = 0
        #: ``wr_data`` writes dropped because the buffer was full.
        self.bus_overruns = 0
        #: ``wr_data``/``wr_key`` pulses ignored due to the setup pin.
        self.protocol_errors = 0

        simulator.add_clocked(self._tick)
        simulator.add_comb(self._drive_outputs)

    def _control_reg(self, name: str, width: int, reset: int = 0):
        """Create one control register.

        The base core uses plain flip-flops; the radiation-hardened
        subclass (:class:`repro.ip.hardened.HardenedRijndaelCore`)
        overrides this to return triple-modular-redundant registers.
        """
        return self.simulator.register(name, width, reset)

    # ------------------------------------------------------------- queries
    @property
    def phase(self) -> Phase:
        """Top-level FSM state as an enum."""
        return {_IDLE: Phase.IDLE, _KEY_SETUP: Phase.KEY_SETUP,
                _RUN: Phase.RUN}[self.top.value]

    @property
    def busy(self) -> bool:
        """True while ciphering or running the key setup pass."""
        return self.top.value != _IDLE

    @property
    def can_accept(self) -> bool:
        """True when a ``wr_data`` this cycle will not be dropped."""
        return not self.buf_valid.value

    @property
    def latency_cycles(self) -> int:
        """Data-capture-to-result latency of this build (50 or 60)."""
        return block_latency(self.sync_rom)

    @property
    def rom_bits(self) -> int:
        """ROM bits in the *functional* model.

        Note: the paper's BOTH device is the encrypt and decrypt
        designs combined, each keeping its own KStran bank, so Table 2
        reports 32768 bits; the functional model shares one KStran
        bank (24576 bits here).  The area model in
        :mod:`repro.fpga.aes_netlists` counts the paper's duplicated
        structure.
        """
        bits = self.keyunit.rom_bits
        if self.sbox_f is not None:
            bits += self.sbox_f.rom_bits
        if self.sbox_i is not None:
            bits += self.sbox_i.rom_bits
        return bits

    def out_words(self) -> Word4:
        """The Out register contents as 4 words."""
        return tuple(reg.value for reg in self.out)

    def out_block(self) -> bytes:
        """The Out register contents as 16 bytes (bus order)."""
        return b"".join(w.to_bytes(4, "big") for w in self.out_words())

    # ------------------------------------------------------- clocked logic
    def _tick(self) -> None:
        # Direct lookup, not self.phase: a fault campaign can flip the
        # top register into an illegal encoding mid-run, and counting
        # must not crash the simulation the checker is observing.
        self.counters.cycle_tick(
            {_KEY_SETUP: "key_setup", _RUN: "run"}.get(
                self.top.value, "idle"
            )
        )
        self.data_ok.next = 0
        self._service_key_port()
        idle_after = self._service_engine()
        self._service_data_port(idle_after)

    def _service_key_port(self) -> None:
        """The ``wr_key`` side of the bus protocol (setup period only)."""
        if not self.wr_key.value:
            return
        if not self.setup.value:
            self.protocol_errors += 1
            self.counters.protocol_error()
            return
        words = int_to_words(self.din.value)
        self.keyunit.load_key(words)
        if self.variant.needs_setup_pass:
            self.keyunit.load_work(words)
            self.key_ready.next = 0
            self.ks_round.next = 1
            self.ks_word.next = 0
            self.top.next = _KEY_SETUP
        # Encrypt-only devices are ready the moment the key latches.

    def _service_engine(self) -> bool:
        """Advance KEY_SETUP or RUN; returns True if idle after this edge."""
        top = self.top.value
        if self.wr_key.value and self.setup.value:
            # A key load (handled above) preempts whatever was running.
            return False
        if top == _KEY_SETUP:
            return self._tick_key_setup()
        if top == _RUN:
            return self._tick_run()
        return True

    def _service_data_port(self, idle_after: bool) -> None:
        """The Data_In process: capture, buffer, and block starts."""
        wr = self.wr_data.value and not (
            self.wr_key.value and self.setup.value
        )
        if self.wr_data.value and self.setup.value:
            self.protocol_errors += 1
            self.counters.protocol_error()
            wr = False

        direct: Optional[Tuple[Word4, int]] = None
        if wr:
            direct = (int_to_words(self.din.value), self._pin_direction())

        if idle_after:
            if self.buf_valid.value:
                pending = (
                    tuple(reg.value for reg in self.buf),
                    self.buf_dir.value,
                )
                if self._can_start(pending[1]):
                    self._start_block(*pending)
                    self.buf_valid.next = 0
                    if direct is not None:
                        self._buffer(direct)
                    return
                # Pending block still blocked (key not ready): hold it.
                if direct is not None:
                    self.bus_overruns += 1
                    self.counters.stall()
                return
            if direct is not None:
                if self._can_start(direct[1]):
                    self._start_block(*direct)
                else:
                    self._buffer(direct)
            return

        # Engine stays busy: writes land in the one-deep buffer.
        if direct is not None:
            if self.buf_valid.value:
                self.bus_overruns += 1
                self.counters.stall()
            else:
                self._buffer(direct)
                self.counters.overlap()

    def _pin_direction(self) -> int:
        if self.variant is Variant.ENCRYPT:
            return DIR_ENCRYPT
        if self.variant is Variant.DECRYPT:
            return DIR_DECRYPT
        return self.encdec.value

    def _can_start(self, direction: int) -> bool:
        if direction == DIR_ENCRYPT:
            return self.variant.can_encrypt
        return self.variant.can_decrypt and bool(self.key_ready.value)

    def _buffer(self, item: Tuple[Word4, int]) -> None:
        words, direction = item
        for reg, word in zip(self.buf, words):
            reg.next = word
        self.buf_dir.next = direction
        self.buf_valid.next = 1

    def _start_block(self, words: Word4, direction: int) -> None:
        """Load the state and point the key unit at the right end.

        Encryption folds the initial Add Key into the load edge (state
        := din xor K0); decryption loads din raw and folds the final
        Add Key into the output edge — this is how 10 rounds x 5
        cycles covers the 11 Add Keys without extra cycles.
        """
        self.counters.block_start(
            self.simulator.cycle,
            "encrypt" if direction == DIR_ENCRYPT else "decrypt",
        )
        if direction == DIR_ENCRYPT:
            key0 = self.keyunit.key0_words()
            for reg, word, key in zip(self.state, words, key0):
                reg.next = word ^ key
            self.keyunit.load_work(key0)
            self.round.next = 1
        else:
            for reg, word in zip(self.state, words):
                reg.next = word
            self.keyunit.load_work(self.keyunit.key_last_words())
            self.round.next = NUM_ROUNDS
        self.direction.next = direction
        self.step.next = 0
        self.top.next = _RUN

    # ---------------------------------------------------- key setup pass
    def _tick_key_setup(self) -> bool:
        """One word of the forward expansion per cycle (40 cycles async).

        The sync-ROM build needs a fifth cycle per round to wait for
        the KStran read (50 cycles): word counter value 4 is the
        issue slot and words 0..3 shift one cycle later.
        """
        r = self.ks_round.value
        w = self.ks_word.value
        if self.sync_rom:
            return self._tick_key_setup_sync(r, w)
        value = self.keyunit.step_forward(w, r)
        self.counters.key_word()
        if w < 3:
            self.ks_word.next = w + 1
            return False
        committed = self.keyunit.commit_build(value, 3)
        self.ks_word.next = 0
        if r < NUM_ROUNDS:
            self.ks_round.next = r + 1
            return False
        self.keyunit.latch_last(committed)
        self.key_ready.next = 1
        self.top.next = _IDLE
        self.counters.setup_pass_end()
        return True

    def _tick_key_setup_sync(self, r: int, w: int) -> bool:
        if w == 0:  # issue the KStran read for this round
            self.keyunit.kstran_issue(self.keyunit.work_words()[3])
            self.ks_word.next = 1
            return False
        index = w - 1
        kstran = self.keyunit.kstran_data(r) if index == 0 else None
        value = self.keyunit.step_forward(index, r, kstran_value=kstran)
        self.counters.key_word()
        if index < 3:
            self.ks_word.next = w + 1
            return False
        committed = self.keyunit.commit_build(value, 3)
        self.ks_word.next = 0
        if r < NUM_ROUNDS:
            self.ks_round.next = r + 1
            return False
        self.keyunit.latch_last(committed)
        self.key_ready.next = 1
        self.top.next = _IDLE
        self.counters.setup_pass_end()
        return True

    # -------------------------------------------------------- cipher round
    def _active_direction(self) -> int:
        """The direction driving the datapath muxes.

        Single-direction devices have the direction hardwired — there
        is no mux for a flipped direction bit to steer, which matters
        for fault-injection fidelity.
        """
        if self.variant is Variant.ENCRYPT:
            return DIR_ENCRYPT
        if self.variant is Variant.DECRYPT:
            return DIR_DECRYPT
        return self.direction.value

    def _tick_run(self) -> bool:
        if self._active_direction() == DIR_ENCRYPT:
            if self.sync_rom:
                return self._tick_encrypt_sync()
            return self._tick_encrypt_async()
        if self.sync_rom:
            return self._tick_decrypt_sync()
        return self._tick_decrypt_async()

    def _state_words(self) -> Word4:
        return tuple(reg.value for reg in self.state)

    def _finish(self, result: Word4) -> bool:
        for reg, word in zip(self.out, result):
            reg.next = word
        self.data_ok.next = 1
        self.top.next = _IDLE
        self.blocks_processed += 1
        self.counters.block_end(self.simulator.cycle)
        return True

    # encrypt, asynchronous ROM: steps 0..3 ByteSub words, step 4 mix stage
    def _tick_encrypt_async(self) -> bool:
        r = self.round.value
        s = self.step.value
        assert self.sbox_f is not None
        if s <= 3:
            self.state[s].next = self.sbox_f.lookup(self.state[s].value)
            value = self.keyunit.step_forward(s, r)
            self.counters.bytesub()
            self.counters.key_word()
            if s == 3:
                self.keyunit.commit_build(value, 3)
            self.step.next = s + 1
            return False
        result = encrypt_mix_stage(
            self._state_words(),
            self.keyunit.work_words(),
            last_round=(r == NUM_ROUNDS),
        )
        self.counters.mix()
        self.counters.round_end()
        if r == NUM_ROUNDS:
            return self._finish(result)
        for reg, word in zip(self.state, result):
            reg.next = word
        self.round.next = r + 1
        self.step.next = 0
        return False

    # decrypt, asynchronous ROM: step 0 mix stage, steps 1..4 IByteSub
    def _tick_decrypt_async(self) -> bool:
        r = self.round.value
        s = self.step.value
        assert self.sbox_i is not None
        if s == 0:
            result = decrypt_mix_stage(
                self._state_words(),
                self.keyunit.work_words(),
                first_round=(r == NUM_ROUNDS),
            )
            self.counters.mix()
            for reg, word in zip(self.state, result):
                reg.next = word
            self.step.next = 1
            return False
        slot = s - 1
        key_index, key_value = self.keyunit.step_reverse(slot, r)
        substituted = self.sbox_i.lookup(self.state[slot].value)
        self.counters.bytesub()
        self.counters.key_word()
        if slot < 3:
            self.state[slot].next = substituted
            self.step.next = s + 1
            return False
        # Last IByteSub word of the round.
        self.keyunit.commit_build(key_value, key_index)
        self.counters.round_end()
        if r > 1:
            self.state[3].next = substituted
            self.round.next = r - 1
            self.step.next = 0
            return False
        # Final round: fold the last Add Key (K0) into the output edge.
        full = (
            self.state[0].value,
            self.state[1].value,
            self.state[2].value,
            substituted,
        )
        return self._finish(add_key_128(full, self.keyunit.key0_words()))

    # encrypt, synchronous ROM: 6 steps (pipelined reads)
    def _tick_encrypt_sync(self) -> bool:
        r = self.round.value
        s = self.step.value
        assert self.sbox_f is not None
        if s == 0:
            self.sbox_f.clock_read(self.state[0].value)
            self.keyunit.kstran_issue(self.keyunit.work_words()[3])
            self.counters.rom_issue()
            self.step.next = 1
            return False
        if 1 <= s <= 3:
            self.state[s - 1].next = self.sbox_f.registered_output
            self.sbox_f.clock_read(self.state[s].value)
            kstran = self.keyunit.kstran_data(r) if s == 1 else None
            self.keyunit.step_forward(s - 1, r, kstran_value=kstran)
            self.counters.bytesub()
            self.counters.key_word()
            self.step.next = s + 1
            return False
        if s == 4:
            self.state[3].next = self.sbox_f.registered_output
            value = self.keyunit.step_forward(3, r)
            self.keyunit.commit_build(value, 3)
            self.counters.bytesub()
            self.counters.key_word()
            self.step.next = 5
            return False
        result = encrypt_mix_stage(
            self._state_words(),
            self.keyunit.work_words(),
            last_round=(r == NUM_ROUNDS),
        )
        self.counters.mix()
        self.counters.round_end()
        if r == NUM_ROUNDS:
            return self._finish(result)
        for reg, word in zip(self.state, result):
            reg.next = word
        self.round.next = r + 1
        self.step.next = 0
        return False

    # decrypt, synchronous ROM: 6 steps
    def _tick_decrypt_sync(self) -> bool:
        r = self.round.value
        s = self.step.value
        assert self.sbox_i is not None
        if s == 0:
            result = decrypt_mix_stage(
                self._state_words(),
                self.keyunit.work_words(),
                first_round=(r == NUM_ROUNDS),
            )
            self.counters.mix()
            for reg, word in zip(self.state, result):
                reg.next = word
            self.step.next = 1
            return False
        if s == 1:
            self.sbox_i.clock_read(self.state[0].value)
            self.keyunit.step_reverse(0, r)  # build word 3
            self.counters.rom_issue()
            self.counters.key_word()
            self.step.next = 2
            return False
        if s == 2:
            self.state[0].next = self.sbox_i.registered_output
            self.sbox_i.clock_read(self.state[1].value)
            self.keyunit.step_reverse(1, r)  # build word 2
            self.keyunit.kstran_issue(self.keyunit.build[3].value)
            self.counters.bytesub()
            self.counters.key_word()
            self.step.next = 3
            return False
        if s == 3:
            self.state[1].next = self.sbox_i.registered_output
            self.sbox_i.clock_read(self.state[2].value)
            self.keyunit.step_reverse(2, r)  # build word 1
            self.keyunit.step_reverse(
                3, r, kstran_value=self.keyunit.kstran_data(r)
            )  # build word 0
            self.counters.bytesub()
            self.counters.key_word()
            self.counters.key_word()
            self.step.next = 4
            return False
        if s == 4:
            self.state[2].next = self.sbox_i.registered_output
            self.sbox_i.clock_read(self.state[3].value)
            self.counters.bytesub()
            self.step.next = 5
            return False
        # s == 5: last word arrives; commit the recovered round key.
        substituted = self.sbox_i.registered_output
        previous_key = tuple(reg.value for reg in self.keyunit.build)
        self.keyunit.load_work(previous_key)
        self.counters.bytesub()
        self.counters.round_end()
        if r > 1:
            self.state[3].next = substituted
            self.round.next = r - 1
            self.step.next = 0
            return False
        full = (
            self.state[0].value,
            self.state[1].value,
            self.state[2].value,
            substituted,
        )
        return self._finish(add_key_128(full, self.keyunit.key0_words()))

    # ------------------------------------------------------- combinational
    def _drive_outputs(self) -> None:
        self.dout.value = words_to_int(self.out_words())
