"""The 4-S-box substitution unit — the paper's central area trade.

One S-box is a 256-entry x 8-bit ROM (2048 bits).  Substituting a full
128-bit state in one clock needs 16 of them (32768 bits); the paper
instead builds a **32-bit unit with 4 S-boxes (8192 bits)** and feeds
the state through it one word per clock.  The key schedule's KStran
owns a second 4-S-box bank, bringing the encrypt device to 16384
memory bits — the figure in Table 2.

Two read disciplines are modeled:

- ``async`` — combinational read, as the Acex1K EABs provide.  This is
  what the paper shipped.
- ``sync`` — registered read (one-cycle latency), the only mode
  Cyclone block RAM supports.  The paper left "several modifications"
  for future work; :class:`~repro.ip.core.RijndaelCore` implements
  them when built with a sync unit (the round stretches to 6 cycles).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.aes.constants import INV_SBOX, SBOX, SBOX_ROM_BITS
from repro.rtl.signal import Register

#: Number of S-box ROMs in one unit (one per byte lane of a word).
LANES = 4

#: ROM bits in one 4-S-box unit.
UNIT_ROM_BITS = LANES * SBOX_ROM_BITS


class SboxRom:
    """A single 256 x 8 ROM holding one substitution table."""

    __slots__ = ("_table", "inverse")

    def __init__(self, inverse: bool = False):
        self.inverse = inverse
        self._table: Sequence[int] = INV_SBOX if inverse else SBOX

    @property
    def bits(self) -> int:
        """ROM capacity in bits (2048)."""
        return SBOX_ROM_BITS

    def read(self, address: int) -> int:
        """Asynchronous read: data is a pure function of the address."""
        if not 0 <= address <= 0xFF:
            raise ValueError(f"ROM address out of range: {address!r}")
        return self._table[address]


class SubWordUnit:
    """Four parallel S-box ROMs substituting one 32-bit word per clock.

    With ``sync_rom=False`` (Acex1K-style asynchronous EABs) the lookup
    is combinational: :meth:`lookup` returns the substituted word the
    same cycle.  With ``sync_rom=True`` the unit owns an output
    register: callers drive :meth:`clock_read` during the clocked
    phase and consume :attr:`registered_output` one cycle later.
    """

    def __init__(self, name: str, inverse: bool = False,
                 sync_rom: bool = False):
        self.name = name
        self.inverse = inverse
        self.sync_rom = sync_rom
        self._roms: Tuple[SboxRom, ...] = tuple(
            SboxRom(inverse) for _ in range(LANES)
        )
        self._out_reg = (
            Register(f"{name}_q", 32) if sync_rom else None
        )

    @property
    def rom_bits(self) -> int:
        """Total ROM bits in this unit (8192)."""
        return sum(rom.bits for rom in self._roms)

    @property
    def registers(self) -> Tuple[Register, ...]:
        """Registers this unit owns (empty for the async flavour)."""
        if self._out_reg is None:
            return ()
        return (self._out_reg,)

    def lookup(self, word: int) -> int:
        """Combinational 32-bit substitution (async ROM only)."""
        if self.sync_rom:
            raise RuntimeError(
                f"{self.name}: synchronous ROM has no combinational read; "
                "use clock_read/registered_output"
            )
        return self._substitute(word)

    def clock_read(self, word: int) -> None:
        """Present an address word to a synchronous ROM (clocked phase)."""
        if self._out_reg is None:
            raise RuntimeError(
                f"{self.name}: asynchronous ROM has no clocked read; "
                "use lookup"
            )
        self._out_reg.next = self._substitute(word)

    @property
    def registered_output(self) -> int:
        """Last clocked read's data (sync ROM only, valid next cycle)."""
        if self._out_reg is None:
            raise RuntimeError(
                f"{self.name}: asynchronous ROM has no registered output"
            )
        return self._out_reg.value

    def _substitute(self, word: int) -> int:
        if not 0 <= word <= 0xFFFFFFFF:
            raise ValueError(f"word out of range: {word!r}")
        out = 0
        for lane in range(LANES):
            shift = 8 * (LANES - 1 - lane)
            out |= self._roms[lane].read((word >> shift) & 0xFF) << shift
        return out
