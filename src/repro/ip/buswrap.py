"""Narrow-bus wrappers — the paper's §4 integration story, in RTL.

"If the implementations require only the Rijndael core, a simple
interface could be built using 32 or 16 [bit] data bus.  Lower bus
sizes could not be sufficient to provide or to take the data from
device in full rate operation."

:class:`NarrowBusWrapper` is that simple interface as a synthesizable
structure on the simulation kernel: a shift-in register accumulates
host beats into a 128-bit block (data or key, steered by ``setup``),
presents it to the core for one cycle, and a shift-out register
serializes results.  :class:`NarrowBusHost` drives it with the
2-cycle strobed beat protocol (data cycle + strobe turnaround) that
the full-rate analysis in :mod:`repro.ip.interface` assumes — so the
"16 bits sustains full rate, 8 bits does not" claim is *measured*
here, not just computed.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ip.core import RijndaelCore
from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator

#: Wrapper bus widths the paper's discussion covers.
LEGAL_WIDTHS = (8, 16, 32, 64)


class NarrowBusWrapper:
    """Serial-to-parallel bridge between a W-bit host bus and the core.

    Host-side pins:

    - ``h_wr`` / ``h_din``   — write one beat (MSB-first packing);
    - ``h_rd`` / ``h_dout``  — read one beat of the held result;
    - ``h_setup``            — forwarded to the core's setup pin: with
      setup high a completed block loads the *key*, otherwise *data*;
    - ``h_encdec``           — sampled into the block's direction;
    - ``h_out_valid``        — a result is held and beats remain.

    Timing: the block is handed to the core one cycle after its last
    beat (the presentation register), and a result is available for
    reading one cycle after the core's ``data_ok`` strobe.

    Read-side discipline: the hold register always captures the
    *freshest* result — a host that has not drained the previous
    result by the time the next ``data_ok`` fires loses the older one.
    At full rate that window is >= 50 cycles, far above the 4..32
    drain cycles any legal width needs, so the constraint only binds
    hosts that stall mid-read.
    """

    def __init__(self, simulator: Simulator, core: RijndaelCore,
                 width: int):
        if width not in LEGAL_WIDTHS:
            raise ValueError(f"bus width must be one of {LEGAL_WIDTHS}")
        self.simulator = simulator
        self.core = core
        self.width = width
        self.beats_per_block = 128 // width
        name = f"{core.name}_bus{width}"

        # Host pins.
        self.h_wr = Signal(f"{name}_h_wr", 1)
        self.h_din = Signal(f"{name}_h_din", width)
        self.h_rd = Signal(f"{name}_h_rd", 1)
        self.h_dout = Signal(f"{name}_h_dout", width)
        self.h_setup = Signal(f"{name}_h_setup", 1)
        self.h_encdec = Signal(f"{name}_h_encdec", 1)
        self.h_out_valid = Signal(f"{name}_h_out_valid", 1)

        reg = simulator.register
        self.shift_in = reg(f"{name}_shift_in", 128)
        self.in_count = reg(f"{name}_in_count", 5)
        self.pending = reg(f"{name}_pending", 1)
        self.pending_is_key = reg(f"{name}_pending_is_key", 1)
        self.pending_dir = reg(f"{name}_pending_dir", 1)
        self.out_hold = reg(f"{name}_out_hold", 128)
        self.out_left = reg(f"{name}_out_left", 5)

        #: Host writes dropped because a block was already pending.
        self.overflows = 0

        simulator.add_clocked(self._tick)
        simulator.add_comb(self._drive)

    # ---------------------------------------------------------- clocked
    def _tick(self) -> None:
        self._tick_input()
        self._tick_output()

    def _tick_input(self) -> None:
        presented = self._presenting_data() or self._presenting_key()
        if presented:
            # The core captures on this edge; retire the presentation.
            self.pending.next = 0

        if not self.h_wr.value:
            return
        if self.pending.value and not presented:
            # Still holding a block the core has not taken.
            self.overflows += 1
            return
        count = self.in_count.value
        shifted = (
            (self.shift_in.value << self.width) | self.h_din.value
        ) & ((1 << 128) - 1)
        self.shift_in.next = shifted
        if count + 1 < self.beats_per_block:
            self.in_count.next = count + 1
            return
        # Last beat: arm the presentation register.
        self.in_count.next = 0
        self.pending.next = 1
        self.pending_is_key.next = self.h_setup.value
        self.pending_dir.next = self.h_encdec.value

    def _tick_output(self) -> None:
        if self.core.data_ok.value == 1:
            self.out_hold.next = int.from_bytes(
                self.core.out_block(), "big"
            )
            self.out_left.next = self.beats_per_block
            return
        if self.h_rd.value and self.out_left.value > 0:
            self.out_left.next = self.out_left.value - 1

    # ----------------------------------------------------- combinational
    def _presenting_data(self) -> bool:
        return bool(
            self.pending.value
            and not self.pending_is_key.value
            and self.core.can_accept
        )

    def _presenting_key(self) -> bool:
        return bool(self.pending.value and self.pending_is_key.value)

    def _drive(self) -> None:
        core = self.core
        if self._presenting_key():
            core.setup.value = 1
            core.wr_key.value = 1
            core.wr_data.value = 0
            core.din.value = self.shift_in.value
        elif self._presenting_data():
            core.setup.value = 0
            core.wr_key.value = 0
            core.wr_data.value = 1
            core.din.value = self.shift_in.value
            core.encdec.value = self.pending_dir.value
        else:
            core.setup.value = 0
            core.wr_key.value = 0
            core.wr_data.value = 0
        left = self.out_left.value
        self.h_out_valid.value = 1 if left > 0 else 0
        if left > 0:
            beat_index = self.beats_per_block - left
            shift = 128 - self.width * (beat_index + 1)
            mask = (1 << self.width) - 1
            self.h_dout.value = (self.out_hold.value >> shift) & mask
        else:
            self.h_dout.value = 0


class NarrowBusHost:
    """Drives a :class:`NarrowBusWrapper` with the 2-cycle beat
    protocol and measures sustained block periods."""

    def __init__(self, width: int, sync_rom: bool = False,
                 variant=None):
        from repro.ip.control import Variant

        self.simulator = Simulator()
        self.core = RijndaelCore(
            self.simulator,
            variant=variant or Variant.ENCRYPT,
            sync_rom=sync_rom,
        )
        self.bus = NarrowBusWrapper(self.simulator, self.core, width)
        self._idle()

    def _idle(self) -> None:
        self.bus.h_wr.value = 0
        self.bus.h_rd.value = 0
        self.bus.h_din.value = 0
        self.bus.h_setup.value = 0
        self.bus.h_encdec.value = 0

    def _beats(self, block: bytes) -> List[int]:
        value = int.from_bytes(block, "big")
        width = self.bus.width
        count = self.bus.beats_per_block
        return [
            (value >> (128 - width * (i + 1))) & ((1 << width) - 1)
            for i in range(count)
        ]

    def write_block(self, block: bytes, is_key: bool = False,
                    direction: int = 0) -> int:
        """Write one block over the bus; returns cycles consumed.

        Each beat takes 2 cycles: data+strobe, then turnaround.
        """
        cycles = 0
        for beat in self._beats(block):
            self.bus.h_wr.value = 1
            self.bus.h_din.value = beat
            self.bus.h_setup.value = 1 if is_key else 0
            self.bus.h_encdec.value = direction
            self.simulator.step()
            self._idle()
            self.simulator.step()
            cycles += 2
        return cycles

    def load_key(self, key: bytes) -> None:
        """Write the key and wait out any setup pass."""
        self.write_block(key, is_key=True)
        self.simulator.step(2)  # presentation + capture
        self.simulator.run_until(lambda: not self.core.busy,
                                 max_cycles=200)

    def read_block(self) -> Tuple[bytes, int]:
        """Collect one result over the bus; returns (block, cycles)."""
        cycles = self.simulator.run_until(
            lambda: self.bus.h_out_valid.value == 1,
            max_cycles=8 * self.core.latency_cycles,
        )
        beats = []
        for _ in range(self.bus.beats_per_block):
            beats.append(self.bus.h_dout.value)
            self.bus.h_rd.value = 1
            self.simulator.step()
            self.bus.h_rd.value = 0
            self.simulator.step()
            cycles += 2
        value = 0
        for beat in beats:
            value = (value << self.bus.width) | beat
        return value.to_bytes(16, "big"), cycles

    def process_block(self, block: bytes,
                      direction: int = 0) -> Tuple[bytes, int]:
        """Write, process and read one block; returns (result, cycles)."""
        start = self.simulator.cycle
        self.write_block(block, direction=direction)
        result, _ = self.read_block()
        return result, self.simulator.cycle - start

    def stream(self, blocks: List[bytes],
               direction: int = 0) -> Tuple[List[bytes], List[int]]:
        """Stream blocks back to back over the bus; returns results
        and the cycle stamp of each completed read-out.

        The host interleaves: while block n processes, it writes block
        n+1, then drains block n's result.  The measured steady-state
        period is what the §4 bus-width claim is about.
        """
        results: List[bytes] = []
        stamps: List[int] = []
        if not blocks:
            return results, stamps
        self.write_block(blocks[0], direction=direction)
        for nxt in list(blocks[1:]) + [None]:
            if nxt is not None:
                self.write_block(nxt, direction=direction)
            block, _ = self.read_block()
            results.append(block)
            stamps.append(self.simulator.cycle)
        return results, stamps
