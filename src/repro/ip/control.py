"""Control definitions for the IP core: variants, FSM states, timing.

The paper implements three devices (§4): encrypt-only, decrypt-only,
and a combined device with an ``enc/dec`` select pin.
:class:`Variant` names them; the core refuses operations a variant's
hardware does not contain.

The round schedule is the paper's headline micro-architecture number:
with asynchronous S-box ROMs a round is **5 cycles** — 4 for the
32-bit (I)Byte Sub passes plus 1 for the 128-bit Shift Row / Mix
Column / Add Key stage — against 12 cycles for an all-32-bit design
(4 ByteSub + 4 MixColumn + 4 ShiftRow/AddKey word passes).  A block is
10 rounds, i.e. **50 cycles**.  The synchronous-ROM variant (the
paper's future work, needed to use Cyclone block RAM) stretches the
round to 6 cycles by pipelining the ROM reads.
"""

from __future__ import annotations

import enum

#: AES-128 round count.
NUM_ROUNDS = 10


class Variant(enum.Enum):
    """Which directions the synthesized device contains (paper §4)."""

    ENCRYPT = "encrypt"
    DECRYPT = "decrypt"
    BOTH = "both"

    @property
    def can_encrypt(self) -> bool:
        return self is not Variant.DECRYPT

    @property
    def can_decrypt(self) -> bool:
        return self is not Variant.ENCRYPT

    @property
    def needs_setup_pass(self) -> bool:
        """Decrypt-capable devices must derive the last round key."""
        return self.can_decrypt


class Phase(enum.Enum):
    """Top-level FSM state of the core."""

    IDLE = "idle"
    KEY_SETUP = "key_setup"
    RUN = "run"


def cycles_per_round(sync_rom: bool) -> int:
    """Clock cycles per cipher round (5 async, 6 with sync ROM)."""
    return 6 if sync_rom else 5


def block_latency(sync_rom: bool = False) -> int:
    """Cycles from data capture to result latch (50 async, 60 sync)."""
    return NUM_ROUNDS * cycles_per_round(sync_rom)


def key_setup_cycles(sync_rom: bool = False) -> int:
    """Cycles of the post-``wr_key`` setup pass (one word per cycle
    async = 40; the sync pipeline needs 5 per round = 50)."""
    return NUM_ROUNDS * (5 if sync_rom else 4)


def all_32bit_cycles_per_round() -> int:
    """Round cycles if *every* function ran 32 bits wide (paper §4).

    Byte Sub, Mix Column and the combined Shift Row/Add Key would each
    take 4 word passes: 12 cycles, the paper's stated baseline.
    """
    return 12
