"""Pin-level interface description — the paper's Table 1.

The paper argues (§4) that a high pin count "does not represent a
problem" for an IP core, because an integrating design talks to the
core's internal signals; narrower 32- or 16-bit bus wrappers are
possible, while "lower bus sizes could not be sufficient to provide or
to take the data from device in full rate operation" — a claim the
bus-width analysis in :func:`min_bus_width_for_full_rate` makes
precise and a benchmark verifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.ip.control import Variant, block_latency


@dataclass(frozen=True)
class SignalSpec:
    """One row of Table 1."""

    name: str
    direction: str  # "in" / "out"
    width: int
    description: str
    both_only: bool = False


#: The device signals exactly as listed in the paper's Table 1.
DEVICE_SIGNALS: Tuple[SignalSpec, ...] = (
    SignalSpec("clk", "in", 1,
               "Control the clock signal in all blocks."),
    SignalSpec("setup", "in", 1,
               "Determine the period of configuration/operation."),
    SignalSpec("wr_data", "in", 1,
               "Indicate that the data in to be processed are in the bus."),
    SignalSpec("wr_key", "in", 1,
               "Indicate that a new key to be processed are in the bus."),
    SignalSpec("din", "in", 128, "Data and key in."),
    SignalSpec("enc/dec", "in", 1,
               "Determine if the device must execute a encryption or a "
               "decryption.", both_only=True),
    SignalSpec("data_ok", "out", 1,
               "Indicate the permission of read/write in the bus."),
    SignalSpec("dout", "out", 128, "Data out."),
)


def pin_count(variant: Variant) -> int:
    """Total device pins for a variant (261, or 262 for BOTH).

    Matches the paper's Table 2 "Pins" rows: the ``enc/dec`` pin only
    exists on the combined device.
    """
    return sum(
        spec.width
        for spec in DEVICE_SIGNALS
        if not spec.both_only or variant is Variant.BOTH
    )


def signal_table(variant: Variant = Variant.BOTH) -> str:
    """Render Table 1 as text (the Table 1 reproduction bench)."""
    lines = [f"{'Signal':<10}{'In/Out':<8}{'Width':<7}Description"]
    lines.append("-" * 72)
    for spec in DEVICE_SIGNALS:
        if spec.both_only and variant is not Variant.BOTH:
            continue
        note = " *" if spec.both_only else ""
        lines.append(
            f"{spec.name:<10}{spec.direction.upper():<8}"
            f"{spec.width:<7}{spec.description}{note}"
        )
    if variant is Variant.BOTH:
        lines.append("* enc/dec signal exists only on the combined device.")
    lines.append(f"Total pins: {pin_count(variant)}")
    return "\n".join(lines)


#: Fraction of the block period the data bus may consume while leaving
#: room for key loads, handshake turnaround and host-side scheduling
#: jitter.  With this margin the model reproduces the paper's §4
#: recommendation: 16- and 32-bit wrapper buses sustain full rate,
#: "lower bus sizes could not be sufficient".
MAX_BUS_UTILIZATION = 0.75

#: Cycles per bus beat in a narrow wrapper: one to present the data,
#: one for the write/read strobe handshake.
BEAT_CYCLES = 2


def min_bus_width_for_full_rate(sync_rom: bool = False) -> int:
    """Smallest power-of-two bus that sustains full-rate operation.

    A block needs 128 bits in and 128 bits out per ``block_latency``
    cycles.  A wrapper bus of width W needs ceil(128/W) write beats
    and as many read beats, each costing BEAT_CYCLES (data + strobe);
    input writes overlap processing (the Data_In register) and reads
    overlap too (the Out register), but both share the single bus.
    Full rate therefore needs
    2 * BEAT_CYCLES * ceil(128/W) <= latency * MAX_BUS_UTILIZATION:
    with a 50-cycle block an 8-bit bus spends 64 cycles per block just
    moving data — insufficient — while 16 bits needs 32 of the 37.5
    permitted and fits, matching the paper's §4 recommendation that
    16- or 32-bit wrappers work and "lower bus sizes could not be
    sufficient".
    """
    latency = block_latency(sync_rom)
    budget = latency * MAX_BUS_UTILIZATION
    width = 1
    while 2 * BEAT_CYCLES * math.ceil(128 / width) > budget:
        width *= 2
    return width


def bus_utilization(width: int, sync_rom: bool = False) -> float:
    """Fraction of the block period the shared bus is busy at width W."""
    if width < 1:
        raise ValueError("bus width must be positive")
    latency = block_latency(sync_rom)
    return 2 * BEAT_CYCLES * math.ceil(128 / width) / latency


def interface_inventory(variant: Variant) -> List[str]:
    """The Fig. 9 top-level inventory: processes and their registers."""
    lines = [
        f"Top level ({variant.value} device):",
        "  Data_In process : 128-bit capture register + 1-deep pending "
        "buffer (wr_data, clk)",
        "  Key_In process  : 128-bit key register (wr_key, setup, clk)",
        "  Rijndael process: 4x32-bit state, round/step FSM, "
        "on-the-fly key unit",
        "  Out process     : 128-bit result register driving dout, "
        "data_ok strobe",
    ]
    if variant is Variant.BOTH:
        lines.append("  enc/dec pin     : sampled at block start")
    return lines
