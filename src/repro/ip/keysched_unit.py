"""On-the-fly round-key generator — the paper's Round Key Function unit.

The unit owns:

- the **cipher-key latch** (K0, loaded by ``wr_key``),
- the **last-round-key latch** (K10, filled by the setup pass so
  decryption can start immediately at any later block),
- a **working register** holding the round key currently in use, and
- a **build register** accumulating the next round key one 32-bit
  word per clock — in lock-step with the ByteSub cycles, so key
  generation costs no extra time ("the key generation is slower than
  the cipher part" is the paper's §6 scaling argument: at 32 bits per
  clock the schedule exactly keeps up; a wider datapath would outrun
  it).
- its own 4-S-box :class:`~repro.ip.sbox_unit.SubWordUnit` for KStran
  (always the *forward* table, even when deciphering).

Forward stepping produces K_r from K_{r-1} in word order 0, 1, 2, 3;
reverse stepping produces K_{r-1} from K_r in word order 3, 2, 1, 0
(word 0 last because it needs KStran of the *recovered* word 3).
"""

from __future__ import annotations

from typing import Tuple

from repro.aes.constants import RCON
from repro.ip.sbox_unit import SubWordUnit
from repro.rtl.signal import Register

Word4 = Tuple[int, int, int, int]

_MASK32 = 0xFFFFFFFF


def rot_word_hw(word: int) -> int:
    """Byte-rotate left — pure wiring in hardware (no logic cost)."""
    return ((word << 8) | (word >> 24)) & _MASK32


class KeyScheduleUnit:
    """Registers + KStran S-boxes for on-the-fly round keys."""

    def __init__(self, name: str = "ksu", sync_rom: bool = False):
        self.name = name
        self.sbox = SubWordUnit(f"{name}_kstran", inverse=False,
                                sync_rom=sync_rom)
        self.key0 = [Register(f"{name}_key0_{i}", 32) for i in range(4)]
        self.key_last = [
            Register(f"{name}_keylast_{i}", 32) for i in range(4)
        ]
        self.work = [Register(f"{name}_work_{i}", 32) for i in range(4)]
        self.build = [Register(f"{name}_build_{i}", 32) for i in range(4)]

    @property
    def registers(self) -> Tuple[Register, ...]:
        """All registers this unit owns (for simulator adoption)."""
        return tuple(
            self.key0 + self.key_last + self.work + self.build
        ) + self.sbox.registers

    @property
    def rom_bits(self) -> int:
        """ROM bits in the KStran S-boxes (8192)."""
        return self.sbox.rom_bits

    # ----------------------------------------------------------- key loading
    def load_key(self, words: Word4) -> None:
        """Latch a new cipher key (the ``wr_key`` edge)."""
        for reg, word in zip(self.key0, words):
            reg.next = word

    def key0_words(self) -> Word4:
        """The latched cipher key K0."""
        return tuple(reg.value for reg in self.key0)

    def key_last_words(self) -> Word4:
        """The latched last round key (valid after the setup pass)."""
        return tuple(reg.value for reg in self.key_last)

    def work_words(self) -> Word4:
        """The working round key currently feeding the datapath."""
        return tuple(reg.value for reg in self.work)

    def load_work(self, words: Word4) -> None:
        """Point the working register at a round key (block start)."""
        for reg, word in zip(self.work, words):
            reg.next = word

    def latch_last(self, words: Word4) -> None:
        """Store the final round key (end of the setup pass)."""
        for reg, word in zip(self.key_last, words):
            reg.next = word

    # ------------------------------------------------------ kstran (shared)
    def kstran_now(self, word: int, round_index: int) -> int:
        """Combinational KStran (paper Fig. 3): rotate, SubWord, Rcon.

        Only legal with asynchronous S-boxes; the sync-ROM variant
        splits this across :meth:`kstran_issue` / :meth:`kstran_data`.
        """
        return self.sbox.lookup(rot_word_hw(word)) ^ (
            RCON[round_index] << 24
        )

    def kstran_issue(self, word: int) -> None:
        """Present the rotated word to synchronous KStran S-boxes."""
        self.sbox.clock_read(rot_word_hw(word))

    def kstran_data(self, round_index: int) -> int:
        """Collect last cycle's synchronous KStran read, Rcon applied."""
        return self.sbox.registered_output ^ (RCON[round_index] << 24)

    # ------------------------------------------------- forward word stepping
    def forward_word(self, index: int, round_index: int,
                     kstran_value: "int | None" = None) -> int:
        """Compute word ``index`` of the next round key (combinational).

        Word 0 consumes KStran of the working key's word 3 — passed in
        explicitly when the S-box is synchronous, computed on the spot
        otherwise.  Words 1..3 XOR the previous *build* word with the
        working key word, so they must be evaluated on consecutive
        cycles after their predecessor committed.
        """
        work = self.work_words()
        if index == 0:
            if kstran_value is None:
                kstran_value = self.kstran_now(work[3], round_index)
            return work[0] ^ kstran_value
        return work[index] ^ self.build[index - 1].value

    def step_forward(self, index: int, round_index: int,
                     kstran_value: "int | None" = None) -> int:
        """Clocked forward step: schedule build[index]; returns the value.

        On the final word (index 3) the caller typically also commits
        the completed key into the working register via
        :meth:`commit_build` so the round key is ready next cycle.
        """
        value = self.forward_word(index, round_index, kstran_value)
        self.build[index].next = value
        return value

    # ------------------------------------------------- reverse word stepping
    def reverse_word(self, slot: int, round_index: int,
                     kstran_value: "int | None" = None) -> Tuple[int, int]:
        """Compute one word of the *previous* round key.

        ``slot`` is the cycle index 0..3 within the round; the words
        come out in order 3, 2, 1, 0.  Returns ``(word_index, value)``.
        """
        work = self.work_words()
        if slot == 0:
            return 3, work[3] ^ work[2]
        if slot == 1:
            return 2, work[2] ^ work[1]
        if slot == 2:
            return 1, work[1] ^ work[0]
        if slot == 3:
            recovered_w3 = self.build[3].value
            if kstran_value is None:
                kstran_value = self.kstran_now(recovered_w3, round_index)
            return 0, work[0] ^ kstran_value
        raise ValueError(f"slot out of range: {slot}")

    def step_reverse(self, slot: int, round_index: int,
                     kstran_value: "int | None" = None) -> Tuple[int, int]:
        """Clocked reverse step: schedule the build word; returns it."""
        index, value = self.reverse_word(slot, round_index, kstran_value)
        self.build[index].next = value
        return index, value

    # ------------------------------------------------------------ committing
    def commit_build(self, final_value: int, final_index: int) -> Word4:
        """Move the completed build into the working register.

        Called on the same edge that writes the last build word, so the
        committed key combines the three latched words with the final
        combinational one.  Returns the full new round key.
        """
        words = [reg.value for reg in self.build]
        words[final_index] = final_value
        for reg, word in zip(self.work, words):
            reg.next = word
        return tuple(words)
