"""Bus-protocol testbench for the IP core (the ModelSim bench substitute).

Drives the pin protocol the way a host system would:

- :meth:`Testbench.load_key` — raise ``setup``, pulse ``wr_key`` with
  the key on ``din``, then wait out the key-setup pass (decrypt-capable
  variants derive the last round key during this window);
- :meth:`Testbench.process_block` — pulse ``wr_data`` with a block on
  ``din`` and collect the result at the ``data_ok`` strobe, returning
  the output block and the measured capture-to-result latency;
- :meth:`Testbench.stream_blocks` — back-to-back streaming that
  exploits the Data_In register: the next block is written while the
  current one is processing, so the steady-state period equals the
  block latency exactly (zero bus gap) — the property that makes
  throughput = 128 bits / latency in the paper's Table 2.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.ip.control import Variant, key_setup_cycles
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT, RijndaelCore
from repro.rtl.simulator import Simulator


class Testbench:
    """Owns a simulator + core and speaks the Table 1 protocol."""

    # Not a pytest test class, despite the name.
    __test__ = False

    def __init__(self, variant: Variant = Variant.BOTH,
                 sync_rom: bool = False, hardened: bool = False):
        self.simulator = Simulator()
        if hardened:
            from repro.ip.hardened import HardenedRijndaelCore

            self.core = HardenedRijndaelCore(
                self.simulator, variant=variant, sync_rom=sync_rom
            )
        else:
            self.core = RijndaelCore(self.simulator, variant=variant,
                                     sync_rom=sync_rom)
        self._idle_pins()

    # ------------------------------------------------------------ plumbing
    def _idle_pins(self) -> None:
        core = self.core
        core.setup.value = 0
        core.wr_data.value = 0
        core.wr_key.value = 0
        core.din.value = 0
        core.encdec.value = 0

    @staticmethod
    def _block_to_int(block: bytes) -> int:
        block = bytes(block)
        if len(block) != 16:
            raise ValueError(f"bus blocks are 16 bytes, got {len(block)}")
        return int.from_bytes(block, "big")

    # ------------------------------------------------------------ protocol
    def load_key(self, key: bytes, wait: bool = True) -> int:
        """Drive the configuration period: latch a key via ``wr_key``.

        Returns the number of cycles consumed.  With ``wait=True``
        (default) the bench holds until the core is ready again —
        i.e. it absorbs the 40-cycle setup pass on decrypt-capable
        variants (50 on sync-ROM builds).
        """
        core = self.core
        core.setup.value = 1
        core.wr_key.value = 1
        core.din.value = self._block_to_int(key)
        self.simulator.step()  # the wr_key edge
        self._idle_pins()
        consumed = 1
        if wait and core.variant.needs_setup_pass:
            expected = key_setup_cycles(core.sync_rom)
            self.simulator.run_until(
                lambda: not core.busy, max_cycles=expected + 4
            )
            consumed = 1 + expected
        return consumed

    def write_block(self, block: bytes,
                    direction: Optional[int] = None) -> None:
        """One ``wr_data`` pulse (does not wait for the result)."""
        core = self.core
        core.setup.value = 0
        core.wr_data.value = 1
        core.din.value = self._block_to_int(block)
        if direction is not None:
            core.encdec.value = direction
        self.simulator.step()
        self._idle_pins()

    def wait_result(self, max_cycles: int = 200) -> bytes:
        """Step until the ``data_ok`` strobe; returns the output block."""
        core = self.core
        self.simulator.run_until(
            lambda: core.data_ok.value == 1, max_cycles=max_cycles
        )
        return core.out_block()

    def process_block(
        self, block: bytes, direction: Optional[int] = None
    ) -> Tuple[bytes, int]:
        """Write one block and collect (result, capture-to-result latency).

        Latency is counted in clock cycles from the ``wr_data`` edge
        that captured the block to the edge that raised ``data_ok`` —
        the quantity the paper multiplies by the clock period to get
        its 700/750/850 ns figures.
        """
        self.write_block(block, direction)
        start = self.simulator.cycle  # the capture edge has just passed
        result = self.wait_result(max_cycles=4 * self.core.latency_cycles)
        return result, self.simulator.cycle - start

    def encrypt(self, block: bytes) -> Tuple[bytes, int]:
        """Encrypt one block (convenience around :meth:`process_block`)."""
        return self.process_block(block, direction=DIR_ENCRYPT)

    def decrypt(self, block: bytes) -> Tuple[bytes, int]:
        """Decrypt one block."""
        return self.process_block(block, direction=DIR_DECRYPT)

    def stream_blocks(
        self,
        blocks: Sequence[bytes],
        direction: Optional[int] = None,
    ) -> Tuple[List[bytes], List[int]]:
        """Stream blocks back-to-back using the input buffer.

        Writes block *n+1* as soon as the core has popped block *n*
        into the engine, then collects results at each ``data_ok``
        strobe.  Returns (results, result-edge cycle numbers); tests
        assert that steady-state result spacing equals the block
        latency — the zero-overhead streaming the Data_In/Out
        registers exist for.
        """
        core = self.core
        results: List[bytes] = []
        stamps: List[int] = []
        pending = list(blocks)
        if not pending:
            return results, stamps
        self.write_block(pending.pop(0), direction)
        budget = (len(blocks) + 2) * 4 * core.latency_cycles
        while len(results) < len(blocks):
            if pending and core.can_accept:
                self.write_block(pending.pop(0), direction)
            else:
                self.simulator.step()
            if core.data_ok.value == 1:
                results.append(core.out_block())
                stamps.append(self.simulator.cycle)
            budget -= 1
            if budget <= 0:
                raise TimeoutError("streaming did not complete in budget")
        return results, stamps
