"""A small structural VHDL checker for the generator's output.

Without a VHDL simulator in the environment, the next best guard
against emitting garbage is a structural lint: paired design units,
balanced processes and case statements, every entity port referenced
by its architecture, and no stray characters outside the VHDL subset
the generator uses.  It is intentionally a *checker for our emitted
subset*, not a general VHDL front end.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Tuple


class LintError(ValueError):
    """Raised when generated VHDL fails a structural check."""


@dataclass(frozen=True)
class LintReport:
    """What the linter found in one file."""

    entities: Tuple[str, ...]
    architectures: Tuple[Tuple[str, str], ...]  # (arch name, entity)
    packages: Tuple[str, ...]
    processes: int
    ports: Tuple[str, ...]


_ENTITY_RE = re.compile(r"^\s*entity\s+(\w+)\s+is", re.MULTILINE)
_END_ENTITY_RE = re.compile(r"^\s*end\s+entity\s+(\w+)\s*;",
                            re.MULTILINE)
_ARCH_RE = re.compile(
    r"^\s*architecture\s+(\w+)\s+of\s+(\w+)\s+is", re.MULTILINE
)
_END_ARCH_RE = re.compile(r"^\s*end\s+architecture\s+(\w+)\s*;",
                          re.MULTILINE)
_PACKAGE_RE = re.compile(r"^\s*package\s+(\w+)\s+is", re.MULTILINE)
_END_PACKAGE_RE = re.compile(r"^\s*end\s+package\s+(\w+)\s*;",
                             re.MULTILINE)
_PROCESS_RE = re.compile(r"^\s*(\w+)\s*:\s*process\b", re.MULTILINE)
_END_PROCESS_RE = re.compile(r"^\s*end\s+process\b", re.MULTILINE)
_PORT_RE = re.compile(r"^\s*(\w+)\s*:\s*(?:in|out|inout)\s",
                      re.MULTILINE)
_CASE_RE = re.compile(r"\bcase\b")
_END_CASE_RE = re.compile(r"\bend\s+case\b")
_IF_RE = re.compile(r"(?<![\w.])if\b")
_END_IF_RE = re.compile(r"\bend\s+if\b")
_ELSIF_RE = re.compile(r"\belsif\b")


def _strip_comments(text: str) -> str:
    return "\n".join(line.split("--", 1)[0] for line in text.splitlines())


def lint_vhdl(text: str, filename: str = "<vhdl>") -> LintReport:
    """Structurally check one VHDL file; raises :class:`LintError`."""
    code = _strip_comments(text)

    entities = _ENTITY_RE.findall(code)
    end_entities = _END_ENTITY_RE.findall(code)
    if sorted(entities) != sorted(end_entities):
        raise LintError(
            f"{filename}: entity/end-entity mismatch: "
            f"{entities} vs {end_entities}"
        )

    archs = _ARCH_RE.findall(code)
    end_archs = _END_ARCH_RE.findall(code)
    if len(archs) != len(end_archs):
        raise LintError(f"{filename}: architecture/end mismatch")
    for arch_name, entity_name in archs:
        if entity_name not in entities and not _is_external(code,
                                                            entity_name):
            raise LintError(
                f"{filename}: architecture {arch_name} targets unknown "
                f"entity {entity_name}"
            )

    packages = _PACKAGE_RE.findall(code)
    end_packages = _END_PACKAGE_RE.findall(code)
    if sorted(packages) != sorted(end_packages):
        raise LintError(f"{filename}: package/end-package mismatch")

    processes = _PROCESS_RE.findall(code)
    if len(processes) != len(_END_PROCESS_RE.findall(code)):
        raise LintError(f"{filename}: process/end-process mismatch")

    # "end case" itself contains the token "case" (likewise "end if"),
    # so openings = total occurrences minus the closers' share.
    case_total = len(_CASE_RE.findall(code))
    case_ends = len(_END_CASE_RE.findall(code))
    if case_total - case_ends != case_ends:
        raise LintError(f"{filename}: case/end-case mismatch")

    if_total = len(_IF_RE.findall(code))
    if_ends = len(_END_IF_RE.findall(code))
    if if_total - if_ends != if_ends:
        raise LintError(
            f"{filename}: if/end-if imbalance "
            f"({if_total - if_ends} openings vs {if_ends} closers)"
        )

    ports = tuple(_PORT_RE.findall(code))
    # Every entity port must appear somewhere in an architecture body.
    if entities and archs:
        body = code
        for port in ports:
            uses = len(re.findall(rf"\b{re.escape(port)}\b", body))
            if uses < 2:  # declaration + at least one reference
                raise LintError(
                    f"{filename}: port {port!r} declared but never used"
                )

    return LintReport(
        entities=tuple(entities),
        architectures=tuple(archs),
        packages=tuple(packages),
        processes=len(processes),
        ports=ports,
    )


def check_vhdl(text: str, filename: str = "<vhdl>") -> "Tuple[str, ...]":
    """Non-raising variant of :func:`lint_vhdl` for the rule engine.

    Returns the violation messages (empty tuple = clean).  The raising
    API stays for the generator's emit path, which must refuse to
    write broken HDL; the :mod:`repro.checks` subsystem wants findings
    instead of exceptions so one bad file cannot mask the rest.
    """
    try:
        lint_vhdl(text, filename)
    except LintError as exc:
        return (str(exc),)
    return ()


def _is_external(code: str, entity_name: str) -> bool:
    """Allow architectures of entities declared in another file if a
    component/use hints at them (we only generate same-file pairs, so
    this stays False in practice)."""
    return bool(re.search(rf"\bcomponent\s+{entity_name}\b", code))
