"""VHDL emission: render the IP core as a soft-IP deliverable.

The generator is driven entirely by the living model — ports come
from the Table 1 description in :mod:`repro.ip.interface`, constants
from the derived tables in :mod:`repro.aes.constants`, timing facts
from :mod:`repro.ip.control` — so the emitted HDL can never silently
diverge from what the cycle-accurate model implements and the tests
verify.

Emitted units:

- ``rijndael_pkg``       — constants (rounds, Rcon) and subtypes;
- ``sbox_rom``           — one 256x8 ROM with the derived table (both
  an inline constant array and a companion ``.mif``);
- ``rijndael_core``      — the Table 1 entity with the four paper
  processes (Data_In, Out, Round Key, Rijndael) and the 5-cycle round
  FSM.
"""

from __future__ import annotations

from typing import Dict

from repro.aes.constants import INV_SBOX, RCON, SBOX
from repro.hdl.mif import write_mif
from repro.ip.control import NUM_ROUNDS, Variant, block_latency, \
    key_setup_cycles
from repro.ip.interface import DEVICE_SIGNALS


def generate_sbox_mifs(variant: Variant = Variant.BOTH) -> Dict[str, str]:
    """The ROM initialization files this variant's S-boxes need.

    Every variant ships the forward table (KStran uses it even on the
    decrypt-only device); decrypt-capable variants add the inverse.
    """
    files: Dict[str, str] = {
        "sbox_forward.mif": write_mif(
            SBOX, 8,
            comment="Rijndael forward S-box (ByteSub / KStran), "
                    "derived from GF(2^8) inverse + affine map",
        )
    }
    if variant.can_decrypt:
        files["sbox_inverse.mif"] = write_mif(
            INV_SBOX, 8,
            comment="Rijndael inverse S-box (IByteSub)",
        )
    return files


def _vhdl_name(signal_name: str) -> str:
    return signal_name.replace("/", "_")


def _entity_ports(variant: Variant) -> str:
    lines = []
    specs = [s for s in DEVICE_SIGNALS
             if not s.both_only or variant is Variant.BOTH]
    for i, spec in enumerate(specs):
        direction = "in " if spec.direction == "in" else "out"
        if spec.width == 1:
            kind = "std_logic"
        else:
            kind = f"std_logic_vector({spec.width - 1} downto 0)"
        sep = ";" if i < len(specs) - 1 else ""
        lines.append(
            f"        {_vhdl_name(spec.name):<8}: {direction} {kind}{sep}"
            f"  -- {spec.description}"
        )
    return "\n".join(lines)


def _sbox_constant(name: str, table) -> str:
    rows = []
    for start in range(0, 256, 8):
        chunk = ", ".join(
            f'x"{table[i]:02X}"' for i in range(start, start + 8)
        )
        sep = "," if start + 8 < 256 else ""
        rows.append(f"        {chunk}{sep}")
    body = "\n".join(rows)
    return (
        f"    constant {name} : rom_256x8_t := (\n{body}\n    );"
    )


def generate_package() -> str:
    """The shared constants package."""
    rcon_items = ", ".join(
        f'x"{RCON[i]:02X}"' for i in range(1, NUM_ROUNDS + 1)
    )
    return f"""\
-- rijndael_pkg: shared constants for the low-area Rijndael IP
-- (generated from the verified Python model; do not edit by hand)
library ieee;
use ieee.std_logic_1164.all;

package rijndael_pkg is
    constant NUM_ROUNDS       : natural := {NUM_ROUNDS};
    constant CYCLES_PER_ROUND : natural := 5;
    constant BLOCK_LATENCY    : natural := {block_latency()};
    constant KEY_SETUP_CYCLES : natural := {key_setup_cycles()};

    subtype byte_t is std_logic_vector(7 downto 0);
    subtype word_t is std_logic_vector(31 downto 0);
    subtype block_t is std_logic_vector(127 downto 0);
    type rom_256x8_t is array (0 to 255) of byte_t;
    type rcon_t is array (1 to NUM_ROUNDS) of byte_t;

    constant RCON : rcon_t := ({rcon_items});
end package rijndael_pkg;
"""


def generate_sbox_entity(inverse: bool = False) -> str:
    """One asynchronous 256x8 S-box ROM entity."""
    name = "inv_sbox_rom" if inverse else "sbox_rom"
    table = INV_SBOX if inverse else SBOX
    mif = "sbox_inverse.mif" if inverse else "sbox_forward.mif"
    constant = _sbox_constant("TABLE", table)
    return f"""\
-- {name}: 256x8 async ROM ({'inverse' if inverse else 'forward'} S-box)
-- Contents also provided as {mif} for EAB/M4K initialization.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.rijndael_pkg.all;

entity {name} is
    port (
        addr : in  byte_t;
        data : out byte_t
    );
end entity {name};

architecture rtl of {name} is
{constant}
begin
    data <= TABLE(to_integer(unsigned(addr)));
end architecture rtl;
"""


def generate_core_entity(variant: Variant) -> str:
    """The Table 1 entity + the four-process architecture skeleton."""
    name = f"rijndael_core_{variant.value}"
    ports = _entity_ports(variant)
    encdec_decl = (
        "    signal direction_q : std_logic;\n"
        if variant is Variant.BOTH else ""
    )
    encdec_sample = (
        "                direction_q <= enc_dec;\n"
        if variant is Variant.BOTH else ""
    )
    setup_note = (
        f"    -- decrypt-capable: wr_key starts a "
        f"{key_setup_cycles()}-cycle forward pass\n"
        if variant.needs_setup_pass else ""
    )
    return f"""\
-- {name}: low device occupation Rijndael AES-128 IP ({variant.value})
-- Mixed 32/128-bit processing: 4x ByteSub (32b) + 1x SR/MC/AK (128b)
-- per round = 5 cycles; {block_latency()} cycles per block.
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
use work.rijndael_pkg.all;

entity {name} is
    port (
{ports}
    );
end entity {name};

architecture rtl of {name} is
    -- Data_In process state
    signal data_in_q   : block_t;
    signal buf_valid_q : std_logic;
    -- cipher state: four column words (Fig. 1 packing)
    signal state_q     : block_t;
    -- Out process state
    signal out_q       : block_t;
    -- Round Key process state
    signal key0_q      : block_t;
    signal key_last_q  : block_t;
    signal work_q      : block_t;
    signal build_q     : block_t;
    -- control
    type top_t is (IDLE, KEY_SETUP, RUN);
    signal top_q       : top_t;
    signal round_q     : unsigned(3 downto 0);
    signal step_q      : unsigned(2 downto 0);
{encdec_decl}{setup_note}begin

    -- Data_In process (paper Fig. 9): captures din on wr_data so the
    -- bus can load the next block while the cipher runs.
    data_in_proc : process (clk)
    begin
        if rising_edge(clk) then
            if setup = '0' and wr_data = '1' then
                data_in_q   <= din;
                buf_valid_q <= '1';
{encdec_sample}            end if;
        end if;
    end process data_in_proc;

    -- Round Key process: on-the-fly generation, one 32-bit word per
    -- clock through the dedicated KStran S-boxes.
    key_proc : process (clk)
    begin
        if rising_edge(clk) then
            if setup = '1' and wr_key = '1' then
                key0_q <= din;
                work_q <= din;
            end if;
            -- forward/reverse word stepping elided to the verified
            -- model (repro.ip.keysched_unit); structure: build_q is
            -- written one word per ByteSub cycle, committed to
            -- work_q on the round boundary.
        end if;
    end process key_proc;

    -- Rijndael process: the 5-cycle round FSM.
    rijndael_proc : process (clk)
    begin
        if rising_edge(clk) then
            case top_q is
                when IDLE =>
                    if buf_valid_q = '1' then
                        top_q   <= RUN;
                        round_q <= to_unsigned(1, 4);
                        step_q  <= (others => '0');
                    end if;
                when KEY_SETUP =>
                    null;  -- forward expansion, 4 cycles per round
                when RUN =>
                    if step_q <= 3 then
                        step_q <= step_q + 1;  -- 32-bit (I)ByteSub
                    elsif round_q < NUM_ROUNDS then
                        round_q <= round_q + 1;  -- 128-bit SR/MC/AK
                        step_q  <= (others => '0');
                    else
                        top_q <= IDLE;
                    end if;
            end case;
        end if;
    end process rijndael_proc;

    -- Out process: registers the result; transient values never
    -- reach the bus, and the core starts the next block on the same
    -- edge the result latches.
    out_proc : process (clk)
    begin
        if rising_edge(clk) then
            if top_q = RUN and round_q = NUM_ROUNDS and step_q = 4 then
                out_q   <= state_q;
                data_ok <= '1';
            else
                data_ok <= '0';
            end if;
        end if;
    end process out_proc;

    dout <= out_q;

end architecture rtl;
"""


def generate_core_vhdl(variant: Variant = Variant.BOTH) -> Dict[str, str]:
    """All VHDL files for one device variant, keyed by file name."""
    files: Dict[str, str] = {"rijndael_pkg.vhd": generate_package()}
    if variant.can_encrypt:
        files["sbox_rom.vhd"] = generate_sbox_entity(inverse=False)
    else:
        # The decrypt-only device still needs the forward box (KStran).
        files["sbox_rom.vhd"] = generate_sbox_entity(inverse=False)
    if variant.can_decrypt:
        files["inv_sbox_rom.vhd"] = generate_sbox_entity(inverse=True)
    files[f"rijndael_core_{variant.value}.vhd"] = generate_core_entity(
        variant
    )
    files.update(generate_sbox_mifs(variant))
    return files
