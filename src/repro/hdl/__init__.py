"""HDL deliverables: what makes this a *soft IP* and not just a model.

The paper's artifact is "a soft IP description of Rijndael" — VHDL a
customer drops into their flow.  This package emits that deliverable
from the living Python model:

- :mod:`repro.hdl.mif` — Altera Memory Initialization Files for the
  S-box ROMs (the format Quartus consumes for EAB/M4K contents), with
  a parser so round-trips are testable;
- :mod:`repro.hdl.vhdl_gen` — a synthesizable-style VHDL rendering of
  the core: the Table 1 entity, the Data_In/Out/Rijndael/Round-Key
  process structure of Figs. 8–9, and the derived constant tables;
- :mod:`repro.hdl.lint` — a small structural checker (balanced
  process/end, declared-vs-used ports, entity/architecture pairing)
  that keeps the generator honest without a VHDL simulator.

The generated text is *architecture-faithful documentation-grade*
VHDL: it encodes the same registers, FSM and timing contract the
cycle-accurate model implements and the tests verify.
"""

from repro.hdl.mif import parse_mif, write_mif
from repro.hdl.vhdl_gen import generate_core_vhdl, generate_sbox_mifs
from repro.hdl.lint import LintError, lint_vhdl

__all__ = [
    "LintError",
    "generate_core_vhdl",
    "generate_sbox_mifs",
    "lint_vhdl",
    "parse_mif",
    "write_mif",
]
