"""Altera Memory Initialization File (.mif) writer and parser.

Quartus initializes EAB/M4K ROM contents from MIF files; a soft IP
that uses S-box ROMs ships them.  The format is line-oriented:

.. code-block:: text

    DEPTH = 256;
    WIDTH = 8;
    ADDRESS_RADIX = HEX;
    DATA_RADIX = HEX;
    CONTENT BEGIN
        00 : 63;
        01 : 7C;
        ...
    END;

The writer emits exactly this; the parser accepts the writer's output
plus the common variations (comments, ranges ``[a..b] : v``, default
lines) so round-trip tests are meaningful.
"""

from __future__ import annotations

import re
from typing import Dict, List, Sequence


class MifError(ValueError):
    """Raised on malformed MIF content."""


def write_mif(words: Sequence[int], width: int,
              comment: str = "") -> str:
    """Render a ROM content list as MIF text.

    ``words`` is the full content (index = address); every value must
    fit ``width`` bits.
    """
    if width < 1:
        raise MifError("width must be >= 1")
    limit = 1 << width
    for address, value in enumerate(words):
        if not 0 <= value < limit:
            raise MifError(
                f"word {value:#x} at address {address} does not fit "
                f"{width} bits"
            )
    digits = max(1, (width + 3) // 4)
    addr_digits = max(1, (max(len(words) - 1, 1).bit_length() + 3) // 4)
    lines: List[str] = []
    if comment:
        for line in comment.splitlines():
            lines.append(f"-- {line}")
    lines.extend(
        [
            f"DEPTH = {len(words)};",
            f"WIDTH = {width};",
            "ADDRESS_RADIX = HEX;",
            "DATA_RADIX = HEX;",
            "CONTENT BEGIN",
        ]
    )
    for address, value in enumerate(words):
        lines.append(
            f"    {address:0{addr_digits}X} : {value:0{digits}X};"
        )
    lines.append("END;")
    return "\n".join(lines) + "\n"


_HEADER_RE = re.compile(r"^(DEPTH|WIDTH|ADDRESS_RADIX|DATA_RADIX)\s*=\s*"
                        r"([A-Za-z0-9]+)\s*;?\s*$", re.IGNORECASE)
_ENTRY_RE = re.compile(r"^([0-9A-Fa-f]+)\s*:\s*([0-9A-Fa-f]+)\s*;\s*$")
_RANGE_RE = re.compile(
    r"^\[\s*([0-9A-Fa-f]+)\s*\.\.\s*([0-9A-Fa-f]+)\s*\]\s*:\s*"
    r"([0-9A-Fa-f]+)\s*;\s*$"
)

_RADICES = {"HEX": 16, "DEC": 10, "BIN": 2, "OCT": 8, "UNS": 10}


def parse_mif(text: str) -> Dict[str, object]:
    """Parse MIF text into ``{"depth", "width", "words"}``.

    Raises :class:`MifError` on malformed input, wrong radix keywords,
    out-of-range addresses/values, or missing content.
    """
    depth = width = None
    addr_radix = data_radix = 16
    words: List[int] = []
    in_content = False
    saw_end = False

    for raw in text.splitlines():
        line = raw.split("--", 1)[0].split("%", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if not in_content:
            if upper.startswith("CONTENT"):
                in_content = True
                continue
            match = _HEADER_RE.match(line)
            if not match:
                raise MifError(f"unparseable header line: {raw!r}")
            key, value = match.group(1).upper(), match.group(2).upper()
            if key == "DEPTH":
                depth = int(value)
            elif key == "WIDTH":
                width = int(value)
            else:
                if value not in _RADICES:
                    raise MifError(f"unknown radix {value!r}")
                if key == "ADDRESS_RADIX":
                    addr_radix = _RADICES[value]
                else:
                    data_radix = _RADICES[value]
            continue
        if upper == "END;" or upper == "END":
            saw_end = True
            break
        if upper == "BEGIN":
            continue
        if depth is None or width is None:
            raise MifError("CONTENT before DEPTH/WIDTH")
        if not words:
            words = [0] * depth
        range_match = _RANGE_RE.match(line)
        if range_match:
            lo = int(range_match.group(1), addr_radix)
            hi = int(range_match.group(2), addr_radix)
            value = int(range_match.group(3), data_radix)
            if not 0 <= lo <= hi < depth:
                raise MifError(f"range out of bounds: {raw!r}")
            for address in range(lo, hi + 1):
                words[address] = value
            continue
        entry = _ENTRY_RE.match(line)
        if not entry:
            raise MifError(f"unparseable content line: {raw!r}")
        address = int(entry.group(1), addr_radix)
        value = int(entry.group(2), data_radix)
        if not 0 <= address < depth:
            raise MifError(f"address out of range: {raw!r}")
        if not 0 <= value < (1 << width):
            raise MifError(f"value does not fit width: {raw!r}")
        words[address] = value

    if depth is None or width is None:
        raise MifError("missing DEPTH or WIDTH")
    if not saw_end:
        raise MifError("missing END;")
    if not words:
        words = [0] * depth
    return {"depth": depth, "width": width, "words": words}
