"""VCD (Value Change Dump) export for traces.

ModelSim users get waveforms; so do ours.  :func:`trace_to_vcd`
renders a recorded :class:`~repro.rtl.trace.Trace` as an IEEE-1364
VCD file readable by GTKWave and friends, and :func:`parse_vcd_header`
gives tests enough of a reader to verify round trips without pulling
in a waveform viewer.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.rtl.trace import Trace

#: Printable identifier alphabet per the VCD grammar.
_ID_ALPHABET = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short unique identifier code for signal ``index``."""
    digits = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_ALPHABET))
        digits.append(_ID_ALPHABET[rem])
    return "".join(reversed(digits))


def trace_to_vcd(trace: Trace, module: str = "rijndael",
                 timescale: str = "1 ns",
                 clock_ns: int = 1) -> str:
    """Render a trace as VCD text.

    One VCD time unit per ``clock_ns``; each recorded cycle becomes a
    timestamp, and only signals that changed emit value lines (the VCD
    contract).
    """
    names = list(trace._history)  # insertion-ordered signal names
    widths = {s.name: s.width for s in trace._signals}
    ids = {name: _identifier(i) for i, name in enumerate(names)}

    lines: List[str] = [
        "$date reproduction run $end",
        "$version repro.rtl.vcd $end",
        f"$timescale {timescale} $end",
        f"$scope module {module} $end",
    ]
    for name in names:
        width = widths[name]
        kind = "wire" if width == 1 else "reg"
        lines.append(
            f"$var {kind} {width} {ids[name]} {_sanitize(name)} $end"
        )
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous: Dict[str, int] = {}
    cycles = trace.cycles
    for position, cycle in enumerate(cycles):
        changes = []
        for name in names:
            value = trace._history[name][position]
            if previous.get(name) != value:
                previous[name] = value
                changes.append(_value_line(value, widths[name],
                                           ids[name]))
        if changes or position == 0:
            lines.append(f"#{cycle * clock_ns}")
            lines.extend(changes)
    return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return name.replace(" ", "_").replace("/", "_")


def _value_line(value: int, width: int, ident: str) -> str:
    if width == 1:
        return f"{value}{ident}"
    return f"b{value:b} {ident}"


def parse_vcd_header(text: str) -> Tuple[str, List[Tuple[str, int]]]:
    """Extract (timescale, [(signal name, width), ...]) from VCD text.

    Enough of a reader for round-trip tests; raises ``ValueError`` on
    files without definitions.
    """
    timescale = ""
    variables: List[Tuple[str, int]] = []
    for line in text.splitlines():
        line = line.strip()
        if line.startswith("$timescale"):
            timescale = line.removeprefix("$timescale").removesuffix(
                "$end").strip()
        elif line.startswith("$var"):
            parts = line.split()
            if len(parts) < 6:
                raise ValueError(f"malformed $var line: {line!r}")
            variables.append((parts[4], int(parts[2])))
        elif line.startswith("$enddefinitions"):
            if not variables:
                raise ValueError("VCD has no variables")
            return timescale, variables
    raise ValueError("VCD missing $enddefinitions")


def count_vcd_changes(text: str) -> int:
    """Number of value-change lines in VCD text (for tests)."""
    count = 0
    in_defs = True
    for line in text.splitlines():
        line = line.strip()
        if in_defs:
            if line.startswith("$enddefinitions"):
                in_defs = False
            continue
        if line and not line.startswith(("#", "$")):
            count += 1
    return count
