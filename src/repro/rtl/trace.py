"""Per-cycle signal capture: waveforms, toggle counts, text rendering.

A :class:`Trace` attaches to a :class:`~repro.rtl.simulator.Simulator`
and samples a chosen set of signals at the end of every cycle.  It
serves three consumers:

- latency tests, which assert on the cycle a signal changed;
- the power model (:mod:`repro.analysis.power`), which integrates bit
  toggle counts over a run;
- humans, via :meth:`render` — a compact text waveform in the spirit
  of a ModelSim wave window.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.rtl.signal import Signal
from repro.rtl.simulator import Simulator


class Trace:
    """Samples signals every cycle and answers questions about history."""

    def __init__(self, simulator: Simulator, signals: Sequence[Signal]):
        if not signals:
            raise ValueError("trace needs at least one signal")
        names = [s.name for s in signals]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate signal names in trace: {names}")
        self._signals = list(signals)
        self._history: Dict[str, List[int]] = {s.name: [] for s in signals}
        self._cycles: List[int] = []
        simulator.add_trace_hook(self._sample)

    def _sample(self, cycle: int) -> None:
        self._cycles.append(cycle)
        for signal in self._signals:
            self._history[signal.name].append(signal.value)

    # -------------------------------------------------------------- queries
    @property
    def cycles(self) -> List[int]:
        """The cycle numbers sampled so far."""
        return list(self._cycles)

    def history(self, name: str) -> List[int]:
        """All sampled values of one signal."""
        if name not in self._history:
            raise KeyError(f"signal {name!r} is not traced")
        return list(self._history[name])

    def value_at(self, name: str, cycle: int) -> int:
        """The signal's value at the end of a given cycle."""
        try:
            index = self._cycles.index(cycle)
        except ValueError:
            raise KeyError(f"cycle {cycle} was not sampled") from None
        return self._history[name][index]

    def first_cycle_where(self, name: str, value: int) -> int:
        """First sampled cycle at which the signal equals ``value``.

        Raises ``LookupError`` if it never does — latency tests rely on
        that to catch a handshake that never fires.
        """
        for cycle, sample in zip(self._cycles, self._history[name]):
            if sample == value:
                return cycle
        raise LookupError(f"signal {name!r} never reached {value:#x}")

    def toggle_count(self, name: str) -> int:
        """Total number of bit flips the signal underwent over the trace.

        The dynamic-power model sums this across the datapath
        registers: CMOS dynamic power is proportional to the switched
        capacitance, which toggle counts stand in for.
        """
        samples = self._history[name]
        if name not in self._history:
            raise KeyError(f"signal {name!r} is not traced")
        flips = 0
        for before, after in zip(samples, samples[1:]):
            flips += bin(before ^ after).count("1")
        return flips

    def total_toggles(self) -> int:
        """Toggle count summed over every traced signal."""
        return sum(self.toggle_count(s.name) for s in self._signals)

    # ------------------------------------------------------------ rendering
    def render(self, last: int = 32) -> str:
        """A text waveform of the most recent ``last`` cycles.

        One row per signal; single-bit signals render as ▁/▔ rails,
        multi-bit signals as hex values that repeat ``·`` while stable.
        """
        if not self._cycles:
            return "(empty trace)"
        cycles = self._cycles[-last:]
        width = max(len(s.name) for s in self._signals)
        header = " " * (width + 2) + " ".join(f"{c % 100:02d}" for c in cycles)
        rows = [header]
        for signal in self._signals:
            samples = self._history[signal.name][-last:]
            cells = []
            previous = None
            for sample in samples:
                if signal.width == 1:
                    cells.append("▔▔" if sample else "▁▁")
                elif sample == previous:
                    cells.append(" ·")
                else:
                    cells.append(f"{sample & 0xFF:02x}")
                previous = sample
            rows.append(f"{signal.name:<{width}}  " + " ".join(cells))
        return "\n".join(rows)
