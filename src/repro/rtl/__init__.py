"""A small synchronous-RTL simulation kernel (the ModelSim substitute).

The paper's IP is a clocked VHDL design simulated with ModelSim.  We
model the same abstraction level in Python: named, width-checked
:class:`~repro.rtl.signal.Signal` wires, two-phase
:class:`~repro.rtl.signal.Register` flip-flops, and a
:class:`~repro.rtl.simulator.Simulator` that advances one clock cycle
at a time — clocked processes read pre-edge state and schedule next
values, the registers commit atomically, then combinational processes
settle the outputs.  A :class:`~repro.rtl.trace.Trace` can capture any
signal every cycle and render a text waveform, which the latency tests
and the power model both consume.

This kernel is deliberately cycle-based (not event-driven with delta
cycles): the devices modeled here are fully synchronous single-clock
designs, and cycle-based semantics make the latency accounting exact.
"""

from repro.rtl.signal import Register, Signal, SignalError
from repro.rtl.simulator import Simulator
from repro.rtl.trace import Trace

__all__ = ["Register", "Signal", "SignalError", "Simulator", "Trace"]
