"""Width-checked signals and two-phase registers.

A :class:`Signal` models a combinational wire: it has a current value
that anything may read and (typically one) driver may write.  A
:class:`Register` models a D flip-flop bank: clocked processes assign
``reg.next``; the value only becomes visible at ``reg.commit()``, which
the simulator calls once per rising edge.  This two-phase discipline is
what makes the Python model race-free in the same way synchronous HDL
is: every clocked process observes the *pre-edge* state regardless of
evaluation order.
"""

from __future__ import annotations

from typing import Optional


class SignalError(ValueError):
    """Raised on width violations or illegal signal usage."""


class Signal:
    """A named wire carrying an unsigned integer of fixed bit width."""

    __slots__ = ("name", "width", "_value", "_mask")

    def __init__(self, name: str, width: int, reset: int = 0):
        if width < 1:
            raise SignalError(f"signal {name!r}: width must be >= 1")
        self.name = name
        self.width = width
        self._mask = (1 << width) - 1
        self._value = self._check(reset)

    @property
    def value(self) -> int:
        """Current value of the wire."""
        return self._value

    @value.setter
    def value(self, new: int) -> None:
        self._value = self._check(new)

    def bit(self, index: int) -> int:
        """Read a single bit (LSB = 0)."""
        if not 0 <= index < self.width:
            raise SignalError(
                f"signal {self.name!r}: bit {index} out of range"
            )
        return (self._value >> index) & 1

    def bits(self, high: int, low: int) -> int:
        """Read a bit slice [high:low], both inclusive (LSB = 0)."""
        if not 0 <= low <= high < self.width:
            raise SignalError(
                f"signal {self.name!r}: slice [{high}:{low}] out of range"
            )
        return (self._value >> low) & ((1 << (high - low + 1)) - 1)

    def _check(self, value: int) -> int:
        if not isinstance(value, int):
            raise SignalError(
                f"signal {self.name!r}: value must be int, "
                f"got {type(value).__name__}"
            )
        if value & ~self._mask or value < 0:
            raise SignalError(
                f"signal {self.name!r}: value {value:#x} does not fit in "
                f"{self.width} bits"
            )
        return value

    def __repr__(self) -> str:
        return f"Signal({self.name!r}, width={self.width}, " \
               f"value={self._value:#x})"


class Register(Signal):
    """A bank of D flip-flops with two-phase next/commit semantics.

    Reading ``reg.value`` always yields the pre-edge (Q) value; clocked
    processes write ``reg.next`` (D).  The simulator commits all
    registers simultaneously after every clocked process has run, so
    register-to-register transfers behave like real hardware.

    A register also remembers its reset value for :meth:`reset`, and
    tracks whether it was written this cycle so "hold" semantics (no
    assignment keeps the old value) come for free.
    """

    __slots__ = ("_next", "_reset", "_pending")

    def __init__(self, name: str, width: int, reset: int = 0):
        super().__init__(name, width, reset)
        self._reset = reset
        self._next: Optional[int] = None
        self._pending = False

    @property
    def next(self) -> int:
        """The value scheduled for the coming edge (D input)."""
        if not self._pending:
            return self._value
        assert self._next is not None
        return self._next

    @next.setter
    def next(self, value: int) -> None:
        self._next = self._check(value)
        self._pending = True

    @Signal.value.setter
    def value(self, new: int) -> None:  # type: ignore[misc]
        raise SignalError(
            f"register {self.name!r}: assign .next, not .value "
            "(values change only at commit)"
        )

    def commit(self) -> bool:
        """Latch the scheduled value; returns True if the value changed.

        Called by the simulator at the rising edge.  If no ``next`` was
        assigned this cycle the register holds.
        """
        if not self._pending:
            return False
        assert self._next is not None
        changed = self._next != self._value
        self._value = self._next
        self._next = None
        self._pending = False
        return changed

    def reset(self) -> None:
        """Return to the reset value immediately (async reset)."""
        self._value = self._reset
        self._next = None
        self._pending = False

    def deposit(self, value: int) -> None:
        """Force the stored value immediately, bypassing the clock.

        This is the fault-injection / debug backdoor (the simulator
        equivalent of ModelSim's ``deposit``): the SEU campaign in
        :mod:`repro.analysis.seu` uses it to flip state bits mid-run.
        Normal design code must never call it.
        """
        self._value = self._check(value)

    def __repr__(self) -> str:
        return f"Register({self.name!r}, width={self.width}, " \
               f"value={self._value:#x})"
