"""Cycle-based simulator for synchronous single-clock designs.

Each :meth:`Simulator.step` models one rising clock edge in three
phases:

1. **clocked phase** — every registered clocked process runs, reading
   the pre-edge state and assigning ``Register.next``;
2. **commit phase** — all registers latch simultaneously;
3. **combinational phase** — every combinational process runs (in
   registration order, repeated until signals settle or an iteration
   bound trips) so module outputs reflect the post-edge state.

The combinational relaxation loop lets independently-written modules
chain outputs without manual topological ordering, while the iteration
bound turns accidental combinational loops into hard errors instead of
silent nondeterminism.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.rtl.signal import Register, Signal, SignalError

Process = Callable[[], None]

#: Upper bound on combinational relaxation sweeps per cycle.
_MAX_COMB_SWEEPS = 16


class Simulator:
    """Owns the clock, the registers, and the process lists."""

    def __init__(self) -> None:
        self._registers: List[Register] = []
        self._clocked: List[Process] = []
        self._comb: List[Process] = []
        self._watched: List[Signal] = []
        self._trace_hooks: List[Callable[[int], None]] = []
        self.cycle = 0

    # ---------------------------------------------------------------- build
    def register(self, name: str, width: int, reset: int = 0) -> Register:
        """Create a register owned by this simulator."""
        reg = Register(name, width, reset)
        self._registers.append(reg)
        return reg

    def adopt(self, registers: Iterable[Register]) -> None:
        """Adopt externally-constructed registers (e.g. from a module)."""
        for reg in registers:
            if reg not in self._registers:
                self._registers.append(reg)

    def add_clocked(self, process: Process) -> None:
        """Register a clocked process (runs before the edge commit)."""
        self._clocked.append(process)

    def add_comb(self, process: Process) -> None:
        """Register a combinational process (runs after commit)."""
        self._comb.append(process)

    def add_trace_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle."""
        self._trace_hooks.append(hook)

    def watch(self, *signals: Signal) -> None:
        """Mark signals whose settling the combinational loop monitors."""
        self._watched.extend(signals)

    @property
    def registers(self) -> List[Register]:
        """All registers the simulator clocks (trace/fault targets)."""
        return list(self._registers)

    # ------------------------------------------------------------------ run
    def settle(self) -> None:
        """Run only the combinational phase (e.g. after input changes).

        Testbenches call this after driving inputs mid-cycle so that
        outputs they sample reflect those inputs without advancing the
        clock.
        """
        self._run_comb()

    def step(self, cycles: int = 1) -> None:
        """Advance the clock by ``cycles`` rising edges."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        for _ in range(cycles):
            for process in self._clocked:
                process()
            for reg in self._registers:
                reg.commit()
            self._run_comb()
            self.cycle += 1
            for hook in self._trace_hooks:
                hook(self.cycle)

    def run_until(
        self,
        condition: Callable[[], bool],
        max_cycles: int = 10_000,
    ) -> int:
        """Step until ``condition()`` holds; returns cycles consumed.

        Raises ``TimeoutError`` after ``max_cycles`` — in testbench use
        that almost always means a handshake bug, so failing loudly
        beats hanging.
        """
        start = self.cycle
        while not condition():
            if self.cycle - start >= max_cycles:
                raise TimeoutError(
                    f"condition not met within {max_cycles} cycles"
                )
            self.step()
        return self.cycle - start

    def reset(self) -> None:
        """Asynchronously reset every register and re-settle."""
        for reg in self._registers:
            reg.reset()
        self._run_comb()

    # ------------------------------------------------------------- internal
    def _run_comb(self) -> None:
        if not self._comb:
            return
        previous: Optional[Dict[int, int]] = None
        for _ in range(_MAX_COMB_SWEEPS):
            for process in self._comb:
                process()
            snapshot = {id(s): s.value for s in self._watched}
            if not self._watched or snapshot == previous:
                return
            previous = snapshot
        raise SignalError(
            "combinational signals failed to settle "
            f"within {_MAX_COMB_SWEEPS} sweeps (combinational loop?)"
        )
