"""The ring GF(2^8)[x] / (x^4 + 1) used by MixColumns (paper Fig. 7).

Rijndael treats each State column as a degree-3 polynomial with
coefficients in GF(2^8) and multiplies it by the fixed polynomial
c(x) = 03·x^3 + 01·x^2 + 01·x + 02 modulo x^4 + 1.  The inverse step
multiplies by d(x) = 0B·x^3 + 0D·x^2 + 09·x + 0E, with c(x)·d(x) = 01.

x^4 + 1 is *not* irreducible over GF(2^8) so the ring has zero
divisors, but c(x) was chosen coprime to it and therefore invertible —
a fact our property tests verify directly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.gf.galois import gf_mul


class ColumnPolynomial:
    """A degree-<4 polynomial over GF(2^8), i.e. one Rijndael column.

    Coefficients are stored little-endian: ``coeffs[i]`` multiplies x^i.
    Instances are immutable value objects.
    """

    __slots__ = ("_coeffs",)

    def __init__(self, coeffs: Iterable[int]):
        coeffs = tuple(coeffs)
        if len(coeffs) != 4:
            raise ValueError("a column polynomial has exactly 4 coefficients")
        for c in coeffs:
            if not isinstance(c, int) or not 0 <= c <= 0xFF:
                raise ValueError(f"coefficient out of range: {c!r}")
        self._coeffs = coeffs

    @property
    def coeffs(self) -> Tuple[int, int, int, int]:
        """The 4 coefficients, little-endian (x^0 first)."""
        return self._coeffs

    def __mul__(self, other: "ColumnPolynomial") -> "ColumnPolynomial":
        return ColumnPolynomial(ring_mul(self._coeffs, other._coeffs))

    def __add__(self, other: "ColumnPolynomial") -> "ColumnPolynomial":
        return ColumnPolynomial(
            a ^ b for a, b in zip(self._coeffs, other._coeffs)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnPolynomial):
            return NotImplemented
        return self._coeffs == other._coeffs

    def __hash__(self) -> int:
        return hash(self._coeffs)

    def __repr__(self) -> str:
        terms = " + ".join(
            f"{c:02x}·x^{i}" for i, c in enumerate(self._coeffs) if c
        )
        return f"ColumnPolynomial({terms or '0'})"

    def is_unit(self) -> bool:
        """True if this polynomial has an inverse modulo x^4 + 1."""
        try:
            self.inverse()
        except ValueError:
            return False
        return True

    def inverse(self) -> "ColumnPolynomial":
        """Multiplicative inverse modulo x^4 + 1, by exhaustive structure.

        Multiplication by a fixed polynomial modulo x^4+1 is a circulant
        linear map over GF(2^8)^4; we invert it by solving the 4x4
        circulant system via Gaussian elimination in GF(2^8).  Raises
        ``ValueError`` when the polynomial is a zero divisor.
        """
        matrix = _circulant(self._coeffs)
        identity = [[1 if r == c else 0 for c in range(4)] for r in range(4)]
        inv = _gf_matrix_solve(matrix, identity)
        if inv is None:
            raise ValueError(f"{self!r} is not a unit in GF(2^8)[x]/(x^4+1)")
        # The inverse map is circulant too; its defining column gives the
        # inverse polynomial's coefficients.
        return ColumnPolynomial([inv[row][0] for row in range(4)])


def ring_mul(
    a: Sequence[int], b: Sequence[int]
) -> Tuple[int, int, int, int]:
    """Multiply two coefficient 4-tuples modulo x^4 + 1.

    Because x^4 ≡ 1, the product's coefficient k is the "cyclic
    convolution" XOR-sum of gf_mul(a[i], b[j]) over i + j ≡ k (mod 4) —
    exactly the matrix form shown in FIPS-197 §5.1.3.
    """
    if len(a) != 4 or len(b) != 4:
        raise ValueError("ring elements have exactly 4 coefficients")
    out = [0, 0, 0, 0]
    for i, ai in enumerate(a):
        if ai == 0:
            continue
        for j, bj in enumerate(b):
            if bj == 0:
                continue
            out[(i + j) % 4] ^= gf_mul(ai, bj)
    return (out[0], out[1], out[2], out[3])


def _circulant(coeffs: Sequence[int]) -> List[List[int]]:
    """The 4x4 circulant matrix of multiplication by ``coeffs``."""
    return [[coeffs[(row - col) % 4] for col in range(4)] for row in range(4)]


def _gf_matrix_solve(
    matrix: List[List[int]], rhs: List[List[int]]
) -> "List[List[int]] | None":
    """Solve M·X = R over GF(2^8) by Gaussian elimination.

    Returns X, or ``None`` when M is singular.
    """
    from repro.gf.galois import gf_div

    n = len(matrix)
    # Work on augmented copies.
    m = [row[:] for row in matrix]
    r = [row[:] for row in rhs]
    for col in range(n):
        pivot = next((i for i in range(col, n) if m[i][col]), None)
        if pivot is None:
            return None
        m[col], m[pivot] = m[pivot], m[col]
        r[col], r[pivot] = r[pivot], r[col]
        inv_pivot = m[col][col]
        m[col] = [gf_div(v, inv_pivot) for v in m[col]]
        r[col] = [gf_div(v, inv_pivot) for v in r[col]]
        for row in range(n):
            if row == col or m[row][col] == 0:
                continue
            factor = m[row][col]
            m[row] = [v ^ gf_mul(factor, p) for v, p in zip(m[row], m[col])]
            r[row] = [v ^ gf_mul(factor, p) for v, p in zip(r[row], r[col])]
    return r


#: MixColumns polynomial c(x) = 03·x^3 + 01·x^2 + 01·x + 02 (paper Fig. 7).
MIX_POLY = ColumnPolynomial((0x02, 0x01, 0x01, 0x03))

#: InvMixColumns polynomial d(x) = 0B·x^3 + 0D·x^2 + 09·x + 0E.
INV_MIX_POLY = ColumnPolynomial((0x0E, 0x09, 0x0D, 0x0B))
