"""GF(2^8) arithmetic for Rijndael.

All values are Python ints in ``range(256)`` interpreted as polynomials
over GF(2): bit *i* is the coefficient of x^i.  The field is defined by
the AES modulus m(x) = x^8 + x^4 + x^3 + x + 1 (``0x11B``).

Two multiplication routines are provided: :func:`gf_mul_slow` is a
direct shift-and-add reduction used as the ground truth, while
:func:`gf_mul` uses log/antilog tables built at import time (the same
strategy a software AES would use, and the one our tests cross-check).
"""

from __future__ import annotations

from typing import List

#: The AES field modulus x^8 + x^4 + x^3 + x + 1.
AES_MODULUS = 0x11B

#: Generator used to build the log/antilog tables.  0x03 (x + 1) is the
#: canonical generator of GF(2^8)* under the AES modulus.
GENERATOR = 0x03


def _check_byte(value: int) -> None:
    if not isinstance(value, int) or not 0 <= value <= 0xFF:
        raise ValueError(f"field element out of range: {value!r}")


def gf_add(a: int, b: int) -> int:
    """Add two field elements (carry-less: XOR)."""
    _check_byte(a)
    _check_byte(b)
    return a ^ b


def xtime(a: int, modulus: int = AES_MODULUS) -> int:
    """Multiply a field element by x (i.e. by 0x02), reducing mod ``modulus``.

    This is the primitive operation AES hardware implements as a shift
    plus a conditional XOR of the low byte of the modulus; every
    MixColumns coefficient multiply is a small network of xtimes and
    XORs (see :func:`xtime_chain_depth` for the cost model).
    """
    _check_byte(a)
    a <<= 1
    if a & 0x100:
        a ^= modulus
    return a & 0xFF


def gf_mul_slow(a: int, b: int, modulus: int = AES_MODULUS) -> int:
    """Multiply two field elements by shift-and-add (ground truth).

    Runs in O(8) regardless of operand values; used to validate the
    table-driven :func:`gf_mul` and to support non-AES moduli in tests.
    """
    _check_byte(a)
    _check_byte(b)
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = xtime(a, modulus)
        b >>= 1
    return result


def _build_tables() -> "tuple[List[int], List[int]]":
    """Build log/antilog tables over the generator ``0x03``."""
    alog = [0] * 256
    log = [0] * 256
    value = 1
    for exponent in range(255):
        alog[exponent] = value
        log[value] = exponent
        value = gf_mul_slow(value, GENERATOR)
    alog[255] = alog[0]  # wrap for convenience: g^255 == g^0 == 1
    return alog, log


_ALOG, _LOG = _build_tables()


def gf_mul(a: int, b: int) -> int:
    """Multiply two field elements using log/antilog tables.

    Only valid for the AES modulus; for other moduli use
    :func:`gf_mul_slow`.
    """
    _check_byte(a)
    _check_byte(b)
    if a == 0 or b == 0:
        return 0
    return _ALOG[(_LOG[a] + _LOG[b]) % 255]


def gf_pow(a: int, exponent: int) -> int:
    """Raise a field element to an integer power (exponent >= 0)."""
    _check_byte(a)
    if exponent < 0:
        raise ValueError("exponent must be non-negative; invert first")
    if a == 0:
        if exponent == 0:
            return 1
        return 0
    return _ALOG[(_LOG[a] * exponent) % 255]


def gf_inv(a: int) -> int:
    """Multiplicative inverse in GF(2^8), with the AES convention inv(0)=0.

    The "patched" inverse (0 maps to 0) is exactly what the Rijndael
    S-box construction uses, so we adopt it here rather than raising.
    """
    _check_byte(a)
    if a == 0:
        return 0
    return _ALOG[(255 - _LOG[a]) % 255]


def gf_div(a: int, b: int) -> int:
    """Divide field elements: a * inv(b).  Division by zero raises."""
    _check_byte(a)
    _check_byte(b)
    if b == 0:
        raise ZeroDivisionError("division by zero in GF(2^8)")
    return gf_mul(a, gf_inv(b))


def is_irreducible(poly: int) -> bool:
    """Check whether a degree-8 polynomial over GF(2) is irreducible.

    Used by tests to confirm that the AES modulus is a legitimate field
    modulus and that slightly-off moduli are rejected.  ``poly`` must
    have degree exactly 8 (bit 8 set).
    """
    if poly >> 8 != 1:
        raise ValueError("expected a degree-8 polynomial (bit 8 set)")
    # Trial division by all polynomials of degree 1..4.
    for divisor in range(2, 32):
        if _poly_mod(poly, divisor) == 0:
            return False
    return True


def _poly_mod(a: int, b: int) -> int:
    """Remainder of carry-less polynomial division a mod b."""
    db = b.bit_length()
    while a.bit_length() >= db:
        a ^= b << (a.bit_length() - db)
    return a


def xtime_chain_depth(coefficient: int) -> int:
    """XOR-network depth (in 2-input XOR levels) of multiplying by a constant.

    The hardware cost model uses this to size the MixColumns /
    InvMixColumns logic: multiplying by ``c`` decomposes into XORing the
    xtime-powers of the operand selected by the set bits of ``c``.  The
    depth is the xtime chain length (each xtime is one conditional-XOR
    level) plus the depth of the XOR reduction tree over the selected
    terms.

    Examples: ``x02`` -> 1 level; ``x03`` -> 2; InvMixColumns ``x0E``
    (1110) -> 3 xtimes + 2-level tree = 5.
    """
    if not 0 < coefficient < 256:
        raise ValueError("coefficient must be in 1..255")
    terms = bin(coefficient).count("1")
    chain = coefficient.bit_length() - 1  # xtimes to reach the top term
    tree = (terms - 1).bit_length()  # levels of a balanced XOR tree
    return chain + tree
