"""Finite-field arithmetic substrate for Rijndael.

Rijndael's byte-level operations live in GF(2^8) defined by the
irreducible polynomial m(x) = x^8 + x^4 + x^3 + x + 1 (0x11B), and its
MixColumns step lives in the quotient ring GF(2^8)[x] / (x^4 + 1).
This package implements both from first principles so the rest of the
library (S-box derivation, MixColumns, the hardware cost model for the
xtime networks) never hardcodes magic tables.
"""

from repro.gf.galois import (
    AES_MODULUS,
    gf_add,
    gf_div,
    gf_inv,
    gf_mul,
    gf_mul_slow,
    gf_pow,
    is_irreducible,
    xtime,
    xtime_chain_depth,
)
from repro.gf.polyring import (
    ColumnPolynomial,
    INV_MIX_POLY,
    MIX_POLY,
    ring_mul,
)

__all__ = [
    "AES_MODULUS",
    "ColumnPolynomial",
    "INV_MIX_POLY",
    "MIX_POLY",
    "gf_add",
    "gf_div",
    "gf_inv",
    "gf_mul",
    "gf_mul_slow",
    "gf_pow",
    "is_irreducible",
    "ring_mul",
    "xtime",
    "xtime_chain_depth",
]
