"""``taint.*`` — interprocedural secret-leak rules.

Key material must never reach an output channel: not a log line, not
an exception message, not a rendered string, not a metrics label, not
a trace span attribute.  Each rule here names one such *sink* and
asks the :class:`~repro.checks.flow.FlowProgram` whether any secret
data — a key-named value, a value derived from one, or a
secret-carrier object like the serving layer's ``Session`` — reaches
it, across call boundaries and across files.

The motivating defect class is real: post-PR-5 review found a
``Session`` (whose field *is* the session key) one helper call away
from a log statement.  The shallow per-file lint cannot see that; the
flow engine's fixpoint can, because the helper's parameter is seeded
tainted by the call site and the log call inside the helper then
reads a tainted name.

Sinks:

- ``taint.secret-in-log`` (error) — an argument of a
  ``logging``-style call (``_LOG.warning(...)``, ``logger.info``,
  ``logging.error``) reads secret data.
- ``taint.secret-in-exception`` (error) — a ``raise``'d exception is
  constructed with secret data in its arguments: the message ends up
  in tracebacks, crash reporters and often client-visible error
  frames.
- ``taint.secret-in-format`` (warning) — secret data is rendered
  into a string: an f-string interpolation, ``repr``/``str``/
  ``format``/``ascii``, ``"...".format(...)`` or ``"..." % (...)``.
  Rendering is not yet a leak, which is why this is a warning — but
  a rendered secret is one innocent-looking ``print`` away from one,
  and the string keeps its taint for the error-severity sinks.
- ``taint.secret-in-metric`` (error) — secret data used as a metrics
  label value (``.labels(...)``): label values are exported in every
  Prometheus scrape and JSON snapshot.
- ``taint.secret-in-span`` (error) — secret data passed as a trace
  span attribute (``trace_span(...)`` keyword): spans are written to
  Chrome-trace files meant to be shared.

The sanitizer model is shared with the ``ct.*`` family
(:mod:`repro.checks.secrets`): ``len``/``isinstance``/``type``/
``compare_digest`` launder, public frame attributes (``.status``,
``.request_id``, ...) project protocol state, and is-None identity
checks reveal only presence.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.checks.engine import (
    KIND_FLOW,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.flow import (
    FlowProgram,
    FlowSubject,
    FunctionInfo,
    call_name,
    own_nodes,
)

#: Logging methods whose arguments become log-record text.
_LOG_METHODS = {
    "debug", "info", "warning", "warn", "error", "exception",
    "critical", "log", "fatal",
}

#: Builtins that render their argument into presentable text.
_FORMAT_BUILTINS = {"repr", "str", "format", "ascii"}


def _base_name(node: ast.AST) -> str:
    """The leftmost-ish name of an attribute chain (``a.b.c`` -> c's
    immediate base rendered as its final identifier)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _is_log_call(node: ast.Call) -> bool:
    """``<something that looks like a logger>.warning(...)``."""
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    if func.attr not in _LOG_METHODS:
        return False
    return "log" in _base_name(func.value).lower()


def _call_payload(node: ast.Call) -> List[ast.AST]:
    """Every expression a call would render (args + keyword values)."""
    payload: List[ast.AST] = list(node.args)
    payload.extend(kw.value for kw in node.keywords)
    return payload


def _functions(program: FlowProgram) -> Iterator[FunctionInfo]:
    return iter(program)


def _leaks(program: FlowProgram, info: FunctionInfo,
           exprs: List[ast.AST]) -> List[str]:
    """Secret reads across a list of sink expressions, deduplicated."""
    reads: List[str] = []
    for expr in exprs:
        for item in program.secret_reads(info, expr):
            if item not in reads:
                reads.append(item)
    return reads


def _finding(rule_id: str, severity: Severity, info: FunctionInfo,
             node: ast.AST, reads: List[str],
             sink: str) -> Finding:
    names = ", ".join(reads)
    return Finding(
        rule_id, severity,
        f"key material ({names}) reaches {sink}",
        Location(file=info.path, line=getattr(node, "lineno", 0),
                 obj=info.display),
    )


@rule("taint.secret-in-log", Severity.ERROR, KIND_FLOW,
      "key/session material reaches a logging call "
      "(interprocedural)")
def secret_in_log(subject: FlowSubject,
                  config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in _functions(program):
        for node in own_nodes(info.node):
            if not (isinstance(node, ast.Call)
                    and _is_log_call(node)):
                continue
            reads = _leaks(program, info, _call_payload(node))
            if reads:
                yield _finding(
                    "taint.secret-in-log", Severity.ERROR, info,
                    node, reads,
                    "a log call; logs are plaintext and retained",
                )


@rule("taint.secret-in-exception", Severity.ERROR, KIND_FLOW,
      "key/session material raised inside an exception message "
      "(interprocedural)")
def secret_in_exception(subject: FlowSubject,
                        config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in _functions(program):
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            if not isinstance(node.exc, ast.Call):
                continue
            reads = _leaks(program, info, _call_payload(node.exc))
            if reads:
                yield _finding(
                    "taint.secret-in-exception", Severity.ERROR,
                    info, node, reads,
                    "an exception message; tracebacks outlive the "
                    "handler and cross trust boundaries",
                )


def _format_sink(node: ast.AST) -> Optional[Tuple[str,
                                                  List[ast.AST]]]:
    """(description, rendered expressions) when ``node`` renders
    text, else None."""
    if isinstance(node, ast.FormattedValue):
        return "an f-string interpolation", [node.value]
    if isinstance(node, ast.Call):
        name = call_name(node)
        if isinstance(node.func, ast.Name) and \
                name in _FORMAT_BUILTINS:
            return f"{name}()", list(node.args)
        if isinstance(node.func, ast.Attribute) and \
                name == "format":
            return "str.format()", _call_payload(node)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        left = node.left
        if isinstance(left, ast.Constant) and \
                isinstance(left.value, str):
            return "%-formatting", [node.right]
    return None


@rule("taint.secret-in-format", Severity.WARNING, KIND_FLOW,
      "key/session material rendered into a string "
      "(f-string/repr/str/format)")
def secret_in_format(subject: FlowSubject,
                     config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in _functions(program):
        for node in own_nodes(info.node):
            sink = _format_sink(node)
            if sink is None:
                continue
            description, exprs = sink
            reads = _leaks(program, info, exprs)
            if reads:
                yield _finding(
                    "taint.secret-in-format", Severity.WARNING,
                    info, node, reads, description,
                )


@rule("taint.secret-in-metric", Severity.ERROR, KIND_FLOW,
      "key/session material used as a metrics label value "
      "(exported on every scrape)")
def secret_in_metric(subject: FlowSubject,
                     config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in _functions(program):
        for node in own_nodes(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "labels"):
                continue
            reads = _leaks(program, info, _call_payload(node))
            if reads:
                yield _finding(
                    "taint.secret-in-metric", Severity.ERROR, info,
                    node, reads,
                    "a metrics label value; exposition formats "
                    "export every label",
                )


@rule("taint.secret-in-span", Severity.ERROR, KIND_FLOW,
      "key/session material attached to a trace span attribute "
      "(trace files are meant to be shared)")
def secret_in_span(subject: FlowSubject,
                   config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in _functions(program):
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name not in ("trace_span", "span"):
                continue
            # Positional arguments are the span name/category;
            # attributes travel as keywords.
            reads = _leaks(program, info,
                           [kw.value for kw in node.keywords])
            if reads:
                yield _finding(
                    "taint.secret-in-span", Severity.ERROR, info,
                    node, reads,
                    "a trace span attribute; Chrome-trace files "
                    "are exported artifacts",
                )


__all__ = [
    "secret_in_exception",
    "secret_in_format",
    "secret_in_log",
    "secret_in_metric",
    "secret_in_span",
]
