"""Baseline suppression: accept today's sanctioned findings, catch
tomorrow's regressions.

A baseline file is JSON listing finding fingerprints plus enough
human-readable context (rule, file, object, message) that a reviewer
can audit *why* each suppression exists.  ``repro-aes lint`` loads the
repo's ``lint-baseline.json`` by default; findings whose fingerprint
appears there are demoted to suppressed and do not affect the exit
code.  ``--write-baseline`` regenerates the file from the current
findings — the workflow for sanctioning a new, reviewed exception.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.checks.engine import Finding

#: Default baseline filename, looked up relative to the working
#: directory (i.e. the repo root in normal use).
DEFAULT_BASELINE = "lint-baseline.json"

_VERSION = 1


class BaselineError(ValueError):
    """Raised on a malformed baseline file."""


@dataclass(frozen=True)
class Baseline:
    """A set of suppressed fingerprints with audit context."""

    entries: Dict[str, dict]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(entries={})

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries = {
            f.fingerprint(): {
                "rule": f.rule,
                "file": f.location.file,
                "obj": f.location.obj,
                "message": f.message,
            }
            for f in findings
        }
        return cls(entries=entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: not valid JSON: {exc}")
        if not isinstance(data, dict) or "suppressions" not in data:
            raise BaselineError(
                f"{path}: expected an object with a 'suppressions' key"
            )
        if data.get("version") != _VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version "
                f"{data.get('version')!r}"
            )
        entries: Dict[str, dict] = {}
        for item in data["suppressions"]:
            if not isinstance(item, dict) or "fingerprint" not in item:
                raise BaselineError(
                    f"{path}: every suppression needs a 'fingerprint'"
                )
            entries[item["fingerprint"]] = {
                k: v for k, v in item.items() if k != "fingerprint"
            }
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        suppressions = [
            {"fingerprint": fp, **ctx}
            for fp, ctx in sorted(self.entries.items(),
                                  key=lambda kv: (kv[1].get("file", ""),
                                                  kv[1].get("rule", ""),
                                                  kv[0]))
        ]
        payload = {"version": _VERSION, "suppressions": suppressions}
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (active, suppressed)."""
        active: List[Finding] = []
        suppressed: List[Finding] = []
        for finding in findings:
            if finding.fingerprint() in self.entries:
                suppressed.append(finding)
            else:
                active.append(finding)
        return active, suppressed

    def stale_entries(self, findings: Sequence[Finding]) -> List[str]:
        """Fingerprints in the baseline no longer produced by any rule
        (candidates for cleanup; reported as a note, never an error)."""
        seen = {f.fingerprint() for f in findings}
        return sorted(fp for fp in self.entries if fp not in seen)
