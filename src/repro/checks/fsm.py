"""FSM analysis: reachability, dead transitions, cycle accounting.

The IR is a flat labelled transition system: states (optionally
tagged), transitions with an event label and a guard description, and
a reset state.  :func:`core_fsm` renders the control structure of
:class:`repro.ip.core.RijndaelCore` into it — the IDLE / KEY_SETUP /
RUN top level of :class:`repro.ip.control.Phase` with the RUN phase
expanded to its per-cycle micro-states — so the analyzer can prove the
paper's headline numbers *structurally*: every path around the round
loop costs exactly :func:`repro.ip.control.cycles_per_round` clocks,
and a block therefore costs exactly
:func:`repro.ip.control.block_latency`.

Rules:

- ``fsm.unreachable-state`` — state not reachable from reset;
- ``fsm.dead-transition`` — transition that can never fire (source
  unreachable, or shadowed by an earlier transition with the same
  source and event);
- ``fsm.trap-state`` — a non-terminal state with no way out;
- ``fsm.round-cycles`` — every cycle through the round-tagged states
  must cost exactly the declared cycles-per-round, and the block path
  must total the declared block latency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import (
    KIND_FSM,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.ip.control import (
    NUM_ROUNDS,
    Variant,
    block_latency,
    cycles_per_round,
    key_setup_cycles,
)


@dataclass(frozen=True)
class State:
    """One FSM state; tags group states for the accounting rules."""

    name: str
    tags: Tuple[str, ...] = ()


@dataclass(frozen=True)
class Transition:
    """One edge.  ``cycles`` is the clock cost of taking it."""

    src: str
    dst: str
    event: str
    guard: str = ""
    cycles: int = 1


@dataclass
class FsmModel:
    """A named labelled transition system."""

    name: str
    reset: str
    states: List[State] = field(default_factory=list)
    transitions: List[Transition] = field(default_factory=list)
    #: Expected cost of one lap of the round loop (None = don't check).
    expected_round_cycles: Optional[int] = None
    #: Expected rounds per block for the latency product check.
    rounds_per_block: int = NUM_ROUNDS
    #: Expected capture-to-result latency (None = don't check).
    expected_block_cycles: Optional[int] = None

    def state_names(self) -> Set[str]:
        return {s.name for s in self.states}

    def add_state(self, name: str, *tags: str) -> None:
        self.states.append(State(name, tags))

    def add_transition(self, src: str, dst: str, event: str,
                       guard: str = "", cycles: int = 1) -> None:
        self.transitions.append(Transition(src, dst, event, guard,
                                           cycles))

    def validate(self) -> None:
        names = self.state_names()
        if self.reset not in names:
            raise ValueError(
                f"fsm {self.name!r}: reset state {self.reset!r} "
                f"is not declared"
            )
        for t in self.transitions:
            for end in (t.src, t.dst):
                if end not in names:
                    raise ValueError(
                        f"fsm {self.name!r}: transition "
                        f"{t.src}->{t.dst} references undeclared "
                        f"state {end!r}"
                    )

    # ------------------------------------------------------------ queries
    def reachable(self) -> Set[str]:
        """States reachable from reset (edges taken unconditionally)."""
        seen = {self.reset}
        frontier = [self.reset]
        by_src: Dict[str, List[Transition]] = {}
        for t in self.transitions:
            by_src.setdefault(t.src, []).append(t)
        while frontier:
            node = frontier.pop()
            for t in by_src.get(node, ()):
                if t.dst not in seen:
                    seen.add(t.dst)
                    frontier.append(t.dst)
        return seen

    def tagged(self, tag: str) -> Set[str]:
        return {s.name for s in self.states if tag in s.tags}

    def cycles_through(self, tag: str) -> List[Tuple[List[str], int]]:
        """All simple cycles whose states all carry ``tag``, with the
        summed transition cost of one lap."""
        nodes = self.tagged(tag)
        edges: Dict[str, List[Transition]] = {}
        for t in self.transitions:
            if t.src in nodes and t.dst in nodes:
                edges.setdefault(t.src, []).append(t)
        cycles: List[Tuple[List[str], int]] = []
        seen_keys: Set[Tuple[str, ...]] = set()

        def dfs(origin: str, node: str, path: List[Transition],
                visited: Set[str]) -> None:
            for t in edges.get(node, ()):
                if t.dst == origin:
                    lap = path + [t]
                    names = [e.src for e in lap]
                    # Canonicalize rotation so each cycle counts once.
                    pivot = names.index(min(names))
                    key = tuple(names[pivot:] + names[:pivot])
                    if key not in seen_keys:
                        seen_keys.add(key)
                        cycles.append(
                            (names, sum(e.cycles for e in lap))
                        )
                elif t.dst not in visited:
                    dfs(origin, t.dst, path + [t],
                        visited | {t.dst})

        for origin in sorted(nodes):
            dfs(origin, origin, [], {origin})
        return cycles


# --------------------------------------------------------------- builders
def core_fsm(variant: Variant = Variant.ENCRYPT,
             sync_rom: bool = False) -> FsmModel:
    """The control FSM of the shipped core, micro-states expanded.

    The RUN phase is modelled one state per clock: ``run_s0..run_sN``
    where N+1 = cycles_per_round.  The async round is the paper's 5
    cycles (4 ByteSub word passes + 1 wide mix stage); sync-ROM
    stretches it to 6.
    """
    per_round = cycles_per_round(sync_rom)
    model = FsmModel(
        name=f"core_{variant.value}{'_sync' if sync_rom else ''}",
        reset="idle",
        expected_round_cycles=per_round,
        rounds_per_block=NUM_ROUNDS,
        expected_block_cycles=block_latency(sync_rom),
    )
    model.add_state("idle", "top")
    steps = [f"run_s{i}" for i in range(per_round)]
    for step in steps:
        model.add_state(step, "run", "round")

    model.add_transition("idle", steps[0], "start_block",
                         guard="wr_data & can_start")
    for here, there in zip(steps, steps[1:]):
        model.add_transition(here, there, "advance")
    model.add_transition(steps[-1], steps[0], "next_round",
                         guard=f"round < {NUM_ROUNDS}")
    model.add_transition(steps[-1], "idle", "block_done",
                         guard=f"round == {NUM_ROUNDS}")

    if variant.needs_setup_pass:
        # The reverse walk needs the last round key: a key load runs
        # the forward expansion once (one word per cycle async).
        model.add_state("key_setup", "top", "setup")
        model.add_transition("idle", "key_setup", "wr_key",
                             guard="setup & wr_key",
                             cycles=1)
        model.add_transition(
            "key_setup", "idle", "setup_done",
            guard=f"after {key_setup_cycles(sync_rom)} cycles",
            cycles=key_setup_cycles(sync_rom),
        )
        model.add_transition("key_setup", "key_setup", "wr_key",
                             guard="setup & wr_key (rekey restart)")
    model.validate()
    return model


def paper_fsms() -> List[FsmModel]:
    """The FSM models of every shipped device flavour."""
    models = []
    for variant in Variant:
        for sync_rom in (False, True):
            models.append(core_fsm(variant, sync_rom))
    return models


# ------------------------------------------------------------------ rules
def _loc(model: FsmModel, obj: str) -> Location:
    return Location(file=f"fsm:{model.name}", obj=obj)


@rule("fsm.unreachable-state", Severity.ERROR, KIND_FSM,
      "state not reachable from reset")
def unreachable_state(model: FsmModel,
                      config: CheckConfig) -> Iterator[Finding]:
    reachable = model.reachable()
    for state in model.states:
        if state.name not in reachable:
            yield Finding(
                "fsm.unreachable-state", Severity.ERROR,
                f"state {state.name!r} is unreachable from reset "
                f"state {model.reset!r}", _loc(model, state.name),
            )


@rule("fsm.dead-transition", Severity.ERROR, KIND_FSM,
      "transition that can never fire")
def dead_transition(model: FsmModel,
                    config: CheckConfig) -> Iterator[Finding]:
    reachable = model.reachable()
    seen: Set[Tuple[str, str]] = set()
    for t in model.transitions:
        label = f"{t.src} -[{t.event}]-> {t.dst}"
        if t.src not in reachable:
            yield Finding(
                "fsm.dead-transition", Severity.ERROR,
                f"transition {label} can never fire: source state is "
                f"unreachable", _loc(model, label),
            )
            continue
        key = (t.src, t.event)
        if key in seen:
            yield Finding(
                "fsm.dead-transition", Severity.ERROR,
                f"transition {label} is shadowed by an earlier "
                f"transition on the same event", _loc(model, label),
            )
        seen.add(key)


@rule("fsm.trap-state", Severity.WARNING, KIND_FSM,
      "reachable state with no outgoing transition")
def trap_state(model: FsmModel,
               config: CheckConfig) -> Iterator[Finding]:
    reachable = model.reachable()
    sources = {t.src for t in model.transitions}
    for state in model.states:
        if state.name in reachable and state.name not in sources:
            yield Finding(
                "fsm.trap-state", Severity.WARNING,
                f"state {state.name!r} is reachable but has no "
                f"outgoing transitions (hardware would wedge)",
                _loc(model, state.name),
            )


@rule("fsm.round-cycles", Severity.ERROR, KIND_FSM,
      "every round loop must cost exactly the declared cycle count")
def round_cycles(model: FsmModel,
                 config: CheckConfig) -> Iterator[Finding]:
    expected = model.expected_round_cycles
    if expected is None:
        return
    laps = model.cycles_through("round")
    if not laps:
        yield Finding(
            "fsm.round-cycles", Severity.ERROR,
            "no cycle through the round-tagged states: the core "
            "cannot iterate rounds", _loc(model, "round"),
        )
        return
    for names, cost in laps:
        if cost != expected:
            path = " -> ".join(names + [names[0]])
            yield Finding(
                "fsm.round-cycles", Severity.ERROR,
                f"round loop {path} costs {cost} cycles; the "
                f"architecture declares {expected} per round",
                _loc(model, names[0]),
            )
    if model.expected_block_cycles is not None:
        block = model.rounds_per_block * expected
        if block != model.expected_block_cycles:
            yield Finding(
                "fsm.round-cycles", Severity.ERROR,
                f"{model.rounds_per_block} rounds x {expected} "
                f"cycles = {block}, but the declared block latency "
                f"is {model.expected_block_cycles}",
                _loc(model, "block"),
            )
