"""Symbolic datapath equivalence checking over the netlist IR.

The connectivity IR (:mod:`repro.fpga.connectivity`) fixes the *shape*
of the paper's datapath — which cells exist and what they are wired to
— but nothing verifies that the behavioral stage functions the
cycle-accurate core executes (:mod:`repro.ip.datapath`,
:mod:`repro.aes.key_schedule`) compute what that structure implies.
This module closes the gap with a small symbolic bit-vector algebra:

- every net byte is a :class:`ByteExpr` — a GF(2)-affine combination
  of input bytes plus *uninterpreted* S-box atoms ``S(expr)`` /
  ``IS(expr)`` (the ROM contents themselves are proven separately
  against :mod:`repro.aes.constants` by ``eqv.sbox-table``);
- each datapath stage (substitution, mix stage, key-schedule step) is
  built symbolically **from structural constants only** — the Shift
  Row offsets, the MDS coefficient matrices as GF(2) bit-matrices,
  the S-box lane wiring, the Rcon injection point;
- the symbolic model is then proven equal to the shipped behavioral
  functions on a probe set *derived from the expression structure*:

  * a stage whose expressions contain no S-box atoms is GF(2)-linear;
    equality of two linear maps follows from equality on the full bit
    basis (257 vectors for the 256-bit mix stage), with superposition
    spot-checks certifying the behavioral side's linearity;
  * a byte feeding an S-box atom is swept **exhaustively** (all 256
    values, under two distinct backgrounds) — an 8-bit domain admits a
    genuinely complete proof;
  * the Rcon injection is exercised on its full bit basis for free:
    ``RCON[1..8] = 01,02,04,08,10,20,40,80`` spans GF(2)^8.

Rules: ``eqv.sbox-table`` (ROM contents vs the golden tables, plus the
involution pairing), ``eqv.sub-stage``, ``eqv.mix-stage`` (both
last/first-round bypass settings, against *both* the word-level
datapath and the :mod:`repro.aes.transforms` composition),
``eqv.key-step`` (forward and reverse, all ten rounds, plus the
round-trip), and ``eqv.unmodelled-cell`` for datapath cells no
symbolic stage model claims.

Verification is pure but not free (tens of thousands of probe
evaluations); results are memoized per (design, variant) — see
:func:`clear_cache`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterator, List, \
    Sequence, Tuple, Union

from repro.aes.constants import INV_SBOX, RCON, SBOX
from repro.aes.key_schedule import next_round_key, previous_round_key
from repro.aes.state import State
from repro.aes.transforms import add_round_key, inv_mix_columns, \
    inv_shift_rows, inv_sub_bytes, mix_columns, shift_rows, sub_bytes
from repro.checks.engine import (
    KIND_EQUIV,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.netgraph import CellKind, Design
from repro.ip.control import NUM_ROUNDS, Variant
from repro.ip.datapath import (
    SHIFT_OFFSETS,
    decrypt_mix_stage,
    encrypt_mix_stage,
    words_to_block,
)
from repro.ip.sbox_unit import SboxRom, SubWordUnit

#: Deterministic seed for the superposition / random probe vectors.
PROBE_SEED = 0x0AE5
#: Random probes per proof obligation (on top of the structured sets).
RANDOM_PROBES = 16
#: Superposition pairs certifying a behavioral function is linear.
SUPERPOSITION_PAIRS = 16


# ===================================================== GF(2) bit algebra
#: An 8x8 GF(2) matrix as 8 row masks; output bit r = parity of
#: ``rows[r] & value`` (bit 0 = LSB).
Matrix = Tuple[int, ...]

IDENTITY: Matrix = tuple(1 << r for r in range(8))
ZERO: Matrix = (0,) * 8


def mat_apply(matrix: Matrix, value: int) -> int:
    out = 0
    for r, row in enumerate(matrix):
        out |= ((row & value).bit_count() & 1) << r
    return out


def matrix_from_fn(fn: Callable[[int], int]) -> Matrix:
    """The matrix of a linear byte function, by probing the basis."""
    cols = [fn(1 << j) for j in range(8)]
    return tuple(
        sum(((cols[j] >> r) & 1) << j for j in range(8))
        for r in range(8)
    )


def mat_xor(a: Matrix, b: Matrix) -> Matrix:
    return tuple(x ^ y for x, y in zip(a, b))


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Composition ``a after b`` (columns of b pushed through a)."""
    return matrix_from_fn(lambda v: mat_apply(a, mat_apply(b, v)))


def gf_mul(b: int, c: int) -> int:
    """GF(2^8) product with the AES polynomial, xtime-chain form."""
    out = 0
    while c:
        if c & 1:
            out ^= b
        b = ((b << 1) ^ 0x11B) & 0xFF if b & 0x80 else (b << 1) & 0xFF
        c >>= 1
    return out


# ================================================= symbolic byte algebra
#: Uninterpreted-table names the atoms may reference.
TABLES: Dict[str, Sequence[int]] = {"S": SBOX, "IS": INV_SBOX}

#: An atom is an input byte ``("var", name)`` or an uninterpreted
#: S-box read ``("sbox", table, arg)`` whose argument is itself a
#: :class:`ByteExpr` (the reverse key step feeds ``S`` a compound).
Atom = Union[Tuple[str, str], Tuple[str, str, "ByteExpr"]]


@dataclass(frozen=True)
class ByteExpr:
    """A GF(2)-affine combination of atoms: ``const ^ Σ M_i · a_i``."""

    const: int = 0
    terms: FrozenSet[Tuple[Matrix, Atom]] = frozenset()

    @staticmethod
    def var(name: str) -> "ByteExpr":
        return ByteExpr(0, frozenset({(IDENTITY, ("var", name))}))

    @staticmethod
    def lit(value: int) -> "ByteExpr":
        return ByteExpr(value & 0xFF, frozenset())

    @staticmethod
    def sbox(table: str, arg: "ByteExpr") -> "ByteExpr":
        if table not in TABLES:
            raise KeyError(f"unknown table {table!r}")
        return ByteExpr(0, frozenset({(IDENTITY,
                                       ("sbox", table, arg))}))

    def __xor__(self, other: "ByteExpr") -> "ByteExpr":
        # Canonicalize: one matrix per atom; GF(2) cancellation drops
        # atoms whose matrices annihilate.
        merged: Dict[Atom, Matrix] = {}
        for matrix, atom in self.terms:
            merged[atom] = mat_xor(merged.get(atom, ZERO), matrix)
        for matrix, atom in other.terms:
            merged[atom] = mat_xor(merged.get(atom, ZERO), matrix)
        terms = frozenset(
            (matrix, atom) for atom, matrix in merged.items()
            if matrix != ZERO
        )
        return ByteExpr(self.const ^ other.const, terms)

    def mapped(self, matrix: Matrix) -> "ByteExpr":
        """Apply a linear byte map to this expression."""
        return ByteExpr(
            mat_apply(matrix, self.const),
            frozenset((mat_mul(matrix, m), atom)
                      for m, atom in self.terms),
        )

    # ------------------------------------------------------ structure
    @property
    def sbox_atoms(self) -> List[Atom]:
        return [atom for _, atom in self.terms if atom[0] == "sbox"]

    @property
    def is_linear(self) -> bool:
        """No constant and no S-box atoms: a pure GF(2)-linear form."""
        return self.const == 0 and not self.sbox_atoms

    def variables(self) -> FrozenSet[str]:
        names = set()
        for _, atom in self.terms:
            if atom[0] == "var":
                names.add(atom[1])
            else:
                names |= atom[2].variables()
        return frozenset(names)

    def evaluate(self, env: Dict[str, int]) -> int:
        out = self.const
        for matrix, atom in self.terms:
            if atom[0] == "var":
                value = env[atom[1]]
            else:
                value = TABLES[atom[1]][atom[2].evaluate(env)]
            # The identity matrix is by far the most common map.
            out ^= value if matrix == IDENTITY \
                else mat_apply(matrix, value)
        return out


# ================================================ symbolic stage models
#: 16 state byte names; index i = State(row=i % 4, col=i // 4) = byte
#: row ``i % 4`` (MSB first) of column word ``i // 4`` — the packing
#: :mod:`repro.ip.datapath` documents.
STATE_VARS = tuple(f"b{i}" for i in range(16))
KEY_VARS = tuple(f"k{i}" for i in range(16))
#: The per-round Rcon byte, injected at the MSB byte of word 0.
RCON_VAR = "rc"

#: MDS coefficient rows (output row r uses coefficient
#: ``poly[(j - r) % 4]`` on input row j).
MIX_POLY = (0x02, 0x03, 0x01, 0x01)
INV_MIX_POLY = (0x0E, 0x0B, 0x0D, 0x09)


def _sym_state(names: Sequence[str]) -> List[ByteExpr]:
    return [ByteExpr.var(name) for name in names]


def _shift_sym(state: Sequence[ByteExpr],
               inverse: bool) -> List[ByteExpr]:
    """(I)Shift Row as pure wiring over the symbolic state."""
    sign = -1 if inverse else 1
    out: List[ByteExpr] = []
    for col in range(4):
        for row in range(4):
            src = (col + sign * SHIFT_OFFSETS[row]) % 4
            out.append(state[4 * src + row])
    return out


def _mix_sym(state: Sequence[ByteExpr],
             inverse: bool) -> List[ByteExpr]:
    """(I)Mix Column as GF(2) bit-matrices from the MDS coefficients."""
    poly = INV_MIX_POLY if inverse else MIX_POLY
    mats = {c: matrix_from_fn(lambda b, c=c: gf_mul(b, c))
            for c in set(poly)}
    out: List[ByteExpr] = []
    for col in range(4):
        column = state[4 * col:4 * col + 4]
        for row in range(4):
            acc = ByteExpr.lit(0)
            for j in range(4):
                acc ^= column[j].mapped(mats[poly[(j - row) % 4]])
            out.append(acc)
    return out


def _add_key_sym(state: Sequence[ByteExpr],
                 key: Sequence[ByteExpr]) -> List[ByteExpr]:
    return [s ^ k for s, k in zip(state, key)]


def symbolic_sub_stage(inverse: bool) -> List[ByteExpr]:
    """The word-serial 4-S-box substitution: byte i -> table[byte i].

    The lane wiring of :class:`repro.ip.sbox_unit.SubWordUnit` maps
    lane L to byte row L of the word, so the full-state pass is a pure
    per-byte table read with no permutation.
    """
    table = "IS" if inverse else "S"
    return [ByteExpr.sbox(table, v) for v in _sym_state(STATE_VARS)]


def symbolic_mix_stage(inverse: bool,
                       bypass_mix: bool) -> List[ByteExpr]:
    """The 128-bit M-cycle network, from structural constants only.

    Encrypt: AddKey(MixColumn(ShiftRow(state))); decrypt:
    IShiftRow(IMixColumn(AddKey(state))).  ``bypass_mix`` models the
    last-round (encrypt) / first-round (decrypt) 2:1 bypass mux.
    """
    state = _sym_state(STATE_VARS)
    key = _sym_state(KEY_VARS)
    if not inverse:
        out = _shift_sym(state, inverse=False)
        if not bypass_mix:
            out = _mix_sym(out, inverse=False)
        return _add_key_sym(out, key)
    out = _add_key_sym(state, key)
    if not bypass_mix:
        out = _mix_sym(out, inverse=True)
    return _shift_sym(out, inverse=True)


def symbolic_key_step(reverse: bool) -> List[ByteExpr]:
    """One key-schedule step (paper Fig. 8): KStran + ripple XORs.

    Forward: ``n0 = w0 ^ S(rot(w3)) ^ Rcon; n_i = w_i ^ n_{i-1}``.
    Reverse: ``p_i = w_i ^ w_{i-1}`` (i = 3..1);
    ``p0 = w0 ^ S(rot(p3)) ^ Rcon`` — the KStran tap reads the
    *compound* ``w3 ^ w2``, which the uninterpreted atoms carry
    as-is.  Rcon lands on the MSB byte of word 0 in both directions.
    """
    w = [_sym_state(KEY_VARS)[4 * i:4 * i + 4] for i in range(4)]
    rcon = ByteExpr.var(RCON_VAR)

    def kstran_sym(word: Sequence[ByteExpr]) -> List[ByteExpr]:
        rotated = [word[1], word[2], word[3], word[0]]
        subbed = [ByteExpr.sbox("S", b) for b in rotated]
        subbed[0] = subbed[0] ^ rcon
        return subbed

    if not reverse:
        n0 = _add_key_sym(w[0], kstran_sym(w[3]))
        n1 = _add_key_sym(w[1], n0)
        n2 = _add_key_sym(w[2], n1)
        n3 = _add_key_sym(w[3], n2)
        return n0 + n1 + n2 + n3
    p3 = _add_key_sym(w[3], w[2])
    p2 = _add_key_sym(w[2], w[1])
    p1 = _add_key_sym(w[1], w[0])
    p0 = _add_key_sym(w[0], kstran_sym(p3))
    return p0 + p1 + p2 + p3


# ===================================================== probe machinery
def _rng() -> random.Random:
    return random.Random(PROBE_SEED)


def _env(names: Sequence[str], values: Dict[str, int],
         default: int = 0) -> Dict[str, int]:
    env = {name: default for name in names}
    env.update(values)
    return env


def _state_words(env: Dict[str, int],
                 names: Sequence[str]) -> Tuple[int, int, int, int]:
    """Pack 16 byte variables into the 4 column words (MSB first)."""
    words = []
    for i in range(4):
        word = 0
        for j in range(4):
            word = (word << 8) | env[names[4 * i + j]]
        words.append(word)
    return tuple(words)


def _words_bytes(words: Sequence[int]) -> List[int]:
    out = []
    for word in words:
        for row in range(4):
            out.append((word >> (8 * (3 - row))) & 0xFF)
    return out


def _probe_envs(names: Sequence[str],
                sweep: Sequence[str]) -> Iterator[Dict[str, int]]:
    """The structure-derived probe set over the named byte inputs.

    Bit basis on every variable, exhaustive 0..255 sweeps (under an
    all-zero and an 0xA5/0x5A background) for the variables feeding
    S-box atoms, plus deterministic random probes.
    """
    yield _env(names, {})
    for name in names:
        for bit in range(8):
            yield _env(names, {name: 1 << bit})
    for target in sweep:
        for bg_index, background in enumerate((0x00, 0xA5)):
            bg = {
                n: (background ^ (0xFF if (i + bg_index) % 2 else 0))
                if background else 0
                for i, n in enumerate(names)
            }
            for value in range(256):
                env = dict(bg)
                env[target] = value
                yield env
    rng = _rng()
    for _ in range(RANDOM_PROBES):
        yield {name: rng.randrange(256) for name in names}


def _superposition_gap(
    fn: Callable[[Dict[str, int]], List[int]],
    names: Sequence[str],
) -> str:
    """Certify fn is GF(2)-affine by superposition spot-checks."""
    rng = _rng()
    base = fn(_env(names, {}))
    for _ in range(SUPERPOSITION_PAIRS):
        x = {name: rng.randrange(256) for name in names}
        y = {name: rng.randrange(256) for name in names}
        xy = {name: x[name] ^ y[name] for name in names}
        lhs = fn(xy)
        rhs = [a ^ b ^ c for a, b, c in zip(fn(x), fn(y), base)]
        if lhs != rhs:
            return (
                "superposition failed: f(x^y) != f(x)^f(y)^f(0) "
                f"at x={x} y={y}"
            )
    return ""


def sbox_fed_variables(model: Sequence[ByteExpr]) -> List[str]:
    """The input bytes that reach an S-box address in a stage model."""
    return sorted(
        {name for expr in model for atom in expr.sbox_atoms
         for name in atom[2].variables()}
    )


def _prove(
    label: str,
    model: Sequence[ByteExpr],
    fn: Callable[[Dict[str, int]], List[int]],
    names: Sequence[str],
    full_sweep: bool = True,
) -> List[str]:
    """Prove a symbolic stage model equals a behavioral function.

    The probe set is derived from the model's structure: if the model
    is linear, basis equality plus a superposition certificate on the
    behavioral side is conclusive; S-box-fed bytes are swept
    exhaustively.  ``full_sweep=False`` drops the exhaustive sweeps
    down to basis + random probes — used for obligations that repeat
    the same structure with a different constant (key-step rounds
    past the first), where the sweep has already run once.
    """
    problems: List[str] = []
    fed = sbox_fed_variables(model)
    sweep = fed if full_sweep else []
    if not fed:
        # The model is linear; certify the behavioral side is too.
        gap = _superposition_gap(fn, names)
        if gap:
            problems.append(f"{label}: {gap}")
    for env in _probe_envs(names, sweep):
        expected = [expr.evaluate(env) for expr in model]
        actual = fn(env)
        if expected != actual:
            diff = [i for i, (e, a) in
                    enumerate(zip(expected, actual)) if e != a]
            problems.append(
                f"{label}: byte(s) {diff} disagree with the symbolic "
                f"netlist model at probe {env}"
            )
            break  # one counterexample per obligation is enough
    return problems


# ==================================================== proof obligations
def check_sbox_tables() -> List[str]:
    """ROM contents vs the golden tables — exhaustive over 8 bits."""
    problems = []
    for inverse, table, name in ((False, SBOX, "SBOX"),
                                 (True, INV_SBOX, "INV_SBOX")):
        rom = SboxRom(inverse)
        bad = [a for a in range(256) if rom.read(a) != table[a]]
        if bad:
            problems.append(
                f"SboxRom(inverse={inverse}) diverges from {name} at "
                f"address(es) {bad[:8]}"
            )
    bad = [a for a in range(256) if INV_SBOX[SBOX[a]] != a]
    if bad:
        problems.append(
            f"INV_SBOX is not the inverse of SBOX at {bad[:8]}"
        )
    return problems


def check_sub_stage(inverse: bool) -> List[str]:
    """Word-serial substitution vs the unit and the golden model."""
    model = symbolic_sub_stage(inverse)
    unit = SubWordUnit("eqv_probe", inverse=inverse)
    table = "inverse " if inverse else ""
    behavioral = inv_sub_bytes if inverse else sub_bytes

    def via_unit(env: Dict[str, int]) -> List[int]:
        words = _state_words(env, STATE_VARS)
        return _words_bytes([unit.lookup(w) for w in words])

    def via_transforms(env: Dict[str, int]) -> List[int]:
        words = _state_words(env, STATE_VARS)
        state = State(words_to_block(words))
        return list(behavioral(state).to_bytes())

    problems = _prove(f"{table}sub stage (4-S-box unit)", model,
                      via_unit, STATE_VARS)
    problems += _prove(f"{table}sub stage (golden transforms)", model,
                       via_transforms, STATE_VARS)
    return problems


def check_mix_stage(inverse: bool) -> List[str]:
    """The 128-bit M-cycle network, both bypass settings, two ways."""
    problems: List[str] = []
    names = STATE_VARS + KEY_VARS
    for bypass in (False, True):
        model = symbolic_mix_stage(inverse, bypass_mix=bypass)
        for expr in model:
            if not expr.is_linear:
                problems.append(
                    "mix-stage model unexpectedly nonlinear "
                    f"(inverse={inverse}, bypass={bypass})"
                )
                return problems
        direction = "decrypt" if inverse else "encrypt"
        flag = "bypass" if bypass else "full"

        def via_datapath(env: Dict[str, int],
                         _inv: bool = inverse,
                         _byp: bool = bypass) -> List[int]:
            words = _state_words(env, STATE_VARS)
            keys = _state_words(env, KEY_VARS)
            if _inv:
                out = decrypt_mix_stage(words, keys, first_round=_byp)
            else:
                out = encrypt_mix_stage(words, keys, last_round=_byp)
            return _words_bytes(out)

        def via_transforms(env: Dict[str, int],
                           _inv: bool = inverse,
                           _byp: bool = bypass) -> List[int]:
            words = _state_words(env, STATE_VARS)
            key = words_to_block(_state_words(env, KEY_VARS))
            state = State(words_to_block(words))
            if _inv:
                state = add_round_key(state, key)
                if not _byp:
                    state = inv_mix_columns(state)
                state = inv_shift_rows(state)
            else:
                state = shift_rows(state)
                if not _byp:
                    state = mix_columns(state)
                state = add_round_key(state, key)
            return list(state.to_bytes())

        problems += _prove(
            f"{direction} mix stage/{flag} (ip.datapath)",
            model, via_datapath, names)
        problems += _prove(
            f"{direction} mix stage/{flag} (golden transforms)",
            model, via_transforms, names)
    return problems


def check_key_step(reverse: bool) -> List[str]:
    """One schedule step vs the behavioral helper, all ten rounds.

    ``RCON[1..8]`` spans GF(2)^8, so iterating the rounds exercises
    the Rcon injection on its full bit basis; rounds 9 and 10 revisit
    spanned values with fresh state probes.
    """
    model = symbolic_key_step(reverse)
    step = previous_round_key if reverse else next_round_key
    direction = "reverse" if reverse else "forward"
    names = KEY_VARS
    problems: List[str] = []
    for round_index in range(1, NUM_ROUNDS + 1):

        def via_schedule(env: Dict[str, int],
                         _r: int = round_index) -> List[int]:
            words = _state_words(env, KEY_VARS)
            return _words_bytes(step(words, _r))

        bound = [
            _bind_rcon(expr, RCON[round_index]) for expr in model
        ]
        label = f"{direction} key step r={round_index}"
        problems += _prove(label, bound, via_schedule, names,
                           full_sweep=round_index == 1)
        if problems:
            break
    if not problems:
        rng = _rng()
        for _ in range(RANDOM_PROBES):
            words = tuple(rng.randrange(1 << 32) for _ in range(4))
            r = rng.randrange(1, NUM_ROUNDS + 1)
            if previous_round_key(next_round_key(words, r),
                                  r) != words:
                problems.append(
                    "round-trip previous(next(w, r), r) != w at "
                    f"w={words} r={r}"
                )
                break
    return problems


def _bind_rcon(expr: ByteExpr, rcon: int) -> ByteExpr:
    """Substitute the Rcon variable with a concrete round constant."""
    out = ByteExpr(expr.const, frozenset())
    for matrix, atom in expr.terms:
        if atom == ("var", RCON_VAR):
            out = out ^ ByteExpr.lit(mat_apply(matrix, rcon))
        else:
            out = out ^ ByteExpr(0, frozenset({(matrix, atom)}))
    return out


# ================================================== subjects and cache
@dataclass(frozen=True)
class EquivSubject:
    """One equivalence run: a connectivity design plus its variant."""

    variant: Variant
    design: Design

    @property
    def label(self) -> str:
        return self.design.name


#: Which symbolic stage model claims each datapath cell.  Cells marked
#: ``routing`` move or select whole values without transforming them;
#: their behavior is covered by the cycle-accurate core tests, not by
#: a stage proof.
STAGE_COVERAGE: Dict[str, str] = {
    "mix_network": "mix-stage",
    "bytesub_split": "sub-stage",
    "bytesub_join": "sub-stage",
    "bytesub_rom0": "sub-stage",
    "bytesub_rom1": "sub-stage",
    "bytesub_rom2": "sub-stage",
    "bytesub_rom3": "sub-stage",
    "kstran_tap": "key-step",
    "kstran_split": "key-step",
    "kstran_join": "key-step",
    "kstran_rom0": "key-step",
    "kstran_rom1": "key-step",
    "kstran_rom2": "key-step",
    "kstran_rom3": "key-step",
    "sched_xor": "key-step",
    "load_mux": "routing",
    "state_mux": "routing",
    "word_select": "routing",
    "word_place": "routing",
    "data_ok_buf": "routing",
}

_CACHE: Dict[Tuple[str, str], Dict[str, List[str]]] = {}


def clear_cache() -> None:
    """Drop memoized verification results (for tests)."""
    _CACHE.clear()


def verify(subject: EquivSubject) -> Dict[str, List[str]]:
    """All proof obligations for one subject, memoized.

    Returns a map from obligation group (``sbox-table``,
    ``sub-stage``, ``mix-stage``, ``key-step``) to the list of
    counterexample messages (empty = proven).
    """
    key = (subject.design.name, subject.variant.name)
    if key in _CACHE:
        return _CACHE[key]
    variant = subject.variant
    directions = []
    if variant.can_encrypt:
        directions.append(False)
    if variant.can_decrypt:
        directions.append(True)
    report: Dict[str, List[str]] = {
        "sbox-table": check_sbox_tables(),
        "sub-stage": [p for inv in directions
                      for p in check_sub_stage(inv)],
        "mix-stage": [p for inv in directions
                      for p in check_mix_stage(inv)],
        "key-step": [p for inv in directions
                     for p in check_key_step(reverse=inv)],
    }
    _CACHE[key] = report
    return report


def paper_equiv_subjects() -> List[EquivSubject]:
    """The shipped equivalence subject set: one per paper variant."""
    from repro.fpga.connectivity import paper_connectivity

    return [EquivSubject(variant, paper_connectivity(variant))
            for variant in Variant]


# ------------------------------------------------------------------- rules
def _loc(subject: EquivSubject, obj: str) -> Location:
    return Location(file=f"equiv:{subject.label}", obj=obj)


@rule("eqv.sbox-table", Severity.ERROR, KIND_EQUIV,
      "S-box ROM contents diverge from the golden tables")
def sbox_table(subject: EquivSubject,
               config: CheckConfig) -> Iterator[Finding]:
    for message in verify(subject)["sbox-table"]:
        yield Finding("eqv.sbox-table", Severity.ERROR, message,
                      _loc(subject, "sbox"))


@rule("eqv.sub-stage", Severity.ERROR, KIND_EQUIV,
      "word-serial substitution differs from the symbolic model")
def sub_stage(subject: EquivSubject,
              config: CheckConfig) -> Iterator[Finding]:
    for message in verify(subject)["sub-stage"]:
        yield Finding("eqv.sub-stage", Severity.ERROR, message,
                      _loc(subject, "bytesub"))


@rule("eqv.mix-stage", Severity.ERROR, KIND_EQUIV,
      "128-bit mix stage differs from the symbolic model")
def mix_stage(subject: EquivSubject,
              config: CheckConfig) -> Iterator[Finding]:
    for message in verify(subject)["mix-stage"]:
        yield Finding("eqv.mix-stage", Severity.ERROR, message,
                      _loc(subject, "mix_network"))


@rule("eqv.key-step", Severity.ERROR, KIND_EQUIV,
      "key-schedule step differs from the symbolic model")
def key_step(subject: EquivSubject,
             config: CheckConfig) -> Iterator[Finding]:
    for message in verify(subject)["key-step"]:
        yield Finding("eqv.key-step", Severity.ERROR, message,
                      _loc(subject, "sched_xor"))


@rule("eqv.unmodelled-cell", Severity.WARNING, KIND_EQUIV,
      "datapath cell not claimed by any symbolic stage model")
def unmodelled_cell(subject: EquivSubject,
                    config: CheckConfig) -> Iterator[Finding]:
    for name in sorted(subject.design.cells):
        cell = subject.design.cells[name]
        if cell.kind not in (CellKind.COMB, CellKind.ROM):
            continue
        if name not in STAGE_COVERAGE:
            yield Finding(
                "eqv.unmodelled-cell", Severity.WARNING,
                f"cell {name!r} (group {cell.group!r}) is outside "
                f"every symbolic stage model; its function is "
                f"unverified by the equivalence checker",
                _loc(subject, name),
            )
