"""Lint orchestration: build the default subjects, run every family.

This is what ``repro-aes lint`` calls.  The default subject set covers
the whole shipped artifact:

- connectivity designs of the three paper devices (DRC family);
- structural netlists of the paper design points (inventory family);
- control-FSM models of every device flavour (FSM family);
- the Python cipher/IP/serving source (constant-time and serve
  families, per file);
- that source set *plus* the perf/obs trees as ONE whole-program
  subject for the interprocedural flow packs (``taint.*`` /
  ``aio.*`` — see :mod:`repro.checks.flow`);
- the serving sources as ONE protocol subject for the explicit-state
  wire-protocol model checker (``proto.*`` — see
  :mod:`repro.checks.proto`);
- the generated VHDL deliverable (HDL family);
- graph STA subjects — every paper variant on both Table 2 devices
  (``sta.*`` family);
- symbolic equivalence subjects — one per paper variant (``eqv.*``
  family);
- observed-run subjects — every device flavour executed under
  hardware counters (``obs.*`` family).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checks.baseline import DEFAULT_BASELINE, Baseline
from repro.checks.engine import (
    KIND_DESIGN,
    KIND_EQUIV,
    KIND_FLOW,
    KIND_FSM,
    KIND_NETLIST,
    KIND_OBS,
    KIND_PROTO,
    KIND_SOURCE,
    KIND_STA,
    KIND_VHDL,
    CheckConfig,
    Finding,
    Location,
    Severity,
    run_rules,
)
from repro.checks.crypto_lint import SourceFile

#: Source trees the per-file source families (``ct.*``, ``serve.*``)
#: scan by default, relative to the repository root.
DEFAULT_SOURCE_DIRS = ("src/repro/aes", "src/repro/ip",
                       "src/repro/serve")

#: Extra trees that join the whole-program flow subject only.  The
#: taint/aio hazards live exactly where engine, metrics and serving
#: code meet — but the per-file constant-time gate stays scoped to
#: the cipher/IP/serving trees it has always guarded (the T-table
#: bench backend is non-constant-time by design and sanctioned
#: there).
FLOW_EXTRA_SOURCE_DIRS = ("src/repro/perf", "src/repro/obs")


@dataclass
class LintResult:
    """Everything a reporter or exit-code decision needs."""

    findings: List[Finding]              # active (not suppressed)
    suppressed: List[Finding] = field(default_factory=list)
    stale_fingerprints: List[str] = field(default_factory=list)

    @property
    def worst(self) -> Optional[Severity]:
        from repro.checks.engine import max_severity
        return max_severity(self.findings)

    @property
    def exit_code(self) -> int:
        return 1 if self.worst is Severity.ERROR else 0


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Walk up until a directory that looks like the repo root."""
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return here


def build_subjects(
    root: Path,
    source_paths: Optional[Sequence[Path]] = None,
    full_flow: bool = False,
) -> Dict[str, Sequence[object]]:
    """Assemble the default subject set for one lint run.

    ``full_flow`` keeps the whole-program flow and proto subjects on
    their full default source set even when ``source_paths`` restricts
    the per-file families — the ``--changed`` mode: interprocedural
    and protocol analyses are only sound over the whole package.
    """
    from repro.arch.spec import PAPER_SPECS
    from repro.checks.equiv import EquivSubject
    from repro.checks.netlist_drc import NetlistSubject
    from repro.checks.fsm import paper_fsms
    from repro.checks.obs import paper_obs_subjects
    from repro.checks.sta import StaSubject
    from repro.fpga.aes_netlists import build_netlist
    from repro.fpga.connectivity import paper_connectivity
    from repro.fpga.devices import EP1C20, EP1K100
    from repro.hdl.vhdl_gen import generate_core_vhdl
    from repro.ip.control import Variant

    from repro.checks.flow import FlowSubject
    from repro.checks.proto import ProtoSubject

    designs = [paper_connectivity(variant) for variant in Variant]
    by_variant = {design.name: design for design in designs}
    netlists = [NetlistSubject(spec, build_netlist(spec))
                for spec in PAPER_SPECS.values()]
    fsms = paper_fsms()
    sources = _load_sources(root, source_paths)
    if full_flow and source_paths is not None:
        flow_sources = _load_sources(root, None)
    else:
        flow_sources = list(sources)
    if source_paths is None or full_flow:
        flow_sources.extend(_load_sources(
            root, [root / d for d in FLOW_EXTRA_SOURCE_DIRS]))
    parsed = tuple(s for s in flow_sources
                   if isinstance(s, SourceFile))
    vhdl: List[Tuple[str, str]] = []
    for variant in Variant:
        for name, text in sorted(
                generate_core_vhdl(variant).items()):
            vhdl.append((f"{variant.value}/{name}", text))
    sta_subjects = [
        StaSubject(spec, device, by_variant[f"paper_{spec.variant.value}"])
        for spec in PAPER_SPECS.values()
        for device in (EP1K100, EP1C20)
    ]
    equiv_subjects = [
        EquivSubject(variant,
                     by_variant[f"paper_{variant.value}"])
        for variant in Variant
    ]
    return {
        KIND_DESIGN: designs,
        KIND_NETLIST: netlists,
        KIND_FSM: fsms,
        KIND_SOURCE: sources,
        KIND_VHDL: vhdl,
        KIND_STA: sta_subjects,
        KIND_EQUIV: equiv_subjects,
        KIND_OBS: paper_obs_subjects(),
        # The whole parsed source set as one program: the flow packs
        # need cross-file call edges, not per-file views.
        KIND_FLOW: [FlowSubject(parsed)] if parsed else [],
        # The serve sources as one protocol subject: the proto pack
        # model-checks the wire protocol across all three modules.
        KIND_PROTO: _proto_subjects(parsed, ProtoSubject),
    }


def _proto_subjects(parsed: Sequence[SourceFile],
                    subject_cls: type) -> List[object]:
    """One ProtoSubject over the serve sources, if they are in scope.

    The extractor needs protocol.py + server.py + client.py together;
    a path-restricted run that covers none of them simply fields no
    proto subject.
    """
    serve = tuple(
        s for s in parsed
        if "repro/serve/" in s.path.replace("\\", "/")
    )
    return [subject_cls(serve)] if serve else []


def _load_sources(
    root: Path,
    source_paths: Optional[Sequence[Path]] = None,
) -> List[object]:
    if source_paths is None:
        source_paths = [root / d for d in DEFAULT_SOURCE_DIRS]
    files: List[Path] = []
    for path in source_paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.is_file():
            files.append(path)
    sources: List[object] = []
    for file_path in files:
        try:
            display = str(file_path.resolve().relative_to(root))
        except ValueError:
            display = str(file_path)
        try:
            sources.append(
                SourceFile.parse(display, file_path.read_text())
            )
        except SyntaxError as exc:
            # A file the lint cannot parse is itself a finding-worthy
            # event, surfaced through a synthetic parse failure below.
            sources.append(_ParseFailure(display, str(exc)))
    return sources


@dataclass(frozen=True)
class _ParseFailure:
    path: str
    error: str


def run_lint(
    root: Optional[Path] = None,
    config: Optional[CheckConfig] = None,
    baseline_path: Optional[Path] = None,
    source_paths: Optional[Sequence[Path]] = None,
    subjects: Optional[Dict[str, Sequence[object]]] = None,
    full_flow: bool = False,
) -> LintResult:
    """One full lint pass; the API the CLI and CI wrap."""
    root = root or find_repo_root()
    config = config or CheckConfig()
    if subjects is None:
        subjects = build_subjects(root, source_paths,
                                  full_flow=full_flow)

    parse_failures = [
        s for s in subjects.get(KIND_SOURCE, ())
        if isinstance(s, _ParseFailure)
    ]
    subjects = dict(subjects)
    subjects[KIND_SOURCE] = [
        s for s in subjects.get(KIND_SOURCE, ())
        if not isinstance(s, _ParseFailure)
    ]

    findings = run_rules(subjects, config)
    for failure in parse_failures:
        findings.append(Finding(
            "engine.parse-error", Severity.ERROR,
            f"cannot parse: {failure.error}",
            Location(file=failure.path),
        ))

    baseline = Baseline.empty()
    if baseline_path is None:
        default = root / DEFAULT_BASELINE
        if default.exists():
            baseline = Baseline.load(default)
    elif baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    active, suppressed = baseline.split(findings)
    stale = _scoped_stale(
        baseline.stale_entries(findings), baseline, config,
        subjects, path_restricted=source_paths is not None,
    )
    return LintResult(
        findings=active,
        suppressed=suppressed,
        stale_fingerprints=stale,
    )


def _scoped_stale(
    stale: Sequence[str],
    baseline: "Baseline",
    config: CheckConfig,
    subjects: Dict[str, Sequence[object]],
    path_restricted: bool,
) -> List[str]:
    """Keep only the stale entries this run could have re-produced.

    A run filtered by ``--enable``/``--disable`` never produces
    findings for the other rule packs, and a path-restricted run never
    scans the other files — their baseline entries are *out of scope*
    for this run, not stale.  Entries whose recorded context is
    missing stay stale (conservative: a full run decides).
    """
    from repro.checks.engine import registry

    scanned_by_kind: Dict[str, set] = {}
    for kind in (KIND_SOURCE, KIND_FLOW, KIND_PROTO):
        scanned = scanned_by_kind.setdefault(kind, set())
        for subject in subjects.get(kind, ()):
            path = getattr(subject, "path", None)
            if isinstance(path, str):
                scanned.add(path)
            for src in getattr(subject, "sources", ()):
                scanned.add(src.path)
    rules = registry()
    kept: List[str] = []
    for fingerprint in stale:
        ctx = baseline.entries.get(fingerprint) or {}
        rule_id = ctx.get("rule", "")
        if rule_id and not config.enabled(rule_id):
            continue
        file = ctx.get("file", "")
        # Model pseudo-paths (netlist:..., fsm:...) come from subjects
        # that every run builds; only real files can fall out of a
        # path-restricted scan — and only out of the subject kind the
        # recorded rule actually reads.
        if path_restricted and file.endswith(".py") \
                and rule_id in rules:
            scanned = scanned_by_kind.get(rules[rule_id].requires)
            if scanned is not None and file not in scanned:
                continue
        kept.append(fingerprint)
    return kept
