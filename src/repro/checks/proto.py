"""Explicit-state protocol model checking for the serve layer.

``checks.fsm`` proves the *hardware* control FSM by exhaustive walk
(5-cycle rounds, 50-cycle blocks).  Nothing proved the *wire*
protocol, and both historical serve-layer production bugs — the
unframeable GCM response that permanently killed worker tasks, and
the SHUTDOWN ``stop()`` task lost to the event loop's weak task
references — were protocol/lifecycle bugs found only after the fact.
This module closes that gap in two stages:

- **Extraction** — :func:`extract_wire_model` reads
  ``serve/protocol.py`` / ``server.py`` / ``client.py`` off the same
  :class:`~repro.checks.crypto_lint.SourceFile` AST substrate the
  other source families use and recovers the wire model: header
  layout (folding ``struct.Struct(">2sBBBBIQ").size``), the
  ``Op``/``Mode``/``Status`` enums, the MAX_PAYLOAD-class limits,
  every ``FrameError`` raise site with its ``recoverable`` flag, and
  the behavioural shape of the server's per-connection loop, worker
  path and crypto dispatch plus the client's retry loop.  Anything
  the extractor cannot anchor is recorded in
  :attr:`WireModel.problems` — the shipped tree must extract clean.
- **Model checking** — :func:`check_model` runs a BFS over the
  client x server x channel product (peer actions are adversarial:
  truncation, oversized prefixes, bad magic/version, unknown enums,
  mid-stream SHUTDOWN, worker-killing requests) and proves, with a
  predecessor-chain witness trace for every failure:

  * no reachable *desync-deadlock* — a desynchronized byte stream is
    never read from again, and every outstanding request is answered
    or its connection closed by the server's own steps;
  * every server error path emits a response or closes;
  * buffering stays bounded in every reachable state (the queue
    never grows past its bound without an ``OVERLOADED`` answer);
  * the expected lifecycle states (running, draining, stopped) are
    all reachable — a lost ``stop()`` task makes ``stopped``
    unreachable, which is exactly the historical GC hazard;
  * every status the server source emits is produced by some
    reachable protocol state (extractor/model cross-validation).

The ``proto.*`` rules over this analysis run in ``lint --strict``
(see docs/static_analysis.md, "Protocol model checking") and back the
``repro-aes proto`` report command.  The re-injection corpus in
``tests/checks/test_proto_corpus.py`` plants both historical bugs and
synthetic ones into the real module text and asserts each is caught.
"""

from __future__ import annotations

import ast
import struct
import time
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterator, List, Optional, Sequence, \
    Set, Tuple, Union

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import (
    KIND_PROTO,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.secrets import SANITIZERS

#: A folded compile-time value: int, bytes, str, bool or a struct
#: format captured from ``struct.Struct(fmt)``.
FoldValue = Union[int, bytes, str, bool, Tuple[str, str]]

#: Identifiers that name raw wire bytes inside the protocol codec.
#: A ``FrameError`` diagnostic interpolating one of these un-sanitized
#: echoes attacker-controlled (or key-adjacent) bytes back onto the
#: wire; lengths and enum values are the sanctioned vocabulary.
WIRE_BYTE_NAMES = frozenset({
    "body", "data", "payload", "prefix", "magic", "header", "wire",
    "frame_bytes", "raw",
})

#: ``FrameError.recoverable`` ground truth by raising function: a
#: ``decode_body`` / ``decode_payload`` failure consumed exactly one
#: well-delimited frame (stream still aligned); everything raised by
#: the framing readers and the client round-trip means the stream
#: cannot be trusted.  ``decode_payload`` is the zero-copy split
#: entry point the streaming reader parses through.
EXPECTED_RECOVERABLE: Dict[str, bool] = {
    "decode_body": True,
    "decode_payload": True,
    "decode_frame": False,
    "read_frame": False,
    "_roundtrip": False,
}


# ------------------------------------------------------- model records
@dataclass(frozen=True)
class EnumModel:
    """One IntEnum extracted from protocol.py."""

    name: str
    lineno: int
    members: Tuple[Tuple[str, int], ...]
    member_lines: Tuple[Tuple[str, int], ...]

    def value(self, member: str) -> Optional[int]:
        for name, value in self.members:
            if name == member:
                return value
        return None

    def line(self, member: str) -> int:
        for name, line in self.member_lines:
            if name == member:
                return line
        return self.lineno

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.members)


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise FrameError(...)`` with its classification."""

    path: str
    function: str
    lineno: int
    recoverable: bool
    explicit: bool                 # flag written out at the site
    text: str                      # constant parts of the message
    raw_reads: Tuple[str, ...]     # un-sanitized interpolated roots


@dataclass(frozen=True)
class ServerModel:
    """Behavioural shape of ``CryptoServer`` (server.py)."""

    path: str
    loop_lineno: int
    #: except-FrameError path of the connection loop.
    replies_on_frame_error: bool
    continues_on_recoverable: bool
    closes_on_unrecoverable: bool
    #: inline SHUTDOWN handling.
    shutdown_inline: bool
    shutdown_replies: bool
    shutdown_lineno: int
    stop_task_created: bool
    stop_task_pinned: bool
    #: draining / backpressure.
    replies_when_stopping: bool
    has_backpressure: bool
    #: worker path.
    worker_shielded: bool
    process_catches_timeout: bool
    process_catches_exception: bool
    unknown_op_reply: bool
    send_frame_error_fallback: bool
    send_lineno: int
    #: dispatch tables.
    handler_ops: Tuple[str, ...]
    crypto_pairs: Tuple[Tuple[str, str], ...]
    #: GCM response-expansion guard.
    gcm_cap: Optional[int]
    gcm_cap_checked: bool
    gcm_encrypt_lineno: int
    #: every ``Status.X`` the server source references, with lines.
    emitted_statuses: Tuple[Tuple[str, int], ...]

    def emits(self, status: str) -> bool:
        return any(name == status for name, _ in self.emitted_statuses)


@dataclass(frozen=True)
class ClientModel:
    """Behavioural shape of ``CryptoClient`` (client.py)."""

    path: str
    uses_retry_set: bool
    bounded_retries: bool
    checks_request_id: bool
    referenced_statuses: Tuple[str, ...]


@dataclass(frozen=True)
class WireModel:
    """Everything the extractor recovered about the wire protocol."""

    protocol_path: str
    server_path: str
    client_path: str
    magic: Optional[bytes]
    version: Optional[int]
    header_format: Optional[str]
    header_bytes: Optional[int]
    max_payload: Optional[int]
    max_frame: Optional[int]
    gcm_iv_bytes: Optional[int]
    gcm_tag_bytes: Optional[int]
    key_bytes: Optional[int]
    ops: Optional[EnumModel]
    modes: Optional[EnumModel]
    statuses: Optional[EnumModel]
    retryable: Tuple[str, ...]
    raise_sites: Tuple[RaiseSite, ...]
    server: Optional[ServerModel]
    client: Optional[ClientModel]
    problems: Tuple[str, ...]


# ----------------------------------------------------- constant folding
def _fold(node: ast.AST,
          env: Dict[str, FoldValue]) -> Optional[FoldValue]:
    """Fold a module-level constant expression, or ``None``."""
    if isinstance(node, ast.Constant):
        value = node.value
        if isinstance(value, (int, bytes, str, bool)):
            return value
        return None
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        operand = _fold(node.operand, env)
        if isinstance(operand, int):
            return -operand
        return None
    if isinstance(node, ast.BinOp):
        left = _fold(node.left, env)
        right = _fold(node.right, env)
        if isinstance(left, int) and isinstance(right, int):
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.LShift):
                return left << right
        return None
    if isinstance(node, ast.Call):
        # struct.Struct(fmt) -> a captured format; .size folds below.
        name = _call_name(node)
        if name == "Struct" and node.args:
            fmt = _fold(node.args[0], env)
            if isinstance(fmt, str):
                return ("struct", fmt)
        if name == "calcsize" and node.args:
            fmt = _fold(node.args[0], env)
            if isinstance(fmt, str):
                try:
                    return struct.calcsize(fmt)
                except struct.error:
                    return None
        return None
    if isinstance(node, ast.Attribute) and node.attr == "size":
        base = _fold(node.value, env)
        if isinstance(base, tuple) and base[0] == "struct":
            try:
                return struct.calcsize(base[1])
            except struct.error:
                return None
        return None
    return None


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _module_env(tree: ast.Module,
                seed: Optional[Dict[str, FoldValue]] = None,
                ) -> Dict[str, FoldValue]:
    """Fold every module-level simple assignment, in order."""
    env: Dict[str, FoldValue] = dict(seed or {})
    for stmt in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        folded = _fold(value, env)
        if folded is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                env[target.id] = folded
    return env


# --------------------------------------------------------- protocol.py
def _extract_enums(tree: ast.Module) -> Dict[str, EnumModel]:
    enums: Dict[str, EnumModel] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        is_enum = any(
            (isinstance(base, ast.Name) and base.id == "IntEnum")
            or (isinstance(base, ast.Attribute)
                and base.attr == "IntEnum")
            for base in stmt.bases
        )
        if not is_enum:
            continue
        members: List[Tuple[str, int]] = []
        lines: List[Tuple[str, int]] = []
        for item in stmt.body:
            if isinstance(item, ast.Assign) \
                    and len(item.targets) == 1 \
                    and isinstance(item.targets[0], ast.Name) \
                    and isinstance(item.value, ast.Constant) \
                    and isinstance(item.value.value, int):
                members.append((item.targets[0].id, item.value.value))
                lines.append((item.targets[0].id, item.lineno))
        enums[stmt.name] = EnumModel(
            name=stmt.name, lineno=stmt.lineno,
            members=tuple(members), member_lines=tuple(lines),
        )
    return enums


def _extract_retryable(tree: ast.Module) -> Tuple[str, ...]:
    """Members of the ``RETRYABLE_STATUSES = frozenset({...})``."""
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "RETRYABLE_STATUSES"):
            continue
        names: List[str] = []
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "Status":
                names.append(node.attr)
        return tuple(names)
    return ()


def _raw_roots(node: ast.AST) -> List[str]:
    """Root identifiers an interpolation reads *un-sanitized*.

    ``len(body)`` reveals a length (fine); bare ``body`` / ``magic``
    / ``data[:4]`` reveal wire bytes.  Sanctioned calls sanitize
    their whole argument list; other calls pass raw-ness through.
    """
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Attribute, ast.Subscript)):
        return _raw_roots(node.value)
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in SANITIZERS or name in ("int", "float", "hex"):
            return []
        roots: List[str] = []
        for arg in node.args:
            roots.extend(_raw_roots(arg))
        return roots
    if isinstance(node, ast.BinOp):
        return _raw_roots(node.left) + _raw_roots(node.right)
    if isinstance(node, ast.FormattedValue):
        return _raw_roots(node.value)
    return []


def _message_parts(node: ast.expr) -> Tuple[str, List[str]]:
    """(constant text, raw interpolated roots) of a message expr."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, []
    if isinstance(node, ast.JoinedStr):
        text: List[str] = []
        raws: List[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant) \
                    and isinstance(value.value, str):
                text.append(value.value)
            elif isinstance(value, ast.FormattedValue):
                raws.extend(_raw_roots(value))
        return "".join(text), raws
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left_text, left_raw = _message_parts(node.left)
        right_text, right_raw = _message_parts(node.right)
        return left_text + right_text, left_raw + right_raw
    return "", _raw_roots(node)


def _extract_raise_sites(source: SourceFile) -> List[RaiseSite]:
    """Every ``raise FrameError(...)`` with its recoverable flag."""
    sites: List[RaiseSite] = []

    def visit(node: ast.AST, function: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                visit(child, child.name)
                continue
            if isinstance(child, ast.Raise) \
                    and isinstance(child.exc, ast.Call) \
                    and _call_name(child.exc) == "FrameError":
                call = child.exc
                recoverable, explicit = True, False
                for kw in call.keywords:
                    if kw.arg == "recoverable" \
                            and isinstance(kw.value, ast.Constant):
                        recoverable = bool(kw.value.value)
                        explicit = True
                if len(call.args) > 1 \
                        and isinstance(call.args[1], ast.Constant):
                    recoverable = bool(call.args[1].value)
                    explicit = True
                text, raws = ("", [])
                if call.args:
                    text, raws = _message_parts(call.args[0])
                sites.append(RaiseSite(
                    path=source.path, function=function,
                    lineno=child.lineno, recoverable=recoverable,
                    explicit=explicit, text=text.lower(),
                    raw_reads=tuple(raws),
                ))
            visit(child, function)

    visit(source.tree, "<module>")
    return sites


# ----------------------------------------------------------- server.py
def _method(cls: ast.ClassDef,
            name: str) -> Optional[ast.AST]:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and item.name == name:
            return item
    return None


def _module_function(tree: ast.Module,
                     name: str) -> Optional[ast.AST]:
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and stmt.name == name:
            return stmt
    return None


def _catches(handler: ast.ExceptHandler, exc_name: str) -> bool:
    """Does this except clause name ``exc_name`` (bare or dotted)?"""
    def match(node: Optional[ast.expr]) -> bool:
        if isinstance(node, ast.Name):
            return node.id == exc_name
        if isinstance(node, ast.Attribute):
            return node.attr == exc_name
        if isinstance(node, ast.Tuple):
            return any(match(el) for el in node.elts)
        return False
    return match(handler.type)


def _mentions_recoverable(node: ast.expr) -> bool:
    return any(
        isinstance(n, ast.Attribute) and n.attr == "recoverable"
        for n in ast.walk(node)
    )


def _calls_send(stmts: Sequence[ast.stmt]) -> bool:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "_send":
                return True
    return False


def _branch_terminal(stmts: Sequence[ast.stmt],
                     recoverable: bool) -> str:
    """How the except-FrameError body ends on one recoverable value.

    Returns ``"continue"``, ``"return"`` or ``"fall"`` (falling off
    the handler continues the enclosing ``while True`` loop).
    """
    for stmt in stmts:
        if isinstance(stmt, ast.Continue):
            return "continue"
        if isinstance(stmt, ast.Return):
            return "return"
        if isinstance(stmt, ast.If) \
                and _mentions_recoverable(stmt.test):
            branch = stmt.body if recoverable else stmt.orelse
            outcome = _branch_terminal(branch, recoverable)
            if outcome != "fall":
                return outcome
    return "fall"


def _attr_is(node: ast.expr, attr: str) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == attr


def _enum_attr(node: ast.expr, enum_name: str) -> Optional[str]:
    """``Op.SHUTDOWN`` -> ``"SHUTDOWN"`` when the base matches."""
    if isinstance(node, ast.Attribute) \
            and isinstance(node.value, ast.Name) \
            and node.value.id == enum_name:
        return node.attr
    return None


def _creates_stop_task(node: ast.AST) -> bool:
    """Does this node contain ``...create_task(self.stop...)``?"""
    for call in ast.walk(node):
        if isinstance(call, ast.Call) \
                and isinstance(call.func, ast.Attribute) \
                and call.func.attr == "create_task":
            for arg in call.args:
                for sub in ast.walk(arg):
                    if _attr_is(sub, "stop"):
                        return True
    return False


@dataclass
class _LoopShape:
    """What ``_connection_loop`` does on each event class."""

    replies_on_frame_error: bool = False
    continues_on_recoverable: bool = False
    closes_on_unrecoverable: bool = False
    shutdown_inline: bool = False
    shutdown_replies: bool = False
    shutdown_lineno: int = 0
    stop_task_created: bool = False
    stop_task_pinned: bool = False
    replies_when_stopping: bool = False
    has_backpressure: bool = False


def _extract_connection_loop(loop: ast.AST,
                             problems: List[str]) -> _LoopShape:
    """Shape of ``_connection_loop``: error path, SHUTDOWN, drain."""
    out = _LoopShape(shutdown_lineno=getattr(loop, "lineno", 0))
    frame_handler: Optional[ast.ExceptHandler] = None
    for node in ast.walk(loop):
        if isinstance(node, ast.Try):
            for handler in node.handlers:
                if _catches(handler, "FrameError") \
                        and frame_handler is None:
                    frame_handler = handler
                if _catches(handler, "QueueFull") \
                        and _calls_send(handler.body):
                    out.has_backpressure = True
        if isinstance(node, ast.If):
            op = None
            for sub in ast.walk(node.test):
                member = _enum_attr(sub, "Op")
                if member == "SHUTDOWN":
                    op = member
            if op is not None:
                out.shutdown_inline = True
                out.shutdown_lineno = node.lineno
                out.shutdown_replies = _calls_send(node.body)
                for stmt in node.body:
                    for sub in ast.walk(stmt):
                        if isinstance(sub, ast.Assign) \
                                and _creates_stop_task(sub.value) \
                                and any(isinstance(t, ast.Attribute)
                                        for t in sub.targets):
                            out.stop_task_created = True
                            out.stop_task_pinned = True
                if not out.stop_task_created \
                        and _creates_stop_task(node):
                    out.stop_task_created = True
            if _attr_is(node.test, "_stopping") \
                    and _calls_send(node.body):
                out.replies_when_stopping = True
    if frame_handler is None:
        problems.append(
            "_connection_loop: no except-FrameError handler found"
        )
    else:
        out.replies_on_frame_error = _calls_send(frame_handler.body)
        out.continues_on_recoverable = _branch_terminal(
            frame_handler.body, recoverable=True
        ) in ("continue", "fall")
        out.closes_on_unrecoverable = _branch_terminal(
            frame_handler.body, recoverable=False
        ) == "return"
    return out


def _status_in(node: ast.AST, status: str) -> bool:
    return any(
        _enum_attr(sub, "Status") == status
        for sub in ast.walk(node)
    )


def _extract_crypto_table(tree: ast.Module, problems: List[str],
                          ) -> Dict[Tuple[str, str], str]:
    """``_CRYPTO_OPS``: (op, mode) member names -> handler name."""
    table: Dict[Tuple[str, str], str] = {}
    for stmt in tree.body:
        value = None
        if isinstance(stmt, ast.Assign):
            value = stmt.value
            names = [t.id for t in stmt.targets
                     if isinstance(t, ast.Name)]
        elif isinstance(stmt, ast.AnnAssign):
            value = stmt.value
            names = [stmt.target.id] \
                if isinstance(stmt.target, ast.Name) else []
        else:
            continue
        if "_CRYPTO_OPS" not in names \
                or not isinstance(value, ast.Dict):
            continue
        for key, val in zip(value.keys, value.values):
            if not isinstance(key, ast.Tuple) or len(key.elts) != 2:
                continue
            op = _enum_attr(key.elts[0], "Op")
            mode = _enum_attr(key.elts[1], "Mode")
            if op is None or mode is None:
                continue
            handler = ""
            if isinstance(val, ast.Name):
                handler = val.id
            elif isinstance(val, ast.Attribute):
                handler = val.attr
            table[(op, mode)] = handler
        return table
    problems.append("server: _CRYPTO_OPS dispatch table not found")
    return table


def _find_cap_check(func: ast.AST, cap_names: Set[str]) -> bool:
    """An ``if <...> > CAP: raise`` guard inside ``func``."""
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        if not isinstance(test, ast.Compare):
            continue
        mentions_cap = any(
            isinstance(sub, ast.Name) and sub.id in cap_names
            for sub in ast.walk(test)
        )
        raises = any(isinstance(sub, ast.Raise)
                     for stmt in node.body
                     for sub in ast.walk(stmt))
        if mentions_cap and raises:
            return True
    return False


def _extract_server(source: SourceFile,
                    protocol_env: Dict[str, FoldValue],
                    problems: List[str]) -> Optional[ServerModel]:
    tree = source.tree
    server_cls: Optional[ast.ClassDef] = None
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) \
                and stmt.name == "CryptoServer":
            server_cls = stmt
    if server_cls is None:
        problems.append("server: class CryptoServer not found")
        return None

    loop = _method(server_cls, "_connection_loop")
    if loop is None:
        problems.append("server: _connection_loop not found")
        loop_shape = _LoopShape(shutdown_lineno=server_cls.lineno)
        loop_lineno = server_cls.lineno
    else:
        loop_shape = _extract_connection_loop(loop, problems)
        loop_lineno = loop.lineno

    # Worker shielding: _worker wraps _process in except-Exception.
    worker_shielded = False
    worker = _method(server_cls, "_worker")
    if worker is None:
        problems.append("server: _worker not found")
    else:
        for node in ast.walk(worker):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if _catches(handler, "Exception"):
                        worker_shielded = True

    # _process: unknown-op reply, timeout and exception catches.
    process_catches_timeout = False
    process_catches_exception = False
    unknown_op_reply = False
    process = _method(server_cls, "_process")
    if process is None:
        problems.append("server: _process not found")
    else:
        for node in ast.walk(process):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if _catches(handler, "TimeoutError") \
                            and _status_in(handler, "TIMEOUT"):
                        process_catches_timeout = True
                    if _catches(handler, "Exception") \
                            and _status_in(handler, "INTERNAL"):
                        process_catches_exception = True
            if isinstance(node, ast.If) \
                    and isinstance(node.test, ast.Compare) \
                    and _status_in(node, "BAD_REQUEST"):
                for sub in ast.walk(node.test):
                    if isinstance(sub, ast.Constant) \
                            and sub.value is None:
                        unknown_op_reply = True

    # _send: the FrameError -> small INTERNAL frame fallback.
    send_frame_error_fallback = False
    send_lineno = server_cls.lineno
    send = _method(server_cls, "_send")
    if send is None:
        problems.append("server: _send not found")
    else:
        send_lineno = send.lineno
        for node in ast.walk(send):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    if _catches(handler, "FrameError") \
                            and _status_in(handler, "INTERNAL"):
                        send_frame_error_fallback = True

    # __init__: the Op -> handler dispatch table.
    handler_ops: List[str] = []
    init = _method(server_cls, "__init__")
    if init is not None:
        for node in ast.walk(init):
            if isinstance(node, ast.Assign):
                targets: List[ast.expr] = list(node.targets)
            elif isinstance(node, ast.AnnAssign):
                targets = [node.target]
            else:
                continue
            if any(_attr_is(t, "_handlers") for t in targets) \
                    and isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    member = _enum_attr(key, "Op") if key else None
                    if member is not None:
                        handler_ops.append(member)
    if not handler_ops:
        problems.append("server: _handlers op dispatch not found")

    crypto_table = _extract_crypto_table(tree, problems)

    # The GCM response-expansion cap and its up-front check inside
    # whichever callable the table dispatches (ENCRYPT, GCM) to.
    env = _module_env(tree, seed=protocol_env)
    cap_names = {
        name for name in env
        if "MAX_PLAINTEXT" in name or "PLAINTEXT_BYTES" in name
    }
    gcm_cap: Optional[int] = None
    for name in sorted(cap_names):
        value = env.get(name)
        if isinstance(value, int):
            gcm_cap = value
    gcm_cap_checked = False
    gcm_encrypt_lineno = server_cls.lineno
    gcm_handler = crypto_table.get(("ENCRYPT", "GCM"))
    if gcm_handler:
        func = _module_function(tree, gcm_handler) \
            or _method(server_cls, gcm_handler)
        if func is not None:
            gcm_encrypt_lineno = func.lineno
            gcm_cap_checked = _find_cap_check(func, cap_names)

    emitted: List[Tuple[str, int]] = []
    seen_status: Set[str] = set()
    for node in ast.walk(tree):
        member = _enum_attr(node, "Status") \
            if isinstance(node, ast.expr) else None
        if member is not None and member not in seen_status:
            seen_status.add(member)
            emitted.append((member, node.lineno))

    return ServerModel(
        path=source.path,
        loop_lineno=loop_lineno,
        replies_on_frame_error=loop_shape.replies_on_frame_error,
        continues_on_recoverable=loop_shape.continues_on_recoverable,
        closes_on_unrecoverable=loop_shape.closes_on_unrecoverable,
        shutdown_inline=loop_shape.shutdown_inline,
        shutdown_replies=loop_shape.shutdown_replies,
        shutdown_lineno=loop_shape.shutdown_lineno,
        stop_task_created=loop_shape.stop_task_created,
        stop_task_pinned=loop_shape.stop_task_pinned,
        replies_when_stopping=loop_shape.replies_when_stopping,
        has_backpressure=loop_shape.has_backpressure,
        worker_shielded=worker_shielded,
        process_catches_timeout=process_catches_timeout,
        process_catches_exception=process_catches_exception,
        unknown_op_reply=unknown_op_reply,
        send_frame_error_fallback=send_frame_error_fallback,
        send_lineno=send_lineno,
        handler_ops=tuple(handler_ops),
        crypto_pairs=tuple(sorted(crypto_table)),
        gcm_cap=gcm_cap,
        gcm_cap_checked=gcm_cap_checked,
        gcm_encrypt_lineno=gcm_encrypt_lineno,
        emitted_statuses=tuple(emitted),
    )


# ----------------------------------------------------------- client.py
def _extract_client(source: SourceFile,
                    problems: List[str]) -> Optional[ClientModel]:
    tree = source.tree
    client_cls: Optional[ast.ClassDef] = None
    for stmt in tree.body:
        if isinstance(stmt, ast.ClassDef) \
                and stmt.name == "CryptoClient":
            client_cls = stmt
    if client_cls is None:
        problems.append("client: class CryptoClient not found")
        return None

    uses_retry_set = False
    bounded_retries = False
    request = _method(client_cls, "request")
    if request is None:
        problems.append("client: CryptoClient.request not found")
    else:
        for node in ast.walk(request):
            if isinstance(node, ast.Compare) and any(
                    isinstance(op, (ast.In, ast.NotIn))
                    for op in node.ops):
                names = {
                    sub.id for sub in ast.walk(node)
                    if isinstance(sub, ast.Name)
                }
                if "RETRYABLE_STATUSES" in names:
                    uses_retry_set = True
            if isinstance(node, (ast.For, ast.AsyncFor)) \
                    and isinstance(node.iter, ast.Call) \
                    and _call_name(node.iter) == "range":
                bounded_retries = True

    checks_request_id = False
    roundtrip = _method(client_cls, "_roundtrip")
    if roundtrip is None:
        problems.append("client: CryptoClient._roundtrip not found")
    else:
        for node in ast.walk(roundtrip):
            if isinstance(node, ast.If) \
                    and isinstance(node.test, ast.Compare):
                mentions_id = any(
                    _attr_is(sub, "request_id")
                    for sub in ast.walk(node.test)
                )
                raises_frame = any(
                    isinstance(sub, ast.Raise)
                    and isinstance(sub.exc, ast.Call)
                    and _call_name(sub.exc) == "FrameError"
                    for stmt in node.body
                    for sub in ast.walk(stmt)
                )
                if mentions_id and raises_frame:
                    checks_request_id = True

    referenced: List[str] = []
    seen: Set[str] = set()
    for node in ast.walk(tree):
        member = _enum_attr(node, "Status") \
            if isinstance(node, ast.expr) else None
        if member is not None and member not in seen:
            seen.add(member)
            referenced.append(member)

    return ClientModel(
        path=source.path,
        uses_retry_set=uses_retry_set,
        bounded_retries=bounded_retries,
        checks_request_id=checks_request_id,
        referenced_statuses=tuple(referenced),
    )


# ------------------------------------------------------------ assembly
def extract_wire_model(
        sources: Sequence[SourceFile]) -> Optional[WireModel]:
    """Recover the wire model from the serve-layer sources.

    ``None`` when the three protocol modules are not all present
    (e.g. a path-restricted lint run) — the rules then yield nothing
    rather than reporting on a partial view.
    """
    by_name: Dict[str, SourceFile] = {}
    for source in sources:
        tail = source.path.replace("\\", "/").rsplit("/", 1)[-1]
        by_name.setdefault(tail, source)
    protocol = by_name.get("protocol.py")
    server = by_name.get("server.py")
    client = by_name.get("client.py")
    if protocol is None or server is None or client is None:
        return None

    problems: List[str] = []
    env = _module_env(protocol.tree)
    enums = _extract_enums(protocol.tree)
    for expected in ("Op", "Mode", "Status"):
        if expected not in enums:
            problems.append(f"protocol: enum {expected} not found")

    def int_const(name: str) -> Optional[int]:
        value = env.get(name)
        if isinstance(value, bool) or not isinstance(value, int):
            problems.append(f"protocol: constant {name} not folded")
            return None
        return value

    magic = env.get("MAGIC")
    if not isinstance(magic, bytes):
        problems.append("protocol: MAGIC not folded to bytes")
        magic = None
    header = env.get("_HEADER")
    header_format: Optional[str] = None
    if isinstance(header, tuple) and header[0] == "struct":
        header_format = header[1]
    else:
        problems.append("protocol: _HEADER struct format not folded")

    retryable = _extract_retryable(protocol.tree)
    if not retryable:
        problems.append("protocol: RETRYABLE_STATUSES not found")

    sites = _extract_raise_sites(protocol)
    sites.extend(_extract_raise_sites(client))
    if not sites:
        problems.append("protocol: no FrameError raise sites found")

    server_model = _extract_server(server, env, problems)
    client_model = _extract_client(client, problems)

    return WireModel(
        protocol_path=protocol.path,
        server_path=server.path,
        client_path=client.path,
        magic=magic,
        version=int_const("VERSION"),
        header_format=header_format,
        header_bytes=int_const("HEADER_BYTES"),
        max_payload=int_const("MAX_PAYLOAD_BYTES"),
        max_frame=int_const("MAX_FRAME_BYTES"),
        gcm_iv_bytes=int_const("GCM_IV_BYTES"),
        gcm_tag_bytes=int_const("GCM_TAG_BYTES"),
        key_bytes=int_const("KEY_BYTES"),
        ops=enums.get("Op"),
        modes=enums.get("Mode"),
        statuses=enums.get("Status"),
        retryable=retryable,
        raise_sites=tuple(sites),
        server=server_model,
        client=client_model,
        problems=tuple(problems),
    )


# ------------------------------------------------------- model checker
#: Queue bound inside the model.  The real queue depth is a config
#: knob; one slot is enough to prove the backpressure *shape* (reply
#: OVERLOADED instead of growing), and keeps the product space small.
MODEL_QUEUE_DEPTH = 1

#: Outstanding (sent, unanswered) requests the adversarial peer may
#: pipeline.  Two exercises queue-full and worker-busy interleavings.
MODEL_MAX_OUTSTANDING = 2

#: Exploration backstop.  The real product space is a few thousand
#: states; hitting this means the model itself regressed.
MODEL_STATE_LIMIT = 200_000


@dataclass(frozen=True)
class InputClass:
    """One adversarial input class the peer can send."""

    name: str
    kind: str                  # "malformed" | "request" | "shutdown"
    recoverable: bool = True   # flag on the FrameError the loop sees
    desyncs: bool = False      # ground truth: stream alignment lost
    closes_peer: bool = False  # the peer's half closes with it
    outcome: str = ""          # worker outcome key for requests


@dataclass(frozen=True)
class ProductState:
    """One state of the client x server x channel product."""

    conn: str = "open"         # "open" | "closed" (server side)
    server: str = "running"    # running | draining | stop_lost
    #                          # | stopped
    worker: str = "alive"      # "alive" | "dead"
    key: bool = False
    desynced: bool = False
    peer_open: bool = True
    pending: Tuple[str, ...] = ()
    outstanding: int = 0

    def label(self) -> str:
        parts = [self.conn, self.server, f"worker={self.worker}"]
        if self.key:
            parts.append("keyed")
        if self.desynced:
            parts.append("desynced")
        if self.pending:
            parts.append(f"queue={list(self.pending)}")
        if self.outstanding:
            parts.append(f"outstanding={self.outstanding}")
        return "/".join(parts)


@dataclass(frozen=True)
class Violation:
    """One invariant failure, with a witness trace."""

    rule: str
    message: str
    file: str
    line: int
    obj: str
    trace: Tuple[str, ...] = ()

    def render_message(self) -> str:
        if not self.trace:
            return self.message
        return f"{self.message} [trace: {' -> '.join(self.trace)}]"


@dataclass
class ModelResult:
    """What one exhaustive exploration established."""

    states: int
    edges: int
    elapsed: float
    violations: List[Violation]
    server_states: Set[str]
    reply_statuses: Set[str]
    truncated: bool = False


#: (class name, raising function, stream desyncs, peer closes,
#:  substring identifying the matching raise site's message).
_MALFORMED_CLASSES: Tuple[Tuple[str, str, bool, bool, str], ...] = (
    ("bad_magic", "decode_payload", False, False, "magic"),
    ("bad_version", "decode_payload", False, False, "version"),
    ("unknown_enum", "decode_payload", False, False, "unknown"),
    ("short_body", "decode_body", False, False, "shorter"),
    ("oversized_prefix", "read_frame", True, False, "length prefix"),
    ("eof_mid_prefix", "read_frame", False, True, "mid-prefix"),
    ("eof_mid_frame", "read_frame", False, True, "mid-frame"),
)


def _site_flag(model: WireModel, function: str,
               needle: str) -> Optional[bool]:
    for site in model.raise_sites:
        if site.function == function and needle in site.text:
            return site.recoverable
    return None


def build_input_classes(model: WireModel) -> List[InputClass]:
    """The peer's action alphabet, derived from the extracted model."""
    classes: List[InputClass] = []
    for name, function, desyncs, closes, needle in _MALFORMED_CLASSES:
        flag = _site_flag(model, function, needle)
        if flag is None:
            # Site not found (refactored message): fall back to the
            # ground truth so the model still closes over the class.
            flag = not desyncs and not closes
        classes.append(InputClass(
            name=name, kind="malformed", recoverable=flag,
            desyncs=desyncs, closes_peer=closes,
        ))
    server = model.server
    if server is None:
        return classes
    if "LOAD_KEY" in server.handler_ops:
        classes.append(InputClass("load_key", "request",
                                  outcome="load_key"))
    if "PING" in server.handler_ops:
        classes.append(InputClass("ping", "request", outcome="ok"))
    for op, mode in server.crypto_pairs:
        classes.append(InputClass(
            f"{op.lower()}_{mode.lower()}", "request",
            outcome="crypto",
        ))
    if server.crypto_pairs:
        classes.append(InputClass("bad_payload", "request",
                                  outcome="bad_request"))
    if ("DECRYPT", "GCM") in server.crypto_pairs:
        classes.append(InputClass("gcm_auth_fail", "request",
                                  outcome="auth_fail"))
    if ("ENCRYPT", "GCM") in server.crypto_pairs:
        classes.append(InputClass("gcm_encrypt_max", "request",
                                  outcome="gcm_oversize"))
    classes.append(InputClass("slow_request", "request",
                              outcome="timeout"))
    classes.append(InputClass("handler_crash", "request",
                              outcome="crash"))
    if model.ops is not None:
        unhandled = [
            name for name in model.ops.names
            if name not in server.handler_ops and name != "SHUTDOWN"
        ]
        if unhandled:
            classes.append(InputClass("unknown_op", "request",
                                      outcome="unknown_op"))
    if model.ops is not None and "SHUTDOWN" in model.ops.names:
        classes.append(InputClass("shutdown", "shutdown"))
    return classes


@dataclass(frozen=True)
class _Edge:
    """One transition: label for traces, autonomy for liveness."""

    src: ProductState
    dst: ProductState
    label: str
    autonomous: bool       # server/worker-driven (no peer input)
    releases: bool         # answers or closes toward the peer


def _worker_outcome(model: WireModel, server: ServerModel,
                    cls_name: str, key: bool,
                    classes: Dict[str, InputClass],
                    ) -> Tuple[str, Optional[str], bool, bool]:
    """Resolve one dequeued request.

    Returns ``(label, reply_status, worker_dies, sets_key)``; a
    ``None`` reply status means the request is never answered.
    """
    cls = classes[cls_name]
    outcome = cls.outcome

    def crash_path(label: str) -> Tuple[str, Optional[str],
                                        bool, bool]:
        if server.process_catches_exception:
            return f"{label}=>INTERNAL", "INTERNAL", False, False
        if server.worker_shielded:
            return f"{label}=>swallowed", None, False, False
        return f"{label}=>worker-dies", None, True, False

    if outcome == "load_key":
        return "load_key=>OK", "OK", False, True
    if outcome == "ok":
        return f"{cls_name}=>OK", "OK", False, False
    if outcome == "crypto":
        if not key:
            if server.emits("NO_KEY"):
                return f"{cls_name}=>NO_KEY", "NO_KEY", False, False
            return crash_path(f"{cls_name} without a key")
        return f"{cls_name}=>OK", "OK", False, False
    if outcome == "bad_request":
        return "bad_payload=>BAD_REQUEST", "BAD_REQUEST", \
            False, False
    if outcome == "auth_fail":
        if not key:
            return f"{cls_name}=>NO_KEY", "NO_KEY", False, False
        if server.emits("AUTH_FAILED"):
            return "gcm_auth_fail=>AUTH_FAILED", "AUTH_FAILED", \
                False, False
        return crash_path("gcm auth failure")
    if outcome == "timeout":
        if server.process_catches_timeout:
            return "slow_request=>TIMEOUT", "TIMEOUT", False, False
        return crash_path("slow request")
    if outcome == "crash":
        return crash_path("handler raises")
    if outcome == "unknown_op":
        if server.unknown_op_reply:
            return "unknown_op=>BAD_REQUEST", "BAD_REQUEST", \
                False, False
        return crash_path("unknown op")
    if outcome == "gcm_oversize":
        if not key:
            return f"{cls_name}=>NO_KEY", "NO_KEY", False, False
        cap_ok = (
            server.gcm_cap_checked
            and server.gcm_cap is not None
            and model.max_payload is not None
            and model.gcm_tag_bytes is not None
            and server.gcm_cap + model.gcm_tag_bytes
            <= model.max_payload
        )
        if cap_ok:
            # The up-front plaintext cap rejects it before crypto.
            return "gcm_encrypt_max=>BAD_REQUEST", "BAD_REQUEST", \
                False, False
        # The ciphertext+tag response does not frame: encode_frame
        # raises inside _send.  The fallback answers INTERNAL; with
        # no fallback the FrameError escapes _process (the send sits
        # outside its try) into the worker loop.
        if server.send_frame_error_fallback:
            return "gcm_encrypt_max=>unframeable=>INTERNAL", \
                "INTERNAL", False, False
        if server.worker_shielded:
            return "gcm_encrypt_max=>unframeable=>swallowed", \
                None, False, False
        return "gcm_encrypt_max=>unframeable=>worker-dies", \
            None, True, False
    return crash_path(cls_name)


def _successors(model: WireModel, server: ServerModel,
                state: ProductState,
                classes: Dict[str, InputClass],
                ) -> Iterator[_Edge]:
    """Every transition out of ``state``."""
    s = state

    # Server notices the peer's EOF on its next read.
    if s.conn == "open" and not s.peer_open:
        yield _Edge(s, replace(s, conn="closed"),
                    "server-sees-eof=>close", True, True)

    # Autonomous: the worker drains the queue.
    if s.pending and s.worker == "alive" and s.conn == "open":
        label, reply, dies, sets_key = _worker_outcome(
            model, server, s.pending[0], s.key, classes)
        nxt = replace(
            s,
            pending=s.pending[1:],
            worker="dead" if dies else s.worker,
            key=s.key or sets_key,
            outstanding=max(0, s.outstanding - 1)
            if reply is not None else s.outstanding,
        )
        yield _Edge(s, nxt, f"worker:{label}", True,
                    reply is not None)

    # Autonomous: a pinned stop() task completes the drain.
    if s.server == "draining" and not s.pending:
        yield _Edge(
            s,
            replace(s, server="stopped", conn="closed"),
            "stop-completes=>close", True, True,
        )

    # Peer actions need an open connection and an undrained server.
    if s.conn != "open" or not s.peer_open or s.server == "stopped":
        return
    for cls in classes.values():
        if cls.kind == "malformed":
            yield from _malformed_step(server, s, cls)
        elif cls.kind == "shutdown":
            yield from _shutdown_step(server, s, cls)
        else:
            yield from _request_step(server, s, cls)


def _malformed_step(server: ServerModel, s: ProductState,
                    cls: InputClass) -> Iterator[_Edge]:
    peer_open = s.peer_open and not cls.closes_peer
    label = f"peer:{cls.name}"
    if cls.recoverable:
        # The loop answers BAD_FRAME and keeps reading.  If the
        # stream actually desynchronized, every subsequent read
        # parses garbage — the desync-deadlock the checker hunts.
        if server.continues_on_recoverable:
            desynced = s.desynced or (cls.desyncs and peer_open)
            yield _Edge(
                s,
                replace(s, desynced=desynced, peer_open=peer_open),
                label + "=>BAD_FRAME,continue", False,
                server.replies_on_frame_error,
            )
        else:
            yield _Edge(
                s, replace(s, conn="closed", peer_open=peer_open),
                label + "=>close", False, True,
            )
    else:
        if server.closes_on_unrecoverable:
            yield _Edge(
                s, replace(s, conn="closed", peer_open=peer_open),
                label + "=>close", False, True,
            )
        else:
            desynced = s.desynced or (cls.desyncs and peer_open)
            yield _Edge(
                s,
                replace(s, desynced=desynced, peer_open=peer_open),
                label + "=>continue-despite-desync", False,
                server.replies_on_frame_error,
            )


def _shutdown_step(server: ServerModel, s: ProductState,
                   cls: InputClass) -> Iterator[_Edge]:
    if not server.shutdown_inline:
        # SHUTDOWN falls through to the queue like any op; with no
        # dispatch entry it answers BAD_REQUEST and never stops.
        yield from _request_step(
            server, s,
            InputClass("shutdown", "request", outcome="unknown_op"),
        )
        return
    if s.server in ("running", "stop_lost"):
        if server.stop_task_created:
            nxt_server = "draining" if server.stop_task_pinned \
                else "stop_lost"
        else:
            nxt_server = s.server
        suffix = {"draining": "drain", "stop_lost": "stop-task-lost",
                  "running": "no-stop"}[nxt_server]
        yield _Edge(
            s, replace(s, server=nxt_server),
            f"peer:shutdown=>OK,{suffix}", False,
            server.shutdown_replies,
        )
    else:  # draining: the idempotent second SHUTDOWN just replies.
        yield _Edge(s, s, "peer:shutdown=>OK", False,
                    server.shutdown_replies)


def _request_step(server: ServerModel, s: ProductState,
                  cls: InputClass) -> Iterator[_Edge]:
    label = f"peer:{cls.name}"
    if s.server == "draining":
        if server.replies_when_stopping:
            yield _Edge(s, s, label + "=>SHUTTING_DOWN", False, True)
        elif s.outstanding < MODEL_MAX_OUTSTANDING:
            # Accepted silently while draining: never answered.
            yield _Edge(
                s, replace(s, outstanding=s.outstanding + 1),
                label + "=>dropped-while-draining", False, False,
            )
        return
    if len(s.pending) < MODEL_QUEUE_DEPTH:
        if s.outstanding < MODEL_MAX_OUTSTANDING:
            yield _Edge(
                s,
                replace(s, pending=s.pending + (cls.name,),
                        outstanding=s.outstanding + 1),
                label + "=>enqueued", False, False,
            )
    elif server.has_backpressure:
        yield _Edge(s, s, label + "=>OVERLOADED", False, True)
    elif s.outstanding < MODEL_MAX_OUTSTANDING:
        # No backpressure: the queue grows past its bound.
        yield _Edge(
            s,
            replace(s, pending=s.pending + (cls.name,),
                    outstanding=s.outstanding + 1),
            label + "=>buffered-unbounded", False, False,
        )


def _trace(parents: Dict[ProductState,
                         Tuple[Optional[ProductState], str]],
           state: ProductState, limit: int = 12) -> Tuple[str, ...]:
    """The BFS predecessor chain of edge labels reaching ``state``."""
    labels: List[str] = []
    cursor: Optional[ProductState] = state
    while cursor is not None:
        parent, label = parents[cursor]
        if label:
            labels.append(label)
        cursor = parent
    labels.reverse()
    if len(labels) > limit:
        head = labels[:limit]
        head.append(f"... ({len(labels) - limit} more)")
        return tuple(head)
    return tuple(labels)


def check_model(model: WireModel) -> ModelResult:
    """Exhaustive BFS over the client x server x channel product."""
    start_time = time.perf_counter()
    server = model.server
    if server is None:
        return ModelResult(0, 0, 0.0, [], set(), set())
    classes = {cls.name: cls for cls in build_input_classes(model)}
    status_names: Set[str] = set(
        model.statuses.names) if model.statuses else set()

    initial = ProductState()
    parents: Dict[ProductState,
                  Tuple[Optional[ProductState], str]] = {
        initial: (None, "")
    }
    queue: Deque[ProductState] = deque([initial])
    edges: List[_Edge] = []
    violations: List[Violation] = []
    flagged: Set[str] = set()
    reply_statuses: Set[str] = set()
    truncated = False

    def flag(kind: str, message: str, line: int, obj: str,
             state: ProductState) -> None:
        if kind in flagged:
            return
        flagged.add(kind)
        violations.append(Violation(
            rule="proto.desync-deadlock"
            if kind.startswith("desync") else
            "proto.unbounded-buffering",
            message=message, file=server.path, line=line, obj=obj,
            trace=_trace(parents, state),
        ))

    while queue:
        if len(parents) > MODEL_STATE_LIMIT:
            truncated = True
            break
        state = queue.popleft()
        # Violating states are recorded, not expanded: one witness
        # per failure class keeps traces minimal.
        if state.desynced:
            flag(
                "desync", "reachable desync-deadlock: the stream is "
                "desynchronized but the connection loop keeps "
                "reading — every later frame parses garbage while "
                "the peer waits", server.loop_lineno,
                "_connection_loop", state,
            )
            continue
        if len(state.pending) > MODEL_QUEUE_DEPTH:
            flag(
                "unbounded", "request buffering grows past the "
                "queue bound without an OVERLOADED answer",
                server.loop_lineno, "_connection_loop", state,
            )
            continue
        for edge in _successors(model, server, state, classes):
            edges.append(edge)
            for token in edge.label.replace(",", "=>").split("=>"):
                if token in status_names:
                    reply_statuses.add(token)
            if edge.dst not in parents:
                parents[edge.dst] = (edge.src, edge.label)
                queue.append(edge.dst)

    # Starvation: an open connection holding unanswered requests
    # from which no *autonomous* chain of server/worker steps ever
    # answers or closes.  (Peer-initiated rescue — sending SHUTDOWN
    # so the drain closes the socket — does not count: the server
    # must release the peer by itself.)
    can_release: Set[ProductState] = {
        e.src for e in edges if e.autonomous and e.releases
    }
    auto_edges = [e for e in edges if e.autonomous]
    changed = True
    while changed:
        changed = False
        for edge in auto_edges:
            if edge.dst in can_release \
                    and edge.src not in can_release:
                can_release.add(edge.src)
                changed = True
    starved = [
        s for s in parents
        if s.conn == "open" and s.outstanding > 0
        and s not in can_release
    ]
    if starved:
        witness = min(starved,
                      key=lambda s: len(_trace(parents, s)))
        violations.append(Violation(
            rule="proto.desync-deadlock",
            message="reachable starvation: request(s) outstanding "
                    "in a state from which no autonomous server "
                    "step ever replies or closes the connection "
                    f"({witness.label()})",
            file=server.path, line=server.loop_lineno,
            obj="_connection_loop",
            trace=_trace(parents, witness),
        ))

    server_states = {s.server for s in parents}
    elapsed = time.perf_counter() - start_time
    return ModelResult(
        states=len(parents), edges=len(edges), elapsed=elapsed,
        violations=violations, server_states=server_states,
        reply_statuses=reply_statuses, truncated=truncated,
    )


# ---------------------------------------------------- structural checks
def _structural_violations(model: WireModel,
                           result: ModelResult) -> List[Violation]:
    """Invariants provable from the extracted model alone, plus the
    lifecycle/status reachability cross-checks against the BFS."""
    violations: List[Violation] = []
    server = model.server
    client = model.client

    # proto.unhandled-status: a decodable Status member that neither
    # the server emits nor the client dispatches is dead protocol
    # surface — a peer can put it on the wire and nothing anywhere
    # gives it meaning.
    if model.statuses is not None:
        client_refs = set(client.referenced_statuses) if client \
            else set()
        for member in model.statuses.names:
            if member == "OK":
                continue
            emitted = server.emits(member) if server else False
            dispatched = member in model.retryable \
                or member in client_refs
            if not emitted and not dispatched:
                violations.append(Violation(
                    rule="proto.unhandled-status",
                    message=f"Status.{member} "
                            f"(={model.statuses.value(member)}) is "
                            "decodable on the wire but the server "
                            "never emits it and the client never "
                            "dispatches it (not retryable, never "
                            "referenced)",
                    file=model.protocol_path,
                    line=model.statuses.line(member),
                    obj=f"Status.{member}",
                ))

    # proto.unclassified-frame-error: every raise site's recoverable
    # flag must match the ground truth of its raising function.
    for site in model.raise_sites:
        expected = EXPECTED_RECOVERABLE.get(site.function)
        if expected is None or site.recoverable == expected:
            continue
        stream = "still aligned" if expected \
            else "desynchronized beyond repair"
        violations.append(Violation(
            rule="proto.unclassified-frame-error",
            message=f"FrameError raised in {site.function} carries "
                    f"recoverable={site.recoverable}, but the "
                    f"stream there is {stream} — the connection "
                    "loop will "
                    + ("close a survivable connection"
                       if expected else
                       "keep reading a desynchronized stream"),
            file=site.path, line=site.lineno, obj=site.function,
        ))

    # proto.response-not-framed: GCM ENCRYPT is the only op whose
    # response outgrows its request (the tag), so its plaintext must
    # be capped below the frame limit up front.
    if server is not None \
            and ("ENCRYPT", "GCM") in server.crypto_pairs \
            and model.max_payload is not None \
            and model.gcm_tag_bytes is not None:
        cap_ok = (
            server.gcm_cap_checked
            and server.gcm_cap is not None
            and server.gcm_cap + model.gcm_tag_bytes
            <= model.max_payload
        )
        if not cap_ok:
            if server.gcm_cap is not None \
                    and server.gcm_cap_checked:
                detail = (
                    f"the cap ({server.gcm_cap}) still lets "
                    f"ciphertext+{model.gcm_tag_bytes}-byte tag "
                    f"exceed MAX_PAYLOAD_BYTES "
                    f"({model.max_payload})"
                )
            else:
                detail = (
                    "no up-front plaintext cap guarantees the "
                    f"ciphertext+{model.gcm_tag_bytes}-byte tag "
                    "response fits one frame"
                )
            violations.append(Violation(
                rule="proto.response-not-framed",
                message="GCM ENCRYPT responses outgrow their "
                        f"requests and {detail}; an unframeable "
                        "response raises FrameError on the send "
                        "path (the historical worker-killing DoS)",
                file=server.path, line=server.gcm_encrypt_lineno,
                obj="_gcm_encrypt",
            ))

    # proto.unreachable-state: lifecycle states the product model
    # never reaches, and statuses the source emits that no reachable
    # state produces.
    if server is not None and result.states:
        expected_states = {"running"}
        if model.ops is not None and "SHUTDOWN" in model.ops.names:
            expected_states |= {"draining", "stopped"}
        for missing in sorted(expected_states
                              - result.server_states):
            if missing in ("draining", "stopped") \
                    and "stop_lost" in result.server_states:
                reason = (
                    "the SHUTDOWN stop() task is created but never "
                    "retained — the event loop holds only weak "
                    "task references, so the drain can be garbage-"
                    "collected mid-flight (the historical GC "
                    "hazard) and the server never stops"
                )
                line = server.shutdown_lineno
            elif missing in ("draining", "stopped"):
                reason = (
                    "the SHUTDOWN op never schedules stop(): the "
                    "remote drain path is dead"
                )
                line = server.shutdown_lineno
            else:
                reason = "no reachable product state enters it"
                line = server.loop_lineno
            violations.append(Violation(
                rule="proto.unreachable-state",
                message=f"server lifecycle state '{missing}' is "
                        f"unreachable: {reason}",
                file=server.path, line=line, obj="CryptoServer",
            ))
        for status, line in server.emitted_statuses:
            if status == "OK":
                continue
            if status not in result.reply_statuses:
                violations.append(Violation(
                    rule="proto.unreachable-state",
                    message=f"server source emits Status.{status} "
                            "but no reachable state of the product "
                            "model produces it — emission path or "
                            "extraction anchor is dead",
                    file=server.path, line=line,
                    obj=f"Status.{status}",
                ))
    return violations


# ------------------------------------------------------ subject + rules
@dataclass
class ProtoAnalysis:
    """Extraction + exploration + every violation, ready for rules."""

    model: Optional[WireModel]
    result: Optional[ModelResult]
    violations: List[Violation]


def analyze(sources: Sequence[SourceFile]) -> ProtoAnalysis:
    """Extract, explore, and collect violations for one source set."""
    model = extract_wire_model(sources)
    if model is None:
        return ProtoAnalysis(model=None, result=None, violations=[])
    result = check_model(model)
    violations = list(result.violations)
    violations.extend(_structural_violations(model, result))
    return ProtoAnalysis(model=model, result=result,
                         violations=violations)


@dataclass(frozen=True, eq=False)
class ProtoSubject:
    """The serve-layer sources, handed to the ``proto.*`` rules.

    One lint run builds exactly one; the analysis (extraction + BFS)
    is cached so the six rules share a single exploration.
    """

    sources: Tuple[SourceFile, ...]
    _cache: List[ProtoAnalysis] = field(default_factory=list,
                                        repr=False)

    def analysis(self) -> ProtoAnalysis:
        if not self._cache:
            self._cache.append(analyze(self.sources))
        return self._cache[0]


def _rule_findings(subject: object, rule_id: str,
                   severity: Severity) -> Iterator[Finding]:
    if not isinstance(subject, ProtoSubject):
        return
    for violation in subject.analysis().violations:
        if violation.rule != rule_id:
            continue
        yield Finding(
            rule_id, severity, violation.render_message(),
            Location(file=violation.file, line=violation.line,
                     obj=violation.obj),
        )


@rule("proto.unhandled-status", Severity.ERROR, KIND_PROTO,
      "every decodable Status member is emitted by the server or "
      "dispatched by the client")
def check_unhandled_status(subject: object,
                           config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(subject, "proto.unhandled-status",
                              Severity.ERROR)


@rule("proto.unreachable-state", Severity.ERROR, KIND_PROTO,
      "running/draining/stopped are all reachable in the product "
      "model, and every emitted status is produced somewhere")
def check_unreachable_state(subject: object,
                            config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(subject, "proto.unreachable-state",
                              Severity.ERROR)


@rule("proto.desync-deadlock", Severity.ERROR, KIND_PROTO,
      "no reachable state keeps reading a desynchronized stream or "
      "starves an outstanding request forever")
def check_desync_deadlock(subject: object,
                          config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(subject, "proto.desync-deadlock",
                              Severity.ERROR)


@rule("proto.unclassified-frame-error", Severity.ERROR, KIND_PROTO,
      "FrameError.recoverable at every raise site matches the "
      "stream-alignment ground truth of its raising function")
def check_unclassified_frame_error(
        subject: object, config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(
        subject, "proto.unclassified-frame-error", Severity.ERROR)


@rule("proto.response-not-framed", Severity.ERROR, KIND_PROTO,
      "ops whose responses outgrow their requests cap the request "
      "size so every response still frames")
def check_response_not_framed(
        subject: object, config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(subject, "proto.response-not-framed",
                              Severity.ERROR)


@rule("proto.unbounded-buffering", Severity.ERROR, KIND_PROTO,
      "request buffering is bounded in every reachable state "
      "(queue growth past the bound answers OVERLOADED)")
def check_unbounded_buffering(
        subject: object, config: CheckConfig) -> Iterator[Finding]:
    yield from _rule_findings(subject, "proto.unbounded-buffering",
                              Severity.ERROR)


# ------------------------------------------------------------ reporting
@dataclass(frozen=True)
class ProtoReport:
    """Everything ``repro-aes proto`` prints."""

    root: str
    analysis: ProtoAnalysis

    @property
    def ok(self) -> bool:
        return (self.analysis.model is not None
                and not self.analysis.model.problems
                and not self.analysis.violations)

    def render(self) -> str:
        lines: List[str] = []
        model = self.analysis.model
        result = self.analysis.result
        lines.append("protocol model check (repro.checks.proto)")
        lines.append("=" * 42)
        if model is None:
            lines.append(
                "  serve sources not found under the scanned roots "
                "(need protocol.py, server.py, client.py)")
            return "\n".join(lines)

        def fmt(value: object) -> str:
            return "?" if value is None else str(value)

        lines.append("extracted wire model")
        lines.append(f"  magic/version   : "
                     f"{fmt(model.magic)} / v{fmt(model.version)}")
        lines.append(f"  header          : {fmt(model.header_format)}"
                     f" ({fmt(model.header_bytes)} bytes)")
        lines.append(f"  max payload     : {fmt(model.max_payload)}"
                     f" bytes (frame {fmt(model.max_frame)})")
        for label, enum in (("ops", model.ops),
                            ("modes", model.modes),
                            ("statuses", model.statuses)):
            names = ", ".join(enum.names) if enum else "?"
            lines.append(f"  {label:<16}: {names}")
        lines.append(
            f"  retryable       : {', '.join(model.retryable) or '-'}")
        lines.append(
            f"  FrameError sites: {len(model.raise_sites)} "
            f"({sum(1 for s in model.raise_sites if s.recoverable)} "
            "recoverable)")
        if model.problems:
            lines.append("extraction problems")
            for problem in model.problems:
                lines.append(f"  ! {problem}")
        if result is not None:
            lines.append("product-state exploration")
            lines.append(
                f"  states/edges    : {result.states} / "
                f"{result.edges}"
                + ("  [TRUNCATED]" if result.truncated else ""))
            lines.append(
                f"  elapsed         : {result.elapsed:.3f}s")
            lines.append(
                "  server states   : "
                + ", ".join(sorted(result.server_states)))
            lines.append(
                "  reply statuses  : "
                + ", ".join(sorted(result.reply_statuses)))
        if self.analysis.violations:
            lines.append(
                f"violations ({len(self.analysis.violations)})")
            for violation in self.analysis.violations:
                lines.append(f"  {violation.rule}  "
                             f"{violation.file}:{violation.line}  "
                             f"[{violation.obj}]")
                lines.append(f"    {violation.render_message()}")
        else:
            lines.append("violations: none — all protocol "
                         "invariants hold on the explored product")
        return "\n".join(lines)


def run_proto(root: str,
              sources: Optional[Sequence[SourceFile]] = None,
              ) -> ProtoReport:
    """Build the serve-layer protocol report for ``repro-aes proto``.

    ``sources`` injects pre-parsed files (tests); by default the serve
    package is loaded from ``root``.
    """
    if sources is None:
        import os

        serve_dir = os.path.join(root, "src", "repro", "serve")
        loaded: List[SourceFile] = []
        if os.path.isdir(serve_dir):
            for name in sorted(os.listdir(serve_dir)):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(serve_dir, name)
                with open(path, "r", encoding="utf-8") as handle:
                    text = handle.read()
                try:
                    loaded.append(SourceFile.parse(path, text))
                except SyntaxError:
                    continue
        sources = loaded
    return ProtoReport(root=root, analysis=analyze(sources))
