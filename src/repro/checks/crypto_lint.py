"""Crypto-misuse and constant-time lint (AST-based).

Scans the cipher and IP source for the misuse classes that creep into
AES deployments as they grow (the Paul et al. RTOS integration story):

- ``ct.secret-branch`` — control flow conditioned on key-derived
  values.  Taint is deliberately shallow and lexical: function
  parameters whose names look like key material (``key``, ``kek``,
  ``*_key``, ...) plus locals assigned from tainted expressions.
  Length/type checks (``len``, ``isinstance``, ``type``) and
  ``hmac.compare_digest`` are sanitizers: branching on a length or a
  constant-time comparison verdict is fine — as is branching on a
  *public attribute* of a tainted object (``response.status``: frame
  status/header bytes are protocol state, not key-derived; see
  :attr:`repro.checks.engine.CheckConfig.public_attributes`) or on
  an is-None presence check.  Taint additionally
  crosses **one level** of same-module helper calls: a parameter of a
  module-local function receiving a lexically tainted argument at any
  call site is seeded tainted in that callee.  The propagation is not
  transitive — seeded taint does not seed further calls — keeping the
  analysis predictable and the false-positive surface bounded.
- ``ct.secret-index`` — memory lookups addressed by key-derived
  values *outside* the sanctioned S-box tables.  The paper's whole
  datapath is ROM lookups, so the sanctioned set
  (:attr:`repro.checks.engine.CheckConfig.sanctioned_tables`) covers
  SBOX / INV_SBOX / RCON, the T-tables and the GF log tables; any
  other table addressed by secrets is a cache-timing channel.
- ``ct.key-global`` — key/IV material bound to module-level globals
  (it outlives any zeroization discipline and leaks into pickles and
  tracebacks).  Published KAT vectors are the sanctioned exception,
  suppressed via the baseline file.
- ``ct.static-iv`` — literal IV/nonce bytes at a mode call site.
- ``ct.raw-ecb`` — direct ECB use outside the mode library itself.

A heuristic linter earns its keep by being quiet: every rule here is
tuned to produce zero *unsanctioned* findings on this repository, and
the shipped ``lint-baseline.json`` documents the sanctioned rest.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, \
    Sequence, Set

from repro.checks.engine import (
    KIND_SOURCE,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.secrets import (
    KEY_GLOBAL_RE as _KEY_GLOBAL_RE,
    SANITIZERS as _SANITIZERS,
    is_secret_name,
)

#: Mode-call names whose second positional argument is an IV/nonce.
_IV_POSITION = {
    "cbc_encrypt": 1, "cbc_decrypt": 1, "cfb_encrypt": 1,
    "cfb_decrypt": 1, "ofb_stream": 1, "ctr_stream": 1,
    "ctr_encrypt": 1, "ctr_decrypt": 1, "gcm_encrypt": 1,
    "gcm_decrypt": 1,
}

_ECB_CALLS = {"ecb_encrypt", "ecb_decrypt"}


@dataclass(frozen=True)
class SourceFile:
    """One parsed Python file handed to the source rules."""

    path: str          # display path (repo-relative when possible)
    tree: ast.Module

    @classmethod
    def parse(cls, path: str, text: str) -> "SourceFile":
        return cls(path=path, tree=ast.parse(text, filename=path))


# ------------------------------------------------------------ taint engine
def _is_secret_name(name: str, config: CheckConfig) -> bool:
    return is_secret_name(name, config.secret_name_patterns,
                          config.secret_name_exceptions)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _is_none_check(node: ast.Compare) -> bool:
    """``x is None`` / ``x is not None`` reveals presence, not bits."""
    return (
        all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
        and all(isinstance(c, ast.Constant) and c.value is None
                for c in node.comparators)
    )


def _names_referenced(node: ast.AST, config: CheckConfig) -> Set[str]:
    """Names read in an expression, skipping sanitized interiors.

    Three shapes launder: a sanitizer call (``len(key)``), a *public
    attribute* projection (``response.status`` — frame status/header
    fields carry protocol state, not key bits; see
    :attr:`CheckConfig.public_attributes`), and an is-None identity
    check (``last_response is not None`` reveals only presence).
    """
    names: Set[str] = set()
    public = set(config.public_attributes)

    def walk(n: ast.AST) -> None:
        if isinstance(n, ast.Call) and _call_name(n) in _SANITIZERS:
            return  # len(key) etc. launders the secret
        if isinstance(n, ast.Compare) and _is_none_check(n):
            return
        if isinstance(n, ast.Attribute) and n.attr in public:
            return
        if isinstance(n, ast.Name):
            names.add(n.id)
        for child in ast.iter_child_nodes(n):
            walk(child)

    walk(node)
    return names


def _taints(node: ast.AST, tainted: Set[str],
            config: CheckConfig) -> Set[str]:
    """Tainted names an expression actually reads."""
    return _names_referenced(node, config) & tainted


def _assign_targets(node: ast.AST) -> List[str]:
    targets: List[str] = []
    if isinstance(node, ast.Assign):
        sources: Sequence[ast.AST] = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        sources = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        sources = [node.target]
    else:
        return targets
    def collect(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            targets.append(target.id)
        elif isinstance(target, ast.Subscript):
            # ``r[i] = secret`` taints the container, never the index.
            collect(target.value)
        elif isinstance(target, ast.Starred):
            collect(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        # Attribute stores (self.x = secret) do not taint the object:
        # shallow taint stays function-local by design.

    for target in sources:
        collect(target)
    return targets


def _function_taint(func: ast.AST, config: CheckConfig,
                    seeded: Iterable[str] = ()) -> Set[str]:
    """Fixpoint of shallow, function-local taint propagation.

    ``seeded`` adds parameter names proven tainted at a call site
    (see :func:`_call_site_seeds`) on top of the name-based seeds.
    """
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    tainted: Set[str] = set(seeded)
    args = func.args
    for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
        if _is_secret_name(arg.arg, config):
            tainted.add(arg.arg)
    if args.vararg and _is_secret_name(args.vararg.arg, config):
        tainted.add(args.vararg.arg)

    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            value = getattr(node, "value", None)
            if value is None or not _assign_targets(node):
                continue
            if isinstance(node, (ast.For, ast.AsyncFor)):
                value = node.iter
            if _taints(value, tainted, config):
                for name in _assign_targets(node):
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return tainted


def _functions(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _param_names(func: ast.AST) -> List[str]:
    args = func.args
    return [a.arg for a in (*args.posonlyargs, *args.args)]


def _call_site_seeds(tree: ast.Module,
                     config: CheckConfig) -> Dict[str, Set[str]]:
    """One level of same-module call-site taint propagation.

    For every function whose *lexical* taint (name-based parameters
    plus local assignments) reaches an argument of a call to another
    function defined in the same module, the matching callee parameter
    is seeded tainted.  Seeded taint deliberately does not propagate
    further — the callee's own calls are judged only by its lexical
    taint, so a chain of helpers is traversed one hop at a time and
    never explodes transitively.
    """
    by_name = {
        func.name: func for func in _functions(tree)
    }
    seeds: Dict[str, Set[str]] = {}
    for caller in _functions(tree):
        tainted = _function_taint(caller, config)
        if not tainted:
            continue
        for node in _own_nodes(caller):
            if not isinstance(node, ast.Call):
                continue
            callee = by_name.get(_call_name(node))
            if callee is None or callee is caller:
                continue
            params = _param_names(callee)
            # A method reached through an attribute receives ``self``
            # implicitly; positional arguments shift by one.
            offset = (
                1 if params[:1] in (["self"], ["cls"])
                and isinstance(node.func, ast.Attribute) else 0
            )
            hit: Set[str] = set()
            for index, arg in enumerate(node.args):
                if isinstance(arg, ast.Starred):
                    break  # positions unknowable past a splat
                if index + offset < len(params) and \
                        _taints(arg, tainted, config):
                    hit.add(params[index + offset])
            for keyword in node.keywords:
                if keyword.arg in params and \
                        _taints(keyword.value, tainted, config):
                    hit.add(keyword.arg)
            if hit:
                seeds.setdefault(callee.name, set()).update(hit)
    return seeds


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


# ------------------------------------------------------------------- rules
@rule("ct.secret-branch", Severity.ERROR, KIND_SOURCE,
      "control flow conditioned on key-derived values")
def secret_branch(source: SourceFile,
                  config: CheckConfig) -> Iterator[Finding]:
    seeds = _call_site_seeds(source.tree, config)
    for func in _functions(source.tree):
        tainted = _function_taint(func, config,
                                  seeds.get(func.name, ()))
        if not tainted:
            continue
        for node in _own_nodes(func):
            test: Optional[ast.AST] = None
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
            elif isinstance(node, ast.Assert):
                test = node.test
            if test is None:
                continue
            hits = _taints(test, tainted, config)
            if hits:
                names = ", ".join(sorted(hits))
                yield Finding(
                    "ct.secret-branch", Severity.ERROR,
                    f"branch condition depends on key material "
                    f"({names}); timing reveals secret bits",
                    Location(source.path, node.lineno,
                             getattr(func, "name", "<module>")),
                )


@rule("ct.secret-index", Severity.ERROR, KIND_SOURCE,
      "table lookup addressed by key material outside the sanctioned "
      "S-box tables")
def secret_index(source: SourceFile,
                 config: CheckConfig) -> Iterator[Finding]:
    sanctioned = set(config.sanctioned_tables)
    seeds = _call_site_seeds(source.tree, config)
    for func in _functions(source.tree):
        tainted = _function_taint(func, config,
                                  seeds.get(func.name, ()))
        if not tainted:
            continue
        for node in _own_nodes(func):
            if not isinstance(node, ast.Subscript):
                continue
            base = node.value
            base_name = ""
            if isinstance(base, ast.Name):
                base_name = base.id
            elif isinstance(base, ast.Attribute):
                base_name = base.attr
            if base_name in sanctioned:
                continue
            if base_name in tainted:
                # Slicing the secret itself by a public index is how
                # word extraction works; the channel is the *address*,
                # which here is the public index.
                if not _taints(node.slice, tainted, config):
                    continue
            hits = _taints(node.slice, tainted, config)
            if hits:
                names = ", ".join(sorted(hits))
                yield Finding(
                    "ct.secret-index", Severity.ERROR,
                    f"lookup into {base_name or '<expr>'!r} is "
                    f"addressed by key material ({names}); only the "
                    f"sanctioned S-box tables may be",
                    Location(source.path, node.lineno,
                             getattr(func, "name", "<module>")),
                )


@rule("ct.padding-oracle", Severity.ERROR, KIND_SOURCE,
      "variable-time padding validation in an unpad-style function")
def padding_oracle(source: SourceFile,
                   config: CheckConfig) -> Iterator[Finding]:
    """Padding validators leak through timing, not key names.

    An unpad function's input is *decrypted plaintext* — secret — yet
    none of its parameters match the key-material name patterns, so
    the generic taint rules never look at it.  This rule seeds every
    non-geometry parameter of a function matching
    ``config.padding_function_patterns`` as tainted and then flags the
    two variable-time validation shapes:

    - an ``==`` / ``!=`` / ordering comparison that reads tainted
      data (Python compares bytes with an early-exit memcmp — the
      classic CBC padding-oracle lever);
    - a branch whose test reads tainted data directly (truthiness
      checks and early exits).

    ``hmac.compare_digest`` is the sanctioned comparator: a verdict
    folded into one accumulator and compared constant-time (the
    :func:`repro.aes.auth._double` masked-arithmetic precedent) is
    exactly what passes.
    """
    for func in _functions(source.tree):
        assert isinstance(func, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))
        if not any(fnmatch.fnmatch(func.name, pattern)
                   for pattern in config.padding_function_patterns):
            continue
        public = set(config.padding_public_params)
        seeds = [name for name in _param_names(func)
                 if name not in public]
        tainted = _function_taint(func, config, seeds)
        if not tainted:
            continue
        compare_lines: Set[int] = set()
        for node in _own_nodes(func):
            if isinstance(node, ast.Compare):
                hits = _taints(node, tainted, config)
                if hits:
                    compare_lines.add(node.lineno)
                    names = ", ".join(sorted(hits))
                    yield Finding(
                        "ct.padding-oracle", Severity.ERROR,
                        f"comparison over padding-derived data "
                        f"({names}) short-circuits byte-by-byte; "
                        f"fold the checks into an accumulator and "
                        f"use hmac.compare_digest",
                        Location(source.path, node.lineno, func.name),
                    )
        for node in _own_nodes(func):
            test: Optional[ast.AST] = None
            if isinstance(node, (ast.If, ast.While, ast.IfExp,
                                 ast.Assert)):
                test = node.test
            if test is None:
                continue
            if any(isinstance(sub, ast.Compare)
                   and sub.lineno in compare_lines
                   for sub in ast.walk(test)):
                continue  # already reported as a leaky comparison
            hits = _taints(test, tainted, config)
            if hits:
                names = ", ".join(sorted(hits))
                yield Finding(
                    "ct.padding-oracle", Severity.ERROR,
                    f"branch on padding-derived data ({names}); "
                    f"early exits reveal which pad byte failed",
                    Location(source.path, node.lineno, func.name),
                )


@rule("ct.key-global", Severity.WARNING, KIND_SOURCE,
      "key/IV material assigned to a module-level global")
def key_global(source: SourceFile,
               config: CheckConfig) -> Iterator[Finding]:
    for node in source.tree.body:
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        if not _is_bytes_like(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and \
                    _KEY_GLOBAL_RE.search(target.id):
                yield Finding(
                    "ct.key-global", Severity.WARNING,
                    f"module-level global {target.id!r} holds "
                    f"embedded key/IV material",
                    Location(source.path, node.lineno, target.id),
                )


@rule("ct.static-iv", Severity.WARNING, KIND_SOURCE,
      "literal IV/nonce at a mode call site")
def static_iv(source: SourceFile,
              config: CheckConfig) -> Iterator[Finding]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        for kw in node.keywords:
            if kw.arg in ("iv", "nonce") and _is_bytes_like(kw.value):
                yield Finding(
                    "ct.static-iv", Severity.WARNING,
                    f"call to {name or '<call>'} passes a literal "
                    f"{kw.arg}; IVs must be unique per message",
                    Location(source.path, node.lineno, name),
                )
        position = _IV_POSITION.get(name)
        if position is not None and len(node.args) > position and \
                _is_bytes_like(node.args[position]):
            yield Finding(
                "ct.static-iv", Severity.WARNING,
                f"call to {name} passes a literal IV positionally; "
                f"IVs must be unique per message",
                Location(source.path, node.lineno, name),
            )


@rule("ct.raw-ecb", Severity.WARNING, KIND_SOURCE,
      "direct ECB use outside the mode library")
def raw_ecb(source: SourceFile,
            config: CheckConfig) -> Iterator[Finding]:
    defines_ecb = any(
        isinstance(node, ast.FunctionDef) and node.name in _ECB_CALLS
        for node in source.tree.body
    )
    if defines_ecb:
        return  # the mode library itself
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call) and _call_name(node) in _ECB_CALLS:
            yield Finding(
                "ct.raw-ecb", Severity.WARNING,
                f"direct {_call_name(node)} call: ECB leaks "
                f"plaintext structure; wrap traffic in CBC/CTR/GCM",
                Location(source.path, node.lineno, _call_name(node)),
            )


def _is_bytes_like(node: ast.AST) -> bool:
    """Literal bytes, or a constructor call over literals."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (bytes, bytearray))
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name in ("bytes", "bytearray", "fromhex"):
            return True
        return False
    if isinstance(node, ast.BinOp):
        return _is_bytes_like(node.left) or _is_bytes_like(node.right)
    return False
