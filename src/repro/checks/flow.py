"""Interprocedural call-graph + fixpoint dataflow over the AST.

The constant-time lint (:mod:`repro.checks.crypto_lint`) keeps its
taint deliberately shallow: one level of same-module call-site
propagation, no transitive closure.  That is the right trade for a
per-file style gate, but both post-PR-5 production bugs lived exactly
one hop past it — a secret-carrying object handed to a helper that
logs it, and a fire-and-forget task three calls from where its owner
should have pinned it.  This module is the package-wide engine those
hazards need:

- **Program** — every scanned :class:`SourceFile` parsed into one
  :class:`FlowProgram`; functions are indexed across files, so a
  ``server.py`` caller reaching a ``helpers.py`` callee is one edge.
- **Call graph** — calls resolve by name, preferring the same class
  (for ``self.x(...)``), then the same module, then a unique
  program-wide definition; ambiguous names resolve to nothing
  (conservative: no propagation beats wrong propagation).
- **Fixpoint taint** — seeds are parameters named like key material
  (:func:`repro.checks.secrets.is_secret_name`), parameters annotated
  with a secret-carrier type
  (:attr:`~repro.checks.engine.CheckConfig.secret_carrier_types`,
  e.g. the serving layer's ``Session``), and locals assigned from a
  carrier constructor.  Taint flows through assignments, into callee
  parameters at call sites, and back out of calls whose resolved
  callee returns secret data — iterated to a fixpoint bounded by
  :attr:`~repro.checks.engine.CheckConfig.flow_max_depth` call-graph
  hops, so a pathological chain cannot make the analysis creep.
- **Sanitizers** — the same model the shallow lint uses:
  ``len``/``isinstance``/``type``/``hmac.compare_digest`` launder,
  reading a public frame attribute
  (:attr:`~repro.checks.engine.CheckConfig.public_attributes`)
  projects protocol state rather than key bits, and an
  ``is None`` / ``is not None`` identity check reveals only
  presence.
- **Blocking closure** — the same machinery, reused by the ``aio.*``
  pack: a synchronous function that (transitively, same bound) calls
  a blocking primitive is marked blocking, so an ``async def``
  invoking it directly is caught even through helper indirection.

The rule packs over this engine live in
:mod:`repro.checks.taint_rules` (``taint.*`` secret-leak sinks) and
:mod:`repro.checks.aio_rules` (``aio.*`` concurrency hazards), both
registered against :data:`repro.checks.engine.KIND_FLOW` subjects.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, \
    Tuple

from fnmatch import fnmatch

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import CheckConfig
from repro.checks.secrets import SANITIZERS, is_secret_name


@dataclass(frozen=True, eq=False)
class FlowSubject:
    """The whole scanned source set, handed to KIND_FLOW rules.

    One lint run builds exactly one of these (see
    :func:`repro.checks.runner.build_subjects`); the analyzed
    :class:`FlowProgram` is cached per config so the nine flow rules
    share a single fixpoint instead of re-running it.
    """

    sources: Tuple[SourceFile, ...]
    _cache: List[Tuple[CheckConfig, "FlowProgram"]] = field(
        default_factory=list, repr=False)

    def program(self, config: CheckConfig) -> "FlowProgram":
        if self._cache and self._cache[0][0] is config:
            return self._cache[0][1]
        program = FlowProgram(self.sources, config)
        self._cache[:] = [(config, program)]
        return program


@dataclass
class FunctionInfo:
    """One function or method definition, program-wide identity."""

    qualname: str          # "path::Class.name" or "path::name"
    name: str
    path: str
    node: ast.AST          # FunctionDef | AsyncFunctionDef
    class_name: Optional[str]
    is_async: bool
    params: Tuple[str, ...]       # positional parameter names

    @property
    def display(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site."""

    call: ast.Call
    callee: FunctionInfo
    #: Positional shift for implicit self/cls at attribute calls.
    offset: int


def own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_call_name(node: ast.Call) -> str:
    """``time.sleep(...)`` -> ``"time.sleep"`` (best effort)."""
    parts: List[str] = []
    cursor: ast.AST = node.func
    while isinstance(cursor, ast.Attribute):
        parts.append(cursor.attr)
        cursor = cursor.value
    if isinstance(cursor, ast.Name):
        parts.append(cursor.id)
    return ".".join(reversed(parts))


def _is_none_check(node: ast.Compare) -> bool:
    """``x is None`` / ``x is not None``: presence, not key bits."""
    return (
        all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops)
        and all(isinstance(c, ast.Constant) and c.value is None
                for c in node.comparators)
    )


def _annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every bare name an annotation mentions (Optional[Session],
    "Session", serve.Session all yield Session)."""
    if node is None:
        return set()
    names: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.add(sub.attr)
        elif isinstance(sub, ast.Constant) and \
                isinstance(sub.value, str):
            # A string annotation is itself (possibly dotted) a name.
            names.update(part.strip()
                         for part in sub.value.replace("[", " ")
                         .replace("]", " ").replace(",", " ")
                         .replace(".", " ").split())
    return names


def _assign_targets(node: ast.AST) -> List[str]:
    """Plain-name targets of an assignment-like statement."""
    if isinstance(node, ast.Assign):
        sources: Sequence[ast.AST] = node.targets
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        sources = [node.target]
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        sources = [node.target]
    elif isinstance(node, ast.NamedExpr):
        sources = [node.target]
    else:
        return []
    targets: List[str] = []

    def collect(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            targets.append(target.id)
        elif isinstance(target, ast.Subscript):
            collect(target.value)
        elif isinstance(target, ast.Starred):
            collect(target.value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                collect(element)
        # Attribute stores (self.x = secret) do not taint the object.

    for target in sources:
        collect(target)
    return targets


class FlowProgram:
    """The analyzed program: call graph plus taint/blocking fixpoints.

    Build one per lint run (via :meth:`FlowSubject.program`); rules
    then ask :meth:`taint`, :meth:`secret_reads`,
    :meth:`blocking_chain` and :attr:`coroutine_names` about any
    function the program contains.
    """

    def __init__(self, sources: Sequence[SourceFile],
                 config: CheckConfig) -> None:
        self.config = config
        self.functions: Dict[str, FunctionInfo] = {}
        self._by_name: Dict[str, List[FunctionInfo]] = {}
        self._edges: Dict[str, List[CallEdge]] = {}
        #: Call-site-seeded tainted parameters per function.
        self.seeds: Dict[str, Set[str]] = {}
        #: Functions whose return value carries secret data.
        self.returns_secret: Set[str] = set()
        #: Sync functions that (transitively) call a blocking
        #: primitive: qualname -> the call chain that proves it.
        self._blocking: Dict[str, Tuple[str, ...]] = {}
        self._taint_cache: Dict[str, Set[str]] = {}
        self._collect(sources)
        self._resolve_calls()
        self._taint_fixpoint()
        self._blocking_fixpoint()

    # ------------------------------------------------------ collection
    def _collect(self, sources: Sequence[SourceFile]) -> None:
        for source in sources:
            self._collect_scope(source.path, source.tree, None)

    def _collect_scope(self, path: str, scope: ast.AST,
                       class_name: Optional[str]) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef)):
                self._add_function(path, node, class_name)
                # Nested defs are functions in their own right.
                self._collect_scope(path, node, class_name)
            elif isinstance(node, ast.ClassDef):
                self._collect_scope(path, node, node.name)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                self._collect_scope(path, node, class_name)

    def _add_function(self, path: str, node: ast.AST,
                      class_name: Optional[str]) -> None:
        assert isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))
        args = node.args
        params = tuple(a.arg for a in (*args.posonlyargs, *args.args))
        prefix = f"{class_name}." if class_name else ""
        qualname = f"{path}::{prefix}{node.name}"
        if qualname in self.functions:
            # Redefinition (overload stubs, platform forks): keep the
            # first, which is what a reader meets first too.
            return
        info = FunctionInfo(
            qualname=qualname, name=node.name, path=path, node=node,
            class_name=class_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            params=params,
        )
        self.functions[qualname] = info
        self._by_name.setdefault(node.name, []).append(info)

    def __iter__(self) -> Iterator[FunctionInfo]:
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    # ------------------------------------------------------ call graph
    def resolve(self, call: ast.Call,
                caller: FunctionInfo) -> Optional[CallEdge]:
        """The unique in-program callee of a call site, if any."""
        func = call.func
        name = call_name(call)
        candidates = self._by_name.get(name, [])
        if not candidates:
            return None
        plain = [c for c in candidates if c.class_name is None]
        if isinstance(func, ast.Name):
            # A bare name: a plain function, same module preferred.
            chosen = self._pick(plain or candidates, caller)
            offset = 0
        else:
            base = func.value if isinstance(func, ast.Attribute) \
                else None
            if isinstance(base, ast.Name) and \
                    base.id in ("self", "cls") and caller.class_name:
                # Only the caller's own class: resolving self.x() to
                # some OTHER class that happens to define x() is how
                # ``writer.close()`` ends up "calling" an unrelated
                # async ``close`` and the fixpoint goes wrong.
                own = [c for c in candidates
                       if c.class_name == caller.class_name
                       and c.path == caller.path]
                chosen = self._pick(own, caller) if own else None
            else:
                # An attribute call on an arbitrary receiver
                # (``modes.ecb_encrypt(...)``, ``obj.helper(...)``):
                # without receiver types, only a module-level
                # function is a safe target.  Foreign-class methods
                # are never unique enough to bet a fixpoint on.
                chosen = self._pick(plain, caller) if plain else None
            offset = (
                1 if chosen is not None and chosen.class_name
                and chosen.params[:1] in (("self",), ("cls",))
                else 0
            )
        if chosen is None or chosen is caller:
            return None
        return CallEdge(call=call, callee=chosen, offset=offset)

    @staticmethod
    def _pick(candidates: List[FunctionInfo],
              caller: FunctionInfo) -> Optional[FunctionInfo]:
        local = [c for c in candidates if c.path == caller.path]
        pool = local or candidates
        # Ambiguity resolves to nothing: wrong edges poison a taint
        # fixpoint far worse than missing ones.
        return pool[0] if len(pool) == 1 else None

    def _resolve_calls(self) -> None:
        for info in self:
            edges: List[CallEdge] = []
            for node in own_nodes(info.node):
                if isinstance(node, ast.Call):
                    edge = self.resolve(node, info)
                    if edge is not None:
                        edges.append(edge)
            self._edges[info.qualname] = edges

    def edges(self, info: FunctionInfo) -> List[CallEdge]:
        return self._edges.get(info.qualname, [])

    # ----------------------------------------------------- taint reads
    def declassified_call(self, node: ast.Call) -> bool:
        """True when a call produces data-plane output, not secrets.

        Ciphertext and recovered plaintext are *derived* from the key
        but are exactly what the system is built to hand out; tracking
        them as key material floods every downstream consumer (the
        bench report, the response frame, the throughput log line)
        with false taint.  Calls whose name matches
        :attr:`CheckConfig.declassified_call_names` therefore launder:
        the call result is clean and tainted names inside its argument
        list are not "read" by the surrounding expression.

        Executor dispatch is understood: the value of
        ``loop.run_in_executor(None, gcm_encrypt, key, data)`` (or
        ``pool.submit(...)``) is whatever the handed-over callable
        produces, so the declassifier matches against *that* name —
        otherwise the exact routing the ``aio.*`` pack demands would
        re-taint the result the direct call launders.
        """
        patterns = self.config.declassified_call_names
        name = call_name(node)
        if name in ("run_in_executor", "submit"):
            index = 1 if name == "run_in_executor" else 0
            if len(node.args) > index:
                target = node.args[index]
                ref = ""
                if isinstance(target, ast.Name):
                    ref = target.id
                elif isinstance(target, ast.Attribute):
                    ref = target.attr
                return any(fnmatch(ref, pattern)
                           for pattern in patterns)
        return any(fnmatch(name, pattern) for pattern in patterns)

    def tainted_reads(self, node: ast.AST, tainted: Set[str],
                      caller: FunctionInfo) -> List[str]:
        """What secret data an expression actually reads.

        Returns human-readable descriptions: tainted names, and
        ``callee()`` for calls whose resolved callee returns secret
        data.  Sanitizer and declassifier calls, public-attribute
        projections and is-None identity checks are skipped
        wholesale.  Lambda bodies are skipped too: a lambda
        *expression* captures names for later, it does not read them
        here, and pretending otherwise is how a timing closure taints
        a benchmark report.
        """
        found: List[str] = []
        public = set(self.config.public_attributes)
        carriers = set(self.config.secret_carrier_types)

        def walk(n: ast.AST) -> None:
            if isinstance(n, ast.Lambda):
                return
            if isinstance(n, ast.Call):
                if call_name(n) in SANITIZERS or \
                        self.declassified_call(n):
                    return
                if call_name(n) in carriers:
                    found.append(f"{call_name(n)}(...)")
                    # fall through: arguments may read more taint
                else:
                    edge = self.resolve(n, caller)
                    if edge is not None and \
                            edge.callee.qualname in self.returns_secret:
                        found.append(f"{call_name(n)}()")
            if isinstance(n, ast.Compare) and _is_none_check(n):
                return
            if isinstance(n, ast.Attribute) and n.attr in public:
                return
            if isinstance(n, ast.Name) and n.id in tainted:
                found.append(n.id)
            for child in ast.iter_child_nodes(n):
                walk(child)

        walk(node)
        seen: Set[str] = set()
        unique: List[str] = []
        for name in found:
            if name not in seen:
                seen.add(name)
                unique.append(name)
        return unique

    def secret_reads(self, info: FunctionInfo,
                     node: ast.AST) -> List[str]:
        """Secret data read by an expression inside ``info``."""
        return self.tainted_reads(node, self.taint(info), info)

    # -------------------------------------------------- taint fixpoint
    def _intrinsic_seeds(self, info: FunctionInfo) -> Set[str]:
        """Parameters tainted by name or by carrier annotation."""
        config = self.config
        carriers = set(config.secret_carrier_types)
        node = info.node
        assert isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))
        args = node.args
        tainted: Set[str] = set()
        every = (*args.posonlyargs, *args.args, *args.kwonlyargs)
        for arg in every:
            if is_secret_name(arg.arg, config.secret_name_patterns,
                              config.secret_name_exceptions):
                tainted.add(arg.arg)
            elif _annotation_names(arg.annotation) & carriers:
                tainted.add(arg.arg)
        if args.vararg and is_secret_name(
                args.vararg.arg, config.secret_name_patterns,
                config.secret_name_exceptions):
            tainted.add(args.vararg.arg)
        return tainted

    def taint(self, info: FunctionInfo) -> Set[str]:
        """Final tainted local names of one function."""
        cached = self._taint_cache.get(info.qualname)
        if cached is not None:
            return cached
        tainted = self._local_taint(
            info, self.seeds.get(info.qualname, set()))
        self._taint_cache[info.qualname] = tainted
        return tainted

    def _local_taint(self, info: FunctionInfo,
                     seeded: Set[str]) -> Set[str]:
        """Function-local fixpoint given call-site seeds."""
        tainted = self._intrinsic_seeds(info) | set(seeded)
        carriers = set(self.config.secret_carrier_types)

        def secret_calls(node: ast.AST) -> bool:
            """Carrier construction / secret-returning call, with the
            same lambda and declassifier blinders as tainted_reads."""
            if isinstance(node, ast.Lambda):
                return False
            if isinstance(node, ast.Call):
                if call_name(node) in SANITIZERS or \
                        self.declassified_call(node):
                    return False
                if call_name(node) in carriers:
                    return True
                edge = self.resolve(node, info)
                if edge is not None and \
                        edge.callee.qualname in self.returns_secret:
                    return True
            return any(secret_calls(child)
                       for child in ast.iter_child_nodes(node))

        def value_is_secret(value: ast.AST) -> bool:
            if self.tainted_reads(value, tainted, info):
                return True
            return secret_calls(value)

        changed = True
        while changed:
            changed = False
            for node in own_nodes(info.node):
                targets = _assign_targets(node)
                if not targets:
                    continue
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    value: Optional[ast.AST] = node.iter
                else:
                    value = getattr(node, "value", None)
                if value is None:
                    continue
                if value_is_secret(value):
                    for name in targets:
                        if name not in tainted:
                            tainted.add(name)
                            changed = True
        return tainted

    def _returns_secret_now(self, info: FunctionInfo,
                            tainted: Set[str]) -> bool:
        if any(fnmatch(info.name, pattern)
               for pattern in self.config.declassified_call_names):
            # A crypto entry point: its output is ciphertext or
            # recovered plaintext — data plane, not key material.
            return False
        for node in own_nodes(info.node):
            if isinstance(node, ast.Return) and \
                    node.value is not None:
                if self.tainted_reads(node.value, tainted, info):
                    return True
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call) and \
                            call_name(sub) in \
                            self.config.secret_carrier_types:
                        return True
        return False

    def _taint_fixpoint(self) -> None:
        """Propagate taint across call edges, bounded in hops.

        Each sweep reads the seed state of the *previous* sweep
        (Jacobi, not Gauss-Seidel): processing functions in a lucky
        order must not let one sweep carry taint down an arbitrarily
        long call chain, or ``flow_max_depth`` would be a fiction.
        """
        for hop in range(max(1, self.config.flow_max_depth)):
            changed = False
            self._taint_cache.clear()
            previous = {q: set(s) for q, s in self.seeds.items()}
            for info in self:
                tainted = self._local_taint(
                    info, previous.get(info.qualname, set()))
                if info.qualname not in self.returns_secret and \
                        self._returns_secret_now(info, tainted):
                    self.returns_secret.add(info.qualname)
                    changed = True
                for edge in self.edges(info):
                    hit = self._seeded_params(edge, tainted, info)
                    if not hit:
                        continue
                    seeds = self.seeds.setdefault(
                        edge.callee.qualname, set())
                    if not hit <= seeds:
                        seeds.update(hit)
                        changed = True
            if not changed:
                break
        self._taint_cache.clear()

    def _seeded_params(self, edge: CallEdge, tainted: Set[str],
                       caller: FunctionInfo) -> Set[str]:
        """Callee parameters a call site proves tainted."""
        callee, call = edge.callee, edge.call
        hit: Set[str] = set()
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                break  # positions unknowable past a splat
            position = index + edge.offset
            if position < len(callee.params) and \
                    self.tainted_reads(arg, tainted, caller):
                hit.add(callee.params[position])
        for keyword in call.keywords:
            if keyword.arg and keyword.arg in callee.params and \
                    self.tainted_reads(keyword.value, tainted,
                                       caller):
                hit.add(keyword.arg)
        return hit

    # ----------------------------------------------- blocking closure
    def direct_blocking_call(self,
                              node: ast.Call) -> Optional[str]:
        dotted = dotted_call_name(node)
        config = self.config
        for prefix in config.blocking_call_prefixes:
            if prefix.endswith("."):
                head = dotted.split(".", 1)[0] + "."
                if dotted and head == prefix:
                    return dotted
            elif dotted == prefix:
                return dotted
        name = call_name(node)
        if name in config.blocking_call_names:
            return dotted or name
        return None

    def _blocking_fixpoint(self) -> None:
        for info in self:
            if info.is_async:
                continue
            for node in own_nodes(info.node):
                if isinstance(node, ast.Call):
                    direct = self.direct_blocking_call(node)
                    if direct is not None:
                        self._blocking[info.qualname] = (direct,)
                        break
        for _ in range(max(1, self.config.flow_max_depth)):
            changed = False
            for info in self:
                if info.is_async or \
                        info.qualname in self._blocking:
                    continue
                for edge in self.edges(info):
                    chain = self._blocking.get(edge.callee.qualname)
                    if chain is not None:
                        self._blocking[info.qualname] = (
                            edge.callee.display, *chain)
                        changed = True
                        break
            if not changed:
                break

    def blocking_chain(self,
                       info: FunctionInfo) -> Optional[Tuple[str, ...]]:
        """Why a sync function blocks, as a call chain, or None."""
        return self._blocking.get(info.qualname)

    # ------------------------------------------------------ coroutines
    @property
    def coroutine_names(self) -> Set[str]:
        """Bare names of every ``async def`` in the program."""
        return {info.name for info in self.functions.values()
                if info.is_async}


__all__ = [
    "CallEdge",
    "FlowProgram",
    "FlowSubject",
    "FunctionInfo",
    "call_name",
    "dotted_call_name",
    "own_nodes",
]
