"""Finding reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.checks.engine import Finding, Severity, registry


def render_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale_fingerprints: Sequence[str] = (),
    verbose: bool = False,
) -> str:
    """GCC-style one-line-per-finding report plus a summary tail."""
    lines: List[str] = [f.render() for f in findings]
    if verbose and suppressed:
        lines.append("")
        lines.append(f"suppressed by baseline ({len(suppressed)}):")
        lines.extend(f"  {f.render()}" for f in suppressed)
    if stale_fingerprints:
        lines.append(
            f"note: {len(stale_fingerprints)} baseline entr"
            f"{'y is' if len(stale_fingerprints) == 1 else 'ies are'} "
            "stale (no longer reported); re-run with --write-baseline "
            "to clean up"
        )
    counts = _severity_counts(findings)
    summary = ", ".join(
        f"{counts[s]} {s.name.lower()}{'s' if counts[s] != 1 else ''}"
        for s in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        if counts[s]
    ) or "no findings"
    tail = summary
    if suppressed:
        tail += f" ({len(suppressed)} suppressed)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale_fingerprints: Sequence[str] = (),
) -> str:
    """Stable JSON for CI consumers and editor integrations."""

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "severity": finding.severity.name.lower(),
            "message": finding.message,
            "file": finding.location.file,
            "line": finding.location.line,
            "obj": finding.location.obj,
            "fingerprint": finding.fingerprint(),
        }

    payload = {
        "findings": [encode(f) for f in findings],
        "suppressed": [encode(f) for f in suppressed],
        "stale_baseline_entries": list(stale_fingerprints),
        "summary": {
            s.name.lower(): n
            for s, n in _severity_counts(findings).items()
        },
    }
    return json.dumps(payload, indent=2)


def render_rule_table(only_family: Optional[str] = None) -> str:
    """The ``repro-aes lint --list-rules`` listing."""
    from repro.checks.engine import iter_families

    lines = [f"{'rule':<27}{'severity':<10}{'subject':<9}description"]
    lines.append("-" * 78)
    for family, rules in iter_families(registry()):
        if only_family and family != only_family:
            continue
        for rule_obj in rules:
            lines.append(
                f"{rule_obj.id:<27}{rule_obj.severity.name.lower():<10}"
                f"{rule_obj.requires:<9}{rule_obj.doc}"
            )
    return "\n".join(lines)


def _severity_counts(
    findings: Sequence[Finding],
) -> Dict[Severity, int]:
    counts = {s: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity] += 1
    return counts
