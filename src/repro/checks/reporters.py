"""Finding reporters: text, machine-readable JSON, and SARIF 2.1.0."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.checks.engine import Finding, Severity, registry


def render_text(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale_fingerprints: Sequence[str] = (),
    verbose: bool = False,
) -> str:
    """GCC-style one-line-per-finding report plus a summary tail."""
    lines: List[str] = [f.render() for f in findings]
    if verbose and suppressed:
        lines.append("")
        lines.append(f"suppressed by baseline ({len(suppressed)}):")
        lines.extend(f"  {f.render()}" for f in suppressed)
    if stale_fingerprints:
        # Stale entries warn on a default run (a fixed finding should
        # not punish the fixer) but fail under --strict, where a
        # suppression that matches nothing means the sanction has
        # drifted from the tree.  --write-baseline prunes them.
        lines.append(
            f"warning: {len(stale_fingerprints)} baseline entr"
            f"{'y is' if len(stale_fingerprints) == 1 else 'ies are'} "
            "stale (no longer reported); fails --strict; re-run with "
            "--write-baseline to prune"
        )
    counts = _severity_counts(findings)
    summary = ", ".join(
        f"{counts[s]} {s.name.lower()}{'s' if counts[s] != 1 else ''}"
        for s in (Severity.ERROR, Severity.WARNING, Severity.NOTE)
        if counts[s]
    ) or "no findings"
    tail = summary
    if suppressed:
        tail += f" ({len(suppressed)} suppressed)"
    lines.append(tail)
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    suppressed: Sequence[Finding] = (),
    stale_fingerprints: Sequence[str] = (),
) -> str:
    """Stable JSON for CI consumers and editor integrations."""

    def encode(finding: Finding) -> dict:
        return {
            "rule": finding.rule,
            "severity": finding.severity.name.lower(),
            "message": finding.message,
            "file": finding.location.file,
            "line": finding.location.line,
            "obj": finding.location.obj,
            "fingerprint": finding.fingerprint(),
        }

    payload = {
        "findings": [encode(f) for f in findings],
        "suppressed": [encode(f) for f in suppressed],
        "stale_baseline_entries": list(stale_fingerprints),
        "summary": {
            s.name.lower(): n
            for s, n in _severity_counts(findings).items()
        },
    }
    return json.dumps(payload, indent=2)


#: SARIF reporting descriptor levels per severity.
_SARIF_LEVELS = {
    Severity.NOTE: "note",
    Severity.WARNING: "warning",
    Severity.ERROR: "error",
}

#: Stable key under ``partialFingerprints`` carrying the baseline
#: fingerprint (versioned so the scheme can evolve).
SARIF_FINGERPRINT_KEY = "reproAesLint/v1"


def _sarif_uri(file: str) -> str:
    """A location string GitHub code scanning will accept.

    Model findings use pseudo-paths such as ``netlist:paper_encrypt``;
    SARIF wants URI-shaped strings, so the scheme-like colon is folded
    into a path separator.
    """
    return file.replace(":", "/") if file else "<global>"


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0, the format ``codeql-action/upload-sarif`` ingests.

    Only active findings are emitted — baseline-suppressed entries are
    this tool's suppression mechanism and stay out of code scanning.
    """
    rules = registry()
    used = sorted({f.rule for f in findings} & set(rules))
    rule_index = {rule_id: i for i, rule_id in enumerate(used)}
    descriptors = [
        {
            "id": rule_id,
            "shortDescription": {"text": rules[rule_id].doc},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[rules[rule_id].severity],
            },
        }
        for rule_id in used
    ]
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _SARIF_LEVELS[finding.severity],
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": _sarif_uri(finding.location.file),
                    },
                    "region": {
                        "startLine": max(finding.location.line, 1),
                    },
                },
            }],
            "partialFingerprints": {
                SARIF_FINGERPRINT_KEY: finding.fingerprint(),
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    payload = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-aes-lint",
                    "informationUri":
                        "https://example.invalid/repro-aes",
                    "rules": descriptors,
                },
            },
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)


def render_rule_table(only_family: Optional[str] = None) -> str:
    """The ``repro-aes lint --list-rules`` listing."""
    from repro.checks.engine import iter_families

    lines = [f"{'rule':<27}{'severity':<10}{'subject':<9}description"]
    lines.append("-" * 78)
    for family, rules in iter_families(registry()):
        if only_family and family != only_family:
            continue
        for rule_obj in rules:
            lines.append(
                f"{rule_obj.id:<27}{rule_obj.severity.name.lower():<10}"
                f"{rule_obj.requires:<9}{rule_obj.doc}"
            )
    return "\n".join(lines)


def _severity_counts(
    findings: Sequence[Finding],
) -> Dict[Severity, int]:
    counts = {s: 0 for s in Severity}
    for finding in findings:
        counts[finding.severity] += 1
    return counts
