"""Static-analysis subsystem: design rules, FSM analysis, crypto lint.

The paper's contribution is a carefully constrained structure — four
shared S-box ROMs per substitution bank, a 5-cycle round, an
on-the-fly key schedule behind a registered bus interface.  This
package verifies, without running a single simulation cycle, that the
codebase still honors those constraints and avoids the classic AES
integration mistakes:

- :mod:`repro.checks.engine` — rule registry, severities, findings,
  config;
- :mod:`repro.checks.netlist_drc` — connectivity DRC + structural
  inventories over :mod:`repro.fpga.connectivity` /
  :mod:`repro.fpga.aes_netlists`;
- :mod:`repro.checks.fsm` — reachability, dead transitions and the
  5-cycles-per-round accounting over the control FSM;
- :mod:`repro.checks.crypto_lint` — AST constant-time and misuse
  lint over the cipher/IP source;
- :mod:`repro.checks.hdl_rules` — the VHDL structural checker as a
  rule family;
- :mod:`repro.checks.sta` — graph-based static timing analysis over
  the connectivity IR, with a per-device delay model cross-checked
  against the analytical :mod:`repro.fpga.timing`;
- :mod:`repro.checks.equiv` — symbolic datapath equivalence: every
  round stage proven against the behavioral model with uninterpreted
  S-box atoms;
- :mod:`repro.checks.baseline` / :mod:`repro.checks.reporters` /
  :mod:`repro.checks.runner` — suppression workflow, text/JSON/SARIF
  output, and the ``repro-aes lint`` entry point.
"""

from repro.checks.baseline import Baseline
from repro.checks.engine import (
    CheckConfig,
    Finding,
    Location,
    Rule,
    Severity,
    registry,
    run_rules,
)
from repro.checks.runner import LintResult, run_lint

__all__ = [
    "Baseline",
    "CheckConfig",
    "Finding",
    "LintResult",
    "Location",
    "Rule",
    "Severity",
    "registry",
    "run_lint",
    "run_rules",
]
