"""Graph-based static timing analysis over the connectivity IR.

:mod:`repro.fpga.timing` prices three *named* path classes from the
paper's block diagram — a hand-derived model that nothing cross-checks
against the actual wiring.  This module closes that gap: it annotates
every cell of a :class:`repro.checks.netgraph.Design` with a delay
drawn from the device's calibrated parameters, then runs a
topological longest-path search over the register-to-register graph.
The result is a path-accurate clock period with the full cell chain,
computed from the same netlist the DRC rules verify.

Delay model (all values in ns):

- every path pays the device's ``t_overhead`` once (clock-to-out +
  setup + skew, exactly as the analytical model charges it);
- a combinational cell costs ``levels * t_level + t_route``, with the
  level count decided by its timing role
  (:data:`repro.fpga.connectivity.TIMING_ROLES`);
- an S-box ROM costs ``t_rom_access`` when the device reads embedded
  memory asynchronously (the Acex1K EABs), or a
  :data:`repro.fpga.timing.ROM_IN_LUTS_DEPTH`-level LUT mux-tree when
  it cannot (the Cyclone case).  With ``spec.sync_rom`` the ROM is a
  registered element: it terminates the address path and launches the
  data path with ``t_rom_access`` of clock-to-data.

Rules:

- ``sta.non-dag`` — the combinational subgraph has a cycle, so no
  topological order exists (delegates to the same SCC machinery the
  DRC's loop rule uses);
- ``sta.unmodelled-cell`` — a combinational cell with no timing role;
- ``sta.negative-slack`` — some register-to-register path is longer
  than the device's Table 2 clock period
  (:func:`repro.fpga.timing.clock_constraint`);
- ``sta.model-divergence`` — the graph critical path and the
  analytical model disagree by more than
  :data:`MODEL_AGREEMENT_NS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.checks.engine import (
    KIND_STA,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.netgraph import Cell, CellKind, Design
from repro.fpga.connectivity import TIMING_ROLES
from repro.fpga.devices import Device
from repro.fpga.primitives import mix_stage_depth
from repro.fpga.timing import (
    ROM_IN_LUTS_DEPTH,
    analyze,
    clock_constraint,
    round_clock,
)
from repro.ip.control import Variant

#: Maximum tolerated gap between the graph STA's critical path and the
#: analytical model's, in ns.  Anything larger means one of the two
#: models has drifted from the netlist.
MODEL_AGREEMENT_NS = 1.0

#: The single clock domain of the paper's devices.
CLOCK_DOMAIN = "clk"


@dataclass(frozen=True)
class StaSubject:
    """One STA run: a connectivity design targeted at a device."""

    spec: ArchitectureSpec
    device: Device
    design: Design

    @property
    def label(self) -> str:
        return f"{self.design.name}@{self.device.family}"


@dataclass(frozen=True)
class DelayModel:
    """Per-device delay parameters the STA charges cells with."""

    t_level: float
    t_overhead: float
    t_rom_access: float
    t_route: float
    rom_is_async: bool
    rom_is_sync: bool

    @classmethod
    def for_target(cls, spec: ArchitectureSpec,
                   device: Device) -> "DelayModel":
        rom_async = device.supports_async_rom and not spec.sync_rom
        rom_sync = spec.sync_rom and device.memory is not None
        return cls(
            t_level=device.t_level,
            t_overhead=device.t_overhead,
            t_rom_access=device.t_rom_access,
            t_route=device.t_route,
            rom_is_async=rom_async,
            rom_is_sync=rom_sync,
        )

    # ------------------------------------------------------- cell delays
    def logic_levels(self, cell: Cell,
                     variant: Variant) -> Optional[int]:
        """Logic levels of a combinational cell, or None if unknown."""
        role = TIMING_ROLES.get(cell.name)
        if role is None:
            return None
        extra = 1 if variant is Variant.BOTH else 0
        if role == "wiring":
            return 0
        if role in ("mux", "addr-mux"):
            return 1
        if role == "state-mux":
            return 1 + extra
        if role == "mix":
            # The worst direction the device contains, plus the
            # last-round bypass mux; the BOTH device's extra
            # direction-select level is charged on the state mux.
            return mix_stage_depth(inverse=variant.can_decrypt) + 1
        if role == "sched-xor":
            return 2  # Rcon XOR + ripple build XOR (rotate is wiring)
        raise ValueError(f"unknown timing role {role!r}")

    def traverse_ns(self, cell: Cell,
                    variant: Variant) -> Optional[float]:
        """Delay through one combinational or ROM cell."""
        if cell.kind is CellKind.ROM:
            if self.rom_is_async:
                return self.t_rom_access + self.t_route
            if self.rom_is_sync:
                return None  # registered: not traversed, split instead
            return ROM_IN_LUTS_DEPTH * self.t_level + self.t_route
        levels = self.logic_levels(cell, variant)
        if levels is None:
            return None
        return levels * self.t_level + self.t_route


@dataclass(frozen=True)
class TimingPath:
    """One register-to-register path, worst-case through its cells."""

    start: str                      # launching cell
    end: str                        # capturing cell
    delay_ns: float                 # including t_overhead
    cells: Tuple[str, ...]          # combinational chain, in order

    def render(self) -> str:
        chain = " -> ".join((self.start, *self.cells, self.end))
        return f"{self.delay_ns:.2f} ns  {chain}"


@dataclass
class StaReport:
    """Everything the rules and the ``repro-aes sta`` command need."""

    subject: StaSubject
    clock_domain: str = CLOCK_DOMAIN
    required_ns: float = 0.0        # Table 2 constraint
    paths: List[TimingPath] = field(default_factory=list)
    unmodelled: List[str] = field(default_factory=list)
    cycles: List[List[str]] = field(default_factory=list)
    #: Analytical model output for the same (spec, device).
    analytical_ns: float = 0.0
    analytical_critical: str = ""
    analytical_paths: Dict[str, float] = field(default_factory=dict)

    @property
    def critical(self) -> Optional[TimingPath]:
        return self.paths[0] if self.paths else None

    @property
    def critical_ns(self) -> float:
        return self.paths[0].delay_ns if self.paths else 0.0

    @property
    def clock_ns(self) -> float:
        """The graph-derived period on the paper's 1 ns grid."""
        return round_clock(self.critical_ns)

    @property
    def slack_ns(self) -> float:
        return self.required_ns - self.critical_ns

    def render(self) -> str:
        sub = self.subject
        lines = [
            f"{sub.label}: domain {self.clock_domain!r}, "
            f"required {self.required_ns:.0f} ns "
            f"(Table 2), slack {self.slack_ns:+.2f} ns",
        ]
        if self.cycles:
            for cycle in self.cycles:
                lines.append(
                    "  NOT A DAG: " + " -> ".join(cycle + [cycle[0]])
                )
            return "\n".join(lines)
        for path in self.paths[:5]:
            lines.append(f"  {path.render()}")
        lines.append(
            f"  analytical model: {self.analytical_ns:.2f} ns "
            f"({self.analytical_critical}); "
            f"divergence {abs(self.critical_ns - self.analytical_ns):.2f} ns"
        )
        if self.unmodelled:
            lines.append(
                "  unmodelled cells: " + ", ".join(self.unmodelled)
            )
        return "\n".join(lines)


def _net_edges(
    design: Design,
) -> Tuple[Dict[str, Set[str]], Dict[str, Set[str]]]:
    """Cell-level successor and predecessor maps from the nets."""
    succ: Dict[str, Set[str]] = {name: set() for name in design.cells}
    pred: Dict[str, Set[str]] = {name: set() for name in design.cells}
    for net in design.nets.values():
        for d_cell, _ in net.drivers:
            for s_cell, _ in net.sinks:
                succ[d_cell].add(s_cell)
                pred[s_cell].add(d_cell)
    return succ, pred


def analyze_design(subject: StaSubject) -> StaReport:
    """Longest register-to-register path search over one design.

    Start points are sequential-cell outputs (plus sync-ROM data
    outputs, which launch with ``t_rom_access``); endpoints are
    sequential-cell inputs (plus sync-ROM address inputs).  Paths to
    or from device pins are I/O constraints, not core-clock paths, so
    they are excluded.
    """
    design = subject.design
    model = DelayModel.for_target(subject.spec, subject.device)
    variant = subject.spec.variant
    report = StaReport(
        subject=subject,
        required_ns=clock_constraint(subject.spec, subject.device),
    )
    clock, critical, paths = analyze(subject.spec, subject.device)
    report.analytical_critical = critical
    report.analytical_paths = dict(paths)
    report.analytical_ns = paths[critical]

    report.cycles = design.combinational_cycles()
    if report.cycles:
        return report  # no topological order exists

    rom_is_seq = model.rom_is_sync

    def is_start(cell: Cell) -> bool:
        if cell.kind is CellKind.SEQ:
            return True
        return cell.kind is CellKind.ROM and rom_is_seq

    def is_endpoint(cell: Cell) -> bool:
        return is_start(cell)

    def is_through(cell: Cell) -> bool:
        if cell.kind is CellKind.COMB:
            return True
        return cell.kind is CellKind.ROM and not rom_is_seq

    succ, pred = _net_edges(design)

    # Arrival time at each through-cell's *output*, with back-pointers
    # for chain reconstruction.  Kahn's algorithm over the through
    # subgraph; start cells contribute their launch delay.
    through = {c.name for c in design.cells.values() if is_through(c)}
    launch: Dict[str, float] = {}
    for cell in design.cells.values():
        if is_start(cell):
            launch[cell.name] = (
                model.t_rom_access
                if cell.kind is CellKind.ROM else 0.0
            )

    indeg = {
        name: sum(1 for p in pred[name] if p in through)
        for name in through
    }
    ready = sorted(name for name in through if indeg[name] == 0)
    arrival: Dict[str, float] = {}
    back: Dict[str, Optional[str]] = {}
    unmodelled: Set[str] = set()
    order: List[str] = []
    while ready:
        name = ready.pop()
        order.append(name)
        cell = design.cells[name]
        incr = model.traverse_ns(cell, variant)
        if incr is None:
            unmodelled.add(name)
            incr = model.t_level  # charge one level, flag it
        best = 0.0
        best_pred: Optional[str] = None
        for p in sorted(pred[name]):
            at = arrival.get(p) if p in through else launch.get(p)
            if at is None:
                continue  # a pin: not a clocked path
            if at > best or best_pred is None:
                best, best_pred = at, p
        arrival[name] = best + incr
        back[name] = best_pred if best_pred in through else None
        for s in sorted(succ[name]):
            if s in through:
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
    report.unmodelled = sorted(unmodelled)

    def chain(name: str) -> Tuple[str, ...]:
        cells: List[str] = []
        node: Optional[str] = name
        while node is not None:
            cells.append(node)
            node = back[node]
        return tuple(reversed(cells))

    def launch_cell(first_through: str) -> str:
        best, best_name = -1.0, ""
        for p in sorted(pred[first_through]):
            if p in launch and launch[p] >= best:
                if best_name and launch[p] == best:
                    continue
                best, best_name = launch[p], p
        return best_name

    # One worst path per capturing endpoint.
    for cell in sorted(design.cells.values(), key=lambda c: c.name):
        if not is_endpoint(cell):
            continue
        best_delay = None
        best_chain: Tuple[str, ...] = ()
        best_start = ""
        for p in sorted(pred[cell.name]):
            if p in through:
                delay = arrival[p]
                cells = chain(p)
                start = launch_cell(cells[0]) if cells else ""
            elif p in launch:
                delay = launch[p]
                cells = ()
                start = p
            else:
                continue  # driven by a pin
            if best_delay is None or delay > best_delay:
                best_delay, best_chain, best_start = delay, cells, start
        if best_delay is None:
            continue
        report.paths.append(TimingPath(
            start=best_start,
            end=cell.name,
            delay_ns=model.t_overhead + best_delay,
            cells=best_chain,
        ))
    report.paths.sort(key=lambda p: (-p.delay_ns, p.end))
    return report


def paper_sta_subjects() -> List[StaSubject]:
    """The shipped STA subject set: 3 variants x the 2 Table 2 parts."""
    from repro.arch.spec import PAPER_SPECS
    from repro.fpga.connectivity import paper_connectivity
    from repro.fpga.devices import EP1C20, EP1K100

    subjects = []
    for spec in PAPER_SPECS.values():
        design = paper_connectivity(spec.variant)
        for device in (EP1K100, EP1C20):
            subjects.append(StaSubject(spec, device, design))
    return subjects


# ------------------------------------------------------------------- rules
def _loc(subject: StaSubject, obj: str) -> Location:
    return Location(file=f"sta:{subject.label}", obj=obj)


@rule("sta.non-dag", Severity.ERROR, KIND_STA,
      "combinational cycle prevents topological timing analysis")
def non_dag(subject: StaSubject,
            config: CheckConfig) -> Iterator[Finding]:
    report = analyze_design(subject)
    for cycle in report.cycles:
        path = " -> ".join(cycle + [cycle[0]])
        yield Finding(
            "sta.non-dag", Severity.ERROR,
            f"no topological order: combinational cycle {path}",
            _loc(subject, cycle[0]),
        )


@rule("sta.unmodelled-cell", Severity.WARNING, KIND_STA,
      "combinational cell without a timing role (delay guessed)")
def unmodelled_cell(subject: StaSubject,
                    config: CheckConfig) -> Iterator[Finding]:
    report = analyze_design(subject)
    for name in report.unmodelled:
        yield Finding(
            "sta.unmodelled-cell", Severity.WARNING,
            f"cell {name!r} has no entry in TIMING_ROLES; STA charged "
            f"one logic level as a guess", _loc(subject, name),
        )


@rule("sta.negative-slack", Severity.ERROR, KIND_STA,
      "register-to-register path longer than the Table 2 clock period")
def negative_slack(subject: StaSubject,
                   config: CheckConfig) -> Iterator[Finding]:
    report = analyze_design(subject)
    if report.cycles:
        return  # sta.non-dag already fired; no valid arrival times
    for path in report.paths:
        slack = report.required_ns - path.delay_ns
        if slack < 0:
            yield Finding(
                "sta.negative-slack", Severity.ERROR,
                f"path {path.render()} violates the "
                f"{report.required_ns:.0f} ns period "
                f"(slack {slack:.2f} ns)",
                _loc(subject, path.end),
            )


@rule("sta.model-divergence", Severity.ERROR, KIND_STA,
      "graph STA and the analytical timing model disagree by > 1 ns")
def model_divergence(subject: StaSubject,
                     config: CheckConfig) -> Iterator[Finding]:
    report = analyze_design(subject)
    if report.cycles:
        return
    gap = abs(report.critical_ns - report.analytical_ns)
    if gap > MODEL_AGREEMENT_NS:
        critical = report.critical
        chain = critical.render() if critical else "<none>"
        yield Finding(
            "sta.model-divergence", Severity.ERROR,
            f"graph critical path is {report.critical_ns:.2f} ns "
            f"({chain}) but repro.fpga.timing predicts "
            f"{report.analytical_ns:.2f} ns "
            f"({report.analytical_critical}); gap {gap:.2f} ns "
            f"exceeds {MODEL_AGREEMENT_NS:.0f} ns",
            _loc(subject, "critical"),
        )
