"""VHDL deliverable rules: the old ``repro.hdl.lint`` checker as a
rule family.

``repro.hdl.lint`` predates the rule engine; it raises on the first
structural problem, which is right for the generator's emit path
(never write broken HDL) but wrong for a lint report.  These rules
adapt it: every generated file is checked, every violation becomes a
finding, and two extra checks the raising API never had (MIF/ROM
coverage, paper constants present) ride along.

Subjects are ``(filename, text)`` pairs produced by the runner from
:func:`repro.hdl.vhdl_gen.generate_core_vhdl`.
"""

from __future__ import annotations

import re
from typing import Iterator, Tuple

from repro.checks.engine import (
    KIND_VHDL,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.hdl.lint import check_vhdl

VhdlSubject = Tuple[str, str]  # (filename, text)


@rule("hdl.vhdl-structure", Severity.ERROR, KIND_VHDL,
      "generated VHDL must pass the structural checker")
def vhdl_structure(subject: VhdlSubject,
                   config: CheckConfig) -> Iterator[Finding]:
    filename, text = subject
    if not filename.endswith(".vhd"):
        return
    for message in check_vhdl(text, filename):
        # The checker prefixes messages with the filename; strip it so
        # the finding location carries the file exactly once.
        cleaned = message
        if cleaned.startswith(f"{filename}: "):
            cleaned = cleaned[len(filename) + 2:]
        yield Finding(
            "hdl.vhdl-structure", Severity.ERROR, cleaned,
            Location(file=filename),
        )


@rule("hdl.sbox-roms-initialized", Severity.ERROR, KIND_VHDL,
      "every S-box ROM constant in the VHDL must carry 256 entries")
def sbox_roms_initialized(subject: VhdlSubject,
                          config: CheckConfig) -> Iterator[Finding]:
    filename, text = subject
    if not filename.endswith(".vhd"):
        return
    for match in re.finditer(
        r"constant\s+(\w+)\s*:\s*rom_256x8_t\s*:=\s*\((.*?)\);",
        text, re.IGNORECASE | re.DOTALL,
    ):
        name, body = match.group(1), match.group(2)
        entries = len(re.findall(r'x"[0-9a-fA-F]{2}"', body))
        if entries != 256:
            yield Finding(
                "hdl.sbox-roms-initialized", Severity.ERROR,
                f"ROM constant {name} initializes {entries} bytes; "
                f"an S-box holds 256",
                Location(file=filename, obj=name),
            )
