"""``aio.*`` — asyncio concurrency-hazard rules.

The serving layer's two post-PR-5 production bugs were both *silent*
concurrency defects: a remotely-triggered ``stop()`` task created
with ``create_task`` and never bound anywhere (the event loop keeps
only weak references, so the GC could collect the task mid-shutdown),
and worker tasks that died permanently on an exception path.  The
first is exactly ``aio.task-not-retained``; the lint that would have
caught the second lives in the e2e exception-storm regression test —
but every rule here targets the same family: hazards the event loop
never reports, it just misbehaves.

Rules (all over the :class:`~repro.checks.flow.FlowProgram`, so
helper indirection does not hide a hazard):

- ``aio.task-not-retained`` (error) — the result of
  ``asyncio.create_task`` / ``ensure_future`` is discarded, bound to
  ``_``, or bound to a local that is never read again.  A task
  nothing references is garbage the moment the statement ends;
  `asyncio` documents that the loop holds only weak references, so
  "fire and forget" means "fire and maybe never run".  Pin it to an
  attribute, a collection, or await it.
- ``aio.blocking-in-coroutine`` (error) — a direct call, inside an
  ``async def``, to something that blocks the loop: ``time.sleep``,
  ``socket.*``, or one of the synchronous crypto entry points
  (``BatchEngine`` methods, the mode-layer functions) that must be
  routed through ``run_in_executor``.  Detection is transitive: an
  ``async def`` calling a sync helper whose call chain reaches a
  blocking primitive is flagged with the chain spelled out.
- ``aio.unawaited-coroutine`` (error) — a bare-statement call to an
  in-program ``async def``: the coroutine object is created and
  dropped, the body never runs.  Python warns at runtime only if the
  object is garbage-collected while the warning machinery is active;
  statically it is always wrong.
- ``aio.unlocked-shared-mutation`` (warning) — a ``self.*`` attribute
  is mutated on both sides of the loop/executor boundary (an
  ``async def`` method on one side, a method handed to
  ``run_in_executor``/``submit`` on the other) without a lock.  The
  GIL keeps individual bytecodes atomic, not read-modify-write
  sequences; state shared across that boundary needs a
  ``threading.Lock`` (or a redesign that stops sharing it).
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.checks.engine import (
    KIND_FLOW,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.flow import (
    FlowProgram,
    FlowSubject,
    FunctionInfo,
    call_name,
    own_nodes,
)

#: Task-spawning calls whose result is the only strong reference.
_SPAWN_CALLS = {"create_task", "ensure_future"}

#: Executor hand-off calls: their callable arguments run on threads.
_EXECUTOR_CALLS = {"run_in_executor", "submit"}

#: Methods that mutate their receiver in place.
_MUTATING_METHODS = {
    "append", "extend", "insert", "add", "update", "remove",
    "discard", "pop", "popleft", "clear", "setdefault",
}


def _location(info: FunctionInfo, node: ast.AST) -> Location:
    return Location(file=info.path,
                    line=getattr(node, "lineno", 0),
                    obj=info.display)


# ------------------------------------------------------------ retention
def _spawn_call(node: ast.AST) -> Optional[ast.Call]:
    if isinstance(node, ast.Call) and \
            call_name(node) in _SPAWN_CALLS:
        return node
    return None


def _reads_of(info: FunctionInfo, name: str,
              skip: ast.AST) -> int:
    """Loads of ``name`` in the function outside ``skip``."""
    skipped = set()
    for sub in ast.walk(skip):
        skipped.add(id(sub))
    count = 0
    for node in own_nodes(info.node):
        if id(node) in skipped:
            continue
        if isinstance(node, ast.Name) and node.id == name and \
                isinstance(node.ctx, ast.Load):
            count += 1
    return count


@rule("aio.task-not-retained", Severity.ERROR, KIND_FLOW,
      "create_task/ensure_future result not retained — the event "
      "loop holds only a weak reference, so the task can be "
      "garbage-collected mid-flight")
def task_not_retained(subject: FlowSubject,
                      config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in program:
        for node in own_nodes(info.node):
            spawn: Optional[ast.Call] = None
            how = ""
            if isinstance(node, ast.Expr):
                spawn = _spawn_call(node.value)
                how = "discarded"
            elif isinstance(node, ast.Assign):
                spawn = _spawn_call(node.value)
                if spawn is not None:
                    targets = node.targets
                    if len(targets) == 1 and \
                            isinstance(targets[0], ast.Name):
                        name = targets[0].id
                        if name == "_":
                            how = "bound to '_'"
                        elif _reads_of(info, name, node) == 0:
                            how = (f"bound to {name!r}, which is "
                                   f"never read again")
                        else:
                            spawn = None  # retained via the local
                    else:
                        spawn = None  # attribute/tuple bind retains
            if spawn is None:
                continue
            yield Finding(
                "aio.task-not-retained", Severity.ERROR,
                f"result of {call_name(spawn)}() is {how}: the "
                f"loop keeps only a weak reference, so the task "
                f"may be garbage-collected before it runs; pin it "
                f"to an attribute or await it",
                _location(info, node),
            )


# ------------------------------------------------------------- blocking
@rule("aio.blocking-in-coroutine", Severity.ERROR, KIND_FLOW,
      "blocking call (time.sleep/socket/sync crypto) executed "
      "directly inside an async def instead of run_in_executor")
def blocking_in_coroutine(subject: FlowSubject,
                          config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in program:
        if not info.is_async:
            continue
        reported: Set[int] = set()
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Call) or \
                    id(node) in reported:
                continue
            direct = program.direct_blocking_call(node)
            if direct is not None:
                reported.add(id(node))
                yield Finding(
                    "aio.blocking-in-coroutine", Severity.ERROR,
                    f"direct call to blocking {direct}() inside "
                    f"async def {info.name}; route it through "
                    f"loop.run_in_executor so the event loop "
                    f"stays responsive",
                    _location(info, node),
                )
                continue
            edge = program.resolve(node, info)
            if edge is None or edge.callee.is_async:
                continue
            chain = program.blocking_chain(edge.callee)
            if chain is not None:
                reported.add(id(node))
                path = " -> ".join((edge.callee.display, *chain))
                yield Finding(
                    "aio.blocking-in-coroutine", Severity.ERROR,
                    f"call to {edge.callee.display}() inside "
                    f"async def {info.name} blocks the loop "
                    f"transitively ({path}); route it through "
                    f"loop.run_in_executor",
                    _location(info, node),
                )


# ------------------------------------------------------------ unawaited
@rule("aio.unawaited-coroutine", Severity.ERROR, KIND_FLOW,
      "bare-statement call to an async def: the coroutine object "
      "is created and dropped without ever running")
def unawaited_coroutine(subject: FlowSubject,
                        config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    for info in program:
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Expr) or \
                    not isinstance(node.value, ast.Call):
                continue
            call = node.value
            edge = program.resolve(call, info)
            if edge is None or not edge.callee.is_async:
                continue
            yield Finding(
                "aio.unawaited-coroutine", Severity.ERROR,
                f"{edge.callee.display}() is a coroutine "
                f"function; calling it without await (or "
                f"create_task) builds a coroutine object and "
                f"silently drops it",
                _location(info, node),
            )


# --------------------------------------------------- shared mutation
def _self_attr(node: ast.AST) -> str:
    """``self.x`` -> ``"x"``, else ''."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == "self":
        return node.attr
    return ""


def _looks_like_lock(node: ast.AST) -> bool:
    name = ""
    if isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Call):
        return _looks_like_lock(node.func)
    return fnmatch.fnmatch(name.lower(), "*lock*")


class _MutationScan:
    """Reads, mutations and lock coverage of one method body."""

    def __init__(self, info: FunctionInfo):
        self.info = info
        self.reads: Set[str] = set()
        #: attr -> [(stmt node, under_lock)]
        self.mutations: Dict[str, List[Tuple[ast.AST, bool]]] = {}
        node = info.node
        assert isinstance(node, (ast.FunctionDef,
                                 ast.AsyncFunctionDef))
        for stmt in node.body:
            self._scan(stmt, locked=False)

    def _scan(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            covers = any(_looks_like_lock(item.context_expr)
                         for item in node.items)
            for item in node.items:
                self._scan(item.context_expr, locked)
            for child in node.body:
                self._scan(child, locked or covers)
            return
        self._record(node, locked)
        for child in ast.iter_child_nodes(node):
            self._scan(child, locked)

    def _record(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                attr = _self_attr(target)
                if not attr and isinstance(target, ast.Subscript):
                    attr = _self_attr(target.value)
                if attr:
                    self.mutations.setdefault(attr, []).append(
                        (node, locked))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in _MUTATING_METHODS:
            attr = _self_attr(node.func.value)
            if attr:
                self.mutations.setdefault(attr, []).append(
                    (node, locked))
        elif isinstance(node, ast.Attribute) and \
                isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr:
                self.reads.add(attr)


def _executor_target_names(methods: List[FunctionInfo]) -> Set[str]:
    """Methods of this class handed to an executor by reference."""
    targets: Set[str] = set()
    for info in methods:
        for node in own_nodes(info.node):
            if not (isinstance(node, ast.Call)
                    and call_name(node) in _EXECUTOR_CALLS):
                continue
            for arg in node.args:
                attr = _self_attr(arg)
                if attr:
                    targets.add(attr)
    return targets


@rule("aio.unlocked-shared-mutation", Severity.WARNING, KIND_FLOW,
      "self.* state mutated on both sides of the event-loop/"
      "executor-thread boundary without a lock")
def unlocked_shared_mutation(
        subject: FlowSubject,
        config: CheckConfig) -> Iterator[Finding]:
    program = subject.program(config)
    classes: Dict[Tuple[str, str], List[FunctionInfo]] = {}
    for info in program:
        if info.class_name:
            classes.setdefault((info.path, info.class_name),
                               []).append(info)
    for (path, class_name), methods in sorted(classes.items()):
        target_names = _executor_target_names(methods)
        if not target_names:
            continue
        loop_side = [m for m in methods if m.is_async]
        thread_side = [m for m in methods
                       if not m.is_async and m.name in target_names]
        if not loop_side or not thread_side:
            continue
        loop_scans = [_MutationScan(m) for m in loop_side]
        thread_scans = [_MutationScan(m) for m in thread_side]
        loop_mut = {a for s in loop_scans for a in s.mutations}
        loop_touch = loop_mut | {a for s in loop_scans
                                 for a in s.reads}
        thread_mut = {a for s in thread_scans for a in s.mutations}
        thread_touch = thread_mut | {a for s in thread_scans
                                     for a in s.reads}
        hazards = (thread_mut & loop_touch) | \
                  (loop_mut & thread_touch)
        for scan in (*loop_scans, *thread_scans):
            side = ("event loop" if scan.info.is_async
                    else "executor thread")
            for attr in sorted(hazards):
                for stmt, locked in scan.mutations.get(attr, ()):
                    if locked:
                        continue
                    yield Finding(
                        "aio.unlocked-shared-mutation",
                        Severity.WARNING,
                        f"self.{attr} is mutated on the {side} in "
                        f"{scan.info.display} while the other side "
                        f"of the loop/executor boundary also "
                        f"touches it; guard it with a lock or stop "
                        f"sharing it",
                        _location(scan.info, stmt),
                    )


__all__ = [
    "blocking_in_coroutine",
    "task_not_retained",
    "unawaited_coroutine",
    "unlocked_shared_mutation",
]
