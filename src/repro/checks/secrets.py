"""Shared key-material name heuristics for every source rule pack.

Three rule families decide "does this identifier look like key
material?": the constant-time lint (:mod:`repro.checks.crypto_lint`),
the serving-layer rules (:mod:`repro.checks.serve_rules`) and the
interprocedural taint pack (:mod:`repro.checks.taint_rules`).  Each
used to carry its own copy of the patterns; this module is the single
source of truth they all consume, so a new spelling (``kek``,
``session_key``) is added exactly once.

Two kinds of matcher live here:

- :func:`is_secret_name` — fnmatch over identifier-shaped names
  (function parameters, locals), driven by
  :attr:`repro.checks.engine.CheckConfig.secret_name_patterns` with
  the config's exception list;
- :data:`KEY_GLOBAL_RE` — a looser word-boundary regex for
  module-level globals, where ``SP800_38A_CBC128_IV`` must still
  match.
"""

from __future__ import annotations

import fnmatch
import re
from typing import Iterable

#: Identifier patterns treated as key material by the taint rules.
#: These are the *defaults* behind
#: :attr:`repro.checks.engine.CheckConfig.secret_name_patterns`.
SECRET_NAME_PATTERNS = (
    "key", "*_key", "key_*material", "kek", "secret", "*_secret",
    "subkey", "round_keys",
)

#: Names that look key-like but are control/protocol signals or
#: boolean flags, not key material (defaults behind
#: :attr:`repro.checks.engine.CheckConfig.secret_name_exceptions`).
SECRET_NAME_EXCEPTIONS = (
    "wr_key", "load_key", "key_index", "key_ready", "is_key",
    "has_key",
)

#: Module-level names that look like embedded key/IV material.
KEY_GLOBAL_RE = re.compile(
    r"(?:^|_)(?:key|keys|kek|secret|secrets|iv|nonce|password)(?:_|$)",
    re.IGNORECASE,
)

#: Calls whose result is public even when fed secrets: lengths, type
#: verdicts, and constant-time comparison outcomes.
SANITIZERS = frozenset({"len", "isinstance", "type", "compare_digest"})


def is_secret_name(name: str,
                   patterns: Iterable[str] = SECRET_NAME_PATTERNS,
                   exceptions: Iterable[str] = SECRET_NAME_EXCEPTIONS,
                   ) -> bool:
    """Whether an identifier looks like key material.

    ``patterns`` / ``exceptions`` normally come from the active
    :class:`~repro.checks.engine.CheckConfig`; the defaults make the
    helper usable standalone (fixtures, doctests).
    """
    if name in exceptions:
        return False
    return any(fnmatch.fnmatch(name, pat) for pat in patterns)


__all__ = [
    "KEY_GLOBAL_RE",
    "SANITIZERS",
    "SECRET_NAME_EXCEPTIONS",
    "SECRET_NAME_PATTERNS",
    "is_secret_name",
]
