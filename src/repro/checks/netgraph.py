"""Connectivity-level netlist IR for design-rule checking.

:mod:`repro.fpga.netlist` counts primitives (the synthesis area
model); it deliberately carries no wiring.  DRC needs wiring, so this
module adds the missing abstraction level: cells with typed, width-
checked ports, and nets connecting them.  The granularity is the
paper's block diagram (Figs. 8-9) — one cell per register bank, mux,
S-box ROM, logic network and pin — which is exactly the level where
the paper's structural invariants (4 ROMs per substitution bank, the
Table 1 pin budget, no combinational feedback) are statable.

:func:`repro.fpga.connectivity.paper_connectivity` builds the shipped
devices in this IR; :mod:`repro.checks.netlist_drc` holds the rules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple


class NetgraphError(ValueError):
    """Raised on malformed construction (not on rule violations —
    those become findings; this is for *unbuildable* designs)."""


class CellKind(enum.Enum):
    """What a cell is, which decides its timing behaviour.

    COMB and ROM outputs are combinational functions of their inputs
    (the paper's EABs read asynchronously), so both participate in
    combinational-loop detection; SEQ outputs change only on the clock
    edge and break loops; PIN_IN/PIN_OUT are the device boundary.
    """

    COMB = "comb"
    SEQ = "seq"
    ROM = "rom"
    PIN_IN = "pin_in"
    PIN_OUT = "pin_out"

    @property
    def is_combinational(self) -> bool:
        return self in (CellKind.COMB, CellKind.ROM)


class PortDir(enum.Enum):
    IN = "in"
    OUT = "out"


@dataclass(frozen=True)
class PortSpec:
    """One declared port on a cell."""

    name: str
    direction: PortDir
    width: int


@dataclass
class Cell:
    """One block-diagram element."""

    name: str
    kind: CellKind
    group: str = ""
    ports: Dict[str, PortSpec] = field(default_factory=dict)

    def port(self, name: str) -> PortSpec:
        if name not in self.ports:
            raise NetgraphError(f"cell {self.name!r} has no port {name!r}")
        return self.ports[name]


@dataclass
class Net:
    """One wire bundle; drivers/sinks are (cell, port) endpoints."""

    name: str
    width: int
    drivers: List[Tuple[str, str]] = field(default_factory=list)
    sinks: List[Tuple[str, str]] = field(default_factory=list)


class Design:
    """A named connectivity netlist."""

    def __init__(self, name: str):
        self.name = name
        self.cells: Dict[str, Cell] = {}
        self.nets: Dict[str, Net] = {}

    # ------------------------------------------------------------- building
    def add_cell(self, name: str, kind: CellKind, group: str = "",
                 **ports: Tuple[str, int]) -> Cell:
        """Declare a cell; ports are ``name=("in"|"out", width)``."""
        if name in self.cells:
            raise NetgraphError(f"duplicate cell {name!r}")
        specs = {
            pname: PortSpec(pname, PortDir(direction), width)
            for pname, (direction, width) in ports.items()
        }
        cell = Cell(name, kind, group, specs)
        self.cells[name] = cell
        return cell

    def add_net(self, name: str, width: int) -> Net:
        if name in self.nets:
            raise NetgraphError(f"duplicate net {name!r}")
        if width < 1:
            raise NetgraphError(f"net {name!r}: width must be >= 1")
        net = Net(name, width)
        self.nets[name] = net
        return net

    def connect(self, net_name: str, cell_name: str,
                port_name: str) -> None:
        """Attach a cell port to a net (direction read off the port)."""
        if net_name not in self.nets:
            raise NetgraphError(f"unknown net {net_name!r}")
        if cell_name not in self.cells:
            raise NetgraphError(f"unknown cell {cell_name!r}")
        port = self.cells[cell_name].port(port_name)
        net = self.nets[net_name]
        endpoint = (cell_name, port_name)
        if port.direction is PortDir.OUT:
            net.drivers.append(endpoint)
        else:
            net.sinks.append(endpoint)

    # -------------------------------------------------------------- queries
    def cells_of_kind(self, kind: CellKind) -> Iterator[Cell]:
        return (c for c in self.cells.values() if c.kind is kind)

    def cells_in_group(self, group: str) -> List[Cell]:
        return [c for c in self.cells.values() if c.group == group]

    def groups(self) -> Set[str]:
        return {c.group for c in self.cells.values() if c.group}

    def connected_ports(self, cell_name: str) -> Set[str]:
        """Port names of a cell that touch at least one net."""
        used: Set[str] = set()
        for net in self.nets.values():
            for cname, pname in (*net.drivers, *net.sinks):
                if cname == cell_name:
                    used.add(pname)
        return used

    def net_of(self, cell_name: str,
               port_name: str) -> Optional[Net]:
        for net in self.nets.values():
            if (cell_name, port_name) in net.drivers or \
                    (cell_name, port_name) in net.sinks:
                return net
        return None

    # ------------------------------------------------------ loop detection
    def combinational_cycles(self) -> List[List[str]]:
        """Cycles in the combinational subgraph (cells as nodes).

        An edge u -> v exists when a COMB/ROM cell u drives a net that
        a COMB/ROM cell v reads.  SEQ cells terminate paths (their
        outputs are edge-triggered), so any cycle returned here is a
        genuine zero-delay feedback loop.  Returns one representative
        cycle per strongly-connected component of size > 1 (or a
        self-loop), as a list of cell names.
        """
        comb = {c.name for c in self.cells.values()
                if c.kind.is_combinational}
        edges: Dict[str, Set[str]] = {name: set() for name in comb}
        for net in self.nets.values():
            driver_cells = {c for c, _ in net.drivers if c in comb}
            sink_cells = {c for c, _ in net.sinks if c in comb}
            for u in driver_cells:
                edges[u].update(sink_cells)

        # Iterative Tarjan SCC.
        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        cycles: List[List[str]] = []

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(edges[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(edges[succ]))))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in edges[node]:
                        cycles.append(sorted(component))

        for name in sorted(comb):
            if name not in index:
                strongconnect(name)
        return cycles
