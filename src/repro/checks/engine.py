"""Rule engine for the static-analysis subsystem.

The engine is deliberately small: a :class:`Rule` is a named, severity-
tagged function over one *subject* (a connectivity design, an FSM
model, a Python source file, a generated VHDL file, or a structural
netlist); a :class:`Finding` pins a message to a location; a
:class:`CheckConfig` decides which rules run and at what severity; and
:func:`run_rules` dispatches every enabled rule over every subject of
its kind.

Analyzer families (:mod:`repro.checks.netlist_drc`,
:mod:`repro.checks.fsm`, :mod:`repro.checks.crypto_lint`,
:mod:`repro.checks.hdl_rules`, :mod:`repro.checks.sta`,
:mod:`repro.checks.equiv`, :mod:`repro.checks.obs`) register rules at
import time via
:func:`rule`; the registry is the single source of truth the CLI,
the docs table and the tests enumerate.
"""

from __future__ import annotations

import enum
import fnmatch
import hashlib
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple

from repro.checks import secrets as _secrets


class Severity(enum.IntEnum):
    """How bad a finding is; ordering matters (ERROR > WARNING > NOTE)."""

    NOTE = 0
    WARNING = 1
    ERROR = 2

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.strip().upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {text!r}; choose from "
                f"{', '.join(s.name.lower() for s in cls)}"
            )


#: Subject kinds a rule can analyze.  The runner feeds each rule every
#: subject whose kind matches the rule's ``requires``.
KIND_DESIGN = "design"      # repro.checks.netgraph.Design
KIND_NETLIST = "netlist"    # repro.fpga.netlist.Netlist (+ spec)
KIND_FSM = "fsm"            # repro.checks.fsm.FsmModel
KIND_SOURCE = "source"      # repro.checks.crypto_lint.SourceFile
KIND_VHDL = "vhdl"          # (filename, text) pair
KIND_STA = "sta"            # repro.checks.sta.StaSubject
KIND_EQUIV = "equiv"        # repro.checks.equiv.EquivSubject
KIND_OBS = "obs"            # repro.checks.obs.ObsSubject
KIND_FLOW = "flow"          # repro.checks.flow.FlowSubject
KIND_PROTO = "proto"        # repro.checks.proto.ProtoSubject


@dataclass(frozen=True)
class Location:
    """Where a finding lives.

    ``file`` is a path for source findings, or a pseudo-path such as
    ``netlist:paper_encrypt`` / ``fsm:core_async`` for model findings.
    ``obj`` names the offending net, state, port or symbol.
    """

    file: str = ""
    line: int = 0
    obj: str = ""

    def render(self) -> str:
        parts = [self.file or "<global>"]
        if self.line:
            parts.append(str(self.line))
        text = ":".join(parts)
        if self.obj:
            text += f" ({self.obj})"
        return text


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by one rule."""

    rule: str
    severity: Severity
    message: str
    location: Location = field(default_factory=Location)

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression.

        Line numbers are deliberately excluded so unrelated edits to a
        file do not invalidate suppressions; the (rule, file, obj)
        triple plus the message keeps collisions unlikely.
        """
        blob = "|".join(
            (self.rule, self.location.file, self.location.obj,
             self.message)
        )
        return hashlib.sha1(blob.encode()).hexdigest()[:16]

    def render(self) -> str:
        return (f"{self.location.render()}: "
                f"{self.severity.name.lower()}: "
                f"[{self.rule}] {self.message}")


RuleFunc = Callable[[object, "CheckConfig"], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    id: str
    severity: Severity
    requires: str          # one of the KIND_* constants
    doc: str
    func: RuleFunc

    @property
    def family(self) -> str:
        return self.id.split(".", 1)[0]


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, severity: Severity, requires: str,
         doc: str) -> Callable[[RuleFunc], RuleFunc]:
    """Decorator registering a rule function in the global registry."""

    def deco(func: RuleFunc) -> RuleFunc:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(rule_id, severity, requires, doc, func)
        return func

    return deco


def registry() -> Dict[str, Rule]:
    """All registered rules (importing the analyzer modules first)."""
    # Importing the families populates the registry as a side effect.
    from repro.checks import aio_rules, crypto_lint, equiv, fsm, \
        hdl_rules, netlist_drc, obs, proto, serve_rules, sta, \
        taint_rules  # noqa: F401
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    rules = registry()
    if rule_id not in rules:
        raise KeyError(f"unknown rule {rule_id!r}")
    return rules[rule_id]


# ------------------------------------------------------------------ config
@dataclass
class CheckConfig:
    """Which rules run, and rule-family knobs.

    ``enable`` / ``disable`` are fnmatch patterns over rule ids
    (``drc.*``, ``ct.secret-*``); disable wins.  ``severity_overrides``
    remaps a rule's severity (e.g. demote a check to a warning while
    a refactor is in flight).
    """

    enable: Tuple[str, ...] = ("*",)
    disable: Tuple[str, ...] = ()
    severity_overrides: Dict[str, Severity] = field(default_factory=dict)
    #: Lookup tables the constant-time rules treat as the sanctioned
    #: table-lookup implementation (the paper's S-box ROMs and their
    #: software shadows).
    sanctioned_tables: Tuple[str, ...] = (
        "SBOX", "INV_SBOX", "RCON", "T0", "T1", "T2", "T3",
        "_ALOG", "_LOG", "_table",
    )
    #: Identifier patterns treated as key material by the taint rules
    #: (defaults shared with every pack via repro.checks.secrets).
    secret_name_patterns: Tuple[str, ...] = _secrets.SECRET_NAME_PATTERNS
    #: Names that look key-like but are control/protocol signals or
    #: boolean flags, not key material.
    secret_name_exceptions: Tuple[str, ...] = \
        _secrets.SECRET_NAME_EXCEPTIONS
    #: Attribute names the taint rules treat as *public* projections
    #: of an otherwise secret-carrying object: frame status/header
    #: fields and session identity.  Reading ``response.status`` off a
    #: frame that travelled next to key material reveals protocol
    #: state, not key bits, so it does not propagate taint.
    public_attributes: Tuple[str, ...] = (
        "status", "op", "mode", "request_id", "session_id",
        # Cipher geometry (FIPS-197 Nb/Nk/Nr): block/key dimensions
        # are spec constants, not key bits.
        "nb", "nk", "nr",
    )
    #: Class names whose *instances* carry key material even when the
    #: variable holding them is innocently named (``session``).  A
    #: parameter annotated with one of these, or a local assigned from
    #: its constructor, is tainted; public_attributes still launder.
    secret_carrier_types: Tuple[str, ...] = ("Session",)
    #: Interprocedural propagation bound: how many call-graph hops a
    #: taint seed may travel (and how deep the blocking-call closure
    #: goes) before the fixpoint stops.  Keeps the analysis
    #: predictable on pathological call chains.
    flow_max_depth: int = 8
    #: Function-name patterns whose *return value* is data-plane
    #: output rather than key material: ciphertext and recovered
    #: plaintext are derived from the key but are precisely what the
    #: system exists to hand out.  Calls matching these launder taint
    #: in the flow engine — otherwise every bench report and response
    #: frame downstream of an encrypt call lights up as a "leak".
    declassified_call_names: Tuple[str, ...] = (
        "*crypt*", "*gctr*",
    )
    #: Call shapes the ``aio.blocking-in-coroutine`` rule treats as
    #: blocking the event loop when invoked directly inside an
    #: ``async def``: dotted prefixes (``time.sleep``, ``socket.*``)
    #: and bare names of the synchronous crypto entry points that
    #: must go through ``run_in_executor``.
    blocking_call_prefixes: Tuple[str, ...] = (
        "time.sleep", "socket.", "subprocess.", "requests.",
    )
    blocking_call_names: Tuple[str, ...] = (
        "encrypt_blocks", "xcrypt_ecb", "xcrypt_ctr", "keystream",
        "gctr", "ecb_encrypt", "ecb_decrypt", "cbc_encrypt",
        "cbc_decrypt", "ctr_xcrypt", "ctr_stream", "gcm_encrypt",
        "gcm_decrypt",
    )
    #: Function-name patterns the padding-oracle rule treats as
    #: padding validators: their inputs are decrypted plaintext,
    #: secret even though no parameter is named like key material.
    padding_function_patterns: Tuple[str, ...] = ("*unpad*",)
    #: Parameters of those validators that are public configuration
    #: (block geometry), not ciphertext-derived data.
    padding_public_params: Tuple[str, ...] = (
        "self", "cls", "block", "block_size", "blocksize",
    )
    #: File patterns the ``serve.*`` async-service rules apply to.
    #: The bounded-queue and timeout disciplines are serving-layer
    #: contracts, not repository-wide style, so the rules are scoped.
    #: The admin/scrape plane and the cluster modules (gateway,
    #: supervisor) are named explicitly (redundant with the package
    #: glob today): each must keep the timeout/backpressure
    #: discipline even if it ever moves out of the serve package.
    serve_path_patterns: Tuple[str, ...] = (
        "*repro/serve/*.py",
        "*repro/serve/admin.py",
        "*repro/serve/gateway.py",
        "*repro/serve/cluster.py",
    )

    def enabled(self, rule_id: str) -> bool:
        if any(fnmatch.fnmatch(rule_id, pat) for pat in self.disable):
            return False
        return any(fnmatch.fnmatch(rule_id, pat) for pat in self.enable)

    def effective_severity(self, base: Rule) -> Severity:
        for pattern, severity in self.severity_overrides.items():
            if fnmatch.fnmatch(base.id, pattern):
                return severity
        return base.severity


# ------------------------------------------------------------------ running
def run_rules(
    subjects: Dict[str, Sequence[object]],
    config: Optional[CheckConfig] = None,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every enabled rule over every subject of its kind.

    ``subjects`` maps a KIND_* constant to the inputs of that kind.
    ``only`` optionally restricts to an explicit iterable of rule ids
    (used by tests to exercise one rule in isolation).
    """
    config = config or CheckConfig()
    wanted = set(only) if only is not None else None
    findings: List[Finding] = []
    for rule_obj in sorted(registry().values(), key=lambda r: r.id):
        if wanted is not None and rule_obj.id not in wanted:
            continue
        if wanted is None and not config.enabled(rule_obj.id):
            continue
        severity = config.effective_severity(rule_obj)
        for subject in subjects.get(rule_obj.requires, ()):
            for finding in rule_obj.func(subject, config):
                if finding.severity is not severity:
                    finding = replace(finding, severity=severity)
                findings.append(finding)
    findings.sort(key=lambda f: (f.location.file, f.location.line,
                                 f.rule, f.message))
    return findings


def max_severity(findings: Iterable[Finding]) -> Optional[Severity]:
    worst: Optional[Severity] = None
    for finding in findings:
        if worst is None or finding.severity > worst:
            worst = finding.severity
    return worst


def iter_families(rules: Dict[str, Rule]) -> Iterator[Tuple[str,
                                                            List[Rule]]]:
    """Rules grouped by family prefix, for docs/CLI listings."""
    families: Dict[str, List[Rule]] = {}
    for rule_obj in rules.values():
        families.setdefault(rule_obj.family, []).append(rule_obj)
    for family in sorted(families):
        yield family, sorted(families[family], key=lambda r: r.id)
