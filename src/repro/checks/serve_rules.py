"""Async-service lint for the :mod:`repro.serve` subsystem.

The serving layer has failure modes the crypto lint cannot see: an
unbounded ``asyncio.Queue`` silently converts overload into memory
growth instead of backpressure, and a bare await on a stream
operation lets one stalled peer wedge a connection task forever.
Both are structural properties visible in the AST, so they are
enforced the same way the constant-time discipline is — as registry
rules that ``repro-aes lint --strict`` gates on.

Both rules are *path-scoped*: they fire only on files matching
:attr:`repro.checks.engine.CheckConfig.serve_path_patterns`, because
the disciplines are service-layer requirements, not repository-wide
style.  A bounded queue elsewhere may be wrong; in the serving layer
an unbounded one always is.

- ``serve.unbounded-queue`` — an ``asyncio.Queue`` (or Lifo/Priority
  variant) constructed without a positive ``maxsize``.  The service's
  backpressure contract (``docs/serving.md``) depends on the request
  queue rejecting work when full; asyncio treats *every*
  ``maxsize <= 0`` as "infinite", so an absent, zero or negative
  bound is the defect.
- ``serve.missing-timeout`` — an ``await`` applied directly to a
  stream call that can block on the peer (``readexactly``, ``drain``,
  ``wait_closed``, ``open_connection``, ...) without an enclosing
  ``asyncio.wait_for``.  Every socket await in the serving layer is
  bounded; the codec helpers exist precisely so call sites never
  write a bare stream await.
"""

from __future__ import annotations

import ast
import fnmatch
from typing import Iterator

from repro.checks.crypto_lint import SourceFile
from repro.checks.engine import (
    KIND_SOURCE,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)

#: Queue constructors whose default capacity is unbounded.
_QUEUE_TYPES = {"Queue", "LifoQueue", "PriorityQueue"}

#: Stream-API attribute calls that block on the remote peer.  A bare
#: ``await`` on any of these is a hang waiting to happen; each must
#: sit inside ``asyncio.wait_for`` (or ``wait`` / ``timeout``).
_RISKY_AWAITS = {
    "read", "readline", "readexactly", "readuntil", "drain",
    "wait_closed", "open_connection", "start_tls",
}

#: Wrappers that bound an await: the timeout context managers and
#: ``asyncio.wait_for`` / ``asyncio.wait``.
_TIMEOUT_WRAPPERS = {"wait_for", "wait", "timeout", "timeout_at"}


def _in_scope(subject: SourceFile, config: CheckConfig) -> bool:
    path = subject.path.replace("\\", "/")
    return any(fnmatch.fnmatch(path, pattern)
               for pattern in config.serve_path_patterns)


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _maxsize_const(value: ast.expr):
    """The numeric constant a maxsize expression evaluates to, or
    ``None`` for anything non-constant.  ``-1`` parses as a unary
    minus over a constant, so that shape is folded here too."""
    if (isinstance(value, ast.UnaryOp)
            and isinstance(value.op, ast.USub)):
        inner = _maxsize_const(value.operand)
        return -inner if isinstance(inner, (int, float)) else None
    if (isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)):
        return value.value
    return None


def _queue_bound(node: ast.Call) -> bool:
    """Whether this queue construction carries a positive maxsize."""
    candidates = list(node.args[:1])
    candidates.extend(kw.value for kw in node.keywords
                      if kw.arg == "maxsize")
    for value in candidates:
        const = _maxsize_const(value)
        if const is not None and const <= 0:
            return False  # asyncio treats maxsize <= 0 as unbounded
        return True       # positive or non-constant: assume a bound
    return False          # no maxsize at all


@rule(
    "serve.unbounded-queue",
    Severity.ERROR,
    KIND_SOURCE,
    "asyncio queue constructed without a positive maxsize — overload "
    "becomes memory growth instead of backpressure",
)
def check_unbounded_queue(subject: SourceFile,
                          config: CheckConfig) -> Iterator[Finding]:
    """Flag ``asyncio.Queue()`` (and variants) with no real bound."""
    if not _in_scope(subject, config):
        return
    for node in ast.walk(subject.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _QUEUE_TYPES:
            continue
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if not (isinstance(base, ast.Name)
                    and base.id == "asyncio"):
                continue
        if _queue_bound(node):
            continue
        yield Finding(
            rule="serve.unbounded-queue",
            severity=Severity.ERROR,
            message=(f"asyncio.{name}() without a positive maxsize: "
                     f"the serving layer's backpressure contract "
                     f"needs a bounded queue"),
            location=Location(file=subject.path, line=node.lineno,
                              obj=name),
        )


def _risky_await_name(node: ast.Await) -> str:
    """The risky stream-call name under this await, or ''."""
    value = node.value
    if not isinstance(value, ast.Call):
        return ""
    name = _call_name(value)
    return name if name in _RISKY_AWAITS else ""


def _is_timeout_wrapped(value: ast.expr) -> bool:
    """Whether an awaited expression is an ``asyncio.wait_for``-style
    wrapper (whose first argument is the risky call)."""
    return (isinstance(value, ast.Call)
            and _call_name(value) in _TIMEOUT_WRAPPERS)


@rule(
    "serve.missing-timeout",
    Severity.ERROR,
    KIND_SOURCE,
    "bare await on a stream operation (read/drain/connect) without "
    "asyncio.wait_for — a stalled peer wedges the task forever",
)
def check_missing_timeout(subject: SourceFile,
                          config: CheckConfig) -> Iterator[Finding]:
    """Flag awaits on peer-blocking stream calls with no timeout."""
    if not _in_scope(subject, config):
        return
    for node in ast.walk(subject.tree):
        if not isinstance(node, ast.Await):
            continue
        if _is_timeout_wrapped(node.value):
            continue
        name = _risky_await_name(node)
        if not name:
            continue
        yield Finding(
            rule="serve.missing-timeout",
            severity=Severity.ERROR,
            message=(f"bare 'await ...{name}(...)' with no "
                     f"asyncio.wait_for bound: a stalled peer "
                     f"blocks this task indefinitely"),
            location=Location(file=subject.path, line=node.lineno,
                              obj=name),
        )


#: Functions that put frame bytes on the wire.  The zero-copy codec
#: contract says these write head and payload as separate parts;
#: any buffer concatenation or join here rebuilds the copy tax the
#: split codec exists to remove.
_SEND_PATH_NAMES = {"write_frame"}
_SEND_PATH_PREFIXES = ("_send",)


def _is_send_path(name: str) -> bool:
    return (name in _SEND_PATH_NAMES
            or name.startswith(_SEND_PATH_PREFIXES))


def _function_nodes(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


@rule(
    "serve.codec-copy",
    Severity.ERROR,
    KIND_SOURCE,
    "frame bytes copied on the wire path — a defensive bytes() of a "
    "payload, or buffer concatenation inside a send function",
)
def check_codec_copy(subject: SourceFile,
                     config: CheckConfig) -> Iterator[Finding]:
    """Enforce the zero-copy codec invariants of ``docs/serving.md``.

    Two shapes, both structural:

    - ``bytes(<anything>.payload)`` anywhere in the serving layer: a
      frame payload is immutable ``bytes`` by contract, so wrapping
      it in ``bytes()`` re-copies up to ``MAX_PAYLOAD_BYTES`` per
      frame for nothing.
    - ``+`` concatenation or ``join`` inside a send-path function
      (``write_frame`` / ``_send*``): the send path writes head and
      payload as two parts; building a joined buffer reintroduces a
      full-frame copy per response.
    """
    if not _in_scope(subject, config):
        return
    for node in ast.walk(subject.tree):
        if not isinstance(node, ast.Call):
            continue
        if (isinstance(node.func, ast.Name)
                and node.func.id == "bytes"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Attribute)
                and node.args[0].attr == "payload"):
            yield Finding(
                rule="serve.codec-copy",
                severity=Severity.ERROR,
                message=("bytes(...payload) re-copies an immutable "
                         "frame payload; pass the payload object "
                         "through"),
                location=Location(file=subject.path,
                                  line=node.lineno, obj="bytes"),
            )
    for func in _function_nodes(subject.tree):
        name = getattr(func, "name", "")
        if not _is_send_path(name):
            continue
        for node in ast.walk(func):
            offence = ""
            if (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Add)):
                offence = "'+' concatenation"
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"):
                offence = "a join()"
            if not offence:
                continue
            yield Finding(
                rule="serve.codec-copy",
                severity=Severity.ERROR,
                message=(f"send path {name}() builds wire bytes via "
                         f"{offence}: write head and payload as "
                         f"separate parts instead"),
                location=Location(file=subject.path,
                                  line=node.lineno, obj=name),
            )


__all__ = [
    "check_codec_copy",
    "check_missing_timeout",
    "check_unbounded_queue",
]
