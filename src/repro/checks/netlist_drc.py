"""Netlist design-rule checks.

Two subject kinds:

- **Connectivity designs** (:class:`repro.checks.netgraph.Design`,
  built by :mod:`repro.fpga.connectivity`): classic DRC — undriven /
  multiply-driven nets, dangling drivers, width mismatches,
  unconnected ports, combinational loops — plus the paper's structural
  invariants at wiring granularity (4-ROM substitution banks, the
  Table 1 pin budget).
- **Structural netlists** (:class:`repro.fpga.netlist.Netlist` paired
  with their :class:`repro.arch.spec.ArchitectureSpec`): inventory
  consistency between the area model and the spec, and the paper's
  Table 2 memory shape for the shipped design points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.arch.spec import ArchitectureSpec
from repro.checks.engine import (
    KIND_DESIGN,
    KIND_NETLIST,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.netgraph import CellKind, Design, PortDir
from repro.fpga.netlist import Netlist
from repro.ip.control import Variant
from repro.ip.interface import pin_count

#: The paper's bank shape: 4 S-box ROMs, 256x8 each.
BANK_ROMS = 4
ROM_WORDS = 256
ROM_WIDTH = 8

#: Width-1 input pins that carry protocol control (Table 1): clk,
#: setup, wr_data, wr_key — plus enc/dec on the combined device.
CONTROL_PINS = 4


@dataclass(frozen=True)
class NetlistSubject:
    """A structural netlist tied to the spec it was built from."""

    spec: ArchitectureSpec
    netlist: Netlist


def _loc(design: Design, obj: str) -> Location:
    return Location(file=f"netlist:{design.name}", obj=obj)


# ------------------------------------------------------- connectivity DRC
@rule("drc.undriven-net", Severity.ERROR, KIND_DESIGN,
      "net has sinks but no driver")
def undriven_net(design: Design,
                 config: CheckConfig) -> Iterator[Finding]:
    for net in design.nets.values():
        if net.sinks and not net.drivers:
            sinks = ", ".join(f"{c}.{p}" for c, p in net.sinks[:3])
            yield Finding(
                "drc.undriven-net", Severity.ERROR,
                f"net {net.name!r} is read by {sinks} but nothing "
                f"drives it", _loc(design, net.name),
            )


@rule("drc.multi-driven-net", Severity.ERROR, KIND_DESIGN,
      "net has more than one driver (bus contention)")
def multi_driven_net(design: Design,
                     config: CheckConfig) -> Iterator[Finding]:
    for net in design.nets.values():
        if len(net.drivers) > 1:
            drivers = ", ".join(f"{c}.{p}" for c, p in net.drivers)
            yield Finding(
                "drc.multi-driven-net", Severity.ERROR,
                f"net {net.name!r} is driven by {len(net.drivers)} "
                f"outputs: {drivers}", _loc(design, net.name),
            )


@rule("drc.dangling-net", Severity.WARNING, KIND_DESIGN,
      "net is driven but never read")
def dangling_net(design: Design,
                 config: CheckConfig) -> Iterator[Finding]:
    for net in design.nets.values():
        if net.drivers and not net.sinks:
            yield Finding(
                "drc.dangling-net", Severity.WARNING,
                f"net {net.name!r} is driven by "
                f"{net.drivers[0][0]}.{net.drivers[0][1]} but has no "
                f"sinks", _loc(design, net.name),
            )


@rule("drc.width-mismatch", Severity.ERROR, KIND_DESIGN,
      "port width differs from the width of its net")
def width_mismatch(design: Design,
                   config: CheckConfig) -> Iterator[Finding]:
    for net in design.nets.values():
        for cell_name, port_name in (*net.drivers, *net.sinks):
            port = design.cells[cell_name].port(port_name)
            if port.width != net.width:
                yield Finding(
                    "drc.width-mismatch", Severity.ERROR,
                    f"port {cell_name}.{port_name} is {port.width} "
                    f"bits but net {net.name!r} is {net.width} bits",
                    _loc(design, f"{cell_name}.{port_name}"),
                )


@rule("drc.unconnected-port", Severity.ERROR, KIND_DESIGN,
      "declared cell port is not attached to any net")
def unconnected_port(design: Design,
                     config: CheckConfig) -> Iterator[Finding]:
    for cell in design.cells.values():
        used = design.connected_ports(cell.name)
        for port_name in cell.ports:
            if port_name not in used:
                yield Finding(
                    "drc.unconnected-port", Severity.ERROR,
                    f"port {cell.name}.{port_name} is declared but "
                    f"unconnected", _loc(design,
                                         f"{cell.name}.{port_name}"),
                )


@rule("drc.comb-loop", Severity.ERROR, KIND_DESIGN,
      "combinational feedback loop (through COMB/async-ROM cells)")
def comb_loop(design: Design,
              config: CheckConfig) -> Iterator[Finding]:
    for cycle in design.combinational_cycles():
        path = " -> ".join(cycle + [cycle[0]])
        yield Finding(
            "drc.comb-loop", Severity.ERROR,
            f"combinational loop: {path}",
            _loc(design, cycle[0]),
        )


@rule("drc.sbox-bank-shape", Severity.ERROR, KIND_DESIGN,
      "every substitution bank must hold exactly 4 256x8 ROMs")
def sbox_bank_shape(design: Design,
                    config: CheckConfig) -> Iterator[Finding]:
    groups = {c.group for c in design.cells_of_kind(CellKind.ROM)}
    for group in sorted(groups):
        roms = [c for c in design.cells_in_group(group)
                if c.kind is CellKind.ROM]
        if len(roms) != BANK_ROMS:
            yield Finding(
                "drc.sbox-bank-shape", Severity.ERROR,
                f"substitution bank {group!r} has {len(roms)} ROMs; "
                f"the paper's unit uses exactly {BANK_ROMS}",
                _loc(design, group),
            )
        for rom_cell in roms:
            widths = {p.name: p.width for p in rom_cell.ports.values()}
            if widths.get("addr") != ROM_WIDTH or \
                    widths.get("data") != ROM_WIDTH:
                yield Finding(
                    "drc.sbox-bank-shape", Severity.ERROR,
                    f"ROM {rom_cell.name} is not a "
                    f"{ROM_WORDS}x{ROM_WIDTH} S-box "
                    f"(addr={widths.get('addr')}, "
                    f"data={widths.get('data')})",
                    _loc(design, rom_cell.name),
                )


@rule("drc.pin-budget", Severity.ERROR, KIND_DESIGN,
      "device pins must match the paper's Table 1 budget")
def pin_budget(design: Design,
               config: CheckConfig) -> Iterator[Finding]:
    pins = [c for c in design.cells.values()
            if c.kind in (CellKind.PIN_IN, CellKind.PIN_OUT)]
    if not pins:
        return  # not a top-level design; nothing to check
    is_both = any(c.name == "pin_enc_dec" for c in pins)
    variant = Variant.BOTH if is_both else Variant.ENCRYPT
    total = sum(p.width for c in pins for p in c.ports.values())
    expected = pin_count(variant)
    if total != expected:
        yield Finding(
            "drc.pin-budget", Severity.ERROR,
            f"device has {total} pins; Table 1 specifies {expected}",
            _loc(design, "pins"),
        )
    control = [c for c in pins if c.kind is CellKind.PIN_IN
               and all(p.width == 1 for p in c.ports.values())]
    expected_control = CONTROL_PINS + (1 if is_both else 0)
    if len(control) != expected_control:
        names = ", ".join(sorted(c.name for c in control))
        yield Finding(
            "drc.pin-budget", Severity.ERROR,
            f"device has {len(control)} single-bit control pins "
            f"({names}); Table 1 specifies {expected_control}",
            _loc(design, "pins"),
        )


@rule("drc.input-pin-driven", Severity.ERROR, KIND_DESIGN,
      "an input pin must never be driven from inside the device")
def input_pin_driven(design: Design,
                     config: CheckConfig) -> Iterator[Finding]:
    for cell in design.cells_of_kind(CellKind.PIN_OUT):
        for port in cell.ports.values():
            if port.direction is PortDir.OUT:
                yield Finding(
                    "drc.input-pin-driven", Severity.ERROR,
                    f"output pad {cell.name} declares a driving port "
                    f"{port.name!r}",
                    _loc(design, f"{cell.name}.{port.name}"),
                )


# ------------------------------------------------- structural inventories
@rule("struct.sbox-inventory", Severity.ERROR, KIND_NETLIST,
      "area-model S-box ROMs must match the architecture spec")
def sbox_inventory(subject: NetlistSubject,
                   config: CheckConfig) -> Iterator[Finding]:
    spec, netlist = subject.spec, subject.netlist
    loc = Location(file=f"netlist:{netlist.name}")
    data = kstran = 0
    for group_name, rom in netlist.rom_blocks():
        if not group_name.startswith("sbox"):
            continue
        if (rom.words, rom.width) != (ROM_WORDS, ROM_WIDTH):
            yield Finding(
                "struct.sbox-inventory", Severity.ERROR,
                f"group {group_name!r} holds a {rom.words}x{rom.width} "
                f"ROM; S-boxes are {ROM_WORDS}x{ROM_WIDTH}",
                Location(file=loc.file, obj=group_name),
            )
        if "kstran" in group_name:
            kstran += rom.count
        else:
            data += rom.count
    if data != spec.data_sbox_count:
        yield Finding(
            "struct.sbox-inventory", Severity.ERROR,
            f"netlist carries {data} data S-boxes; spec "
            f"{spec.name!r} requires {spec.data_sbox_count}",
            Location(file=loc.file, obj="sbox_data"),
        )
    expected_kstran = (spec.kstran_sbox_count
                       if spec.key_schedule == "on_the_fly" else 0)
    if kstran != expected_kstran:
        yield Finding(
            "struct.sbox-inventory", Severity.ERROR,
            f"netlist carries {kstran} KStran S-boxes; spec "
            f"{spec.name!r} requires {expected_kstran}",
            Location(file=loc.file, obj="sbox_kstran"),
        )


@rule("struct.paper-invariants", Severity.ERROR, KIND_NETLIST,
      "the shipped design points must keep the paper's Table 2 shape")
def paper_invariants(subject: NetlistSubject,
                     config: CheckConfig) -> Iterator[Finding]:
    spec, netlist = subject.spec, subject.netlist
    if spec.sub_width != 32 or spec.key_schedule != "on_the_fly":
        return  # a sweep point, not a paper device
    loc_file = f"netlist:{netlist.name}"
    directions = 2 if spec.variant is Variant.BOTH else 1
    per_direction: dict = {}
    for group, rom in netlist.rom_blocks():
        if group.startswith("sbox"):
            per_direction[group] = per_direction.get(group, 0) + rom.count
    for group, count in sorted(per_direction.items()):
        if count != BANK_ROMS:
            yield Finding(
                "struct.paper-invariants", Severity.ERROR,
                f"bank {group!r} holds {count} S-boxes; the paper's "
                f"unit holds exactly {BANK_ROMS} per direction",
                Location(file=loc_file, obj=group),
            )
    expected_banks = 2 * directions  # data + kstran, per direction
    if len(per_direction) != expected_banks:
        yield Finding(
            "struct.paper-invariants", Severity.ERROR,
            f"device has {len(per_direction)} S-box banks; the "
            f"{spec.variant.value} device needs {expected_banks}",
            Location(file=loc_file, obj="sbox"),
        )
    expected_pins = pin_count(spec.variant)
    if netlist.total_pins != expected_pins:
        yield Finding(
            "struct.paper-invariants", Severity.ERROR,
            f"device has {netlist.total_pins} pins; Table 2 lists "
            f"{expected_pins} for the {spec.variant.value} device",
            Location(file=loc_file, obj="pins"),
        )
