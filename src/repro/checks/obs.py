"""Observability rules: observed counters vs. the declared model.

The FSM family (:mod:`repro.checks.fsm`) proves the paper's cycle
accounting *structurally*; this family closes the loop by running the
actual simulator with hardware counters enabled
(:mod:`repro.obs.hwcounters`) and failing the lint gate when the
*observed* totals diverge from what :func:`repro.checks.fsm.core_fsm`
and :func:`repro.obs.hwcounters.expected_counters` declare.  A bug
that skews the datapath sequencing without breaking a functional test
— an extra wait state, a dropped key-schedule word — shows up here as
``obs.counter-divergence`` before it can silently invalidate the
paper's Table 2 numbers.

Rules:

- ``obs.counter-divergence`` — an instrumented run of each device
  flavour must report exactly the modelled block latency, rounds per
  block, sub-events per round, key-schedule words and setup-pass
  cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.checks.engine import (
    KIND_OBS,
    CheckConfig,
    Finding,
    Location,
    Severity,
    rule,
)
from repro.checks.fsm import core_fsm
from repro.ip.control import Variant
from repro.obs.hwcounters import HwCounters, expected_counters

#: Fixed stimulus so every lint run observes the identical workload.
_KEY = bytes(range(16))
_BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


@dataclass(frozen=True)
class ObsSubject:
    """One device flavour to observe under counters."""

    variant: Variant
    sync_rom: bool = False
    #: Blocks driven through the core (BOTH runs one per direction).
    blocks: int = 2

    @property
    def name(self) -> str:
        suffix = "_sync" if self.sync_rom else ""
        return f"core_{self.variant.value}{suffix}"


def paper_obs_subjects() -> List[ObsSubject]:
    """The observed-run subjects of every shipped device flavour."""
    return [
        ObsSubject(variant, sync_rom)
        for variant in Variant
        for sync_rom in (False, True)
    ]


def observe_run(subject: ObsSubject) -> Tuple[HwCounters, int]:
    """Drive the subject's workload; return (counters, setup latency).

    Runs ``subject.blocks`` blocks after one key load.  The BOTH
    device splits the blocks across both directions so the reverse
    datapath is observed too.
    """
    from repro.ip.testbench import Testbench

    bench = Testbench(variant=subject.variant,
                      sync_rom=subject.sync_rom)
    setup_latency = bench.load_key(_KEY)
    for index in range(subject.blocks):
        if subject.variant is Variant.BOTH:
            encrypting = index % 2 == 0
        else:
            encrypting = subject.variant.can_encrypt
        if encrypting:
            bench.encrypt(_BLOCK)
        else:
            bench.decrypt(_BLOCK)
    return bench.core.counters, setup_latency


def _loc(subject: ObsSubject, obj: str) -> Location:
    return Location(file=f"obs:{subject.name}", obj=obj)


@rule("obs.counter-divergence", Severity.ERROR, KIND_OBS,
      "observed hardware counters must match the FSM model")
def counter_divergence(subject: ObsSubject,
                       config: CheckConfig) -> Iterator[Finding]:
    """Compare one observed run against the declared architecture."""
    model = core_fsm(subject.variant, subject.sync_rom)
    counters, _setup_latency = observe_run(subject)
    expected = expected_counters(subject.variant, subject.sync_rom,
                                 subject.blocks)

    # Aggregate totals straight from the architecture declaration.
    for key in ("blocks", "rounds", "bytesub_cycles", "mix_cycles",
                "rom_issue_cycles", "run_cycles", "setup_cycles",
                "setup_passes", "key_words"):
        observed = getattr(counters, key)
        if observed != expected[key]:
            yield Finding(
                "obs.counter-divergence", Severity.ERROR,
                f"counter {key!r} observed {observed}, model expects "
                f"{expected[key]}", _loc(subject, key),
            )

    # Per-block evidence against the FSM model's declared latencies.
    for index, record in enumerate(counters.block_records):
        tag = f"block[{index}]"
        if (model.expected_block_cycles is not None
                and record.cycles != model.expected_block_cycles):
            yield Finding(
                "obs.counter-divergence", Severity.ERROR,
                f"{tag} ({record.direction}) took {record.cycles} "
                f"cycles, fsm model declares "
                f"{model.expected_block_cycles}", _loc(subject, tag),
            )
        if record.rounds != model.rounds_per_block:
            yield Finding(
                "obs.counter-divergence", Severity.ERROR,
                f"{tag} ({record.direction}) ran {record.rounds} "
                f"rounds, fsm model declares "
                f"{model.rounds_per_block}", _loc(subject, tag),
            )
        per_round = model.expected_round_cycles
        if per_round is not None and any(
                events != per_round
                for events in record.events_per_round):
            yield Finding(
                "obs.counter-divergence", Severity.ERROR,
                f"{tag} ({record.direction}) sub-events per round "
                f"{list(record.events_per_round)} != modelled "
                f"{per_round} per round", _loc(subject, tag),
            )

    # The bus protocol must have been clean for a conforming run.
    if counters.protocol_errors:
        yield Finding(
            "obs.counter-divergence", Severity.ERROR,
            f"observed {counters.protocol_errors} bus protocol "
            f"error(s) during a conforming workload",
            _loc(subject, "protocol"),
        )
