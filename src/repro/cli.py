"""Command-line interface: ``repro-aes <command>``.

Exposes the reproduction's main flows without writing Python:

.. code-block:: text

    repro-aes tables 2              # regenerate the paper's Table 2
    repro-aes figure 5              # print the S-box figure
    repro-aes encrypt --key 00..0f --data 00..ff
    repro-aes fit --variant both --device Cyclone
    repro-aes sweep --device Acex1K
    repro-aes seu --injections 40 --hardened
    repro-aes power --blocks 8 --family Cyclone
    repro-aes hdl --variant encrypt --outdir build/
    repro-aes vcd --blocks 1 --out wave.vcd
    repro-aes lint --strict --format sarif
    repro-aes sta --variant both --device Acex1K
    repro-aes bench --quick --out BENCH_software_throughput.json
    repro-aes stats --blocks 4 --format prom
    repro-aes serve --port 9999 --metrics-out serve-metrics.json
    repro-aes loadgen --port 9999 --clients 8 --requests 32
    repro-aes --trace trace.json bench --quick

``--trace FILE`` works with every subcommand: it records spans across
the whole run and writes Chrome-trace JSON on exit.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.ip.control import Variant


def _hex_bytes(text: str, length: int, what: str) -> bytes:
    try:
        data = bytes.fromhex(text)
    except ValueError as exc:
        raise SystemExit(f"error: {what} is not valid hex: {exc}")
    if len(data) != length:
        raise SystemExit(
            f"error: {what} must be {length} bytes "
            f"({2 * length} hex digits), got {len(data)}"
        )
    return data


def _variant(name: str) -> Variant:
    try:
        return Variant(name)
    except ValueError:
        raise SystemExit(
            f"error: unknown variant {name!r}; "
            f"choose from encrypt/decrypt/both"
        )


# ---------------------------------------------------------------- commands
def cmd_tables(args: argparse.Namespace) -> int:
    from repro.analysis.tables import table1_text, table2_text, \
        table3_text

    which = args.number
    if which in (None, 1):
        print(table1_text())
    if which in (None, 2):
        print(table2_text())
    if which in (None, 3):
        print(table3_text())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    from repro.analysis.figures import ALL_FIGURES

    key = f"fig{args.number}"
    if key not in ALL_FIGURES:
        raise SystemExit(f"error: figures are 1..9, got {args.number}")
    print(ALL_FIGURES[key]())
    return 0


def cmd_encrypt(args: argparse.Namespace) -> int:
    try:
        key = bytes.fromhex(args.key)
    except ValueError as exc:
        raise SystemExit(f"error: --key is not valid hex: {exc}")
    if len(key) not in (16, 24, 32):
        raise SystemExit("error: --key must be 16, 24 or 32 bytes")
    data = _hex_bytes(args.data, 16, "--data")

    if len(key) == 16:
        from repro.ip.testbench import Testbench

        variant = Variant.DECRYPT if args.decrypt else Variant.ENCRYPT
        bench = Testbench(variant)
        setup = bench.load_key(key)
        if args.decrypt:
            result, latency = bench.decrypt(data)
        else:
            result, latency = bench.encrypt(data)
        core = "on-the-fly AES-128 core"
    else:
        # Wider keys run on the precomputed-schedule core (the
        # on-the-fly reverse walk is AES-128-only).
        from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
        from repro.ip.precomputed import PrecomputedTestbench

        bench = PrecomputedTestbench(len(key) * 8)
        setup = bench.load_key(key)
        direction = DIR_DECRYPT if args.decrypt else DIR_ENCRYPT
        result, latency = bench.process_block(data, direction)
        core = f"precomputed-schedule AES-{len(key) * 8} core"
    print(f"device   : {core}")
    print(f"key setup: {setup} cycle(s)")
    print(f"result   : {result.hex()}")
    print(f"latency  : {latency} cycles")
    return 0


def cmd_fit(args: argparse.Namespace) -> int:
    from repro.arch.spec import paper_spec
    from repro.fpga.synthesis import compile_spec

    spec = paper_spec(_variant(args.variant), sync_rom=args.sync_rom)
    report = compile_spec(spec, args.device, strict=False)
    print(report.render())
    if not report.fits:
        print("  WARNING: design does not fit this device")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.arch.explorer import explore_widths, knee_design, \
        sweep_report

    reports = explore_widths(args.device, _variant(args.variant))
    print(sweep_report(reports))
    knee = knee_design(reports)
    print(f"\nefficiency knee (fitting designs): {knee.spec.name}")
    return 0


def cmd_seu(args: argparse.Namespace) -> int:
    from repro.analysis.seu import run_campaign

    result = run_campaign(args.injections, seed=args.seed,
                          hardened=args.hardened)
    print(result.render())
    return 0


def cmd_power(args: argparse.Namespace) -> int:
    import random

    from repro.analysis.power import measure_power

    rng = random.Random(args.seed)
    blocks = [bytes(rng.randrange(256) for _ in range(16))
              for _ in range(args.blocks)]
    key = bytes(rng.randrange(256) for _ in range(16))
    report = measure_power(blocks, key, family=args.family)
    print(report.render())
    return 0


def cmd_hdl(args: argparse.Namespace) -> int:
    from repro.hdl import generate_core_vhdl, lint_vhdl

    files = generate_core_vhdl(_variant(args.variant))
    outdir = Path(args.outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    for name, text in sorted(files.items()):
        if name.endswith(".vhd"):
            lint_vhdl(text, name)  # refuse to emit broken HDL
        (outdir / name).write_text(text)
        print(f"wrote {outdir / name} ({len(text)} bytes)")
    return 0


def cmd_selftest(args: argparse.Namespace) -> int:
    from repro.aes.selftest import run_self_test

    report = run_self_test(include_hardware=not args.fast)
    print(report.render())
    return 0 if report.passed else 1


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report_gen import generate_report

    text = generate_report(seu_injections=args.injections)
    if args.out:
        Path(args.out).write_text(text)
        print(f"wrote {args.out} ({len(text)} bytes)")
    else:
        print(text)
    return 0


def _changed_sources(root: Path, base: str) -> Optional[List[Path]]:
    """Lintable .py files changed vs ``base``, plus untracked ones.

    Returns None when git fails (not a repo, unknown ref) — the
    caller reports and exits non-zero.  Only files under the default
    per-file lint trees count: ``--changed`` narrows the usual scan,
    it never widens it.
    """
    import subprocess

    from repro.checks.runner import DEFAULT_SOURCE_DIRS

    names: List[str] = []
    for argv in (
        ["git", "diff", "--name-only", base, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        proc = subprocess.run(
            argv, cwd=root, capture_output=True, text=True,
        )
        if proc.returncode != 0:
            print(f"error: {' '.join(argv)} failed: "
                  f"{proc.stderr.strip()}", file=sys.stderr)
            return None
        names.extend(proc.stdout.splitlines())
    scoped: List[Path] = []
    for name in sorted(set(names)):
        if not name.endswith(".py"):
            continue
        if not any(name.startswith(d + "/")
                   for d in DEFAULT_SOURCE_DIRS):
            continue
        path = root / name
        if path.is_file():
            scoped.append(path)
    return scoped


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.checks.baseline import Baseline, BaselineError
    from repro.checks.engine import CheckConfig, Severity
    from repro.checks.reporters import render_json, render_rule_table, \
        render_sarif, render_text
    from repro.checks.runner import find_repo_root, run_lint

    if args.list_rules:
        print(render_rule_table())
        return 0

    config = CheckConfig(
        enable=tuple(args.enable) if args.enable else ("*",),
        disable=tuple(args.disable or ()),
    )
    import fnmatch

    from repro.checks.engine import registry
    rule_ids = list(registry())
    for pattern in (*(args.enable or ()), *(args.disable or ())):
        if not any(fnmatch.fnmatch(r, pattern) for r in rule_ids):
            print(f"warning: pattern {pattern!r} matches no rules "
                  f"(see --list-rules)", file=sys.stderr)
    root = find_repo_root(Path(args.root) if args.root else None)
    baseline_path = Path(args.baseline) if args.baseline else None
    source_paths = (
        [Path(p) for p in args.paths] if args.paths else None
    )
    full_flow = False
    if args.changed is not None:
        if source_paths:
            print("error: --changed and explicit paths are "
                  "mutually exclusive", file=sys.stderr)
            return 2
        changed = _changed_sources(root, args.changed)
        if changed is None:
            return 2
        if not changed:
            print("no changed lintable sources "
                  f"vs {args.changed}; nothing to do")
            return 0
        source_paths = changed
        # The whole-program packs stay whole-program: a call chain or
        # a protocol invariant does not stop at the diff boundary.
        full_flow = True
    try:
        result = run_lint(root=root, config=config,
                          baseline_path=baseline_path,
                          source_paths=source_paths,
                          full_flow=full_flow)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = baseline_path or root / "lint-baseline.json"
        Baseline.from_findings(
            result.findings + result.suppressed
        ).save(target)
        print(f"wrote {target}: "
              f"{len(result.findings) + len(result.suppressed)} "
              f"suppression(s)")
        stale = len(result.stale_fingerprints)
        if stale:
            print(f"{stale} stale entr"
                  f"{'y' if stale == 1 else 'ies'} removed")
        return 0

    out_format = "json" if args.json else args.format
    if out_format == "json":
        print(render_json(result.findings, result.suppressed,
                          result.stale_fingerprints))
    elif out_format == "sarif":
        print(render_sarif(result.findings))
    else:
        print(render_text(result.findings, result.suppressed,
                          result.stale_fingerprints,
                          verbose=args.verbose))
    if args.strict and (result.findings or result.stale_fingerprints):
        # Stale suppressions are a strict-mode failure, not a warning:
        # a baseline entry that no longer matches anything means the
        # tree moved and the sanction with it.  CI fails; a local run
        # prunes with --write-baseline.
        if not result.findings and result.stale_fingerprints:
            print("error: stale baseline entries under --strict; "
                  "prune with --write-baseline", file=sys.stderr)
        return 1
    worst = result.worst
    return 1 if worst is Severity.ERROR else 0


def cmd_sta(args: argparse.Namespace) -> int:
    from repro.checks.sta import analyze_design, paper_sta_subjects

    subjects = paper_sta_subjects()
    if args.variant:
        variant = _variant(args.variant)
        subjects = [s for s in subjects
                    if s.spec.variant is variant]
    if args.device:
        want = args.device.lower()
        subjects = [
            s for s in subjects
            if want in (s.device.family.lower(), s.device.name.lower())
        ]
    if not subjects:
        raise SystemExit("error: no design/device matches the filter")
    failed = False
    for subject in subjects:
        report = analyze_design(subject)
        print(report.render())
        print()
        if report.cycles or report.slack_ns < 0:
            failed = True
    return 1 if failed else 0


def cmd_proto(args: argparse.Namespace) -> int:
    from repro.checks.proto import run_proto
    from repro.checks.runner import find_repo_root

    root = find_repo_root(Path(args.root) if args.root else None)
    report = run_proto(str(root))
    print(report.render())
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import render_report, run_bench, \
        write_report
    from repro.perf.engine import BackendMismatch

    try:
        report = run_bench(
            quick=args.quick,
            sizes=args.size or None,
            reps=args.reps,
            backend_names=args.backend or None,
            workers=args.workers,
            serve=not args.no_serve,
            ghash=not args.no_ghash,
            ghash_names=args.ghash or None,
            cluster=not args.no_cluster,
        )
    except BackendMismatch as exc:
        # The equivalence gate failed: a backend produced bytes the
        # straightforward model disagrees with.  No numbers are
        # written — a fast wrong answer is not a benchmark.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    out = write_report(report, Path(args.out))
    print(render_report(report))
    print(f"\nwrote {out}")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from repro.obs.report import collect_stats

    try:
        report = collect_stats(
            variant=args.variant,
            blocks=args.blocks,
            sync_rom=args.sync_rom,
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(report.render(args.format), end="")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.server import CryptoServer, ServeConfig

    config = ServeConfig(
        host=args.host,
        port=args.port,
        queue_depth=args.queue_depth,
        workers=args.workers,
        request_timeout=args.request_timeout,
        admin_port=args.admin_port,
        slo_threshold_s=args.slo_threshold,
    )

    async def _serve() -> None:
        import signal

        server = CryptoServer(config)
        await server.start()
        host, port = server.address
        print(f"serving on {host}:{port}", flush=True)
        if config.admin_port is not None:
            admin_host, admin_port = server.admin_address
            print(f"admin on {admin_host}:{admin_port}", flush=True)
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except NotImplementedError:  # pragma: no cover - win32
                pass
        waiters = [
            asyncio.ensure_future(stop_requested.wait()),
            asyncio.ensure_future(server.wait_stopped()),
        ]
        if args.serve_seconds is not None:
            waiters.append(
                asyncio.ensure_future(
                    asyncio.sleep(args.serve_seconds)
                )
            )
        _, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass

    from repro.obs.metrics import global_registry

    registry = global_registry()
    requests = registry.get("repro_serve_requests_total")
    served = sum(child.value for child in requests.children()) \
        if requests is not None else 0
    print(f"served {int(served)} request(s); shut down cleanly")
    if args.metrics_out:
        snapshot = (
            registry.render_prometheus()
            if args.metrics_format == "prom"
            else registry.render_json()
        )
        Path(args.metrics_out).write_text(snapshot)
        print(f"wrote {args.metrics_out} ({len(snapshot)} bytes)")
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.cluster import Cluster, ClusterConfig

    config = ClusterConfig(
        host=args.host,
        workers=args.workers,
        gateway_port=args.gateway_port,
        admin_port=args.admin_port,
        shared_port=args.shared_port,
        queue_depth=args.queue_depth,
        worker_tasks=args.worker_tasks,
        request_timeout=args.request_timeout,
        shed_inflight=args.shed_inflight,
        slo_threshold_s=args.slo_threshold,
    )

    async def _cluster() -> None:
        import signal

        cluster = Cluster(config)
        await cluster.start()
        host, port = cluster.address
        if cluster.gateway is not None:
            print(f"gateway on {host}:{port}", flush=True)
            if config.admin_port is not None:
                admin_host, admin_port = \
                    cluster.gateway.admin_address
                print(f"admin on {admin_host}:{admin_port}",
                      flush=True)
        else:
            print(f"cluster on {host}:{port} (shared socket)",
                  flush=True)
        for handle in cluster.supervisor.handles():
            print(f"worker {handle.index} on "
                  f"{handle.host}:{handle.port} "
                  f"(admin {handle.host}:{handle.admin_port})",
                  flush=True)
        loop = asyncio.get_running_loop()
        stop_requested = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_requested.set)
            except NotImplementedError:  # pragma: no cover - win32
                pass
        waiters = [
            asyncio.ensure_future(stop_requested.wait()),
            asyncio.ensure_future(cluster.wait_stopped()),
        ]
        if args.serve_seconds is not None:
            waiters.append(
                asyncio.ensure_future(
                    asyncio.sleep(args.serve_seconds)
                )
            )
        _, pending = await asyncio.wait(
            waiters, return_when=asyncio.FIRST_COMPLETED
        )
        for task in pending:
            task.cancel()
        await cluster.stop()

    try:
        asyncio.run(_cluster())
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass

    from repro.obs.metrics import global_registry

    registry = global_registry()
    routed = registry.get("repro_gateway_requests_total")
    total = sum(child.value for child in routed.children()) \
        if routed is not None else 0
    print(f"routed {int(total)} frame(s); cluster shut down cleanly")
    if args.metrics_out:
        snapshot = (
            registry.render_prometheus()
            if args.metrics_format == "prom"
            else registry.render_json()
        )
        Path(args.metrics_out).write_text(snapshot)
        print(f"wrote {args.metrics_out} ({len(snapshot)} bytes)")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio
    import secrets

    from repro.serve.client import run_load, run_session_load
    from repro.serve.protocol import Mode

    mode = {"ecb": Mode.ECB, "ctr": Mode.CTR,
            "gcm": Mode.GCM}[args.mode]
    if args.key:
        loadgen_key = _hex_bytes(args.key, 16, "--key")
    else:
        loadgen_key = secrets.token_bytes(16)
    try:
        # The shutdown frame is sent only after the admin scrape: the
        # admin plane (and its quantile windows) dies with the server.
        if args.sessions is not None:
            # Cluster closed loop: M keyed sessions, each pinning a
            # session id so the gateway shards them across workers.
            report = asyncio.run(run_session_load(
                args.host, args.port, loadgen_key,
                sessions=args.sessions,
                requests=args.requests,
                mode=mode,
                payload_bytes=args.size,
                seed=args.seed,
            ))
        else:
            report = asyncio.run(run_load(
                args.host, args.port, loadgen_key,
                clients=args.clients,
                requests=args.requests,
                mode=mode,
                payload_bytes=args.size,
                seed=args.seed,
                shutdown=False,
            ))
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"error: cannot reach {args.host}:{args.port}: {exc}"
        )
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")
    print(report.render())
    if args.admin_port is not None:
        _loadgen_admin_scrape(args.host, args.admin_port)
    if args.shutdown:
        asyncio.run(_send_shutdown_frame(args.host, args.port))
    if not report.requests:
        # Connection-level failures are per-client inside run_load;
        # zero OK responses means the service was unreachable or
        # rejected every request — say so loudly.
        raise SystemExit(
            f"error: no requests succeeded against "
            f"{args.host}:{args.port}"
        )
    return 0 if not report.errors else 1


async def _send_shutdown_frame(host: str, port: int) -> None:
    """One best-effort SHUTDOWN frame (drains the server cleanly)."""
    import asyncio

    from repro.serve.client import CryptoClient, RequestFailed, \
        RetryPolicy

    closer = CryptoClient(host, port, retry=RetryPolicy(attempts=1))
    try:
        await closer.shutdown()
    except (RequestFailed, ConnectionError, asyncio.TimeoutError):
        pass
    finally:
        await closer.close()


def _loadgen_admin_scrape(host: str, admin_port: int) -> None:
    """Print the server-observed latency view next to the client's,
    and merge the server's trace events when tracing is on."""
    import json
    from urllib.error import URLError
    from urllib.request import urlopen

    base = f"http://{host}:{admin_port}"
    try:
        with urlopen(f"{base}/quantiles", timeout=5.0) as response:
            quantiles = json.loads(response.read())
    except (URLError, OSError, ValueError) as exc:
        print(f"  admin     : scrape of {base}/quantiles failed: "
              f"{exc}")
        return
    requests_window = quantiles.get("request_seconds", {})
    samples = requests_window.get("samples", [])
    # The busiest (op, mode) series is the loadgen's own traffic.
    busiest = max(samples, key=lambda s: s.get("count", 0),
                  default=None)
    if busiest and busiest.get("count"):
        labels = ",".join(
            f"{k}={v}" for k, v in sorted(
                busiest.get("labels", {}).items())
        )
        parts = []
        for key in ("p50_s", "p95_s", "p99_s", "max_s"):
            value = busiest.get(key)
            if value is not None:
                parts.append(f"{key[:-2]}={value * 1000:.2f}ms")
        print(f"  server    : {', '.join(parts)} "
              f"({labels}, server-observed, "
              f"{busiest['count']} in window)")
    waits = quantiles.get("queue_wait_seconds", {}).get("samples", [])
    if waits and waits[0].get("max_s") is not None:
        print(f"  queue wait: max={waits[0]['max_s'] * 1000:.2f}ms "
              f"(server-observed)")
    from repro.obs.tracing import active_tracer

    tracer = active_tracer()
    if tracer is None:
        return
    try:
        with urlopen(f"{base}/trace", timeout=5.0) as response:
            body = json.loads(response.read())
    except (URLError, OSError, ValueError) as exc:
        print(f"  admin     : scrape of {base}/trace failed: {exc}")
        return
    if body.get("enabled") and body.get("events"):
        tracer.add_events(body["events"],
                          epoch_unix=body.get("epoch_unix"))
        print(f"  trace     : merged {len(body['events'])} server "
              f"event(s) onto the client timeline")


def cmd_vcd(args: argparse.Namespace) -> int:
    import random

    from repro.ip.testbench import Testbench
    from repro.rtl.trace import Trace
    from repro.rtl.vcd import trace_to_vcd

    rng = random.Random(args.seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    bench = Testbench(Variant.ENCRYPT)
    signals = [bench.core.data_ok, *bench.core.state, *bench.core.out,
               bench.core.top, bench.core.round, bench.core.step]
    trace = Trace(bench.simulator, signals)
    bench.load_key(key)
    for _ in range(args.blocks):
        bench.encrypt(bytes(rng.randrange(256) for _ in range(16)))
    text = trace_to_vcd(trace, clock_ns=14)  # the Acex1K clock
    Path(args.out).write_text(text)
    print(f"wrote {args.out}: {bench.simulator.cycle} cycles, "
          f"{len(signals)} signals")
    return 0


# ------------------------------------------------------------------ parser
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-aes",
        description="Reproduction of the DATE 2003 low-area Rijndael "
                    "IP paper.",
    )
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record spans across the whole command and write "
             "Chrome-trace JSON to FILE (load in chrome://tracing)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("tables", help="regenerate paper tables")
    p.add_argument("number", nargs="?", type=int, default=None,
                   choices=(1, 2, 3))
    p.set_defaults(fn=cmd_tables)

    p = sub.add_parser("figure", help="regenerate one paper figure")
    p.add_argument("number", type=int)
    p.set_defaults(fn=cmd_figure)

    p = sub.add_parser("encrypt",
                       help="run a block through the cycle-accurate IP")
    p.add_argument("--key", required=True, help="16-byte key, hex")
    p.add_argument("--data", required=True, help="16-byte block, hex")
    p.add_argument("--decrypt", action="store_true")
    p.set_defaults(fn=cmd_encrypt)

    p = sub.add_parser("fit", help="synthesis estimate for one design")
    p.add_argument("--variant", default="encrypt")
    p.add_argument("--device", default="Acex1K")
    p.add_argument("--sync-rom", action="store_true")
    p.set_defaults(fn=cmd_fit)

    p = sub.add_parser("sweep", help="datapath width design sweep")
    p.add_argument("--device", default="Acex1K")
    p.add_argument("--variant", default="encrypt")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("seu", help="fault injection campaign")
    p.add_argument("--injections", type=int, default=40)
    p.add_argument("--seed", type=int, default=2003)
    p.add_argument("--hardened", action="store_true")
    p.set_defaults(fn=cmd_seu)

    p = sub.add_parser("power", help="toggle-based power estimate")
    p.add_argument("--blocks", type=int, default=4)
    p.add_argument("--family", default="Acex1K")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_power)

    p = sub.add_parser("hdl", help="emit the VHDL soft-IP deliverable")
    p.add_argument("--variant", default="both")
    p.add_argument("--outdir", default="hdl_out")
    p.set_defaults(fn=cmd_hdl)

    p = sub.add_parser("selftest",
                       help="power-on self test (known answers)")
    p.add_argument("--fast", action="store_true",
                   help="skip the cycle-accurate hardware check")
    p.set_defaults(fn=cmd_selftest)

    p = sub.add_parser("report",
                       help="re-measure everything; emit a markdown "
                            "reproduction report")
    p.add_argument("--out", default=None)
    p.add_argument("--injections", type=int, default=30)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser(
        "lint",
        help="static analysis: netlist DRC, FSM checks, constant-time "
             "lint, VHDL structure",
    )
    p.add_argument("--json", action="store_true",
                   help="machine-readable output "
                        "(alias for --format json)")
    p.add_argument("--format", default="text",
                   choices=("text", "json", "sarif"),
                   help="output format (sarif suits CI code-scanning "
                        "upload)")
    p.add_argument("--verbose", action="store_true",
                   help="also list baseline-suppressed findings")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule table and exit")
    p.add_argument("--enable", action="append", metavar="PATTERN",
                   help="only run rules matching PATTERN (repeatable)")
    p.add_argument("--disable", action="append", metavar="PATTERN",
                   help="skip rules matching PATTERN (repeatable)")
    p.add_argument("--baseline", default=None,
                   help="baseline file (default: lint-baseline.json "
                        "at the repo root, if present)")
    p.add_argument("--write-baseline", action="store_true",
                   help="record current findings as the new baseline")
    p.add_argument("--strict", action="store_true",
                   help="exit non-zero on warnings too")
    p.add_argument("--changed", nargs="?", const="HEAD",
                   default=None, metavar="BASE",
                   help="lint only files changed vs BASE (default "
                        "HEAD) plus untracked ones; the "
                        "whole-program flow/proto packs still "
                        "analyze the full package")
    p.add_argument("--root", default=None,
                   help="repository root (default: auto-detected)")
    p.add_argument("paths", nargs="*",
                   help="restrict the source lint to these files/dirs")
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "sta",
        help="graph static timing report for the paper design points",
    )
    p.add_argument("--variant", default=None,
                   help="restrict to one variant "
                        "(encrypt/decrypt/both)")
    p.add_argument("--device", default=None,
                   help="restrict to one device family or part number")
    p.set_defaults(fn=cmd_sta)

    p = sub.add_parser(
        "proto",
        help="wire-protocol model check: extract the serve-layer "
             "protocol and exhaustively explore the client x server "
             "product state space",
    )
    p.add_argument("--root", default=None,
                   help="repository root (default: auto-detected)")
    p.set_defaults(fn=cmd_proto)

    p = sub.add_parser(
        "bench",
        help="software throughput bench: backend x mode x size "
             "matrix with an equivalence gate; persists the "
             "trajectory JSON",
    )
    p.add_argument("--quick", action="store_true",
                   help="the CI smoke matrix: fewer sizes, one rep, "
                        "tighter baseline measurement cap")
    p.add_argument("--out", default="BENCH_software_throughput.json",
                   help="where to write the trajectory JSON")
    p.add_argument("--backend", action="append", metavar="NAME",
                   help="restrict to these backends (repeatable; "
                        "baseline always runs — it defines the "
                        "speedup denominator)")
    p.add_argument("--size", action="append", type=int,
                   metavar="BYTES",
                   help="override the pinned message sizes "
                        "(repeatable, multiples of 16)")
    p.add_argument("--reps", type=int, default=None,
                   help="timing repetitions per workload")
    p.add_argument("--workers", type=int, default=1,
                   help="shard count for the parallelizable modes")
    p.add_argument("--no-serve", action="store_true",
                   help="skip the loopback serve scenario (matrix "
                        "and equivalence gate only)")
    p.add_argument("--ghash", action="append", metavar="NAME",
                   help="restrict the GHASH section to these "
                        "providers (repeatable; bitwise always "
                        "runs — it defines the speedup denominator)")
    p.add_argument("--no-ghash", action="store_true",
                   help="skip the GHASH provider section")
    p.add_argument("--no-cluster", action="store_true",
                   help="skip the multi-process cluster scaling "
                        "scenario (no worker processes spawned)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "stats",
        help="run an instrumented workload; report hardware counters "
             "and metrics (text/prom/json/chrome-trace)",
    )
    p.add_argument("--blocks", type=int, default=1,
                   help="blocks to drive through the core")
    p.add_argument("--variant", default="encrypt",
                   choices=("encrypt", "decrypt", "both"),
                   help="device variant to observe")
    p.add_argument("--sync-rom", action="store_true",
                   help="observe the synchronous-ROM build "
                        "(6 cycles/round)")
    p.add_argument("--format", default="text",
                   choices=("text", "prom", "json", "chrome-trace"),
                   help="output format")
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "serve",
        help="run the asyncio crypto service (frame protocol in "
             "docs/serving.md); Ctrl-C or a SHUTDOWN frame drains "
             "and stops",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = OS-assigned; the chosen port "
                        "is printed on startup)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="bounded request queue: beyond this depth "
                        "requests are answered OVERLOADED")
    p.add_argument("--workers", type=int, default=4,
                   help="worker tasks (and crypto threads)")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   help="per-request execution budget in seconds")
    p.add_argument("--admin-port", type=int, default=None,
                   help="also bind the admin/scrape plane (/metrics, "
                        "/healthz, /readyz, /quantiles) on this port "
                        "(0 = OS-assigned, printed on startup)")
    p.add_argument("--slo-threshold", type=float, default=0.25,
                   help="request-seconds SLO for the windowed "
                        "burn-rate counters (default 0.25)")
    p.add_argument("--serve-seconds", type=float, default=None,
                   help="stop after this many seconds (CI smoke)")
    p.add_argument("--metrics-out", default=None,
                   help="write a metrics snapshot here on shutdown")
    p.add_argument("--metrics-format", default="json",
                   choices=("json", "prom"),
                   help="snapshot format for --metrics-out")
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "cluster",
        help="run N crypto-server worker processes behind a "
             "session-sharded gateway (or on one shared port); "
             "Ctrl-C or a SHUTDOWN frame drains and stops",
    )
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default loopback)")
    p.add_argument("--workers", type=int, default=2,
                   help="worker processes in the pool")
    p.add_argument("--gateway-port", type=int, default=0,
                   help="gateway TCP port (0 = OS-assigned, printed "
                        "on startup)")
    p.add_argument("--admin-port", type=int, default=None,
                   help="gateway admin/scrape plane (/metrics, "
                        "/readyz, /quantiles); 0 = OS-assigned")
    p.add_argument("--shared-port", type=int, default=None,
                   help="direct mode: all workers share this port "
                        "(SO_REUSEPORT or a pre-fork listener) and "
                        "no gateway runs (0 = OS-assigned)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="per-worker bounded request queue depth")
    p.add_argument("--worker-tasks", type=int, default=4,
                   help="asyncio worker tasks per worker process")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   help="per-request execution budget in seconds")
    p.add_argument("--shed-inflight", type=int, default=128,
                   help="gateway per-shard in-flight cap: beyond it "
                        "frames are answered OVERLOADED")
    p.add_argument("--slo-threshold", type=float, default=0.25,
                   help="routed-request SLO for the gateway's "
                        "windowed burn-rate counters")
    p.add_argument("--serve-seconds", type=float, default=None,
                   help="stop after this many seconds (CI smoke)")
    p.add_argument("--metrics-out", default=None,
                   help="write a gateway metrics snapshot here on "
                        "shutdown")
    p.add_argument("--metrics-format", default="json",
                   choices=("json", "prom"),
                   help="snapshot format for --metrics-out")
    p.set_defaults(fn=cmd_cluster)

    p = sub.add_parser(
        "loadgen",
        help="closed-loop load generator against a running serve "
             "instance; reports achieved requests/sec",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True,
                   help="port of the serve instance")
    p.add_argument("--clients", type=int, default=8,
                   help="concurrent client connections")
    p.add_argument("--sessions", type=int, default=None,
                   help="cluster closed loop: this many concurrent "
                        "keyed sessions, each pinning a session id "
                        "so a gateway shards them across workers "
                        "(replaces --clients; NO_KEY after a worker "
                        "restart is absorbed by re-loading the key)")
    p.add_argument("--requests", type=int, default=32,
                   help="requests per client")
    p.add_argument("--mode", default="ctr",
                   choices=("ecb", "ctr", "gcm"),
                   help="cipher mode of the generated traffic")
    p.add_argument("--size", type=int, default=1024,
                   help="payload bytes per request")
    p.add_argument("--key", default=None,
                   help="16-byte session key, hex (default: a fresh "
                        "random key from the secrets module)")
    p.add_argument("--seed", type=int, default=2003,
                   help="payload/backoff seed (payloads only; keys "
                        "never come from this)")
    p.add_argument("--admin-port", type=int, default=None,
                   help="admin-plane port of the serve instance: "
                        "scrape /quantiles after the run to print "
                        "server-observed latency (and merge /trace "
                        "events when --trace is active)")
    p.add_argument("--shutdown", action="store_true",
                   help="send a SHUTDOWN frame after the run (drains "
                        "the server cleanly)")
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("vcd", help="dump a waveform of a real run")
    p.add_argument("--blocks", type=int, default=1)
    p.add_argument("--out", default="rijndael.vcd")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=cmd_vcd)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = None
    if args.trace:
        from repro.obs.tracing import enable_tracing
        tracer = enable_tracing()
    try:
        with _command_span(args):
            return args.fn(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: exit
        # quietly like a well-behaved Unix tool.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    finally:
        if tracer is not None:
            from repro.obs.tracing import disable_tracing
            disable_tracing()
            tracer.write(args.trace)


def _command_span(args: argparse.Namespace):
    """A whole-command span (a no-op unless ``--trace`` enabled it)."""
    from repro.obs.tracing import trace_span
    return trace_span(f"cli.{args.command}", category="cli")


if __name__ == "__main__":
    sys.exit(main())
