"""Span tracing with Chrome-trace (``chrome://tracing``) JSON export.

A :class:`Tracer` records *complete* duration events (``"ph": "X"``)
and instants (``"ph": "i"``) in the Trace Event Format that
``chrome://tracing`` and Perfetto load directly: a JSON array of
objects with ``name``/``cat``/``ph``/``ts``/``dur``/``pid``/``tid``.
Timestamps are microseconds from the tracer's epoch
(``time.perf_counter`` based, so spans nest consistently across
threads).

The process-global tracer is **off by default** and the instrumented
hot paths go through :func:`trace_span`, which returns a shared no-op
context manager when tracing is disabled — the disabled cost is one
module-global read and one function call, no allocation.  The bench
suite asserts the instrumented path stays within a few percent of the
uninstrumented one.

Usage::

    from repro.obs.tracing import enable_tracing, trace_span

    tracer = enable_tracing()
    with trace_span("engine.encrypt_blocks", blocks=4096):
        ...
    tracer.write("trace.json")      # load in chrome://tracing

``repro-aes --trace FILE <command>`` wires this around any CLI run.
"""

from __future__ import annotations

import json
import os
import random
import threading
import time
from typing import Dict, Iterable, List, Optional

#: Span/trace ids are opaque nonzero 64-bit values; a dedicated
#: generator keeps them independent of any seeded RNG in the caller
#: (they are correlation handles, never key material).
_ID_RNG = random.SystemRandom()


def new_span_id() -> int:
    """A fresh nonzero 64-bit id for a span or a whole trace."""
    while True:
        value = _ID_RNG.getrandbits(64)
        if value:
            return value


def format_span_id(value: int) -> str:
    """The canonical 16-hex-digit rendering of a span/trace id."""
    return f"{value & 0xFFFFFFFFFFFFFFFF:016x}"


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records one complete event when it exits."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 args: Optional[Dict[str, object]]):
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        self._tracer._record(self._name, self._category,
                             self._start, end, self._args)


class Tracer:
    """Collects trace events; thread-safe, export-on-demand."""

    def __init__(self) -> None:
        self._events: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        #: Wall-clock time of the epoch — lets traces recorded by
        #: *different processes* (each with its own perf_counter
        #: origin) be merged onto one timeline.
        self.epoch_unix = time.time()
        self._pid = os.getpid()

    def _us(self, moment: float) -> float:
        return round((moment - self._epoch) * 1e6, 3)

    def _record(self, name: str, category: str, start: float,
                end: float, args: Optional[Dict[str, object]]) -> None:
        event: Dict[str, object] = {
            "name": name,
            "cat": category,
            "ph": "X",
            "ts": self._us(start),
            "dur": round((end - start) * 1e6, 3),
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def span(self, name: str, category: str = "repro",
             **args: object) -> _Span:
        """A context manager timing one named span."""
        return _Span(self, name, category, args or None)

    def record_span(self, name: str, start: float, end: float,
                    category: str = "repro", **args: object) -> None:
        """Record a complete span from explicit ``perf_counter``
        moments — for retroactive measurements (queue wait observed
        at dequeue time) where a context manager cannot wrap the
        interval."""
        self._record(name, category, start, end, args or None)

    def add_events(self, events: Iterable[Dict[str, object]],
                   epoch_unix: Optional[float] = None) -> None:
        """Merge foreign trace events (e.g. scraped from a server's
        admin plane) into this tracer's timeline.

        ``epoch_unix`` is the foreign tracer's wall-clock epoch; when
        given, every foreign timestamp is shifted so both processes
        share this tracer's timeline (wall clocks agree to far better
        than the millisecond spans being aligned here).
        """
        shift_us = 0.0
        if epoch_unix is not None:
            shift_us = (epoch_unix - self.epoch_unix) * 1e6
        merged: List[Dict[str, object]] = []
        for event in events:
            if not isinstance(event, dict) or "ts" not in event:
                continue
            moved = dict(event)
            try:
                moved["ts"] = round(float(moved["ts"]) + shift_us, 3)
            except (TypeError, ValueError):
                continue
            merged.append(moved)
        with self._lock:
            self._events.extend(merged)

    def instant(self, name: str, category: str = "repro",
                **args: object) -> None:
        """Record a zero-duration instant event."""
        event: Dict[str, object] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "ts": self._us(time.perf_counter()),
            "s": "t",  # thread-scoped instant
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def events(self) -> List[Dict[str, object]]:
        """A snapshot copy of the recorded events."""
        with self._lock:
            return [dict(e) for e in self._events]

    def clear(self) -> None:
        """Drop every recorded event."""
        with self._lock:
            self._events.clear()

    def to_json(self) -> str:
        """The events as a Chrome-trace JSON array."""
        return json.dumps(self.events(), indent=1) + "\n"

    def write(self, path: "os.PathLike[str] | str") -> None:
        """Write the Chrome-trace JSON to ``path``."""
        with open(path, "w") as handle:
            handle.write(self.to_json())


_GLOBAL: Optional[Tracer] = None


def enable_tracing() -> Tracer:
    """Install (or return the already-installed) global tracer."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = Tracer()
    return _GLOBAL


def disable_tracing() -> Optional[Tracer]:
    """Uninstall the global tracer; returns it (events intact)."""
    global _GLOBAL
    tracer = _GLOBAL
    _GLOBAL = None
    return tracer


def active_tracer() -> Optional[Tracer]:
    """The installed global tracer, or ``None`` when disabled."""
    return _GLOBAL


def trace_span(name: str, category: str = "repro",
               **args: object):
    """A span on the global tracer — or a free no-op when disabled.

    This is the only call sites should use: it keeps the disabled
    cost at one global read, so instrumenting a hot path is safe.
    """
    tracer = _GLOBAL
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, category, args or None)


def trace_instant(name: str, category: str = "repro",
                  **args: object) -> None:
    """An instant event on the global tracer; no-op when disabled."""
    tracer = _GLOBAL
    if tracer is not None:
        tracer.instant(name, category, **args)


def trace_record(name: str, start: float, end: float,
                 category: str = "repro", **args: object) -> None:
    """A retroactive span on the global tracer; no-op when disabled."""
    tracer = _GLOBAL
    if tracer is not None:
        tracer.record_span(name, start, end, category, **args)
