"""Cycle-accurate hardware performance counters for the IP core.

Every :class:`~repro.ip.core.RijndaelCore` carries a
:class:`HwCounters` instance that the clocked process feeds as the
machine runs: one event per ByteSub word pass, per wide mix stage, per
key-schedule word, per round boundary, per bus stall/overlap.  An
observed run therefore *proves* the paper's headline micro-
architecture numbers instead of asserting them from the model — 4
ByteSub sub-cycles + 1 mix stage = 5 events per round, 10 rounds = 50
clock cycles per block, and a 40-cycle key-setup pass on decrypt-
capable devices.

:func:`expected_counters` computes what a conforming device must
report for a given workload straight from the declared architecture
(:mod:`repro.ip.control`), and the ``obs.counter-divergence`` check
rule (:mod:`repro.checks.obs`) fails the lint gate when an observed
run disagrees with the :mod:`repro.checks.fsm` model.

The counters are plain Python integers bumped from code that is
already simulating hardware a cycle at a time — their overhead is
noise — so they are always on; :meth:`HwCounters.snapshot` and
:meth:`HwCounters.export_metrics` feed the observability pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ip.control import (
    NUM_ROUNDS,
    Variant,
    block_latency,
    cycles_per_round,
    key_setup_cycles,
)
from repro.obs.metrics import MetricsRegistry

#: Ceiling on retained per-block records, so a week-long soak run
#: cannot grow memory without bound.  Totals keep counting past it.
MAX_BLOCK_RECORDS = 4096


@dataclass(frozen=True)
class BlockRecord:
    """The per-block evidence trail of one cipher run."""

    direction: str            # "encrypt" | "decrypt"
    start_cycle: int          # simulator cycle of the capture edge
    end_cycle: int            # simulator cycle of the result edge
    rounds: int
    bytesub_cycles: int
    mix_cycles: int
    #: Sub-events (ByteSub words + mix stages + ROM issue slots)
    #: recorded in each round, in execution order.
    events_per_round: Tuple[int, ...]

    @property
    def cycles(self) -> int:
        """Capture-to-result latency of this block, in clocks."""
        return self.end_cycle - self.start_cycle


@dataclass
class HwCounters:
    """Event totals observed on one core since construction."""

    name: str = "aes"
    #: Total clock edges the core has seen, split by FSM phase.
    cycles: int = 0
    idle_cycles: int = 0
    run_cycles: int = 0
    setup_cycles: int = 0
    #: Datapath sub-events.
    bytesub_cycles: int = 0
    mix_cycles: int = 0
    rom_issue_cycles: int = 0
    rounds: int = 0
    blocks: int = 0
    #: Key-schedule words generated (in-run on-the-fly + setup pass).
    key_words: int = 0
    setup_passes: int = 0
    #: Bus-interface accounting: writes absorbed by the one-deep
    #: buffer while the engine ran (the paper's I/O overlap), writes
    #: dropped because the buffer was already full, and pulses that
    #: violated the setup-pin protocol.
    bus_overlap: int = 0
    bus_stalls: int = 0
    protocol_errors: int = 0
    block_records: List[BlockRecord] = field(default_factory=list)

    # transient per-block state
    _start_cycle: Optional[int] = None
    _direction: str = ""
    _round_events: int = 0
    _block_rounds: int = 0
    _block_bytesub: int = 0
    _block_mix: int = 0
    _events_per_round: List[int] = field(default_factory=list)

    # ------------------------------------------------------- cycle feed
    def cycle_tick(self, phase: str) -> None:
        """One clock edge; ``phase`` is a :class:`Phase` value name."""
        self.cycles += 1
        if phase == "run":
            self.run_cycles += 1
        elif phase == "key_setup":
            self.setup_cycles += 1
        else:
            self.idle_cycles += 1

    # ---------------------------------------------------- block events
    def block_start(self, cycle: int, direction: str) -> None:
        """The capture edge: a block entered the engine."""
        self._start_cycle = cycle
        self._direction = direction
        self._round_events = 0
        self._block_rounds = 0
        self._block_bytesub = 0
        self._block_mix = 0
        self._events_per_round = []

    def bytesub(self) -> None:
        """One 32-bit (I)ByteSub word pass completed."""
        self.bytesub_cycles += 1
        self._block_bytesub += 1
        self._round_events += 1

    def mix(self) -> None:
        """One 128-bit ShiftRow/MixColumn/AddKey stage completed."""
        self.mix_cycles += 1
        self._block_mix += 1
        self._round_events += 1

    def rom_issue(self) -> None:
        """One sync-ROM read-issue slot (6-cycle-round builds only)."""
        self.rom_issue_cycles += 1
        self._round_events += 1

    def key_word(self) -> None:
        """One key-schedule word generated."""
        self.key_words += 1

    def round_end(self) -> None:
        """A round boundary passed."""
        self.rounds += 1
        self._block_rounds += 1
        self._events_per_round.append(self._round_events)
        self._round_events = 0

    def block_end(self, cycle: int) -> None:
        """The result edge: the block's record is sealed."""
        self.blocks += 1
        if self._start_cycle is None:
            return  # counters attached mid-run; totals still count
        record = BlockRecord(
            direction=self._direction,
            start_cycle=self._start_cycle,
            end_cycle=cycle,
            rounds=self._block_rounds,
            bytesub_cycles=self._block_bytesub,
            mix_cycles=self._block_mix,
            events_per_round=tuple(self._events_per_round),
        )
        if len(self.block_records) < MAX_BLOCK_RECORDS:
            self.block_records.append(record)
        self._start_cycle = None

    # ------------------------------------------------------ bus events
    def setup_pass_end(self) -> None:
        """The key-setup pass finished (``key_ready`` raised)."""
        self.setup_passes += 1

    def overlap(self) -> None:
        """A write landed in the buffer while the engine was busy."""
        self.bus_overlap += 1

    def stall(self) -> None:
        """A write was dropped: buffer full or block start blocked."""
        self.bus_stalls += 1

    def protocol_error(self) -> None:
        """A pulse violated the setup-pin protocol."""
        self.protocol_errors += 1

    # ---------------------------------------------------------- export
    def snapshot(self) -> Dict[str, object]:
        """A JSON-able summary of the totals and per-block records."""
        return {
            "name": self.name,
            "cycles": self.cycles,
            "idle_cycles": self.idle_cycles,
            "run_cycles": self.run_cycles,
            "setup_cycles": self.setup_cycles,
            "bytesub_cycles": self.bytesub_cycles,
            "mix_cycles": self.mix_cycles,
            "rom_issue_cycles": self.rom_issue_cycles,
            "rounds": self.rounds,
            "blocks": self.blocks,
            "key_words": self.key_words,
            "setup_passes": self.setup_passes,
            "bus_overlap": self.bus_overlap,
            "bus_stalls": self.bus_stalls,
            "protocol_errors": self.protocol_errors,
            "block_records": [
                {
                    "direction": r.direction,
                    "cycles": r.cycles,
                    "rounds": r.rounds,
                    "bytesub_cycles": r.bytesub_cycles,
                    "mix_cycles": r.mix_cycles,
                    "events_per_round": list(r.events_per_round),
                }
                for r in self.block_records
            ],
        }

    def export_metrics(self, registry: MetricsRegistry,
                       variant: str) -> None:
        """Publish the totals as counters into ``registry``.

        Intended for a registry scoped to one observed run (the way
        ``repro-aes stats`` uses it), where the fresh counters start
        at zero and one export *is* the total.
        """
        labels = ("variant",)

        def publish(name: str, help_text: str, value: int) -> None:
            registry.counter(name, help_text, labels=labels).labels(
                variant=variant).inc(value)

        publish("repro_ip_cycles_total",
                "Clock cycles the core has run", self.cycles)
        publish("repro_ip_run_cycles_total",
                "Clock cycles spent ciphering", self.run_cycles)
        publish("repro_ip_setup_cycles_total",
                "Clock cycles spent in the key-setup pass",
                self.setup_cycles)
        publish("repro_ip_idle_cycles_total",
                "Clock cycles spent idle", self.idle_cycles)
        publish("repro_ip_bytesub_cycles_total",
                "32-bit (I)ByteSub word passes", self.bytesub_cycles)
        publish("repro_ip_mix_cycles_total",
                "128-bit ShiftRow/MixColumn/AddKey stages",
                self.mix_cycles)
        publish("repro_ip_rounds_total",
                "Cipher rounds completed", self.rounds)
        publish("repro_ip_blocks_total",
                "Blocks processed", self.blocks)
        publish("repro_ip_key_words_total",
                "Key-schedule words generated", self.key_words)
        publish("repro_ip_bus_overlap_total",
                "Writes absorbed by the input buffer while busy",
                self.bus_overlap)
        publish("repro_ip_bus_stalls_total",
                "Writes dropped or blocked at the bus interface",
                self.bus_stalls)
        publish("repro_ip_protocol_errors_total",
                "Setup-pin protocol violations", self.protocol_errors)


def expected_counters(variant: Variant, sync_rom: bool,
                      blocks: int, key_loads: int = 1,
                      ) -> Dict[str, int]:
    """What a conforming device must report for a given workload.

    Derived entirely from the declared architecture in
    :mod:`repro.ip.control`: ``blocks`` ciphered blocks after
    ``key_loads`` key loads.  Keys of the returned dict match
    :class:`HwCounters` attribute names.
    """
    per_round = cycles_per_round(sync_rom)
    setup = key_setup_cycles(sync_rom) if variant.needs_setup_pass \
        else 0
    return {
        "blocks": blocks,
        "rounds": NUM_ROUNDS * blocks,
        "bytesub_cycles": 4 * NUM_ROUNDS * blocks,
        "mix_cycles": NUM_ROUNDS * blocks,
        "rom_issue_cycles": (
            (per_round - 5) * NUM_ROUNDS * blocks if sync_rom else 0
        ),
        "run_cycles": block_latency(sync_rom) * blocks,
        "setup_cycles": setup * key_loads,
        "setup_passes": key_loads if variant.needs_setup_pass else 0,
        # 4 words per round, on the fly per block + once per setup
        # pass on decrypt-capable devices.
        "key_words": 4 * NUM_ROUNDS * (
            blocks + (key_loads if variant.needs_setup_pass else 0)
        ),
        "block_cycles": block_latency(sync_rom),
        # Every round cycle carries exactly one sub-event: 4 ByteSub
        # word passes + 1 mix stage (+ 1 ROM issue slot on sync-ROM
        # builds), so events per round equals cycles per round.
        "events_per_round": per_round,
    }
