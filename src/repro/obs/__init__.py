"""Observability layer: metrics, span tracing, hardware counters.

``repro.obs`` gives the repo measured evidence instead of asserted
numbers.  It has three legs, all stdlib-only:

- :mod:`repro.obs.metrics` — a small Prometheus-style registry
  (counters, gauges, fixed-bucket histograms) with text exposition
  and JSON snapshots; the software stack instruments into a
  process-global registry.
- :mod:`repro.obs.tracing` — ``trace_span()`` spans exported as
  Chrome-trace JSON (``chrome://tracing`` / Perfetto); a no-op when
  the global tracer is disabled, so hot paths pay ~nothing.
- :mod:`repro.obs.hwcounters` — cycle-accurate performance counters
  fed by the IP simulator, proving the paper's 5-cycles/round,
  50-cycles/block and 40-cycle-setup invariants on real runs.

:mod:`repro.obs.report` ties the legs together for the
``repro-aes stats`` subcommand.
"""

from repro.obs.hwcounters import (
    BlockRecord,
    HwCounters,
    expected_counters,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    global_registry,
    reset_global_registry,
)
from repro.obs.tracing import (
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    trace_instant,
    trace_span,
)

__all__ = [
    "BlockRecord",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HwCounters",
    "MetricError",
    "MetricsRegistry",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "expected_counters",
    "global_registry",
    "reset_global_registry",
    "trace_instant",
    "trace_span",
]
