"""Zero-dependency metrics: counters, gauges, histograms, exposition.

The paper's evaluation is a table of *measured* numbers; the software
stack deserves the same discipline.  This module is a deliberately
small re-implementation of the Prometheus data model — just enough to
instrument the repo without pulling in a client library (the install
stays stdlib-only, like everything else here):

- :class:`Counter` — monotonically increasing totals (ops, blocks,
  auth failures);
- :class:`Gauge` — point-in-time values (effective worker count);
- :class:`Histogram` — fixed-boundary bucket counts plus sum/count
  (per-shard latency distributions);
- :class:`MetricsRegistry` — owns metrics, renders the Prometheus
  text exposition format and a JSON snapshot.

Metrics support labels in the Prometheus style: a metric is created
with label *names* and observations go through :meth:`Metric.labels`,
which returns a per-label-set child.  Hot paths bind children once at
import time so the per-call cost is one method call and one integer
add.  All mutation is lock-protected — the batch engine observes from
worker threads.

A process-global registry (:func:`global_registry`) collects the
instrumentation of :mod:`repro.perf.engine`, :mod:`repro.aes.modes`
and :mod:`repro.aes.gcm`; ``repro-aes stats`` renders it.
"""

from __future__ import annotations

import json
import math
import re
import threading
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram boundaries (seconds), tuned for per-shard
#: software latencies: the 50 µs–500 µs decade resolves loopback
#: serve requests (~1 ms at ~780 req/s, where the old 500 µs first
#: bucket swallowed nearly every observation), on up to the
#: multi-second pure-Python baselines.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class MetricError(ValueError):
    """Raised on invalid metric names, labels or type collisions."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise MetricError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _render_labels(labels: Tuple[Tuple[str, str], ...],
                   extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in pairs
    )
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"  # repr() would render 'nan', which 0.0.4 rejects
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class _Child:
    """One (metric, label-set) time series."""

    def __init__(self, labels: Tuple[Tuple[str, str], ...]):
        self.label_pairs = labels
        self._lock = threading.Lock()

    def zero(self) -> None:
        """Reset the series to its initial value in place."""
        raise NotImplementedError


class _CounterChild(_Child):
    def __init__(self, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise MetricError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def zero(self) -> None:
        with self._lock:
            self._value = 0.0


class _GaugeChild(_Child):
    def __init__(self, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative) to the gauge."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the gauge."""
        self.inc(-amount)

    def zero(self) -> None:
        with self._lock:
            self._value = 0.0

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild(_Child):
    def __init__(self, labels: Tuple[Tuple[str, str], ...],
                 boundaries: Tuple[float, ...]):
        super().__init__(labels)
        self.boundaries = boundaries
        self.bucket_counts = [0] * (len(boundaries) + 1)  # + [+Inf]
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        with self._lock:
            self.sum += value
            self.count += 1
            for index, bound in enumerate(self.boundaries):
                if value <= bound:
                    self.bucket_counts[index] += 1
                    return
            self.bucket_counts[-1] += 1

    def zero(self) -> None:
        with self._lock:
            self.bucket_counts = [0] * (len(self.boundaries) + 1)
            self.sum = 0.0
            self.count = 0

    def cumulative(self) -> List[int]:
        """Cumulative bucket counts, Prometheus ``le`` semantics."""
        total = 0
        out = []
        for count in self.bucket_counts:
            total += count
            out.append(total)
        return out


class Metric:
    """One named metric family; observations go through label children.

    Metrics with no label names have a single anonymous child and
    expose its mutators (``inc`` / ``set`` / ``observe``) directly.
    """

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = str(help_text)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        self.label_names = tuple(label_names)
        self._children: Dict[Tuple[str, ...], _Child] = {}
        self._lock = threading.Lock()
        if not self.label_names:
            self._default = self._child_for(())

    def _make_child(self, labels: Tuple[Tuple[str, str], ...]) -> _Child:
        raise NotImplementedError

    def _child_for(self, values: Tuple[str, ...]) -> _Child:
        with self._lock:
            child = self._children.get(values)
            if child is None:
                pairs = tuple(zip(self.label_names, values))
                child = self._make_child(pairs)
                self._children[values] = child
            return child

    def labels(self, **labels: str) -> _Child:
        """The child series for one label-value assignment."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"metric {self.name!r} takes labels "
                f"{self.label_names}, got {tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        return self._child_for(values)

    def children(self) -> List[_Child]:
        """Every live child series, label-value-sorted.

        Sorted (not creation-ordered) so two registries that saw the
        same observations render identically no matter which label
        set was touched first — scrape diffs stay meaningful.
        """
        with self._lock:
            return [self._children[key]
                    for key in sorted(self._children)]

    def reset_values(self) -> None:
        """Zero every child series in place.

        Children are zeroed rather than dropped so that child handles
        bound at import time (``metric.labels(...)`` stored in a
        module global) keep pointing at the live series after a reset.
        """
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.zero()


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self, labels):
        return _CounterChild(labels)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        self._default.inc(amount)  # type: ignore[attr-defined]

    @property
    def value(self) -> float:
        """Value of the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        return self._default.value  # type: ignore[attr-defined]


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _make_child(self, labels):
        return _GaugeChild(labels)

    def set(self, value: float) -> None:
        """Set the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        self._default.set(value)  # type: ignore[attr-defined]

    def inc(self, amount: float = 1.0) -> None:
        """Increment the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        self._default.inc(amount)  # type: ignore[attr-defined]

    def dec(self, amount: float = 1.0) -> None:
        """Decrement the unlabeled series."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Value of the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        return self._default.value  # type: ignore[attr-defined]


class Histogram(Metric):
    """Fixed-boundary bucket counts plus sum and count."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        boundaries = tuple(float(b) for b in buckets)
        if not boundaries:
            raise MetricError("histogram needs at least one bucket")
        if list(boundaries) != sorted(boundaries):
            raise MetricError("histogram buckets must be sorted")
        if len(set(boundaries)) != len(boundaries):
            raise MetricError("histogram buckets must be distinct")
        self.boundaries = boundaries
        super().__init__(name, help_text, label_names)

    def _make_child(self, labels):
        return _HistogramChild(labels, self.boundaries)

    def observe(self, value: float) -> None:
        """Observe into the unlabeled series."""
        if self.label_names:
            raise MetricError(
                f"metric {self.name!r} is labeled; use .labels()"
            )
        self._default.observe(value)  # type: ignore[attr-defined]


#: Geometric bucket ladder of the windowed quantile estimator: 10 µs
#: up through ~100 s at ratio 2**(1/4) (~19% per step).  A reported
#: quantile is interpolated inside one bucket, so its relative error
#: is bounded by a single step: at most ~19% — tight enough to steer
#: an SLO controller, tiny enough to keep every window slot O(1).
QUANTILE_BUCKETS: Tuple[float, ...] = tuple(
    1e-5 * (2.0 ** (step / 4.0)) for step in range(94)
)


class WindowedQuantiles:
    """Sliding-window quantile estimator over fixed-boundary buckets.

    A ring of ``slots`` sub-histograms, each covering
    ``window_s / slots`` seconds of wall-clock time; an observation
    lands in the slot owning its moment, and a query merges the
    slots still inside the window.  Memory is O(buckets × slots) —
    constant, independent of traffic — and both ``observe`` and
    ``quantile`` are O(buckets).  Quantiles are interpolated inside
    the winning bucket, so the error bound is one bucket's relative
    width (see :data:`QUANTILE_BUCKETS`).

    ``slo_threshold_s`` additionally maintains burn-rate accounting:
    each slot counts observations over the threshold, and
    ``burn_rate`` is the windowed breach fraction — the signal an
    error-budget alert (or the roadmap autotuner) consumes.
    """

    def __init__(self, window_s: float = 60.0, slots: int = 6,
                 bounds: Sequence[float] = QUANTILE_BUCKETS,
                 slo_threshold_s: Optional[float] = None) -> None:
        if window_s <= 0 or slots < 1:
            raise MetricError(
                "window_s must be positive and slots >= 1")
        boundaries = tuple(float(b) for b in bounds)
        if list(boundaries) != sorted(boundaries) \
                or len(set(boundaries)) != len(boundaries) \
                or not boundaries:
            raise MetricError(
                "quantile bounds must be sorted, distinct and "
                "non-empty")
        self.window_s = float(window_s)
        self.slots = int(slots)
        self.boundaries = boundaries
        self.slo_threshold_s = slo_threshold_s
        self._slot_s = self.window_s / self.slots
        self._lock = threading.Lock()
        # Per ring slot: the absolute slot index it currently holds,
        # its bucket counts (+ overflow), count, max and breaches.
        self._indices = [-1] * self.slots
        self._counts = [[0] * (len(boundaries) + 1)
                        for _ in range(self.slots)]
        self._totals = [0] * self.slots
        self._maxima = [0.0] * self.slots
        self._breaches = [0] * self.slots

    def _slot_for(self, now: float) -> int:
        """Claim (zeroing if stale) the ring slot owning ``now``."""
        index = int(now / self._slot_s)
        slot = index % self.slots
        if self._indices[slot] != index:
            self._indices[slot] = index
            self._counts[slot] = [0] * (len(self.boundaries) + 1)
            self._totals[slot] = 0
            self._maxima[slot] = 0.0
            self._breaches[slot] = 0
        return slot

    def observe(self, value: float,
                now: Optional[float] = None) -> None:
        """Record one observation (seconds) at wall-clock ``now``."""
        moment = time.time() if now is None else now
        with self._lock:
            slot = self._slot_for(moment)
            counts = self._counts[slot]
            for position, bound in enumerate(self.boundaries):
                if value <= bound:
                    counts[position] += 1
                    break
            else:
                counts[-1] += 1
            self._totals[slot] += 1
            if value > self._maxima[slot]:
                self._maxima[slot] = value
            if self.slo_threshold_s is not None \
                    and value > self.slo_threshold_s:
                self._breaches[slot] += 1

    def _live(self, now: float) -> List[int]:
        """Ring slots still inside the window at ``now``."""
        newest = int(now / self._slot_s)
        oldest = newest - self.slots + 1
        return [slot for slot in range(self.slots)
                if oldest <= self._indices[slot] <= newest]

    def _merged(self, now: float) -> Tuple[List[int], int, float, int]:
        live = self._live(now)
        counts = [0] * (len(self.boundaries) + 1)
        total = 0
        maximum = 0.0
        breaches = 0
        for slot in live:
            for position, count in enumerate(self._counts[slot]):
                counts[position] += count
            total += self._totals[slot]
            maximum = max(maximum, self._maxima[slot])
            breaches += self._breaches[slot]
        return counts, total, maximum, breaches

    def _interpolate(self, counts: List[int], total: int,
                     maximum: float, q: float) -> float:
        """The ``q``-quantile of one merged bucket view."""
        if total == 0:
            return math.nan
        needed = max(1, math.ceil(q * total))
        seen = 0
        for position, count in enumerate(counts):
            if count == 0:
                continue
            if seen + count >= needed:
                if position >= len(self.boundaries):
                    # Overflow bucket: the observed max is the only
                    # finite upper bound available.
                    return maximum
                upper = self.boundaries[position]
                lower = self.boundaries[position - 1] \
                    if position else 0.0
                fraction = (needed - seen) / count
                # The tracked window maximum is a tighter bound than
                # the bucket's upper edge; without the clamp a lone
                # sample can report p99 above its own observed max.
                return min(lower + (upper - lower) * fraction,
                           maximum)
            seen += count
        return maximum  # pragma: no cover - defensive

    def quantile(self, q: float,
                 now: Optional[float] = None) -> float:
        """The windowed ``q``-quantile in seconds (NaN when empty)."""
        if not 0.0 <= q <= 1.0:
            raise MetricError("quantile must be within [0, 1]")
        moment = time.time() if now is None else now
        with self._lock:
            counts, total, maximum, _ = self._merged(moment)
        return self._interpolate(counts, total, maximum, q)

    def snapshot(self, now: Optional[float] = None
                 ) -> Dict[str, object]:
        """Windowed count/max/quantiles/burn-rate as one JSON-able
        dict (quantiles are ``None`` while the window is empty)."""
        moment = time.time() if now is None else now
        with self._lock:
            counts, total, maximum, breaches = self._merged(moment)

        def _q(q: float) -> Optional[float]:
            value = self._interpolate(counts, total, maximum, q)
            return None if math.isnan(value) else value

        out: Dict[str, object] = {
            "window_s": self.window_s,
            "count": total,
            "max_s": maximum if total else None,
            "p50_s": _q(0.50),
            "p95_s": _q(0.95),
            "p99_s": _q(0.99),
        }
        if self.slo_threshold_s is not None:
            out["slo_threshold_s"] = self.slo_threshold_s
            out["slo_breaches"] = breaches
            out["burn_rate"] = (breaches / total) if total else 0.0
        return out


class WindowedQuantileSet:
    """A labeled family of :class:`WindowedQuantiles` children with
    Prometheus and JSON exposition — the windowed counterpart of a
    labeled :class:`Histogram`.

    Rendered as gauge families (``<name>{...,quantile="0.99"}``,
    ``<name>_count``, ``<name>_max``, and with an SLO threshold
    ``<name>_slo_breaches`` / ``<name>_burn_rate``), all legal 0.0.4
    text exposition.
    """

    _QUANTILES = (("0.5", "p50_s"), ("0.95", "p95_s"),
                  ("0.99", "p99_s"))

    def __init__(self, name: str, help_text: str,
                 label_names: Sequence[str] = (),
                 window_s: float = 60.0, slots: int = 6,
                 bounds: Sequence[float] = QUANTILE_BUCKETS,
                 slo_threshold_s: Optional[float] = None) -> None:
        self.name = _check_name(name)
        self.help = str(help_text)
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise MetricError(f"invalid label name {label!r}")
        self.label_names = tuple(label_names)
        self.window_s = float(window_s)
        self._slots = int(slots)
        self._bounds = tuple(bounds)
        self.slo_threshold_s = slo_threshold_s
        self._children: Dict[Tuple[str, ...], WindowedQuantiles] = {}
        self._lock = threading.Lock()

    def labels(self, **labels: str) -> WindowedQuantiles:
        """The child window for one label-value assignment."""
        if set(labels) != set(self.label_names):
            raise MetricError(
                f"quantile set {self.name!r} takes labels "
                f"{self.label_names}, got {tuple(sorted(labels))}"
            )
        values = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(values)
            if child is None:
                child = WindowedQuantiles(
                    window_s=self.window_s, slots=self._slots,
                    bounds=self._bounds,
                    slo_threshold_s=self.slo_threshold_s,
                )
                self._children[values] = child
            return child

    def _sorted_children(
            self) -> List[Tuple[Tuple[str, ...], WindowedQuantiles]]:
        with self._lock:
            return [(values, self._children[values])
                    for values in sorted(self._children)]

    def render_prometheus(self, now: Optional[float] = None) -> str:
        """Gauge-family exposition of every child window."""
        moment = time.time() if now is None else now
        quantile_lines: List[str] = []
        count_lines: List[str] = []
        max_lines: List[str] = []
        breach_lines: List[str] = []
        burn_lines: List[str] = []
        for values, child in self._sorted_children():
            pairs = tuple(zip(self.label_names, values))
            snap = child.snapshot(now=moment)
            for text, key in self._QUANTILES:
                value = snap[key]
                if value is None:
                    continue
                labels = _render_labels(pairs,
                                        (("quantile", text),))
                quantile_lines.append(
                    f"{self.name}{labels} "
                    f"{_format_value(float(value))}")  # type: ignore[arg-type]
            base = _render_labels(pairs)
            count_lines.append(
                f"{self.name}_count{base} {snap['count']}")
            if snap["max_s"] is not None:
                max_lines.append(
                    f"{self.name}_max{base} "
                    f"{_format_value(float(snap['max_s']))}")  # type: ignore[arg-type]
            if self.slo_threshold_s is not None:
                breach_lines.append(
                    f"{self.name}_slo_breaches{base} "
                    f"{snap['slo_breaches']}")
                burn_lines.append(
                    f"{self.name}_burn_rate{base} "
                    f"{_format_value(float(snap['burn_rate']))}")  # type: ignore[arg-type]
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            *quantile_lines,
            f"# HELP {self.name}_count Observations inside the "
            f"{_format_value(self.window_s)}s window",
            f"# TYPE {self.name}_count gauge",
            *count_lines,
        ]
        if max_lines:
            lines += [
                f"# HELP {self.name}_max Largest observation inside "
                f"the window",
                f"# TYPE {self.name}_max gauge",
                *max_lines,
            ]
        if breach_lines:
            lines += [
                f"# HELP {self.name}_slo_breaches Windowed "
                f"observations over the SLO threshold",
                f"# TYPE {self.name}_slo_breaches gauge",
                *breach_lines,
                f"# HELP {self.name}_burn_rate Windowed breach "
                f"fraction of the SLO threshold",
                f"# TYPE {self.name}_burn_rate gauge",
                *burn_lines,
            ]
        return "\n".join(lines) + "\n"

    def snapshot(self, now: Optional[float] = None
                 ) -> Dict[str, object]:
        """JSON-able snapshot of every child window."""
        moment = time.time() if now is None else now
        samples: List[Dict[str, object]] = []
        for values, child in self._sorted_children():
            entry: Dict[str, object] = {
                "labels": dict(zip(self.label_names, values)),
            }
            entry.update(child.snapshot(now=moment))
            samples.append(entry)
        return {
            "name": self.name,
            "help": self.help,
            "window_s": self.window_s,
            "samples": samples,
        }


class MetricsRegistry:
    """Owns a namespace of metrics and renders them.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: asking
    twice for the same name returns the same object (and raises on a
    kind or label-schema mismatch), so independent modules can share
    series without coordination.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str,
                       label_names: Sequence[str],
                       **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise MetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                if existing.label_names != tuple(label_names):
                    raise MetricError(
                        f"metric {name!r} already registered with "
                        f"labels {existing.label_names}"
                    )
                return existing
            metric = cls(name, help_text, label_names, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str,
                labels: Sequence[str] = ()) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str,
              labels: Sequence[str] = ()) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str,
                  labels: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_BUCKETS,
                  ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get_or_create(Histogram, name, help_text, labels,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        """The registered metric of that name, or ``None``."""
        with self._lock:
            return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """Every registered metric, name-sorted."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every metric's series (registrations survive).

        Module-level instrumentation binds metric objects at import
        time, so tests reset *values* rather than replacing the
        registry out from under those references.
        """
        for metric in self.collect():
            metric.reset_values()

    # --------------------------------------------------------- exposition
    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for metric in self.collect():
            lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            for child in metric.children():
                if isinstance(child, _HistogramChild):
                    cumulative = child.cumulative()
                    bounds = [*child.boundaries, math.inf]
                    for bound, count in zip(bounds, cumulative):
                        label_text = _render_labels(
                            child.label_pairs,
                            (("le", _format_value(bound)),),
                        )
                        lines.append(
                            f"{metric.name}_bucket{label_text} {count}"
                        )
                    base = _render_labels(child.label_pairs)
                    lines.append(f"{metric.name}_sum{base} "
                                 f"{_format_value(child.sum)}")
                    lines.append(f"{metric.name}_count{base} "
                                 f"{child.count}")
                else:
                    label_text = _render_labels(child.label_pairs)
                    lines.append(
                        f"{metric.name}{label_text} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self, prefix: str = "") -> Dict[str, object]:
        """A JSON-able snapshot of every metric (optionally filtered
        to names starting with ``prefix``)."""
        out: Dict[str, object] = {}
        for metric in self.collect():
            if prefix and not metric.name.startswith(prefix):
                continue
            samples: List[Dict[str, object]] = []
            for child in metric.children():
                labels = dict(child.label_pairs)
                if isinstance(child, _HistogramChild):
                    samples.append({
                        "labels": labels,
                        "buckets": {
                            _format_value(b): c
                            for b, c in zip(
                                [*child.boundaries, math.inf],
                                child.cumulative(),
                            )
                        },
                        "sum": child.sum,
                        "count": child.count,
                    })
                else:
                    samples.append({"labels": labels,
                                    "value": child.value})
            out[metric.name] = {
                "type": metric.kind,
                "help": metric.help,
                "samples": samples,
            }
        return out

    def render_json(self, prefix: str = "") -> str:
        """:meth:`snapshot`, serialized."""
        return json.dumps(self.snapshot(prefix), indent=2,
                          sort_keys=True) + "\n"


def render_prometheus(registries: Iterable[MetricsRegistry]) -> str:
    """Concatenate the exposition of several registries.

    ``repro-aes stats`` renders a per-run hardware registry alongside
    the process-global software registry in one scrape body.
    """
    parts = [r.render_prometheus() for r in registries]
    return "".join(part for part in parts if part)


_GLOBAL = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-wide registry the library instruments into."""
    return _GLOBAL


def reset_global_registry() -> None:
    """Zero the global registry's series (for tests and fresh runs)."""
    _GLOBAL.reset()
