"""Observed-run reports for the ``repro-aes stats`` subcommand.

:func:`collect_stats` drives a real :class:`~repro.ip.testbench.Testbench`
run with hardware counters and span tracing enabled, then packages the
evidence as a :class:`StatsReport` that renders in four formats:

- ``text`` — a human-readable summary with the observed-vs-expected
  invariant table (5 events/round, 50 cycles/block, ...);
- ``prom`` — Prometheus text exposition of the per-run hardware
  registry concatenated with the process-global software registry;
- ``json`` — a single JSON document with both registries, the raw
  counter snapshot and the model expectations;
- ``chrome-trace`` — the run's spans as Chrome-trace JSON for
  ``chrome://tracing`` / Perfetto.

The hardware counters go into a *fresh* registry scoped to the one
observed run, so repeated ``stats`` invocations never double-count;
software metrics (mode ops, engine shards) accumulate in the global
registry as usual.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ip.control import Variant
from repro.ip.testbench import Testbench
from repro.obs.hwcounters import expected_counters
from repro.obs.metrics import (
    MetricsRegistry,
    global_registry,
    render_prometheus,
)
from repro.obs.tracing import Tracer, trace_span

#: Fixed demo key/plaintext so ``repro-aes stats`` runs are
#: reproducible byte-for-byte (FIPS-197 appendix vectors).
_DEMO_KEY = bytes(range(16))
_DEMO_BLOCK = bytes.fromhex("00112233445566778899aabbccddeeff")


@dataclass
class StatsReport:
    """Everything observed in one instrumented run."""

    variant: str
    sync_rom: bool
    blocks: int
    setup_latency: int
    hw_snapshot: Dict[str, object]
    expected: Dict[str, int]
    hw_registry: MetricsRegistry
    trace: Tracer

    @property
    def software_registry(self) -> MetricsRegistry:
        """The process-global registry (modes/engine/bench metrics)."""
        return global_registry()

    # -------------------------------------------------------- renderers
    def render_text(self) -> str:
        """The human-readable observed-vs-expected summary."""
        snap = self.hw_snapshot
        exp = self.expected
        lines = [
            f"observed run: variant={self.variant} "
            f"sync_rom={self.sync_rom} blocks={self.blocks}",
            f"key setup latency: {self.setup_latency} cycles",
            "",
            f"{'counter':<20} {'observed':>10} {'expected':>10}",
        ]
        for key in ("blocks", "rounds", "bytesub_cycles", "mix_cycles",
                    "rom_issue_cycles", "run_cycles", "setup_cycles",
                    "key_words"):
            lines.append(
                f"{key:<20} {snap[key]:>10} {exp[key]:>10}"
            )
        records = snap["block_records"]
        cycles = sorted({r["cycles"] for r in records})
        events = sorted({e for r in records
                         for e in r["events_per_round"]})
        lines += [
            "",
            f"per-block latency: {cycles} cycles "
            f"(model: {exp['block_cycles']})",
            f"sub-events per round: {events} "
            f"(model: {exp['events_per_round']})",
            f"bus: overlap={snap['bus_overlap']} "
            f"stalls={snap['bus_stalls']} "
            f"protocol_errors={snap['protocol_errors']}",
        ]
        return "\n".join(lines) + "\n"

    def render_prometheus(self) -> str:
        """Both registries in the Prometheus text format."""
        return render_prometheus(
            [self.hw_registry, self.software_registry]
        )

    def render_json(self) -> str:
        """One JSON document with registries, counters and model."""
        doc = {
            "run": {
                "variant": self.variant,
                "sync_rom": self.sync_rom,
                "blocks": self.blocks,
                "setup_latency": self.setup_latency,
            },
            "hardware": self.hw_snapshot,
            "expected": self.expected,
            "hw_metrics": self.hw_registry.snapshot(),
            "software_metrics": self.software_registry.snapshot(),
        }
        return json.dumps(doc, indent=2, sort_keys=True) + "\n"

    def render_chrome_trace(self) -> str:
        """The run's spans as Chrome-trace JSON."""
        return self.trace.to_json()

    def render(self, fmt: str) -> str:
        """Dispatch on ``fmt``: text / prom / json / chrome-trace."""
        renderers = {
            "text": self.render_text,
            "prom": self.render_prometheus,
            "json": self.render_json,
            "chrome-trace": self.render_chrome_trace,
        }
        try:
            return renderers[fmt]()
        except KeyError:
            raise ValueError(f"unknown stats format {fmt!r}") from None


def collect_stats(variant: str = "encrypt", blocks: int = 1,
                  sync_rom: bool = False,
                  key: Optional[bytes] = None,
                  data: Optional[bytes] = None) -> StatsReport:
    """Run an instrumented cipher workload and collect the evidence.

    Drives ``blocks`` blocks through a fresh testbench of the given
    device ``variant`` (encrypt-capable variants encrypt; the
    decrypt-only device decrypts), with spans recorded on a local
    tracer and the hardware counters exported to a per-run registry.
    """
    if blocks < 1:
        raise ValueError("blocks must be >= 1")
    device = Variant(variant)
    tracer = Tracer()
    with trace_span("stats.collect", variant=device.value,
                    blocks=blocks, sync_rom=sync_rom):
        bench = Testbench(variant=device, sync_rom=sync_rom)
        with tracer.span("ip.load_key", category="ip",
                         sync_rom=sync_rom):
            setup_latency = bench.load_key(key or _DEMO_KEY)
        block = data or _DEMO_BLOCK
        results: List[bytes] = []
        for index in range(blocks):
            op = "encrypt" if device.can_encrypt else "decrypt"
            with tracer.span(f"ip.{op}", category="ip", block=index):
                if device.can_encrypt:
                    out, _ = bench.encrypt(block)
                else:
                    out, _ = bench.decrypt(block)
            results.append(out)
        tracer.instant("stats.done", category="ip",
                       blocks=len(results))
    counters = bench.core.counters
    registry = MetricsRegistry()
    counters.export_metrics(registry, variant=device.value)
    registry.gauge(
        "repro_ip_setup_latency_cycles",
        "Observed key-load-to-ready latency of the last key load",
        labels=("variant",),
    ).labels(variant=device.value).set(setup_latency)
    return StatsReport(
        variant=device.value,
        sync_rom=sync_rom,
        blocks=blocks,
        setup_latency=setup_latency,
        hw_snapshot=counters.snapshot(),
        expected=expected_counters(device, sync_rom, blocks),
        hw_registry=registry,
        trace=tracer,
    )


__all__ = ["StatsReport", "collect_stats"]
