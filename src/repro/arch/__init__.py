"""Architecture design space: the paper's design point, its siblings,
and the literature baselines of Table 3.

:class:`~repro.arch.spec.ArchitectureSpec` captures the axes the paper
discusses: device variant (encrypt/decrypt/both), ByteSub datapath
width (the 8/16/32/128 spectrum of §6), the width of the ShiftRow/
MixColumn/AddKey stage, key-schedule strategy (on-the-fly vs
precomputed), ROM discipline, and round unrolling/pipelining (used by
the high-performance baselines).  :mod:`repro.arch.explorer` sweeps
the space; :mod:`repro.arch.baselines` pins the published designs.
"""

from repro.arch.spec import ArchitectureSpec, PAPER_SPECS, paper_spec

__all__ = [
    "ArchitectureSpec",
    "BASELINES",
    "BaselineDesign",
    "PAPER_SPECS",
    "explore_widths",
    "paper_spec",
    "sweep_report",
]

_LAZY = {
    "BASELINES": ("repro.arch.baselines", "BASELINES"),
    "BaselineDesign": ("repro.arch.baselines", "BaselineDesign"),
    "explore_widths": ("repro.arch.explorer", "explore_widths"),
    "sweep_report": ("repro.arch.explorer", "sweep_report"),
}


def __getattr__(name):
    # baselines/explorer depend on repro.fpga, which itself imports
    # repro.arch.spec; resolving them lazily breaks the import cycle.
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
