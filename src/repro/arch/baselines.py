"""The literature designs of the paper's Table 3, as architecture specs.

Table 3 compares four published FPGA Rijndael implementations.  The
source text of the paper available to this reproduction has several
numeric cells corrupted by extraction; the legible anchors are:

- **[13] Mroczkowski** — Flex10KA.  A classic one-round-per-clock
  iterative design with EAB S-boxes and precomputed round keys.
- **[14] Zigiotto & d'Amore** — Acex1K, *no embedded memory*,
  1965 LCs, 61.2 Mbps, encrypt-only: a low-cost narrow-datapath
  design with logic-mapped S-boxes.
- **[1] Panato et al. (SBCCI'02)** — Apex20K-1X: the authors' own
  high-performance IP (wide datapath, short round).
- **[15] Altera Hammercores** — Apex20KE, 57344 memory bits per
  direction: a fully pipelined round-unrolled processor.

Each baseline is modeled *structurally* from its published design
style and run through the same mapper/timing flow as the paper's
design; reported numbers, where recoverable, ride along for the
Table 3 bench to print side by side.  ``None`` marks cells the source
text lost — EXPERIMENTS.md discusses them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.fpga.devices import Device, device as lookup_device
from repro.fpga.report import FitReport
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


@dataclass(frozen=True)
class BaselineDesign:
    """One Table 3 row: a published design and its reported numbers."""

    key: str
    reference: str
    author: str
    technology: str
    spec: ArchitectureSpec
    #: Force S-boxes into logic even though the device has async EABs
    #: (the [14] design choice).
    rom_in_logic: bool = False
    #: Reported (memory bits, LCs, Mbps); None = lost in extraction.
    reported_memory: Optional[int] = None
    reported_lcs: Optional[int] = None
    reported_mbps: Optional[float] = None

    def device(self) -> Device:
        dev = lookup_device(self.technology)
        if self.rom_in_logic and dev.memory is not None:
            dev = replace(dev, memory=None)
        return dev

    def fit(self) -> FitReport:
        """Run the design through the reproduction's synthesis flow."""
        return compile_spec(self.spec, self.device(), strict=False)


BASELINES: Tuple[BaselineDesign, ...] = (
    BaselineDesign(
        key="mroczkowski",
        reference="[13]",
        author="Mroczkowski",
        technology="Flex10KA",
        spec=ArchitectureSpec(
            name="baseline-mroczkowski",
            variant=Variant.ENCRYPT,
            sub_width=128,
            wide_width=128,
            key_schedule="precomputed",
        ),
    ),
    BaselineDesign(
        key="zigiotto",
        reference="[14]",
        author="Zigiotto & d'Amore",
        technology="Acex1K",
        spec=ArchitectureSpec(
            name="baseline-zigiotto",
            variant=Variant.ENCRYPT,
            sub_width=8,
            wide_width=32,
            key_schedule="on_the_fly",
        ),
        rom_in_logic=True,
        reported_memory=0,
        reported_lcs=1965,
        reported_mbps=61.2,
    ),
    BaselineDesign(
        key="panato-hp",
        reference="[1]",
        author="Panato et al. (SBCCI'02)",
        technology="Apex20K",
        spec=ArchitectureSpec(
            name="baseline-panato-hp",
            variant=Variant.ENCRYPT,
            sub_width=128,
            wide_width=128,
            key_schedule="precomputed",
        ),
    ),
    BaselineDesign(
        key="hammercores",
        reference="[15]",
        author="Altera Hammercores",
        technology="Apex20KE",
        spec=ArchitectureSpec(
            name="baseline-hammercores",
            variant=Variant.ENCRYPT,
            sub_width=128,
            wide_width=128,
            key_schedule="precomputed",
            unrolled_rounds=10,
            pipelined=True,
        ),
        reported_memory=57344,
    ),
)


def baseline(key: str) -> BaselineDesign:
    """Look a baseline up by its short key."""
    for design in BASELINES:
        if design.key == key:
            return design
    raise KeyError(f"unknown baseline {key!r}; "
                   f"known: {[d.key for d in BASELINES]}")


def table3_rows() -> Dict[str, Dict[str, object]]:
    """Modeled-vs-reported rows for the Table 3 bench."""
    rows: Dict[str, Dict[str, object]] = {}
    for design in BASELINES:
        fit = design.fit()
        rows[design.key] = {
            "reference": design.reference,
            "author": design.author,
            "technology": design.technology,
            "modeled_memory": fit.memory_bits,
            "modeled_lcs": fit.logic_elements,
            "modeled_mbps": fit.throughput_mbps,
            "reported_memory": design.reported_memory,
            "reported_lcs": design.reported_lcs,
            "reported_mbps": design.reported_mbps,
        }
    return rows
