"""AES-192/256 device variants — extending the paper's AES-128 design.

The paper notes (§3/§4) that AES defines three versions by key size
but implements only AES-128.  The mixed 32/128 architecture extends
naturally, and this module models the extension at the same level the
Table 2 flow works at:

- the **round count** grows (10/12/14), and each round still costs 5
  cycles (the key unit's one-word-per-cycle rate keeps pace with the
  4 ByteSub cycles regardless of Nk — KStran just fires every Nk
  words instead of every 4);
- the **setup pass** for decrypt-capable devices covers the full
  expansion minus the raw key words: 4·(Nr+1) − Nk cycles
  (40 / 46 / 52);
- **key loading** needs ⌈Nk·32 / 128⌉ ``wr_key`` beats on the 128-bit
  bus (1 / 2 / 2);
- the **area delta** is confined to the key unit: Nk-word key latch
  and schedule window instead of 4-word ones (the datapath, S-boxes
  and control are unchanged except one more round-counter state).

The behavioral model (:class:`repro.aes.cipher.Rijndael`) already
implements all three sizes bit-exactly against FIPS-197 Appendix C,
so the cycle/area model here is grounded functionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.spec import paper_spec
from repro.fpga.calibration import LOGIC_FIT
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant

#: Cycles per round of the mixed 32/128 architecture.
_CYCLES_PER_ROUND = 5


@dataclass(frozen=True)
class KeySizeVariant:
    """One AES key-size option of the extended device."""

    key_bits: int

    def __post_init__(self) -> None:
        if self.key_bits not in (128, 192, 256):
            raise ValueError("AES key size is 128, 192 or 256 bits")

    @property
    def nk(self) -> int:
        """Key length in 32-bit words."""
        return self.key_bits // 32

    @property
    def rounds(self) -> int:
        """Nr = Nk + 6 for AES (Nb = 4)."""
        return self.nk + 6

    @property
    def block_latency_cycles(self) -> int:
        """Still 5 cycles per round — the key unit keeps pace."""
        return self.rounds * _CYCLES_PER_ROUND

    @property
    def key_setup_cycles(self) -> int:
        """Forward-expansion pass length for decrypt-capable devices.

        One word per cycle over the words not given by the raw key:
        4·(Nr + 1) − Nk.
        """
        return 4 * (self.rounds + 1) - self.nk

    @property
    def key_load_beats(self) -> int:
        """``wr_key`` beats on the 128-bit din bus."""
        return -(-self.key_bits // 128)

    @property
    def extra_key_register_bits(self) -> int:
        """Key-unit register growth over the AES-128 device.

        The key latch and the schedule window each widen from 4 to Nk
        words.
        """
        return 2 * (self.nk - 4) * 32

    def extra_les(self) -> int:
        """Estimated LE cost over the AES-128 device.

        The widened registers are unpacked latches plus packed window
        words with their XOR LUTs; plus a few round-decode terms.
        """
        if self.key_bits == 128:
            return 0
        widened_words = self.nk - 4
        unpacked_ff = widened_words * 32  # key latch growth
        window_luts = widened_words * 32  # schedule window XOR/mux
        decode_luts = 6  # wider round compare + KStran cadence
        return round(unpacked_ff + LOGIC_FIT * (window_luts
                                                + decode_luts))

    def performance(self, variant: Variant = Variant.ENCRYPT,
                    family: str = "Acex1K") -> Dict[str, float]:
        """Latency/throughput at the family's Table 2 clock.

        The clock period is unchanged: the critical paths (S-box read,
        mix stage) do not involve Nk.
        """
        base = compile_spec(paper_spec(variant), family)
        latency_ns = self.block_latency_cycles * base.clock_ns
        return {
            "clock_ns": base.clock_ns,
            "latency_cycles": self.block_latency_cycles,
            "latency_ns": latency_ns,
            "throughput_mbps": 128 * 1000.0 / latency_ns,
            "logic_elements": base.logic_elements + self.extra_les(),
        }


#: The three AES versions (paper §3: "AES-128, AES-192 and AES-256").
AES_VARIANTS: Tuple[KeySizeVariant, ...] = (
    KeySizeVariant(128),
    KeySizeVariant(192),
    KeySizeVariant(256),
)


def key_size_table(variant: Variant = Variant.ENCRYPT,
                   family: str = "Acex1K") -> str:
    """Render the key-size extension comparison."""
    header = (
        f"{'version':<9}{'rounds':>7}{'latency':>9}{'setup':>7}"
        f"{'ns':>7}{'Mbps':>8}{'LEs':>7}"
    )
    lines = [f"AES key-size extension on {family} "
             f"({variant.value} device):", header,
             "-" * len(header)]
    for option in AES_VARIANTS:
        perf = option.performance(variant, family)
        lines.append(
            f"AES-{option.key_bits:<5}{option.rounds:>7}"
            f"{option.block_latency_cycles:>9}"
            f"{option.key_setup_cycles:>7}"
            f"{perf['latency_ns']:>7.0f}"
            f"{perf['throughput_mbps']:>8.1f}"
            f"{perf['logic_elements']:>7.0f}"
        )
    return "\n".join(lines)
