"""Architecture specification — one point in the design space.

The paper's design is ``sub_width=32, wide_width=128`` with on-the-fly
keys: 5 cycles/round.  §4 names the all-32-bit alternative (12
cycles/round) and §6 discusses 8/16-bit shrinks and a 128-bit widening
whose benefit is capped by the key schedule.  This module encodes the
cycle arithmetic for the whole family so the explorer and the Table 2
flow share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.ip.control import NUM_ROUNDS, Variant

#: Block size in bits (AES).
BLOCK_BITS = 128

#: Legal ByteSub datapath widths.
LEGAL_SUB_WIDTHS = (8, 16, 32, 128)

#: Legal widths for the ShiftRow/MixColumn/AddKey stage.  Narrower
#: than 32 makes no sense (MixColumn consumes whole columns).
LEGAL_WIDE_WIDTHS = (32, 128)

#: Key-schedule word rate: one 32-bit word per cycle through KStran,
#: hence 4 cycles to produce a round key — the paper's §6 bottleneck.
KEY_CYCLES_PER_ROUND = 4


@dataclass(frozen=True)
class ArchitectureSpec:
    """A synthesizable design point."""

    name: str
    variant: Variant
    sub_width: int = 32
    wide_width: int = 128
    key_schedule: str = "on_the_fly"  # or "precomputed"
    sync_rom: bool = False
    unrolled_rounds: int = 1
    pipelined: bool = False

    def __post_init__(self) -> None:
        if self.sub_width not in LEGAL_SUB_WIDTHS:
            raise ValueError(
                f"sub_width must be one of {LEGAL_SUB_WIDTHS}"
            )
        if self.wide_width not in LEGAL_WIDE_WIDTHS:
            raise ValueError(
                f"wide_width must be one of {LEGAL_WIDE_WIDTHS}"
            )
        if self.wide_width < self.sub_width:
            raise ValueError("wide_width must be >= sub_width")
        if self.key_schedule not in ("on_the_fly", "precomputed"):
            raise ValueError("key_schedule: on_the_fly or precomputed")
        if not 1 <= self.unrolled_rounds <= NUM_ROUNDS:
            raise ValueError("unrolled_rounds must be 1..10")
        if self.pipelined and self.unrolled_rounds == 1:
            raise ValueError("pipelining requires unrolled rounds")

    # ------------------------------------------------------ cycle model
    @property
    def sub_passes(self) -> int:
        """Clock cycles of the (I)Byte Sub stage per round."""
        passes = BLOCK_BITS // self.sub_width
        if self.sync_rom:
            passes += 1  # pipeline fill for the registered ROM read
        return passes

    @property
    def wide_passes(self) -> int:
        """Clock cycles of the ShiftRow/MixColumn/AddKey work per round.

        At 128 bits the two functions fuse into one cycle; narrower
        stages pay one pass per chunk for MixColumn and another for
        the ShiftRow/AddKey transfer (the paper's 12-cycle all-32-bit
        count: 4 + 4 + 4).
        """
        if self.wide_width == BLOCK_BITS:
            return 1
        return 2 * (BLOCK_BITS // self.wide_width)

    @property
    def cipher_cycles_per_round(self) -> int:
        """Round cycles from the cipher datapath alone."""
        if self.unrolled_rounds == NUM_ROUNDS:
            return 1  # a full combinational/pipelined round per clock
        return self.sub_passes + self.wide_passes

    @property
    def key_cycles_per_round(self) -> int:
        """Round cycles demanded by the key schedule."""
        if self.key_schedule == "precomputed":
            return 0
        return KEY_CYCLES_PER_ROUND + (1 if self.sync_rom else 0)

    @property
    def cycles_per_round(self) -> int:
        """Effective round time: the slower of cipher and key schedule.

        This is the paper's §6 observation made computable: "larger
        architectures do not provide a large increase of performance,
        as the key generation is slower than the cipher part".
        """
        return max(self.cipher_cycles_per_round, self.key_cycles_per_round)

    @property
    def block_latency_cycles(self) -> int:
        """Capture-to-result latency in clock cycles."""
        return NUM_ROUNDS * self.cycles_per_round

    @property
    def cycles_per_block_throughput(self) -> int:
        """Cycles between results in steady-state streaming.

        A pipelined unrolled design retires one block per round-slot;
        iterative designs retire one per full latency (the Data_In/Out
        registers hide the bus, so there is no extra gap).
        """
        if self.pipelined:
            return self.cycles_per_round
        return self.block_latency_cycles

    # --------------------------------------------------------- memories
    @property
    def data_sbox_count(self) -> int:
        """S-boxes in the (I)Byte Sub unit(s)."""
        per_direction = self.sub_width // 8
        directions = 2 if self.variant is Variant.BOTH else 1
        return per_direction * directions * self.unrolled_rounds

    @property
    def kstran_sbox_count(self) -> int:
        """S-boxes dedicated to KStran.

        Fixed at 4 per direction regardless of datapath width — the
        paper's §6: "the 8 k[bit] used in KStran will not decrease".
        The BOTH device keeps each direction's bank (Table 2: 32768
        bits total).
        """
        directions = 2 if self.variant is Variant.BOTH else 1
        return 4 * directions

    @property
    def rom_bits(self) -> int:
        """Total S-box ROM bits of the design."""
        return 2048 * (self.data_sbox_count + self.kstran_sbox_count)

    def renamed(self, name: str) -> "ArchitectureSpec":
        """A copy with a different display name."""
        return replace(self, name=name)


def paper_spec(variant: Variant, sync_rom: bool = False) -> ArchitectureSpec:
    """The paper's design point for a given device variant."""
    suffix = "-syncrom" if sync_rom else ""
    return ArchitectureSpec(
        name=f"paper-{variant.value}{suffix}",
        variant=variant,
        sub_width=32,
        wide_width=128,
        key_schedule="on_the_fly",
        sync_rom=sync_rom,
    )


#: The three devices of Table 2.
PAPER_SPECS: Dict[str, ArchitectureSpec] = {
    variant.value: paper_spec(variant)
    for variant in (Variant.ENCRYPT, Variant.DECRYPT, Variant.BOTH)
}


def width_sweep_specs(variant: Variant = Variant.ENCRYPT,
                      ) -> Tuple[ArchitectureSpec, ...]:
    """The §6 spectrum: 8/16/32-bit uniform, the paper's mixed 32/128,
    and a full 128-bit design point."""
    return (
        ArchitectureSpec(f"uniform-8-{variant.value}", variant,
                         sub_width=8, wide_width=32),
        ArchitectureSpec(f"uniform-16-{variant.value}", variant,
                         sub_width=16, wide_width=32),
        ArchitectureSpec(f"uniform-32-{variant.value}", variant,
                         sub_width=32, wide_width=32),
        ArchitectureSpec(f"mixed-32-128-{variant.value}", variant,
                         sub_width=32, wide_width=128),
        ArchitectureSpec(f"full-128-{variant.value}", variant,
                         sub_width=128, wide_width=128),
        ArchitectureSpec(f"full-128-precomp-{variant.value}", variant,
                         sub_width=128, wide_width=128,
                         key_schedule="precomputed"),
    )
