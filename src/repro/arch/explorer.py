"""Design-space exploration: the paper's §6 width discussion, measured.

The conclusions argue three things the sweep quantifies:

1. "A smaller architecture, as 16 or 8 [bits], will use many clock
   cycles and the clock speed will not reverse this problem" — the
   8-bit design takes 48 cycles/round, nearly 10x the mixed design's
   latency, while saving only the data-S-box bits (KStran's 8 Kbit
   stays, §6).
2. "Larger architectures do not provide a large increase of
   performance, as the key generation is slower than the cipher part"
   — a 128-bit datapath is held at 4 cycles/round by the one-word-
   per-cycle key schedule, so it buys only 20 % latency for ~3x the
   S-box memory (unless round keys are precomputed, the ablation
   point).
3. The mixed 32/128 point is the area-performance knee — "a 32[-bit]
   solution could has a interesting area x performance aspect".
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.arch.spec import ArchitectureSpec, width_sweep_specs
from repro.fpga.devices import Device
from repro.fpga.report import FitReport
from repro.fpga.synthesis import compile_spec
from repro.ip.control import Variant


def explore_widths(target: Union[Device, str] = "Acex1K",
                   variant: Variant = Variant.ENCRYPT,
                   specs: Iterable[ArchitectureSpec] = (),
                   ) -> List[FitReport]:
    """Fit the width spectrum on one device (non-strict: oversize
    points are still reported so the sweep shows *why* they lose)."""
    points = list(specs) or list(width_sweep_specs(variant))
    return [compile_spec(spec, target, strict=False) for spec in points]


def sweep_report(reports: List[FitReport]) -> str:
    """Render a sweep as an area-vs-performance table."""
    header = (
        f"{'design':<28}{'cyc/rnd':>8}{'latency':>10}{'clk':>6}"
        f"{'Mbps':>8}{'LEs':>7}{'ROM bits':>10}{'Mbps/kLE':>10}{'fits':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in reports:
        lines.append(
            f"{r.spec.name:<28}{r.spec.cycles_per_round:>8}"
            f"{r.latency_ns:>8.0f}ns{r.clock_ns:>5.0f}n"
            f"{r.throughput_mbps:>8.0f}{r.logic_elements:>7}"
            f"{r.spec.rom_bits:>10}{r.efficiency_mbps_per_kle:>10.1f}"
            f"{'yes' if r.fits else 'NO':>6}"
        )
    return "\n".join(lines)


def knee_design(reports: List[FitReport]) -> FitReport:
    """The efficiency knee among designs that *fit* the device: best
    throughput per logic cell.

    The paper's mixed 32/128 design should win this metric on its own
    device — asserted by the width-sweep bench.  Oversized points
    (e.g. a 128-bit datapath wanting 20 EABs of the EP1K100's 12) are
    excluded: a design that does not fit delivers 0 Mbps.
    """
    fitting = [r for r in reports if r.fits]
    if not fitting:
        raise ValueError("no fitting reports to choose from")
    return max(fitting, key=lambda r: r.efficiency_mbps_per_kle)
