"""Analysis layer: the paper's tables and figures, plus the two
extensions the paper names — power analysis (its stated future work)
and single-event-upset testing (its reference [16]).

- :mod:`repro.analysis.metrics` — latency/throughput/efficiency math
  shared by tables and benches.
- :mod:`repro.analysis.tables` — generators for Tables 1, 2 and 3.
- :mod:`repro.analysis.figures` — data/ASCII reproductions of
  Figures 1–9.
- :mod:`repro.analysis.power` — toggle-count dynamic power model over
  RTL traces.
- :mod:`repro.analysis.seu` — register bit-flip fault injection
  campaigns against the cycle-accurate core.
"""

from repro.analysis.metrics import (
    efficiency_mbps_per_kle,
    latency_ns,
    throughput_mbps,
)
from repro.analysis.tables import table1_text, table2_text, table3_text

__all__ = [
    "efficiency_mbps_per_kle",
    "latency_ns",
    "table1_text",
    "table2_text",
    "table3_text",
    "throughput_mbps",
]
