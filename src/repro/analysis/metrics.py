"""Performance metric arithmetic (paper §5's evaluation parameters).

The paper evaluates on six parameters: logic cells, memory, pins,
latency, clock frequency and throughput, with throughput "defined as
the block size (128) divided by latency".  These helpers keep that
arithmetic in one place for the tables, benches and tests.
"""

from __future__ import annotations

#: AES block size in bits.
BLOCK_BITS = 128


def latency_ns(cycles: int, clock_ns: float) -> float:
    """Processing latency: cycle count times clock period."""
    if cycles < 0 or clock_ns <= 0:
        raise ValueError("cycles must be >= 0 and clock positive")
    return cycles * clock_ns


def throughput_mbps(latency_ns_value: float,
                    block_bits: int = BLOCK_BITS) -> float:
    """The paper's throughput: block size / latency, in Mbit/s."""
    if latency_ns_value <= 0:
        raise ValueError("latency must be positive")
    return block_bits * 1000.0 / latency_ns_value


def clock_mhz(clock_ns: float) -> float:
    """Clock frequency from period."""
    if clock_ns <= 0:
        raise ValueError("clock period must be positive")
    return 1000.0 / clock_ns


def efficiency_mbps_per_kle(throughput: float, logic_elements: int) -> float:
    """Area efficiency: throughput per thousand logic cells."""
    if logic_elements <= 0:
        raise ValueError("logic elements must be positive")
    return throughput / (logic_elements / 1000.0)


def combined_slowdown(single_mbps: float, combined_mbps: float) -> float:
    """Fractional throughput drop of the combined device (paper §5).

    The paper: "the performance drops around 22 % when the encrypt and
    decrypt run at the same device" — i.e. (enc - both) / enc.
    """
    if single_mbps <= 0:
        raise ValueError("single-device throughput must be positive")
    return (single_mbps - combined_mbps) / single_mbps
