"""Generators for the paper's three tables.

Each function regenerates a table from the living model (never from
stored strings), so any drift between the implementation and the
claimed results breaks the corresponding bench.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.arch.baselines import table3_rows
from repro.fpga.report import FitReport, render_table2
from repro.fpga.synthesis import compile_table2
from repro.ip.control import Variant
from repro.ip.interface import signal_table

#: The paper's Table 2, transcribed for comparison benches/tests:
#: (variant, family) -> (LCs, memory bits, pins, latency ns, clk ns,
#: throughput Mbps as printed).
PAPER_TABLE2: Dict[Tuple[str, str], Tuple[int, int, int, int, int, int]] = {
    ("encrypt", "Acex1K"): (2114, 16384, 261, 700, 14, 182),
    ("decrypt", "Acex1K"): (2217, 16384, 261, 750, 15, 170),
    ("both", "Acex1K"): (3222, 32768, 262, 850, 17, 150),
    ("encrypt", "Cyclone"): (4057, 0, 261, 500, 10, 256),
    ("decrypt", "Cyclone"): (4211, 0, 261, 550, 11, 232),
    ("both", "Cyclone"): (7034, 0, 262, 650, 13, 197),
}

#: Device occupancy percentages as printed in the paper.
PAPER_TABLE2_PERCENT: Dict[Tuple[str, str], Tuple[int, int, int]] = {
    ("encrypt", "Acex1K"): (42, 33, 78),
    ("decrypt", "Acex1K"): (44, 33, 78),
    ("both", "Acex1K"): (64, 66, 78),
    ("encrypt", "Cyclone"): (20, 0, 87),
    ("decrypt", "Cyclone"): (20, 0, 87),
    ("both", "Cyclone"): (35, 0, 87),
}


def table1_text(variant: Variant = Variant.BOTH) -> str:
    """Table 1: the device signals."""
    return signal_table(variant)


def table2_fits() -> List[FitReport]:
    """The six synthesis fits behind Table 2."""
    return compile_table2()


def table2_text() -> str:
    """Table 2 regenerated from the model, in the paper's layout."""
    return render_table2(table2_fits())


def table2_comparison() -> List[Dict[str, object]]:
    """Model-vs-paper rows for every Table 2 cell (EXPERIMENTS.md)."""
    rows = []
    for report in table2_fits():
        key = (report.spec.variant.value, report.device.family)
        lcs, memory, pins, latency, clk, mbps = PAPER_TABLE2[key]
        rows.append(
            {
                "design": key[0],
                "family": key[1],
                "paper_lcs": lcs,
                "model_lcs": report.logic_elements,
                "lcs_err_pct": 100.0 * (report.logic_elements - lcs) / lcs,
                "paper_memory": memory,
                "model_memory": report.memory_bits,
                "paper_pins": pins,
                "model_pins": report.pins,
                "paper_latency_ns": latency,
                "model_latency_ns": report.latency_ns,
                "paper_clk_ns": clk,
                "model_clk_ns": report.clock_ns,
                "paper_mbps": mbps,
                "model_mbps": report.throughput_mbps,
            }
        )
    return rows


def table3_text() -> str:
    """Table 3: literature comparison, modeled next to reported."""
    rows = table3_rows()

    def cell(value: Optional[object], fmt: str = "{}") -> str:
        return fmt.format(value) if value is not None else "(lost)"

    lines = [
        f"{'Ref':<6}{'Author':<28}{'Technology':<12}"
        f"{'Memory':<20}{'LCs':<16}{'Mbps':<18}"
    ]
    lines.append("-" * 100)
    for row in rows.values():
        mem = (f"{row['modeled_memory']} "
               f"(rep {cell(row['reported_memory'])})")
        lcs = (f"{row['modeled_lcs']} "
               f"(rep {cell(row['reported_lcs'])})")
        mbps = (f"{row['modeled_mbps']:.0f} "
                f"(rep {cell(row['reported_mbps'])})")
        lines.append(
            f"{row['reference']:<6}{row['author']:<28}"
            f"{row['technology']:<12}{mem:<20}{lcs:<16}{mbps:<18}"
        )
    lines.append(
        "Note: 'rep' cells are the paper's Table 3 where the source "
        "text preserved them; '(lost)' marks extraction-corrupted "
        "cells (see EXPERIMENTS.md)."
    )
    return "\n".join(lines)
