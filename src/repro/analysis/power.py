"""Toggle-count dynamic power model — the paper's stated future work.

The paper closes with: "As future work, we propose a power analysis of
the architecture.  As one of the possible applications area [is]
mobile systems, this feature is very interesting."  This module is
that analysis, at the fidelity a pre-layout flow offers: CMOS dynamic
power is P = α·C·V²·f, and at the RTL the activity term α·C is
proportional to (a) register bit toggles, (b) embedded-memory reads
and (c) the clock tree load.  We integrate all three over real
workloads running on the cycle-accurate core.

Energy coefficients are order-of-magnitude figures for the two
process generations (2.5 V Acex1K vs 1.5 V Cyclone cores — a 0.36x
voltage-squared scaling), documented per constant.  Absolute mW values
are therefore indicative; *relative* results (decrypt vs encrypt,
Cyclone vs Acex, idle vs streaming) are structural and tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.ip.control import Variant
from repro.ip.core import DIR_DECRYPT, DIR_ENCRYPT
from repro.ip.testbench import Testbench
from repro.rtl.trace import Trace


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy coefficients for one family, in picojoules."""

    family: str
    core_volts: float
    #: Energy per register-bit toggle (flip-flop + fanout wire).
    pj_per_ff_toggle: float
    #: Energy per embedded-memory (or LUT-ROM) read of one S-box.
    pj_per_rom_read: float
    #: Clock-tree energy per flip-flop per cycle.
    pj_per_ff_clock: float


#: Acex1K: 2.5 V core, 0.22 um.
ACEX_ENERGY = EnergyModel(
    family="Acex1K",
    core_volts=2.5,
    pj_per_ff_toggle=0.50,
    pj_per_rom_read=15.0,
    pj_per_ff_clock=0.08,
)

#: Cyclone: 1.5 V core, 0.13 um — coefficients scale with V^2 (0.36x)
#: and a smaller-geometry capacitance credit.
CYCLONE_ENERGY = EnergyModel(
    family="Cyclone",
    core_volts=1.5,
    pj_per_ff_toggle=0.50 * 0.36 * 0.8,
    pj_per_rom_read=15.0 * 0.36 * 0.8,
    pj_per_ff_clock=0.08 * 0.36 * 0.8,
)

ENERGY_MODELS: Dict[str, EnergyModel] = {
    "Acex1K": ACEX_ENERGY,
    "Cyclone": CYCLONE_ENERGY,
}

#: S-box reads per processed block: 4 data words x 10 rounds + 10
#: KStran reads (one per round key).
ROM_READS_PER_BLOCK = 4 * 10 + 10


@dataclass(frozen=True)
class PowerReport:
    """Measured activity + modeled power for one workload run."""

    family: str
    variant: str
    direction: str
    blocks: int
    cycles: int
    clock_ns: float
    register_toggles: int
    rom_reads: int
    flipflops: int
    energy_pj: float
    breakdown_pj: Dict[str, float]

    @property
    def dynamic_mw(self) -> float:
        """Average dynamic power over the run."""
        run_ns = self.cycles * self.clock_ns
        if run_ns == 0:
            return 0.0
        return self.energy_pj / run_ns  # pJ/ns == mW

    @property
    def energy_per_block_nj(self) -> float:
        """Energy per processed block (the mobile-systems figure)."""
        if self.blocks == 0:
            return 0.0
        return self.energy_pj / self.blocks / 1000.0

    def render(self) -> str:
        lines = [
            f"power [{self.family}] {self.variant}/{self.direction}: "
            f"{self.blocks} blocks in {self.cycles} cycles "
            f"@ {self.clock_ns:.0f} ns",
            f"  register toggles : {self.register_toggles}",
            f"  S-box reads      : {self.rom_reads}",
            f"  dynamic power    : {self.dynamic_mw:.2f} mW",
            f"  energy per block : {self.energy_per_block_nj:.2f} nJ",
        ]
        for source, pj in self.breakdown_pj.items():
            lines.append(f"    {source:<14}: {pj:.0f} pJ")
        return "\n".join(lines)


def measure_power(
    blocks: Sequence[bytes],
    key: bytes,
    variant: Variant = Variant.ENCRYPT,
    direction: str = "encrypt",
    family: str = "Acex1K",
    clock_ns: Optional[float] = None,
) -> PowerReport:
    """Run a workload on the cycle-accurate core and model its power.

    ``clock_ns`` defaults to the paper's Table 2 clock for the
    (variant, family) pair via the synthesis flow.
    """
    if direction not in ("encrypt", "decrypt"):
        raise ValueError("direction must be 'encrypt' or 'decrypt'")
    model = ENERGY_MODELS.get(family)
    if model is None:
        raise KeyError(f"no energy model for family {family!r}; "
                       f"known: {sorted(ENERGY_MODELS)}")
    bench = Testbench(variant)
    trace = Trace(bench.simulator, bench.simulator.registers)
    bench.load_key(key)
    start_cycle = bench.simulator.cycle
    dir_code = DIR_ENCRYPT if direction == "encrypt" else DIR_DECRYPT
    bench.stream_blocks(list(blocks), direction=dir_code)
    cycles = bench.simulator.cycle - start_cycle

    if clock_ns is None:
        clock_ns = _table2_clock(variant, family)

    toggles = trace.total_toggles()
    flipflops = sum(r.width for r in bench.simulator.registers)
    rom_reads = len(blocks) * ROM_READS_PER_BLOCK
    breakdown = {
        "registers": toggles * model.pj_per_ff_toggle,
        "rom_reads": rom_reads * model.pj_per_rom_read,
        "clock_tree": flipflops * cycles * model.pj_per_ff_clock,
    }
    return PowerReport(
        family=family,
        variant=variant.value,
        direction=direction,
        blocks=len(blocks),
        cycles=cycles,
        clock_ns=clock_ns,
        register_toggles=toggles,
        rom_reads=rom_reads,
        flipflops=flipflops,
        energy_pj=sum(breakdown.values()),
        breakdown_pj=breakdown,
    )


def _table2_clock(variant: Variant, family: str) -> float:
    from repro.arch.spec import paper_spec
    from repro.fpga.synthesis import compile_spec

    return compile_spec(paper_spec(variant), family).clock_ns
