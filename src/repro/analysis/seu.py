"""Single-event-upset fault injection — the paper's reference [16].

The authors' companion work ("Testing a Rijndael VHDL Description to
Single Event Upsets", SIM 2002) bombards the design with register bit
flips and classifies the outcomes.  We reproduce that campaign on the
cycle-accurate model: flip one randomly chosen register bit at a
randomly chosen cycle while a block is in flight, let the run finish,
and compare the output against the golden model.

Outcome classes:

- **corrupted** — the block's output differs from the golden value
  (the common case: AES's diffusion turns one flipped state bit into
  a ~50 % avalanche within a couple of rounds);
- **masked** — the output is still correct (the flipped bit was dead
  for the remainder of the computation: an already-consumed buffer
  bit, an idle direction register, a stale build word, ...);
- **hung** — the control FSM lost its way and ``data_ok`` never rose
  (flips landing in the round/step/top registers can do this).

The campaign reports per-register sensitivity, the data a hardening
effort (TMR, parity) would be prioritized by.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aes.cipher import AES128
from repro.ip.control import Variant
from repro.ip.core import DIR_ENCRYPT
from repro.ip.testbench import Testbench


@dataclass(frozen=True)
class Injection:
    """One fault: which register, which bit, how many cycles in."""

    register: str
    bit: int
    cycle_offset: int
    outcome: str  # "corrupted" | "masked" | "hung"


@dataclass
class CampaignResult:
    """Aggregate statistics of an SEU campaign."""

    injections: List[Injection] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.injections)

    def count(self, outcome: str) -> int:
        return sum(1 for i in self.injections if i.outcome == outcome)

    @property
    def corruption_rate(self) -> float:
        return self.count("corrupted") / self.total if self.total else 0.0

    def by_register(self) -> Dict[str, Tuple[int, int]]:
        """register -> (injections, corruptions+hangs)."""
        table: Dict[str, Tuple[int, int]] = {}
        for inj in self.injections:
            hits, bad = table.get(inj.register, (0, 0))
            table[inj.register] = (
                hits + 1,
                bad + (1 if inj.outcome != "masked" else 0),
            )
        return table

    def render(self, top: int = 12) -> str:
        detected = self.count("detected")
        detected_note = f"{detected} detected, " if detected else ""
        lines = [
            f"SEU campaign: {self.total} injections — "
            f"{self.count('corrupted')} corrupted, "
            f"{detected_note}"
            f"{self.count('masked')} masked, "
            f"{self.count('hung')} hung "
            f"(undetected corruption rate {self.corruption_rate:.0%})",
            f"{'register':<24}{'hits':>6}{'upsets':>8}{'sensitivity':>12}",
        ]
        ranked = sorted(
            self.by_register().items(),
            key=lambda item: (-item[1][1] / item[1][0], item[0]),
        )
        for name, (hits, bad) in ranked[:top]:
            lines.append(
                f"{name:<24}{hits:>6}{bad:>8}{bad / hits:>11.0%}"
            )
        return "\n".join(lines)


def inject_once(
    key: bytes,
    block: bytes,
    register: str,
    bit: int,
    cycle_offset: int,
    variant: Variant = Variant.ENCRYPT,
    hardened: bool = False,
) -> Injection:
    """Run one block with a single bit flip ``cycle_offset`` cycles
    after capture; classify the outcome against the golden model.

    On the hardened core (``hardened=True``) a wrong output that the
    parity plane flagged is classified ``detected`` — the host can
    discard and retry the block, which is the mitigation's value.
    """
    golden = AES128(key).encrypt_block(block)
    bench = Testbench(variant, hardened=hardened)
    bench.load_key(key)
    if hardened:
        bench.core.clear_error()  # drop any setup-phase latch
    bench.write_block(block, direction=DIR_ENCRYPT)
    latency = bench.core.latency_cycles
    if not 0 <= cycle_offset < latency:
        raise ValueError(
            f"cycle_offset must be in [0, {latency}), got {cycle_offset}"
        )
    bench.simulator.step(cycle_offset)
    target = _find_register(bench, register)
    target.deposit(target.value ^ (1 << bit))
    try:
        result = bench.wait_result(max_cycles=4 * latency)
    except TimeoutError:
        outcome = "hung"
    except ValueError:
        # A corrupted control register (e.g. a round counter outside
        # 1..10) drives the model into an illegal micro-state; the
        # silicon equivalent is an FSM lock-up, so classify as hung.
        outcome = "hung"
    else:
        if result == golden:
            outcome = "masked"
        elif hardened and bench.core.error_detected.value:
            outcome = "detected"
        else:
            outcome = "corrupted"
    return Injection(register, bit, cycle_offset, outcome)


def run_campaign(
    injections: int,
    seed: int = 2003,
    key: Optional[bytes] = None,
    variant: Variant = Variant.ENCRYPT,
    targets: Optional[List[str]] = None,
    hardened: bool = False,
) -> CampaignResult:
    """Random fault-injection campaign against encryption runs.

    With ``hardened=True`` the campaign targets the TMR/parity core of
    :mod:`repro.ip.hardened`; flips land on individual physical
    flip-flops (including single TMR copies, which the majority vote
    masks) and wrong-but-flagged outputs classify as ``detected``.
    """
    if injections < 1:
        raise ValueError("need at least one injection")
    rng = random.Random(seed)
    key = key if key is not None else bytes(rng.randrange(256)
                                            for _ in range(16))
    probe = Testbench(variant, hardened=hardened)
    registers = {
        r.name: r.width
        for r in probe.simulator.registers
        if targets is None or r.name in targets
    }
    if not registers:
        raise ValueError("no matching target registers")
    result = CampaignResult()
    names = sorted(registers)
    latency = probe.core.latency_cycles
    for _ in range(injections):
        block = bytes(rng.randrange(256) for _ in range(16))
        name = rng.choice(names)
        bit = rng.randrange(registers[name])
        offset = rng.randrange(latency)
        result.injections.append(
            inject_once(key, block, name, bit, offset, variant,
                        hardened=hardened)
        )
    return result


def _find_register(bench: Testbench, name: str):
    for reg in bench.simulator.registers:
        if reg.name == name:
            return reg
    raise KeyError(f"no register named {name!r}")
