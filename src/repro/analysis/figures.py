"""Reproductions of the paper's Figures 1–9.

The paper's figures are structural diagrams and one table-as-figure
(the S-box).  Each function regenerates the figure's *content* from
the living model as text/data, so the benches can both display it and
assert the structure it depicts:

====  ===================================  ============================
Fig.  Paper content                        Reproduced as
====  ===================================  ============================
1     state_t 4x4 byte matrix              matrix rendering + byte map
2     encryption schedule diagram          transform trace of a block
3     KStran (rotate, ByteSub, Rcon)       step-by-step word trace
4     Byte Sub lookup                      before/after state + lookups
5     the S-box table                      16x16 derived table
6     (I)Shift Row offsets                 row-rotation picture
7     Mix Column polynomial multiply       c(x)/d(x) + a worked column
8     encrypt+decrypt architecture         block/port inventory
9     top level with Data_In/Out           process + signal inventory
====  ===================================  ============================
"""

from __future__ import annotations

from typing import List

from repro.aes.cipher import schedule_trace
from repro.aes.constants import RCON, SBOX, sbox_rows
from repro.aes.key_schedule import kstran, rot_word, sub_word
from repro.aes.state import State
from repro.aes.transforms import shift_offsets, shift_rows, sub_bytes
from repro.gf.polyring import INV_MIX_POLY, MIX_POLY, ring_mul
from repro.ip.control import Variant
from repro.ip.interface import interface_inventory, signal_table


def fig1_state() -> str:
    """Fig. 1: the state_t matrix with its column-major byte numbering."""
    state = State(bytes(range(16)))
    lines = ["state_t: 4 rows x 4 columns, one byte per cell;",
             "input byte n sits at row n mod 4, column n div 4:",
             state.render()]
    return "\n".join(lines)


def fig2_schedule(key: bytes = bytes(16),
                  block: bytes = bytes(16)) -> str:
    """Fig. 2: the encryption round schedule as an ordered trace."""
    lines = ["Encryption schedule (AES-128, 10 rounds):"]
    lines.extend(schedule_trace(key, block))
    return "\n".join(lines)


def fig3_kstran(word: int = 0x09CF4F3C, round_index: int = 1) -> str:
    """Fig. 3: KStran step by step on a real word."""
    rotated = rot_word(word)
    substituted = sub_word(rotated)
    result = kstran(word, round_index)
    rcon_word = RCON[round_index] << 24
    return "\n".join(
        [
            f"KStran(round {round_index}) on {word:08x}:",
            f"  1. shift word left : {rotated:08x}",
            f"  2. Byte Sub        : {substituted:08x}",
            f"  3. xor Rcon[{round_index}] ({rcon_word:08x}) "
            f": {result:08x}",
        ]
    )


def fig4_byte_sub() -> str:
    """Fig. 4: Byte Sub as a table lookup, shown on one state."""
    state = State(bytes(range(0, 160, 10)))
    out = sub_bytes(state)
    lines = ["Byte Sub: each byte addresses the S-box ROM;",
             "input state:", state.render(),
             "output state:", out.render(),
             "e.g. " + ", ".join(
                 f"S[{b:02x}]={SBOX[b]:02x}"
                 for b in state.to_bytes()[:4])]
    return "\n".join(lines)


def fig5_sbox() -> str:
    """Fig. 5: the 16x16 S-box table (2048 bits per ROM)."""
    lines = ["S-box (row = high nibble, column = low nibble):",
             "    " + " ".join(f"x{c:x}" for c in range(16))]
    for high, row in enumerate(sbox_rows()):
        lines.append(
            f"{high:x}x  " + " ".join(f"{v:02x}" for v in row)
        )
    lines.append("one S-box ROM: 256 entries x 8 bits = 2048 bits")
    return "\n".join(lines)


def fig6_shift_row() -> str:
    """Fig. 6: Shift Row left-rotations per row."""
    state = State(bytes(range(16)))
    out = shift_rows(state)
    offsets = shift_offsets(4)
    lines = ["Shift Row: row r rotates left by its offset "
             f"{offsets} (AES, Nb=4):",
             "input state:", state.render(),
             "output state:", out.render()]
    return "\n".join(lines)


def fig7_mix_column(column=(0xDB, 0x13, 0x53, 0x45)) -> str:
    """Fig. 7: Mix Column as multiplication by c(x), worked example.

    The default column is the FIPS-197 worked example whose product
    is (8e, 4d, a1, bc).
    """
    mixed = ring_mul(column, MIX_POLY.coeffs)
    restored = ring_mul(mixed, INV_MIX_POLY.coeffs)
    return "\n".join(
        [
            "Mix Column: column a(x) x c(x) mod x^4+1,",
            f"  c(x) = {MIX_POLY!r}",
            f"  d(x) = c(x)^-1 = {INV_MIX_POLY!r}",
            f"  a = {tuple(hex(v) for v in column)}",
            f"  c(x).a = {tuple(hex(v) for v in mixed)}",
            f"  d(x).(c(x).a) = {tuple(hex(v) for v in restored)}",
        ]
    )


def fig8_architecture() -> str:
    """Fig. 8: the encrypt+decrypt core's internal block inventory."""
    lines = [
        "Encrypt/decrypt core (BOTH variant):",
        "  state        : 4 x 32-bit word registers + source muxes",
        "  sbox_f       : 4 x 256x8 forward S-box ROMs (8192 bits)",
        "  sbox_i       : 4 x 256x8 inverse S-box ROMs (8192 bits)",
        "  key unit     : key0/key_last latches, work + build "
        "registers, KStran bank(s)",
        "  mix stage    : 128-bit ShiftRow o MixColumn o AddKey "
        "(+ inverse correction path)",
        "  control      : round(4b) + step(3b) + top(2b) FSM, "
        "5 cycles/round",
        "  enc/dec pin  : direction sampled at block start",
    ]
    return "\n".join(lines)


def fig9_top_level(variant: Variant = Variant.BOTH) -> str:
    """Fig. 9: the top level with Data_In / Out processes and pins."""
    lines: List[str] = list(interface_inventory(variant))
    lines.append("")
    lines.append(signal_table(variant))
    return "\n".join(lines)


ALL_FIGURES = {
    "fig1": fig1_state,
    "fig2": fig2_schedule,
    "fig3": fig3_kstran,
    "fig4": fig4_byte_sub,
    "fig5": fig5_sbox,
    "fig6": fig6_shift_row,
    "fig7": fig7_mix_column,
    "fig8": fig8_architecture,
    "fig9": fig9_top_level,
}
