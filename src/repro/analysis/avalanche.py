"""Diffusion statistics: avalanche behaviour of the implemented cipher.

Rijndael won the AES contest partly on *security margin*; a
reproduction should demonstrate that the implemented primitive behaves
like a strong block cipher, not just that it matches test vectors.
This module measures the classical indicators on the living
implementation:

- **avalanche effect** — flipping one input bit flips ~50 % of output
  bits;
- **strict avalanche criterion (SAC)** — each input bit flip flips
  each output bit with probability ~1/2 (measured as a matrix);
- **round-by-round diffusion** — how many output bits an input flip
  reaches after each round (full diffusion by round 2–3 for AES,
  thanks to ShiftRow + MixColumn);
- **completeness** — every output bit depends on every input bit.

These run on the behavioral model (which the cycle-accurate IP is
bit-exact against, so the results transfer).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.aes.cipher import AES128
from repro.aes.state import State
from repro.aes.transforms import (
    add_round_key,
    mix_columns,
    shift_rows,
    sub_bytes,
)

BLOCK_BITS = 128


def _flip_bit(block: bytes, bit: int) -> bytes:
    out = bytearray(block)
    out[bit // 8] ^= 0x80 >> (bit % 8)
    return bytes(out)


def _diff_bits(a: bytes, b: bytes) -> int:
    return sum(bin(x ^ y).count("1") for x, y in zip(a, b))


@dataclass(frozen=True)
class AvalancheReport:
    """Summary statistics of an avalanche measurement."""

    samples: int
    mean_flipped: float
    min_flipped: int
    max_flipped: int

    @property
    def mean_fraction(self) -> float:
        return self.mean_flipped / BLOCK_BITS

    def render(self) -> str:
        return (
            f"avalanche over {self.samples} samples: mean "
            f"{self.mean_flipped:.1f}/128 bits "
            f"({self.mean_fraction:.1%}), range "
            f"[{self.min_flipped}, {self.max_flipped}]"
        )


def avalanche_effect(samples: int = 64, seed: int = 0,
                     key: Optional[bytes] = None) -> AvalancheReport:
    """Flip a random plaintext bit; count flipped ciphertext bits."""
    rng = random.Random(seed)
    key = key or bytes(rng.randrange(256) for _ in range(16))
    aes = AES128(key)
    flips: List[int] = []
    for _ in range(samples):
        block = bytes(rng.randrange(256) for _ in range(16))
        bit = rng.randrange(BLOCK_BITS)
        base = aes.encrypt_block(block)
        other = aes.encrypt_block(_flip_bit(block, bit))
        flips.append(_diff_bits(base, other))
    return AvalancheReport(
        samples=samples,
        mean_flipped=sum(flips) / len(flips),
        min_flipped=min(flips),
        max_flipped=max(flips),
    )


def key_avalanche_effect(samples: int = 64,
                         seed: int = 1) -> AvalancheReport:
    """Flip a random *key* bit; count flipped ciphertext bits."""
    rng = random.Random(seed)
    flips: List[int] = []
    block = bytes(rng.randrange(256) for _ in range(16))
    for _ in range(samples):
        key = bytes(rng.randrange(256) for _ in range(16))
        bit = rng.randrange(BLOCK_BITS)
        key2 = _flip_bit(key, bit)
        base = AES128(key).encrypt_block(block)
        other = AES128(key2).encrypt_block(block)
        flips.append(_diff_bits(base, other))
    return AvalancheReport(
        samples=samples,
        mean_flipped=sum(flips) / len(flips),
        min_flipped=min(flips),
        max_flipped=max(flips),
    )


def sac_matrix(samples_per_bit: int = 8, seed: int = 2,
               input_bits: Optional[List[int]] = None
               ) -> List[List[float]]:
    """Strict-avalanche-criterion matrix.

    Entry [i][j] estimates P(output bit j flips | input bit i flips).
    ``input_bits`` restricts the measured rows (the full 128x128 at
    useful sample counts is slow in pure Python).
    """
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    aes = AES128(key)
    rows = input_bits if input_bits is not None else list(
        range(BLOCK_BITS)
    )
    matrix: List[List[float]] = []
    for in_bit in rows:
        counts = [0] * BLOCK_BITS
        for _ in range(samples_per_bit):
            block = bytes(rng.randrange(256) for _ in range(16))
            base = aes.encrypt_block(block)
            other = aes.encrypt_block(_flip_bit(block, in_bit))
            for out_bit in range(BLOCK_BITS):
                byte = out_bit // 8
                mask = 0x80 >> (out_bit % 8)
                if (base[byte] ^ other[byte]) & mask:
                    counts[out_bit] += 1
        matrix.append([c / samples_per_bit for c in counts])
    return matrix


def diffusion_by_round(in_bit: int = 0, samples: int = 16,
                       seed: int = 3) -> List[float]:
    """Mean flipped-bit count after each round for one input-bit flip.

    Round 0 is the initial Add Key (1 bit differs); the single-byte
    difference spreads to one column after round 1's MixColumn, four
    columns after round 2 — AES's full diffusion in two rounds.
    """
    rng = random.Random(seed)
    key = bytes(rng.randrange(256) for _ in range(16))
    aes = AES128(key)
    keys = aes.round_keys
    per_round = [0.0] * 11
    for _ in range(samples):
        block = bytes(rng.randrange(256) for _ in range(16))
        a = add_round_key(State(block), keys[0])
        b = add_round_key(State(_flip_bit(block, in_bit)), keys[0])
        per_round[0] += _diff_bits(a.to_bytes(), b.to_bytes())
        for rnd in range(1, 11):
            for state_name in ("a", "b"):
                state = a if state_name == "a" else b
                state = sub_bytes(state)
                state = shift_rows(state)
                if rnd != 10:
                    state = mix_columns(state)
                state = add_round_key(state, keys[rnd])
                if state_name == "a":
                    a = state
                else:
                    b = state
            per_round[rnd] += _diff_bits(a.to_bytes(), b.to_bytes())
    return [total / samples for total in per_round]


def completeness_violations(samples_per_bit: int = 12,
                            seed: int = 4) -> int:
    """Count (input bit, output bit) pairs never observed to interact.

    A strong cipher has zero at adequate sample counts: every output
    bit depends on every input bit.
    """
    matrix = sac_matrix(samples_per_bit=samples_per_bit, seed=seed,
                        input_bits=list(range(0, BLOCK_BITS, 16)))
    return sum(
        1 for row in matrix for probability in row if probability == 0.0
    )
