"""Keystream randomness sanity tests (NIST SP 800-22 style).

A CTR/OFB deployment of the device (the examples' backbone scenario)
turns AES into a keystream generator; a sane reproduction should
demonstrate the keystream passes the basic statistical batteries.
Implemented here are three of the classic SP 800-22 tests with their
standard normal/chi-square approximations:

- **monobit (frequency)** — ones and zeros balance;
- **runs** — the number of bit runs matches expectation;
- **block frequency** — per-block ones proportions are uniform.

These are *sanity* tests: pass thresholds use the conventional
significance level alpha = 0.01.  A failure indicates a broken
implementation, not a cryptanalytic result.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class TestOutcome:
    """One statistical test's result."""

    name: str
    p_value: float
    passed: bool
    detail: str = ""


def _bits(data: bytes) -> List[int]:
    out: List[int] = []
    for byte in data:
        out.extend((byte >> (7 - i)) & 1 for i in range(8))
    return out


def _erfc(x: float) -> float:
    return math.erfc(x)


def monobit_test(data: bytes, alpha: float = 0.01) -> TestOutcome:
    """SP 800-22 §2.1: frequency test."""
    bits = _bits(data)
    n = len(bits)
    if n < 100:
        raise ValueError("monobit test needs at least 100 bits")
    s = sum(1 if bit else -1 for bit in bits)
    statistic = abs(s) / math.sqrt(n)
    p_value = _erfc(statistic / math.sqrt(2))
    return TestOutcome(
        "monobit", p_value, p_value >= alpha,
        f"ones={sum(bits)}/{n}",
    )


def runs_test(data: bytes, alpha: float = 0.01) -> TestOutcome:
    """SP 800-22 §2.3: runs test (requires monobit to be sane)."""
    bits = _bits(data)
    n = len(bits)
    if n < 100:
        raise ValueError("runs test needs at least 100 bits")
    pi = sum(bits) / n
    if abs(pi - 0.5) >= 2 / math.sqrt(n):
        return TestOutcome("runs", 0.0, False,
                           "prerequisite frequency check failed")
    runs = 1 + sum(
        1 for a, b in zip(bits, bits[1:]) if a != b
    )
    expected = 2 * n * pi * (1 - pi)
    p_value = _erfc(
        abs(runs - expected)
        / (2 * math.sqrt(2 * n) * pi * (1 - pi))
    )
    return TestOutcome("runs", p_value, p_value >= alpha,
                       f"runs={runs}, expected~{expected:.0f}")


def block_frequency_test(data: bytes, block_bits: int = 128,
                         alpha: float = 0.01) -> TestOutcome:
    """SP 800-22 §2.2: frequency within blocks (chi-square)."""
    bits = _bits(data)
    blocks = len(bits) // block_bits
    if blocks < 4:
        raise ValueError("block frequency test needs >= 4 blocks")
    chi2 = 0.0
    for index in range(blocks):
        chunk = bits[block_bits * index:block_bits * (index + 1)]
        pi = sum(chunk) / block_bits
        chi2 += (pi - 0.5) ** 2
    chi2 *= 4 * block_bits
    p_value = _upper_incomplete_gamma_ratio(blocks / 2, chi2 / 2)
    return TestOutcome("block_frequency", p_value, p_value >= alpha,
                       f"chi2={chi2:.1f} over {blocks} blocks")


def _upper_incomplete_gamma_ratio(a: float, x: float) -> float:
    """igamc(a, x) = Gamma(a, x)/Gamma(a) via series/continued fraction.

    Standard Numerical-Recipes style implementation, adequate for the
    p-value ranges these tests produce.
    """
    if x < 0 or a <= 0:
        raise ValueError("invalid igamc arguments")
    if x == 0:
        return 1.0
    if x < a + 1:
        # Complement of the lower series.
        return 1.0 - _lower_gamma_series(a, x)
    return _upper_gamma_cf(a, x)


def _lower_gamma_series(a: float, x: float) -> float:
    term = 1.0 / a
    total = term
    for n in range(1, 500):
        term *= x / (a + n)
        total += term
        if abs(term) < abs(total) * 1e-14:
            break
    return total * math.exp(-x + a * math.log(x) - math.lgamma(a))


def _upper_gamma_cf(a: float, x: float) -> float:
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-14:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


def keystream_battery(data: bytes,
                      alpha: float = 0.01) -> List[TestOutcome]:
    """Run all three tests on a keystream."""
    return [
        monobit_test(data, alpha),
        runs_test(data, alpha),
        block_frequency_test(data, alpha=alpha),
    ]


def render_battery(outcomes: List[TestOutcome]) -> str:
    lines = ["keystream randomness battery (alpha = 0.01):"]
    for outcome in outcomes:
        mark = "pass" if outcome.passed else "FAIL"
        lines.append(
            f"  [{mark}] {outcome.name:<16} p={outcome.p_value:.4f}  "
            f"{outcome.detail}"
        )
    return "\n".join(lines)
