"""Reproduction report generator: one markdown artifact, always fresh.

``repro-aes report`` (or :func:`generate_report`) re-runs the whole
evaluation — Table 1, every Table 2 cell against the paper, Table 3
shape, the cycle claims, the width sweep, power and SEU summaries —
and renders a self-contained markdown report.  EXPERIMENTS.md in the
repository is the curated narrative; this artifact is the mechanical
re-measurement a reviewer can regenerate at any commit.
"""

from __future__ import annotations

from typing import List

from repro.analysis.avalanche import avalanche_effect
from repro.analysis.metrics import combined_slowdown
from repro.analysis.power import measure_power
from repro.analysis.seu import run_campaign
from repro.analysis.tables import table2_comparison, table3_text
from repro.arch.explorer import explore_widths, knee_design, sweep_report
from repro.ip.control import Variant, block_latency
from repro.ip.interface import pin_count
from repro.ip.testbench import Testbench


def _check(condition: bool) -> str:
    return "PASS" if condition else "FAIL"


def _measure_latency(variant: Variant) -> int:
    bench = Testbench(variant)
    bench.load_key(bytes(16))
    if variant is Variant.DECRYPT:
        _, latency = bench.decrypt(bytes(16))
    else:
        _, latency = bench.encrypt(bytes(16))
    return latency


def generate_report(seu_injections: int = 30,
                    power_blocks: int = 3) -> str:
    """Run the evaluation and render the markdown report."""
    lines: List[str] = [
        "# Reproduction report — "
        "'A Low Device Occupation IP to Implement Rijndael Algorithm'",
        "",
        "Regenerated mechanically from the model; see EXPERIMENTS.md "
        "for narrative.",
        "",
    ]

    # ---- Table 1 ------------------------------------------------------
    lines += [
        "## Table 1 — interface",
        "",
        f"- pins: encrypt/decrypt devices {pin_count(Variant.ENCRYPT)} "
        f"[{_check(pin_count(Variant.ENCRYPT) == 261)}], combined "
        f"{pin_count(Variant.BOTH)} "
        f"[{_check(pin_count(Variant.BOTH) == 262)}]",
        "",
    ]

    # ---- measured latency --------------------------------------------
    lines += ["## Cycle-accurate latency", ""]
    for variant in Variant:
        measured = _measure_latency(variant)
        lines.append(
            f"- {variant.value}: {measured} cycles "
            f"[{_check(measured == block_latency())}]"
        )
    lines.append("")

    # ---- Table 2 ------------------------------------------------------
    lines += [
        "## Table 2 — model vs paper",
        "",
        "| design | family | LCs (model/paper) | err | memory | "
        "latency | clk | Mbps | verdict |",
        "|---|---|---|---|---|---|---|---|---|",
    ]
    rows = table2_comparison()
    all_ok = True
    for row in rows:
        ok = (
            abs(row["lcs_err_pct"]) <= 3.0
            and row["model_memory"] == row["paper_memory"]
            and row["model_latency_ns"] == row["paper_latency_ns"]
            and row["model_clk_ns"] == row["paper_clk_ns"]
        )
        all_ok &= ok
        lines.append(
            f"| {row['design']} | {row['family']} "
            f"| {row['model_lcs']}/{row['paper_lcs']} "
            f"| {row['lcs_err_pct']:+.1f}% "
            f"| {row['model_memory']} "
            f"| {row['model_latency_ns']:.0f} ns "
            f"| {row['model_clk_ns']:.0f} ns "
            f"| {row['model_mbps']:.1f} "
            f"| {_check(ok)} |"
        )
    lines += ["", f"Overall Table 2: {_check(all_ok)}", ""]

    # ---- §5 slowdown claim --------------------------------------------
    by_key = {(r["design"], r["family"]): r for r in rows}
    lines += ["## Combined-device slowdown (paper: ~22 %)", ""]
    for family in ("Acex1K", "Cyclone"):
        drop = combined_slowdown(
            by_key[("encrypt", family)]["model_mbps"],
            by_key[("both", family)]["model_mbps"],
        )
        lines.append(
            f"- {family}: {drop:.1%} [{_check(0.15 <= drop <= 0.25)}]"
        )
    lines.append("")

    # ---- Table 3 ------------------------------------------------------
    lines += ["## Table 3 — literature landscape", "", "```",
              table3_text(), "```", ""]

    # ---- width sweep ---------------------------------------------------
    reports = explore_widths("Acex1K", Variant.ENCRYPT)
    knee = knee_design(reports)
    lines += [
        "## §6 width sweep (Acex1K, encrypt)",
        "",
        "```",
        sweep_report(reports),
        "```",
        "",
        f"Efficiency knee among fitting designs: `{knee.spec.name}` "
        f"[{_check('mixed-32-128' in knee.spec.name)}]",
        "",
    ]

    # ---- extensions -----------------------------------------------------
    power = measure_power(
        [bytes([i] * 16) for i in range(power_blocks)], bytes(16)
    )
    seu = run_campaign(seu_injections, seed=2003)
    hard = run_campaign(seu_injections, seed=2003, hardened=True)
    avalanche = avalanche_effect(samples=32, seed=1)
    lines += [
        "## Extensions",
        "",
        f"- power (future work): {power.dynamic_mw:.2f} mW dynamic, "
        f"{power.energy_per_block_nj:.1f} nJ/block on "
        f"{power.family}",
        f"- SEU (ref. [16]): baseline undetected corruption "
        f"{seu.corruption_rate:.0%}; hardened "
        f"{hard.corruption_rate:.0%} "
        f"[{_check(hard.corruption_rate <= seu.corruption_rate)}]",
        f"- diffusion: {avalanche.render()} "
        f"[{_check(0.45 <= avalanche.mean_fraction <= 0.55)}]",
        "",
    ]
    return "\n".join(lines)
