"""Pluggable GHASH providers: bitwise, byte-table, numpy-vectorized.

GHASH is multiplication in GF(2^128) with GCM's reflected bit order
(SP 800-38D §6.3): field elements live in 128-bit ints whose bit 127
is the coefficient of x^0, and the reduction polynomial
x^128 + x^7 + x^2 + x + 1 reflects to :data:`_R` acting on the low
end of the integer.  :mod:`repro.aes.gcm` keeps a table-free
``_ghash`` as the golden model; everything here is cross-checked
against it (see ``tests/aes/test_ghash.py`` and the bench equivalence
gate).

Three providers, mirroring the cipher backend ladder in
:mod:`repro.perf.backends`:

- ``bitwise`` — the golden shift-and-xor multiply, one bit at a time.
- ``table`` — per-subkey byte tables ``T[j][v] = (v · x^(8j)) · H``
  so a block multiply is 16 lookups and 16 xors instead of 128
  shift/xor rounds.  Tables are cached per subkey (LRU, zeroized on
  evict — same hygiene contract as ``RoundKeyCache``).
- ``vector`` — numpy lane decomposition: ``W`` interleaved Horner
  accumulators each step by ``H^W`` (a batched table multiply over
  uint64 hi/lo halves), folded at the end by ``W`` scalar multiplies
  with ``H``.  Pure-Python fallback when numpy is absent.

A *message* is a sequence of byte parts; each part is padded to the
16-byte block boundary independently (exactly GCM's layout: padded
AAD, padded ciphertext, lengths block), so providers never build the
fully padded concatenation the old ``_ghash`` call sites did.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple

BLOCK = 16

#: GHASH reduction polynomial x^128 + x^7 + x^2 + x + 1, reflected:
#: the GCM spec treats bit 0 as the x^0 coefficient of the *leftmost*
#: bit, so reduction works on the low end of the reversed integer.
_R = 0xE1000000000000000000000000000000

_MASK64 = (1 << 64) - 1

#: Lane width of the vector provider: how many independent Horner
#: accumulators step together through one batched ``· H^W`` multiply.
#: Wide enough that numpy's per-op overhead amortizes, small enough
#: that the final ``W`` scalar combine multiplies stay cheap.
VECTOR_LANES = 256

#: Below this many whole blocks the vector provider delegates to the
#: scalar byte-table path: the lane fold needs at least two full
#: chunks before the batched multiply beats plain table lookups.
_VECTOR_MIN_BLOCKS = 2 * VECTOR_LANES


def gf128_mul(x: int, y: int) -> int:
    """Multiply in GF(2^128) with GCM's bit order (SP 800-38D §6.3)."""
    if not (0 <= x < (1 << 128) and 0 <= y < (1 << 128)):
        raise ValueError("GF(2^128) elements are 128-bit")
    z = 0
    v = x
    for bit in range(128):
        if (y >> (127 - bit)) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


# ------------------------------------------------------------ numpy probe

_NUMPY: Optional[object] = None
_NUMPY_PROBED = False


def _numpy() -> Optional[object]:
    global _NUMPY, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        _NUMPY_PROBED = True
        try:
            import numpy
        except ImportError:
            _NUMPY = None
        else:
            _NUMPY = numpy
    return _NUMPY


def have_numpy() -> bool:
    """Whether the vector provider can use numpy here."""
    return _numpy() is not None


# ------------------------------------------------------------ byte tables

def _build_tables(h: int) -> List[List[int]]:
    """Byte tables for ``· h``: ``tables[j][v]`` is the product of
    ``h`` with the field element whose j-th big-endian byte is ``v``.

    A multiply is then 16 lookups: xor of ``tables[j][byte_j(y)]``.
    Built from the 128 single-bit products ``x^k · h`` (iterated
    multiply-by-x), then a fill over each byte's 256 values using the
    lowest set bit, so construction is ~4k xors, not 16×256 full
    multiplies.
    """
    basis = [0] * 128
    p = h
    for k in range(128):
        # p == x^k · h; int bit (127 - k) carries the x^k coefficient.
        basis[127 - k] = p
        if p & 1:
            p = (p >> 1) ^ _R
        else:
            p >>= 1
    tables: List[List[int]] = []
    for j in range(16):
        low = 120 - 8 * j  # int bit of this byte's bit 0
        row = [0] * 256
        for v in range(1, 256):
            lsb = v & -v
            row[v] = row[v ^ lsb] ^ basis[low + lsb.bit_length() - 1]
        tables.append(row)
    return tables


_BYTE_SHIFTS = tuple(120 - 8 * j for j in range(16))


def _table_mul(y: int, tables: List[List[int]]) -> int:
    """``y · h`` via the byte tables built for ``h``."""
    z = 0
    for j, shift in enumerate(_BYTE_SHIFTS):
        z ^= tables[j][(y >> shift) & 0xFF]
    return z


def _pow_gf128(h: int, n: int) -> int:
    """``h^n`` by square-and-multiply (n >= 1)."""
    acc = h
    for bit in bin(n)[3:]:
        acc = gf128_mul(acc, acc)
        if bit == "1":
            acc = gf128_mul(acc, h)
    return acc


class _TableSet:
    """Everything cached for one subkey: scalar byte tables for ``H``
    and, lazily, numpy hi/lo table pairs for ``H`` powers (the vector
    provider steps lanes by ``H^W``)."""

    __slots__ = ("tables", "numpy_packs")

    def __init__(self, h: int) -> None:
        self.tables = _build_tables(h)
        self.numpy_packs: Dict[int, Tuple[object, object]] = {}

    def numpy_pack(self, h: int, power: int) -> Tuple[object, object]:
        pack = self.numpy_packs.get(power)
        if pack is None:
            np = _numpy()
            assert np is not None
            if power == 1:
                tables = self.tables
            else:
                tables = _build_tables(_pow_gf128(h, power))
            t_hi = np.array(
                [[e >> 64 for e in row] for row in tables],
                dtype=np.uint64)
            t_lo = np.array(
                [[e & _MASK64 for e in row] for row in tables],
                dtype=np.uint64)
            pack = (t_hi, t_lo)
            self.numpy_packs[power] = pack
        return pack

    def wipe(self) -> None:
        """Zeroize: table entries are linear in the subkey."""
        for row in self.tables:
            row[:] = [0] * 256
        for t_hi, t_lo in self.numpy_packs.values():
            t_hi.fill(0)  # type: ignore[attr-defined]
            t_lo.fill(0)  # type: ignore[attr-defined]
        self.numpy_packs.clear()


class _TableCache:
    """LRU of :class:`_TableSet` per subkey, zeroized on eviction.

    Same hygiene contract as ``repro.perf.backends.RoundKeyCache``:
    dropping an entry overwrites the derived material instead of
    leaving it for the allocator to hand out.  Thread-safe — the
    serve layer digests frames from a thread pool.
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self._capacity = capacity
        self._entries: "OrderedDict[int, _TableSet]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, h: int) -> _TableSet:
        with self._lock:
            entry = self._entries.get(h)
            if entry is not None:
                self._entries.move_to_end(h)
                return entry
        # Build outside the lock: construction is the expensive part
        # and two racing builders just produce identical tables.
        entry = _TableSet(h)
        with self._lock:
            current = self._entries.get(h)
            if current is not None:
                self._entries.move_to_end(h)
                return current
            self._entries[h] = entry
            while len(self._entries) > self._capacity:
                _, evicted = self._entries.popitem(last=False)
                evicted.wipe()
        return entry

    def discard(self, h: int) -> None:
        with self._lock:
            entry = self._entries.pop(h, None)
        if entry is not None:
            entry.wipe()

    def clear(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            entry.wipe()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, h: int) -> bool:
        with self._lock:
            return h in self._entries


_TABLES = _TableCache()


def forget(h: int) -> None:
    """Drop (and zeroize) any cached tables derived from subkey ``h``.

    The serve layer calls this via ``repro.perf.engine.forget_key``
    on session teardown.
    """
    _TABLES.discard(h)


# ------------------------------------------------------------- providers

class GhashProvider:
    """One GHASH implementation; ``digest`` folds byte parts."""

    #: Registry / bench name.
    name = "abstract"
    #: Whether the provider batches block multiplies (numpy).
    vectorized = False

    def digest(self, h: int, parts: Sequence[bytes]) -> int:
        """GHASH of the parts, each zero-padded to a block boundary."""
        raise NotImplementedError

    def forget(self, h: int) -> None:
        """Drop any per-subkey state (tables); default: stateless."""


def _fold_bitwise(y: int, h: int, part: bytes) -> int:
    full = len(part) - len(part) % BLOCK
    for index in range(0, full, BLOCK):
        y = gf128_mul(
            y ^ int.from_bytes(part[index:index + BLOCK], "big"), h)
    if full < len(part):
        tail = part[full:] + bytes(BLOCK - (len(part) - full))
        y = gf128_mul(y ^ int.from_bytes(tail, "big"), h)
    return y


class BitwiseGhash(GhashProvider):
    """The golden model: per-bit shift-and-xor multiplies."""

    name = "bitwise"

    def digest(self, h: int, parts: Sequence[bytes]) -> int:
        y = 0
        for part in parts:
            y = _fold_bitwise(y, h, part)
        return y


def _fold_table(y: int, part: bytes,
                tables: List[List[int]]) -> int:
    full = len(part) - len(part) % BLOCK
    for index in range(0, full, BLOCK):
        y = _table_mul(
            y ^ int.from_bytes(part[index:index + BLOCK], "big"),
            tables)
    if full < len(part):
        tail = part[full:] + bytes(BLOCK - (len(part) - full))
        y = _table_mul(y ^ int.from_bytes(tail, "big"), tables)
    return y


class TableGhash(GhashProvider):
    """Byte-table multiplies: 16 lookups per block."""

    name = "table"

    def digest(self, h: int, parts: Sequence[bytes]) -> int:
        tables = _TABLES.get(h).tables
        y = 0
        for part in parts:
            y = _fold_table(y, part, tables)
        return y

    def forget(self, h: int) -> None:
        _TABLES.discard(h)


class VectorGhash(GhashProvider):
    """Numpy lane decomposition over the byte tables.

    With ``W`` lanes and blocks ``X_1..X_m`` (``m = kW`` after the
    scalar-handled remainder), lane ``r`` Horner-folds the subsequence
    ``X_{r+1}, X_{r+1+W}, ...`` stepping by ``H^W`` instead of ``H``;
    lane ``r``'s result then carries weight ``H^{W-r}``, so a final
    scalar Horner pass ``acc = (acc ^ Y_r) · H`` recovers the exact
    GHASH value.  The running digest folds into the first block, so
    parts chain exactly like the scalar providers.
    """

    name = "vector"
    vectorized = True

    def digest(self, h: int, parts: Sequence[bytes]) -> int:
        np = _numpy()
        if np is None:
            return _TABLE_PROVIDER.digest(h, parts)
        table_set = _TABLES.get(h)
        y = 0
        for part in parts:
            y = self._fold_part(np, y, h, part, table_set)
        return y

    def forget(self, h: int) -> None:
        _TABLES.discard(h)

    def _fold_part(self, np: object, y: int, h: int, part: bytes,
                   table_set: _TableSet) -> int:
        blocks = len(part) // BLOCK
        if blocks < _VECTOR_MIN_BLOCKS:
            return _fold_table(y, part, table_set.tables)
        lanes = VECTOR_LANES
        chunks = blocks // lanes
        head = (blocks - chunks * lanes) * BLOCK
        # Scalar prefix so the vector body is an exact chunk multiple.
        y = _fold_table(y, part[:head], table_set.tables)
        body = len(part) // BLOCK * BLOCK
        words = np.frombuffer(  # type: ignore[attr-defined]
            part, dtype=">u8", count=(body - head) // 8, offset=head,
        ).astype(np.uint64).reshape(-1, 2)  # type: ignore[attr-defined]
        hi = np.ascontiguousarray(  # type: ignore[attr-defined]
            words[:, 0]).reshape(chunks, lanes)
        lo = np.ascontiguousarray(  # type: ignore[attr-defined]
            words[:, 1]).reshape(chunks, lanes)
        # Fold the running digest into the first block.
        hi[0, 0] ^= np.uint64(y >> 64)  # type: ignore[attr-defined]
        lo[0, 0] ^= np.uint64(y & _MASK64)  # type: ignore[attr-defined]
        t_hi, t_lo = table_set.numpy_pack(h, lanes)
        y_hi = np.zeros(lanes, dtype=np.uint64)  # type: ignore[attr-defined]
        y_lo = np.zeros(lanes, dtype=np.uint64)  # type: ignore[attr-defined]
        u8 = np.uint64(0xFF)  # type: ignore[attr-defined]
        shifts = [np.uint64(56 - 8 * j)  # type: ignore[attr-defined]
                  for j in range(8)]
        for chunk in range(chunks):
            if chunk:
                z_hi = t_hi[0][(y_hi >> shifts[0]) & u8]
                z_lo = t_lo[0][(y_hi >> shifts[0]) & u8]
                for j in range(1, 8):
                    idx = (y_hi >> shifts[j]) & u8
                    z_hi ^= t_hi[j][idx]
                    z_lo ^= t_lo[j][idx]
                for j in range(8):
                    idx = (y_lo >> shifts[j]) & u8
                    z_hi ^= t_hi[8 + j][idx]
                    z_lo ^= t_lo[8 + j][idx]
                y_hi = z_hi ^ hi[chunk]
                y_lo = z_lo ^ lo[chunk]
            else:
                y_hi = hi[0].copy()
                y_lo = lo[0].copy()
        # Scalar Horner combine: W multiplies with H's tables.
        acc = 0
        tables = table_set.tables
        hi_list = y_hi.tolist()  # type: ignore[attr-defined]
        lo_list = y_lo.tolist()  # type: ignore[attr-defined]
        for lane in range(lanes):
            acc = _table_mul(
                acc ^ (hi_list[lane] << 64) ^ lo_list[lane], tables)
        # Tail (partial block) after the vector body.
        return _fold_table(acc, part[body:], table_set.tables)


_BITWISE_PROVIDER = BitwiseGhash()
_TABLE_PROVIDER = TableGhash()
_VECTOR_PROVIDER = VectorGhash()


def available_providers() -> Dict[str, GhashProvider]:
    """Providers usable in this interpreter, keyed by name."""
    providers: Dict[str, GhashProvider] = {
        "bitwise": _BITWISE_PROVIDER,
        "table": _TABLE_PROVIDER,
    }
    if have_numpy():
        providers["vector"] = _VECTOR_PROVIDER
    return providers


def get_provider(name: str = "auto") -> GhashProvider:
    """Resolve a provider name; ``auto`` picks the fastest available."""
    if name == "auto":
        return _VECTOR_PROVIDER if have_numpy() else _TABLE_PROVIDER
    providers = available_providers()
    try:
        return providers[name]
    except KeyError:
        if name == "vector":
            raise ValueError(
                "ghash provider 'vector' needs numpy, which is not "
                "importable here (try 'table')"
            ) from None
        known = ", ".join(sorted(providers))
        raise ValueError(
            f"unknown ghash provider {name!r} (known: {known}, "
            f"or 'auto')"
        ) from None


_DEFAULT: Optional[GhashProvider] = None
_DEFAULT_LOCK = threading.Lock()


def default_provider() -> GhashProvider:
    """Process-wide provider the GCM hot path routes through."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = get_provider("auto")
    return _DEFAULT


def set_default_provider(name: str) -> GhashProvider:
    """Pin the process-wide provider (bench / CLI override)."""
    global _DEFAULT
    provider = get_provider(name)
    with _DEFAULT_LOCK:
        _DEFAULT = provider
    return provider


__all__ = [
    "BLOCK",
    "BitwiseGhash",
    "GhashProvider",
    "TableGhash",
    "VECTOR_LANES",
    "VectorGhash",
    "available_providers",
    "default_provider",
    "forget",
    "get_provider",
    "gf128_mul",
    "have_numpy",
    "set_default_provider",
]
