"""Published known-answer vectors the golden model must reproduce.

Sources:

- FIPS-197 Appendix B (the worked AES-128 example) and Appendix C
  (example vectors for all three AES key sizes).
- The Rijndael submission's ``ecb_tbl`` style vectors are covered by
  the FIPS ones for Nb = 4.

These are *inputs to tests*, not implementation tables: the library
derives all of its constants algebraically, and these vectors pin the
end-to-end behaviour to the standard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class KnownAnswer:
    """One known-answer triple with provenance."""

    name: str
    key: bytes
    plaintext: bytes
    ciphertext: bytes
    source: str


FIPS197_APPENDIX_B = KnownAnswer(
    name="fips197-appendix-b",
    key=bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"),
    plaintext=bytes.fromhex("3243f6a8885a308d313198a2e0370734"),
    ciphertext=bytes.fromhex("3925841d02dc09fbdc118597196a0b32"),
    source="FIPS-197 Appendix B",
)

FIPS197_APPENDIX_C1 = KnownAnswer(
    name="fips197-appendix-c1-aes128",
    key=bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
    plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
    ciphertext=bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a"),
    source="FIPS-197 Appendix C.1",
)

FIPS197_APPENDIX_C2 = KnownAnswer(
    name="fips197-appendix-c2-aes192",
    key=bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f1011121314151617"
    ),
    plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
    ciphertext=bytes.fromhex("dda97ca4864cdfe06eaf70a0ec0d7191"),
    source="FIPS-197 Appendix C.2",
)

FIPS197_APPENDIX_C3 = KnownAnswer(
    name="fips197-appendix-c3-aes256",
    key=bytes.fromhex(
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f"
    ),
    plaintext=bytes.fromhex("00112233445566778899aabbccddeeff"),
    ciphertext=bytes.fromhex("8ea2b7ca516745bfeafc49904b496089"),
    source="FIPS-197 Appendix C.3",
)

#: All block-cipher known answers.
ALL_VECTORS: Tuple[KnownAnswer, ...] = (
    FIPS197_APPENDIX_B,
    FIPS197_APPENDIX_C1,
    FIPS197_APPENDIX_C2,
    FIPS197_APPENDIX_C3,
)

#: First expanded-key words for the Appendix A key (w4..w7 of the
#: FIPS-197 Appendix A key-expansion walkthrough, key = Appendix B key).
FIPS197_APPENDIX_A_W4_W7 = (0xA0FAFE17, 0x88542CB1, 0x23A33939, 0x2A6C7605)

#: NIST SP 800-38A F.1.1 (ECB-AES128) multi-block vector.
SP800_38A_ECB128_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
SP800_38A_ECB128_PLAINTEXT = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)
SP800_38A_ECB128_CIPHERTEXT = bytes.fromhex(
    "3ad77bb40d7a3660a89ecaf32466ef97"
    "f5d3d58503b9699de785895a96fdbaaf"
    "43b1cd7f598ece23881b00e3ed030688"
    "7b0c785e27e8ad3f8223207104725dd4"
)

#: NIST SP 800-38A F.2.1 (CBC-AES128).
SP800_38A_CBC128_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
SP800_38A_CBC128_CIPHERTEXT = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7"
)

#: NIST SP 800-38A F.5.1 (CTR-AES128); init counter block
#: f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff.  Our CTR uses nonce||counter with
#: an 8-byte counter, so this vector is exercised via the raw keystream
#: helper in tests rather than ctr_xcrypt.
SP800_38A_CTR128_COUNTER0 = bytes.fromhex(
    "f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff"
)
SP800_38A_CTR128_CIPHERTEXT = bytes.fromhex(
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee"
)
