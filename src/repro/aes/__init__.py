"""Behavioral Rijndael / AES golden model.

This subpackage is the bit-exact software reference the cycle-accurate
IP model (:mod:`repro.ip`) is verified against.  It implements the full
Rijndael family — block sizes Nb ∈ {4, 6, 8} words and key sizes
Nk ∈ {4, 6, 8} words — of which AES fixes Nb = 4 (AES-128/192/256 by
key size).  The paper's device implements the AES-128 subset.

Public API highlights:

- :func:`repro.aes.cipher.encrypt_block` / ``decrypt_block`` — one-block
  Rijndael with any legal (block, key) size combination.
- :class:`repro.aes.cipher.AES128` — the paper's fixed configuration.
- :mod:`repro.aes.modes` — ECB/CBC/CTR/CFB/OFB block modes used by the
  example applications.
- :mod:`repro.aes.key_schedule` — forward *and reverse* on-the-fly
  round-key generators matching the hardware's key unit.
"""

from repro.aes.cipher import (
    AES128,
    Rijndael,
    decrypt_block,
    encrypt_block,
)
from repro.aes.constants import INV_SBOX, RCON, SBOX
from repro.aes.key_schedule import (
    expand_key,
    kstran,
    next_round_key,
    previous_round_key,
)
from repro.aes.state import State

__all__ = [
    "AES128",
    "INV_SBOX",
    "RCON",
    "Rijndael",
    "SBOX",
    "State",
    "decrypt_block",
    "encrypt_block",
    "expand_key",
    "kstran",
    "next_round_key",
    "previous_round_key",
]
