"""AES-GCM: authenticated encryption (NIST SP 800-38D).

The modern way the paper's "backbone communication channels" actually
deploy AES: counter-mode confidentiality plus a GHASH authentication
tag.  Two properties make GCM a natural fit for the paper's device:

- it only ever uses the **encrypt** direction (the cheapest variant);
- GHASH is multiplication in GF(2^128) — the same carry-less algebra
  as the cipher's GF(2^8), 16 bytes at a time, implemented here from
  first principles like everything else in this library.

Verified against the canonical NIST GCM test cases.  As with the rest
of :mod:`repro.aes`, this is a reference implementation: table-free
GHASH, no constant-time claims.
"""

from __future__ import annotations

import hmac as _hmac
from typing import Tuple

from repro.aes.cipher import AES128
from repro.aes.ghash import default_provider as _ghash_provider
from repro.obs.metrics import global_registry

BLOCK = 16

#: One increment per GCM API call; ``op`` is encrypt / decrypt, and
#: auth failures get their own counter so a spike is visible without
#: scraping logs.
_GCM_OPS = global_registry().counter(
    "repro_aes_gcm_ops_total",
    "GCM operations by direction",
    labels=("op",),
)
_GCM_AUTH_FAILURES = global_registry().counter(
    "repro_aes_gcm_auth_failures_total",
    "GCM tag verification failures",
)

#: GHASH reduction polynomial and the golden bitwise multiply now
#: live in :mod:`repro.aes.ghash` next to the fast providers; the
#: re-exports keep this module the public home of the primitive.
from repro.aes.ghash import _R, gf128_mul  # noqa: E402,F401


#: SP 800-38D §5.2.1.1 operand bounds.  len(P) <= 2^39 - 256 bits:
#: the plaintext may consume at most 2^32 - 2 counter blocks, so the
#: 32-bit GCTR counter can never wrap back onto J0 (tag keystream) or
#: J0 + 1 (first payload counter).  AAD and IV are bounded by their
#: 64-bit length fields in the GHASH length block / J0 derivation.
MAX_PLAINTEXT_BYTES = ((1 << 39) - 256) // 8
MAX_AAD_BYTES = ((1 << 64) - 1) // 8
MAX_IV_BYTES = ((1 << 64) - 1) // 8


class AuthenticationError(ValueError):
    """Raised when a GCM tag fails verification."""


def _check_lengths(plaintext_len: int, aad_len: int,
                   iv_len: int) -> None:
    """Enforce the SP 800-38D operand limits *before* any processing.

    Without the plaintext bound, a message longer than 2^32 - 2
    blocks silently wraps :func:`_inc32` and re-encrypts earlier
    counters — keystream reuse, the one unforgivable CTR failure.
    The check runs on lengths alone, ahead of key expansion and of
    the first counter increment.
    """
    if iv_len == 0:
        raise ValueError("GCM requires a non-empty IV")
    if iv_len > MAX_IV_BYTES:
        raise ValueError(
            f"GCM IV exceeds the SP 800-38D limit of "
            f"{MAX_IV_BYTES} bytes"
        )
    if plaintext_len > MAX_PLAINTEXT_BYTES:
        raise ValueError(
            f"GCM plaintext exceeds the SP 800-38D limit of "
            f"{MAX_PLAINTEXT_BYTES} bytes (2^39 - 256 bits); "
            f"longer messages would wrap the 32-bit counter and "
            f"reuse keystream"
        )
    if aad_len > MAX_AAD_BYTES:
        raise ValueError(
            f"GCM AAD exceeds the SP 800-38D limit of "
            f"{MAX_AAD_BYTES} bytes"
        )


def _ghash(h: int, data: bytes) -> int:
    """Golden table-free GHASH; the providers in
    :mod:`repro.aes.ghash` are cross-checked against it."""
    y = 0
    for index in range(0, len(data), BLOCK):
        chunk = data[index:index + BLOCK]
        chunk = chunk + bytes(BLOCK - len(chunk))
        y = gf128_mul(y ^ int.from_bytes(chunk, "big"), h)
    return y


def _inc32(block: bytes) -> bytes:
    """inc32 of SP 800-38D §6.2: the low 4 bytes wrap modulo 2^32.

    The wrap is what the spec defines, but a wrapped counter repeats
    keystream — so :func:`_check_lengths` bounds every message to at
    most 2^32 - 2 payload blocks, making the wrap unreachable from
    the GCM entry points.
    """
    head, counter = block[:12], int.from_bytes(block[12:], "big")
    return head + ((counter + 1) & 0xFFFFFFFF).to_bytes(4, "big")


def _gctr(aes: AES128, icb: bytes, data: bytes) -> bytes:
    out = bytearray()
    counter = icb
    for index in range(0, len(data), BLOCK):
        chunk = data[index:index + BLOCK]
        stream = aes.encrypt_block(counter)
        out.extend(c ^ s for c, s in zip(chunk, stream))
        counter = _inc32(counter)
    return bytes(out)


def _gctr_bulk(key: bytes, icb: bytes, data: bytes) -> bytes:
    """GCTR for the payload, on the batch engine.

    Bit-for-bit the serial :func:`_gctr` (the engine's backends are
    cross-checked against the straightforward model); the serial form
    stays for the single-block tag path and as the golden reference.
    """
    from repro.perf.engine import default_engine
    return default_engine().gctr(key, icb, data)


def _derive(aes: AES128, iv: bytes, h: int) -> bytes:
    """J0, the pre-counter block (SP 800-38D §7.1)."""
    if len(iv) == 12:
        return iv + b"\x00\x00\x00\x01"
    lengths = bytes(8) + (8 * len(iv)).to_bytes(8, "big")
    s = _ghash_provider().digest(h, (iv, lengths))
    return s.to_bytes(16, "big")


def _lengths_block(aad: bytes, ciphertext: bytes) -> bytes:
    return (8 * len(aad)).to_bytes(8, "big") + \
        (8 * len(ciphertext)).to_bytes(8, "big")


def _tag(aes: AES128, h: int, j0: bytes, aad: bytes,
         ciphertext: bytes) -> bytes:
    # Each part is padded to the block boundary by the provider
    # (tail block only) — no fully padded concatenation is built.
    s = _ghash_provider().digest(
        h, (aad, ciphertext, _lengths_block(aad, ciphertext)))
    return _gctr(aes, j0, s.to_bytes(16, "big"))


def gcm_encrypt(key: bytes, iv: bytes, plaintext: bytes,
                aad: bytes = b"") -> Tuple[bytes, bytes]:
    """Encrypt and authenticate; returns (ciphertext, 16-byte tag)."""
    _check_lengths(len(plaintext), len(aad), len(iv))
    _GCM_OPS.labels(op="encrypt").inc()
    aes = AES128(key)
    h = int.from_bytes(aes.encrypt_block(bytes(16)), "big")
    j0 = _derive(aes, bytes(iv), h)
    ciphertext = _gctr_bulk(key, _inc32(j0), bytes(plaintext))
    tag = _tag(aes, h, j0, bytes(aad), ciphertext)
    return ciphertext, tag


def gcm_decrypt(key: bytes, iv: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
    """Verify and decrypt; raises :class:`AuthenticationError` on a
    bad tag (and releases no plaintext in that case)."""
    _check_lengths(len(ciphertext), len(aad), len(iv))
    _GCM_OPS.labels(op="decrypt").inc()
    aes = AES128(key)
    h = int.from_bytes(aes.encrypt_block(bytes(16)), "big")
    j0 = _derive(aes, bytes(iv), h)
    expected = _tag(aes, h, j0, bytes(aad), bytes(ciphertext))
    if not _hmac.compare_digest(expected, bytes(tag)):
        _GCM_AUTH_FAILURES.inc()
        raise AuthenticationError("GCM tag verification failed")
    return _gctr_bulk(key, _inc32(j0), bytes(ciphertext))
