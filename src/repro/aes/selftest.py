"""Power-on self test (POST): known-answer checks for deployments.

Certified crypto modules run a known-answer self-test before first
use.  :func:`run_self_test` provides that for this library: it checks
the derived constant tables, the behavioral cipher against the FIPS
vectors, the mode implementations against SP 800-38A, and (optionally,
it costs a few thousand simulated cycles) the cycle-accurate IP's
bit-exactness and latency contract.

Returns a :class:`SelfTestReport`; raises nothing — failures are
reported, not thrown, so a caller can decide policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass(frozen=True)
class CheckResult:
    """One named check's outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class SelfTestReport:
    """Aggregate POST outcome."""

    checks: List[CheckResult] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def render(self) -> str:
        lines = [
            f"self test: {'PASS' if self.passed else 'FAIL'} "
            f"({len(self.checks)} checks, {self.elapsed_s:.2f} s)"
        ]
        for check in self.checks:
            mark = "ok " if check.passed else "FAIL"
            suffix = f" — {check.detail}" if check.detail else ""
            lines.append(f"  [{mark}] {check.name}{suffix}")
        return "\n".join(lines)


def _checks(include_hardware: bool) -> List[Tuple[str, Callable[[], str]]]:
    def tables() -> str:
        from repro.aes.constants import INV_SBOX, RCON, SBOX

        assert SBOX[0x53] == 0xED and SBOX[0x00] == 0x63
        assert all(INV_SBOX[SBOX[x]] == x for x in range(256))
        assert RCON[10] == 0x36
        return "S-box/Rcon derivation"

    def block_cipher() -> str:
        from repro.aes.cipher import decrypt_block, encrypt_block
        from repro.aes.vectors import ALL_VECTORS

        for vector in ALL_VECTORS:
            assert encrypt_block(vector.key, vector.plaintext) == \
                vector.ciphertext, vector.name
            assert decrypt_block(vector.key, vector.ciphertext) == \
                vector.plaintext, vector.name
        return f"{len(ALL_VECTORS)} FIPS-197 vectors"

    def modes() -> str:
        from repro.aes import modes
        from repro.aes.vectors import (
            SP800_38A_CBC128_CIPHERTEXT,
            SP800_38A_CBC128_IV,
            SP800_38A_ECB128_CIPHERTEXT,
            SP800_38A_ECB128_KEY,
            SP800_38A_ECB128_PLAINTEXT,
        )

        assert modes.ecb_encrypt(
            SP800_38A_ECB128_KEY, SP800_38A_ECB128_PLAINTEXT
        ) == SP800_38A_ECB128_CIPHERTEXT
        assert modes.cbc_encrypt(
            SP800_38A_ECB128_KEY, SP800_38A_CBC128_IV,
            SP800_38A_ECB128_PLAINTEXT,
        ) == SP800_38A_CBC128_CIPHERTEXT
        return "SP 800-38A ECB/CBC vectors"

    def schedule() -> str:
        from repro.aes.key_schedule import (
            expand_key, next_round_key, previous_round_key,
        )
        from repro.aes.vectors import FIPS197_APPENDIX_B

        words = expand_key(FIPS197_APPENDIX_B.key, 10)
        key = tuple(words[0:4])
        for rnd in range(1, 11):
            key = next_round_key(key, rnd)
        assert list(key) == words[40:44]
        for rnd in range(10, 0, -1):
            key = previous_round_key(key, rnd)
        assert list(key) == words[0:4]
        return "on-the-fly schedule round trip"

    checks: List[Tuple[str, Callable[[], str]]] = [
        ("constant tables", tables),
        ("block cipher", block_cipher),
        ("modes of operation", modes),
        ("key schedule", schedule),
    ]

    if include_hardware:
        def hardware() -> str:
            from repro.ip.control import Variant, block_latency
            from repro.ip.testbench import Testbench
            from repro.aes.vectors import FIPS197_APPENDIX_C1 as v

            bench = Testbench(Variant.BOTH)
            bench.load_key(v.key)
            ct, enc_latency = bench.encrypt(v.plaintext)
            pt, dec_latency = bench.decrypt(ct)
            assert ct == v.ciphertext and pt == v.plaintext
            assert enc_latency == dec_latency == block_latency()
            return f"cycle-accurate IP, {enc_latency}-cycle latency"

        checks.append(("hardware model", hardware))
    return checks


def run_self_test(include_hardware: bool = True) -> SelfTestReport:
    """Run the POST; never raises."""
    report = SelfTestReport()
    start = time.perf_counter()
    for name, check in _checks(include_hardware):
        try:
            detail = check()
        except Exception as exc:  # POST reports, never throws
            report.checks.append(
                CheckResult(name, False, f"{type(exc).__name__}: {exc}")
            )
        else:
            report.checks.append(CheckResult(name, True, detail))
    report.elapsed_s = time.perf_counter() - start
    return report
