"""The four Rijndael round transforms and their inverses (paper §3).

Encryption round order (paper Fig. 2): Byte Sub, Shift Row, Mix Column,
Add Key.  Decryption runs the inverse functions in inverse order:
Add Key, IMix Column, IShift Row, IByte Sub.  Add Key is its own
inverse.

All functions return a *new* :class:`~repro.aes.state.State`; the
behavioral model never mutates in place, which keeps the golden model
trivially correct at the cost of speed (irrelevant here — the paper's
performance story is about the hardware, which :mod:`repro.ip` models).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.aes.constants import INV_SBOX, SBOX
from repro.aes.state import NUM_ROWS, State
from repro.gf.polyring import INV_MIX_POLY, MIX_POLY, ring_mul


def shift_offsets(nb: int) -> Tuple[int, int, int, int]:
    """Per-row left-rotation amounts C0..C3 for a given block size.

    Row 0 never shifts.  Rijndael specifies (1, 2, 3) for Nb in {4, 6}
    and (1, 3, 4) for Nb = 8.  For AES (Nb = 4) this is the paper's
    Fig. 6: "once in the second row, twice in the third and so on".
    """
    if nb in (4, 6):
        return (0, 1, 2, 3)
    if nb == 8:
        return (0, 1, 3, 4)
    raise ValueError(f"unsupported Nb: {nb}")


def sub_bytes(state: State) -> State:
    """Byte Sub — S-box lookup on every byte (paper Fig. 4)."""
    return _map_bytes(state, SBOX)


def inv_sub_bytes(state: State) -> State:
    """IByte Sub — inverse S-box lookup on every byte."""
    return _map_bytes(state, INV_SBOX)


def _map_bytes(state: State, table: Sequence[int]) -> State:
    data = bytes(table[b] for b in state.to_bytes())
    return State(data, state.nb)


def shift_rows(state: State) -> State:
    """Shift Row — rotate row r left by its offset (paper Fig. 6)."""
    return _rotate_rows(state, sign=+1)


def inv_shift_rows(state: State) -> State:
    """IShift Row — rotate row r right by its offset."""
    return _rotate_rows(state, sign=-1)


def _rotate_rows(state: State, sign: int) -> State:
    offsets = shift_offsets(state.nb)
    out = state.copy()
    for row in range(NUM_ROWS):
        shift = (sign * offsets[row]) % state.nb
        values = state.row(row)
        out.set_row(row, values[shift:] + values[:shift])
    return out


def mix_columns(state: State) -> State:
    """Mix Column — multiply each column by c(x) in GF(2^8)[x]/(x^4+1).

    This is the paper's Fig. 7: the column is read as a degree-3
    polynomial (row 0 is the x^0 coefficient) and multiplied by
    03·x^3 + 01·x^2 + 01·x + 02.
    """
    return _mix(state, MIX_POLY.coeffs)


def inv_mix_columns(state: State) -> State:
    """IMix Column — multiply each column by d(x) = c(x)^-1."""
    return _mix(state, INV_MIX_POLY.coeffs)


def _mix(state: State, poly: Sequence[int]) -> State:
    out = state.copy()
    for col in range(state.nb):
        out.set_column(col, ring_mul(state.column(col), poly))
    return out


def add_round_key(state: State, round_key: bytes) -> State:
    """Add Key — XOR the state with the round key, byte for byte.

    ``round_key`` is Nb 32-bit words in input byte order (the same
    column-major order the state uses), i.e. 4·Nb bytes.  Add Key is an
    involution: applying it twice with the same key is the identity.
    """
    if len(round_key) != NUM_ROWS * state.nb:
        raise ValueError(
            f"round key for Nb={state.nb} needs {NUM_ROWS * state.nb} bytes"
        )
    data = bytes(s ^ k for s, k in zip(state.to_bytes(), round_key))
    return State(data, state.nb)
