"""Authentication and key-management modes over AES-128.

The paper's §2 motivates deployments — authentication processes,
banking, key distribution — that need more than raw block encryption.
This module supplies the two standard AES-based constructions those
systems use, both runnable on an encrypt-only device (neither ever
calls the decrypt direction except unwrap):

- **CMAC** (NIST SP 800-38B / RFC 4493) — a message authentication
  code: CBC-MAC fixed with two derived subkeys, where subkey
  derivation is doubling in GF(2^128) (the same carry-less algebra as
  the cipher itself, one level up).
- **AES Key Wrap** (RFC 3394) — the standard way to transport one AES
  key under another, with built-in integrity: exactly the "user A
  transmits the key to user B" step of the paper's §2 story.

Both are tested against their RFC-published vectors.
"""

from __future__ import annotations

import hmac as _hmac
from typing import List

from repro.aes.cipher import AES128

BLOCK = 16

#: GF(2^128) reduction constant for doubling (x^128+x^7+x^2+x+1).
_RB = 0x87


class IntegrityError(ValueError):
    """Raised when an authenticated structure fails verification."""


def _double(block: bytes) -> bytes:
    """Multiply by x in GF(2^128) (the CMAC subkey step).

    Branch-free: the input is E_K(0) or K1 — secret either way — so
    the reduction is applied via a mask derived from the carry bit
    rather than a data-dependent branch.
    """
    value = int.from_bytes(block, "big") << 1
    carry = value >> 128
    value = (value ^ (_RB * carry)) & ((1 << 128) - 1)
    return value.to_bytes(16, "big")


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def cmac_subkeys(key: bytes) -> "tuple[bytes, bytes]":
    """Derive (K1, K2) from L = E_K(0^128) by GF doubling."""
    aes = AES128(key)
    l_value = aes.encrypt_block(bytes(16))
    k1 = _double(l_value)
    k2 = _double(k1)
    return k1, k2


def cmac(key: bytes, message: bytes) -> bytes:
    """AES-CMAC tag of a message of any length (RFC 4493)."""
    message = bytes(message)
    aes = AES128(key)
    k1, k2 = cmac_subkeys(key)

    if message and len(message) % BLOCK == 0:
        complete = True
        blocks = len(message) // BLOCK
    else:
        complete = False
        blocks = len(message) // BLOCK + 1

    state = bytes(16)
    for index in range(blocks - 1):
        chunk = message[BLOCK * index:BLOCK * (index + 1)]
        state = aes.encrypt_block(_xor(state, chunk))

    last = message[BLOCK * (blocks - 1):]
    if complete:
        final = _xor(last, k1)
    else:
        padded = last + b"\x80" + bytes(BLOCK - len(last) - 1)
        final = _xor(padded, k2)
    return aes.encrypt_block(_xor(state, final))


def cmac_verify(key: bytes, message: bytes, tag: bytes) -> bool:
    """Constant-time-ish tag comparison (via hmac.compare_digest)."""
    if len(tag) != BLOCK:
        return False
    return _hmac.compare_digest(cmac(key, message), bytes(tag))


# ------------------------------------------------------------- key wrap
#: RFC 3394 initial value (integrity check register).
KEY_WRAP_IV = bytes([0xA6] * 8)


def key_wrap(kek: bytes, plaintext_key: bytes) -> bytes:
    """Wrap a key under a key-encryption key (RFC 3394 §2.2.1).

    ``plaintext_key`` must be a multiple of 8 bytes, at least 16.
    Returns len + 8 bytes of wrapped material.
    """
    plaintext_key = bytes(plaintext_key)
    if len(plaintext_key) < 16 or len(plaintext_key) % 8:
        raise ValueError(
            "key material must be a multiple of 8 bytes, >= 16"
        )
    aes = AES128(kek)
    n = len(plaintext_key) // 8
    a = KEY_WRAP_IV
    r: List[bytes] = [
        plaintext_key[8 * i:8 * (i + 1)] for i in range(n)
    ]
    for j in range(6):
        for i in range(n):
            block = aes.encrypt_block(a + r[i])
            t = n * j + i + 1
            a = _xor(block[:8], t.to_bytes(8, "big"))
            r[i] = block[8:]
    return a + b"".join(r)


def key_unwrap(kek: bytes, wrapped: bytes) -> bytes:
    """Unwrap and verify (RFC 3394 §2.2.2); raises
    :class:`IntegrityError` on a bad KEK or tampered data."""
    wrapped = bytes(wrapped)
    if len(wrapped) < 24 or len(wrapped) % 8:
        raise ValueError("wrapped material must be 8k bytes, >= 24")
    aes = AES128(kek)
    n = len(wrapped) // 8 - 1
    a = wrapped[:8]
    r: List[bytes] = [
        wrapped[8 * (i + 1):8 * (i + 2)] for i in range(n)
    ]
    for j in range(5, -1, -1):
        for i in range(n - 1, -1, -1):
            t = n * j + i + 1
            block = aes.decrypt_block(
                _xor(a, t.to_bytes(8, "big")) + r[i]
            )
            a = block[:8]
            r[i] = block[8:]
    if not _hmac.compare_digest(a, KEY_WRAP_IV):
        raise IntegrityError("key unwrap integrity check failed")
    return b"".join(r)
