"""Block-cipher modes of operation over the AES-128 core.

The paper's IP is a raw block engine; any real deployment (the
"Internet Banking and other telecommunications operations" of §2) wraps
it in a mode.  These implementations exist so the example applications
exercise realistic traffic, and so the throughput benches can model a
streaming channel.  CBC/CFB feedback chains serialize blocks — exactly
the scenario where the paper's 50-cycle latency is the whole story —
while ECB/CTR allow the device's I/O overlap to hide load time.

The bulk paths of the parallelizable modes (ECB encryption, the CTR
keystream) route through the batch engine
(:func:`repro.perf.engine.default_engine`), which picks the fastest
backend that still agrees bit-for-bit with :class:`AES128`.

Padding: PKCS#7 helpers are provided for the byte-stream modes.
"""

from __future__ import annotations

import hmac as _hmac
from typing import Iterator

from repro.aes.cipher import AES128
from repro.obs.metrics import global_registry

BLOCK = 16

#: Mode-layer op counter: one increment per API call (not per block),
#: so the observability cost is negligible even on the chained modes.
_MODE_OPS = global_registry().counter(
    "repro_aes_mode_ops_total",
    "Mode-layer operations by mode and direction",
    labels=("mode", "op"),
)


def pkcs7_pad(data: bytes, block: int = BLOCK) -> bytes:
    """PKCS#7 pad to a multiple of ``block`` (always adds 1..block bytes)."""
    if not 1 <= block <= 255:
        raise ValueError("block size must be 1..255")
    pad = block - (len(data) % block)
    return bytes(data) + bytes([pad]) * pad


def _ct_lt(a: int, b: int) -> int:
    """1 if ``a < b`` else 0, branch-free (operands in 0..511)."""
    return ((a - b) >> 9) & 1


def pkcs7_unpad(data: bytes, block: int = BLOCK) -> bytes:
    """Strip PKCS#7 padding, validating every pad byte.

    Constant-time in the same masked-arithmetic style as
    :func:`repro.aes.auth._double`: ``data`` is decrypted plaintext —
    secret — so the validation walks a fixed ``block`` bytes, folds
    every check (pad in 1..block, every covered byte equals the pad
    value) into one accumulator with branch-free masks, and renders a
    single verdict through ``hmac.compare_digest``.  Which byte was
    wrong, and whether the failure was range or content, is never
    separable by timing — the classic CBC padding-oracle lever.
    """
    data = bytes(data)
    if not 1 <= block <= 255:
        raise ValueError("block size must be 1..255")
    if len(data) == 0 or len(data) % block:
        raise ValueError("padded data length must be a positive multiple "
                         "of the block size")
    tail = data[len(data) - block:]
    pad = tail[block - 1]
    bad = _ct_lt(pad, 1) | _ct_lt(block, pad)
    for offset in range(block):
        byte = tail[block - 1 - offset]
        bad |= _ct_lt(offset, pad) * (byte ^ pad)
    if not _hmac.compare_digest(bytes([bad]), b"\x00"):
        raise ValueError("invalid PKCS#7 padding")
    return data[: len(data) - pad]


def _blocks(data: bytes) -> Iterator[bytes]:
    for i in range(0, len(data), BLOCK):
        yield data[i : i + BLOCK]


def _require_aligned(data: bytes, what: str) -> bytes:
    data = bytes(data)
    if len(data) % BLOCK:
        raise ValueError(f"{what} must be a multiple of {BLOCK} bytes")
    return data


def _require_iv(iv: bytes) -> bytes:
    iv = bytes(iv)
    if len(iv) != BLOCK:
        raise ValueError(f"IV must be {BLOCK} bytes")
    return iv


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def _bulk_engine():
    """The process-wide batch engine (imported lazily: the perf
    package depends on this module's siblings, not vice versa)."""
    from repro.perf.engine import default_engine
    return default_engine()


def ecb_encrypt(key: bytes, plaintext: bytes) -> bytes:
    """ECB — each block independently (parallel-friendly, leaks patterns).

    Bulk path: runs on the batch engine, whose backends are verified
    bit-for-bit against :class:`AES128`.
    """
    plaintext = _require_aligned(plaintext, "plaintext")
    _MODE_OPS.labels(mode="ecb", op="encrypt").inc()
    return _bulk_engine().xcrypt_ecb(key, plaintext)


def ecb_decrypt(key: bytes, ciphertext: bytes) -> bytes:
    """ECB decryption."""
    ciphertext = _require_aligned(ciphertext, "ciphertext")
    _MODE_OPS.labels(mode="ecb", op="decrypt").inc()
    aes = AES128(key)
    return b"".join(aes.decrypt_block(b) for b in _blocks(ciphertext))


def cbc_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """CBC — chained: C_i = E(P_i xor C_{i-1}), C_0 = IV."""
    plaintext = _require_aligned(plaintext, "plaintext")
    _MODE_OPS.labels(mode="cbc", op="encrypt").inc()
    feedback = _require_iv(iv)
    aes = AES128(key)
    out = bytearray()
    for block in _blocks(plaintext):
        feedback = aes.encrypt_block(_xor(block, feedback))
        out.extend(feedback)
    return bytes(out)


def cbc_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC decryption: P_i = D(C_i) xor C_{i-1}."""
    ciphertext = _require_aligned(ciphertext, "ciphertext")
    _MODE_OPS.labels(mode="cbc", op="decrypt").inc()
    feedback = _require_iv(iv)
    aes = AES128(key)
    out = bytearray()
    for block in _blocks(ciphertext):
        out.extend(_xor(aes.decrypt_block(block), feedback))
        feedback = block
    return bytes(out)


def ctr_keystream(key: bytes, nonce: bytes, blocks: int) -> bytes:
    """CTR keystream: E(nonce || counter) for counter = 0..blocks-1.

    ``nonce`` is 8 bytes; the counter fills the low 8 bytes big-endian.
    """
    _MODE_OPS.labels(mode="ctr", op="keystream").inc()
    return _bulk_engine().keystream(key, nonce, blocks)


def ctr_xcrypt(key: bytes, nonce: bytes, data: bytes) -> bytes:
    """CTR encrypt/decrypt (symmetric): data xor keystream.

    Works on any length — CTR is a stream mode, and notably only ever
    uses the *encrypt* direction, which is why encrypt-only devices
    (the paper's smallest variant) suffice for CTR links.  Keystream
    generation and the XOR both run on the batch engine.
    """
    _MODE_OPS.labels(mode="ctr", op="xcrypt").inc()
    return _bulk_engine().xcrypt_ctr(key, nonce, data)


def cfb_encrypt(key: bytes, iv: bytes, plaintext: bytes) -> bytes:
    """Full-block CFB: C_i = P_i xor E(C_{i-1}).  Encrypt-only core."""
    plaintext = _require_aligned(plaintext, "plaintext")
    _MODE_OPS.labels(mode="cfb", op="encrypt").inc()
    feedback = _require_iv(iv)
    aes = AES128(key)
    out = bytearray()
    for block in _blocks(plaintext):
        feedback = _xor(block, aes.encrypt_block(feedback))
        out.extend(feedback)
    return bytes(out)


def cfb_decrypt(key: bytes, iv: bytes, ciphertext: bytes) -> bytes:
    """Full-block CFB decryption (still uses the encrypt direction)."""
    ciphertext = _require_aligned(ciphertext, "ciphertext")
    _MODE_OPS.labels(mode="cfb", op="decrypt").inc()
    feedback = _require_iv(iv)
    aes = AES128(key)
    out = bytearray()
    for block in _blocks(ciphertext):
        out.extend(_xor(block, aes.encrypt_block(feedback)))
        feedback = block
    return bytes(out)


def ofb_xcrypt(key: bytes, iv: bytes, data: bytes) -> bytes:
    """OFB encrypt/decrypt (symmetric): feedback = E(feedback)."""
    data = bytes(data)
    _MODE_OPS.labels(mode="ofb", op="xcrypt").inc()
    feedback = _require_iv(iv)
    aes = AES128(key)
    out = bytearray()
    offset = 0
    while offset < len(data):
        feedback = aes.encrypt_block(feedback)
        chunk = data[offset : offset + BLOCK]
        out.extend(_xor(chunk, feedback[: len(chunk)]))
        offset += BLOCK
    return bytes(out)
