"""The Rijndael State — the paper's ``state_t`` variable (Fig. 1).

Rijndael arranges the data block as a matrix of 4 rows by Nb columns of
bytes, filled column-major from the input byte stream: input byte n
lands at row n mod 4, column n div 4.  AES fixes Nb = 4 (a 4x4 matrix,
the paper's Fig. 1); Rijndael also allows Nb = 6 and Nb = 8.

:class:`State` is deliberately a thin, explicit wrapper: the behavioral
cipher manipulates it through the transform functions in
:mod:`repro.aes.transforms`, and the hardware model uses the same
byte-ordering conventions when packing 128-bit bus words.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

#: Rijndael always has 4 rows.
NUM_ROWS = 4

#: Legal column counts (Nb): AES uses 4; Rijndael also defines 6 and 8.
LEGAL_NB = (4, 6, 8)


class State:
    """A 4 x Nb byte matrix with column-major byte I/O.

    The internal representation is a flat list in *input byte order*
    (column-major), which makes bus packing trivial; row/column
    accessors provide the matrix view the transforms need.
    """

    __slots__ = ("_bytes", "_nb")

    def __init__(self, data: bytes, nb: int = 4):
        if nb not in LEGAL_NB:
            raise ValueError(f"Nb must be one of {LEGAL_NB}, got {nb}")
        data = bytes(data)
        if len(data) != NUM_ROWS * nb:
            raise ValueError(
                f"state for Nb={nb} needs {NUM_ROWS * nb} bytes, "
                f"got {len(data)}"
            )
        self._bytes = bytearray(data)
        self._nb = nb

    @classmethod
    def zero(cls, nb: int = 4) -> "State":
        """An all-zero state."""
        return cls(bytes(NUM_ROWS * nb), nb)

    @property
    def nb(self) -> int:
        """Number of columns (words) in the block."""
        return self._nb

    def to_bytes(self) -> bytes:
        """The block back in input byte order (column-major)."""
        return bytes(self._bytes)

    def get(self, row: int, col: int) -> int:
        """Byte at (row, col) of the matrix view."""
        self._check_rc(row, col)
        return self._bytes[col * NUM_ROWS + row]

    def set(self, row: int, col: int, value: int) -> None:
        """Assign byte at (row, col)."""
        self._check_rc(row, col)
        if not 0 <= value <= 0xFF:
            raise ValueError(f"byte out of range: {value!r}")
        self._bytes[col * NUM_ROWS + row] = value

    def row(self, row: int) -> Tuple[int, ...]:
        """One row of the matrix, left to right across columns."""
        if not 0 <= row < NUM_ROWS:
            raise ValueError(f"row out of range: {row}")
        return tuple(
            self._bytes[col * NUM_ROWS + row] for col in range(self._nb)
        )

    def set_row(self, row: int, values: Iterable[int]) -> None:
        """Replace one row of the matrix."""
        values = tuple(values)
        if len(values) != self._nb:
            raise ValueError(
                f"row for Nb={self._nb} needs {self._nb} bytes"
            )
        for col, value in enumerate(values):
            self.set(row, col, value)

    def column(self, col: int) -> Tuple[int, int, int, int]:
        """One column (a 4-byte word, top to bottom)."""
        if not 0 <= col < self._nb:
            raise ValueError(f"column out of range: {col}")
        base = col * NUM_ROWS
        return tuple(self._bytes[base : base + NUM_ROWS])

    def set_column(self, col: int, values: Iterable[int]) -> None:
        """Replace one column with a 4-byte word."""
        values = tuple(values)
        if len(values) != NUM_ROWS:
            raise ValueError("a column is exactly 4 bytes")
        base = col * NUM_ROWS
        for offset, value in enumerate(values):
            if not 0 <= value <= 0xFF:
                raise ValueError(f"byte out of range: {value!r}")
            self._bytes[base + offset] = value

    def columns(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate columns left to right."""
        for col in range(self._nb):
            yield self.column(col)

    def copy(self) -> "State":
        """An independent copy."""
        return State(bytes(self._bytes), self._nb)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, State):
            return NotImplemented
        return self._nb == other._nb and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash((self._nb, bytes(self._bytes)))

    def __repr__(self) -> str:
        return f"State({self.to_bytes().hex()}, nb={self._nb})"

    def render(self) -> str:
        """ASCII rendering of the matrix (used by the Fig. 1 bench)."""
        lines = []
        for row in range(NUM_ROWS):
            cells = " ".join(f"{b:02x}" for b in self.row(row))
            lines.append(f"| {cells} |")
        return "\n".join(lines)

    def _check_rc(self, row: int, col: int) -> None:
        if not 0 <= row < NUM_ROWS:
            raise ValueError(f"row out of range: {row}")
        if not 0 <= col < self._nb:
            raise ValueError(f"column out of range: {col}")


def words_to_bytes(words: Iterable[int]) -> bytes:
    """Pack big-endian 32-bit words into bytes (key-schedule convention)."""
    out = bytearray()
    for word in words:
        if not 0 <= word <= 0xFFFFFFFF:
            raise ValueError(f"word out of range: {word!r}")
        out.extend(word.to_bytes(4, "big"))
    return bytes(out)


def bytes_to_words(data: bytes) -> List[int]:
    """Unpack bytes into big-endian 32-bit words."""
    if len(data) % 4:
        raise ValueError("byte length must be a multiple of 4")
    return [
        int.from_bytes(data[i : i + 4], "big") for i in range(0, len(data), 4)
    ]
