"""Rijndael constant tables, derived algebraically (paper Fig. 5).

Nothing here is a hardcoded magic table: the S-box is computed from the
patched GF(2^8) inverse followed by the FIPS-197 affine transform, the
inverse S-box is computed by inverting that map, and the round-constant
table Rcon is the sequence of powers of x in the field.  Unit tests
cross-check the derived tables against the FIPS-197 published ones.

The paper sizes its memories from this table: one S-box ROM is
256 entries × 8 bits = 2048 bits and serves one byte lane; the 32-bit
ByteSub unit uses 4 of them (8192 bits), and the key schedule's KStran
uses 4 more.
"""

from __future__ import annotations

from typing import Tuple

from repro.gf.galois import gf_inv, xtime

#: Constant added in the S-box affine transform (FIPS-197 §5.1.1).
AFFINE_CONSTANT = 0x63

#: Bits of one S-box ROM: 256 entries x 8 bits (paper §3: "Each S-box
#: uses 2048 of memory and allow 8 [bit] process").
SBOX_ROM_BITS = 256 * 8


def _affine(value: int) -> int:
    """The FIPS-197 affine transform b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^
    b_{i+6} ^ b_{i+7} ^ c_i over bit indices mod 8."""
    result = 0
    for i in range(8):
        bit = (
            (value >> i)
            ^ (value >> ((i + 4) % 8))
            ^ (value >> ((i + 5) % 8))
            ^ (value >> ((i + 6) % 8))
            ^ (value >> ((i + 7) % 8))
        ) & 1
        result |= bit << i
    return result ^ AFFINE_CONSTANT


def _build_sbox() -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for x in range(256):
        y = _affine(gf_inv(x))
        sbox[x] = y
        inv_sbox[y] = x
    return tuple(sbox), tuple(inv_sbox)


def _build_rcon(count: int = 29) -> Tuple[int, ...]:
    """Round constants Rcon[i] = x^(i-1) in GF(2^8); Rcon[0] unused.

    The widest Rijndael schedule (Nb = 8, Nk = 4: 120 words from 4)
    consumes Rcon up to index 29.
    """
    rcon = [0] * (count + 1)
    value = 1
    for i in range(1, count + 1):
        rcon[i] = value
        value = xtime(value)
    return tuple(rcon)


#: Forward S-box, SBOX[x] = affine(inv(x)).
SBOX: Tuple[int, ...]
#: Inverse S-box, INV_SBOX[SBOX[x]] == x.
INV_SBOX: Tuple[int, ...]
SBOX, INV_SBOX = _build_sbox()

#: Round constants; RCON[i] is the byte XORed by KStran in round i.
RCON: Tuple[int, ...] = _build_rcon()


def sbox_rows() -> Tuple[Tuple[int, ...], ...]:
    """The S-box as the 16x16 grid printed in the paper's Fig. 5.

    Row = high nibble of the input, column = low nibble.
    """
    return tuple(
        tuple(SBOX[(high << 4) | low] for low in range(16))
        for high in range(16)
    )
