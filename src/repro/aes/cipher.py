"""Behavioral Rijndael cipher (paper §3, Fig. 2).

Implements the full Rijndael family: block size Nb ∈ {4, 6, 8} words
and key size Nk ∈ {4, 6, 8} words, with Nr = max(Nb, Nk) + 6 rounds.
AES is the Nb = 4 subset; :class:`AES128` pins the paper's exact
configuration (Nb = Nk = 4, Nr = 10).

Decryption uses the paper's structure — the inverse functions in
inverse order (Add Key, IMix Column, IShift Row, IByte Sub), *not* the
"equivalent inverse cipher" reordering of FIPS-197 §5.3.5 — because
that is what the IP's decrypt datapath implements.

An optional ``trace`` callback observes every transform application;
the Fig. 2 bench uses it to print the round schedule, and the power
model uses it to count toggles.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.aes.key_schedule import expand_key, round_keys_from_words
from repro.aes.state import State
from repro.aes.transforms import (
    add_round_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    sub_bytes,
)

#: Trace callback signature: (round, function name, resulting state).
TraceFn = Callable[[int, str, State], None]

_LEGAL_SIZES = (16, 24, 32)


def num_rounds(block_bytes: int, key_bytes: int) -> int:
    """Rijndael round count: Nr = max(Nb, Nk) + 6."""
    if block_bytes not in _LEGAL_SIZES:
        raise ValueError(f"block must be 16/24/32 bytes, got {block_bytes}")
    if key_bytes not in _LEGAL_SIZES:
        raise ValueError(f"key must be 16/24/32 bytes, got {key_bytes}")
    return max(block_bytes, key_bytes) // 4 + 6


class Rijndael:
    """A fixed (block size, key) Rijndael instance.

    Expands the key once at construction; ``encrypt_block`` /
    ``decrypt_block`` then run the round function over 4·Nb-byte
    blocks.  This mirrors how the device is used: ``wr_key`` once, then
    stream blocks.
    """

    def __init__(self, key: bytes, block_bytes: int = 16):
        key = bytes(key)
        if block_bytes not in _LEGAL_SIZES:
            raise ValueError(
                f"block must be 16/24/32 bytes, got {block_bytes}"
            )
        self._block_bytes = block_bytes
        self._nb = block_bytes // 4
        self._nr = num_rounds(block_bytes, len(key))
        words = expand_key(key, self._nr, self._nb)
        self._round_keys: List[bytes] = round_keys_from_words(
            words, self._nb
        )

    @property
    def block_bytes(self) -> int:
        """Block length in bytes (16 for AES)."""
        return self._block_bytes

    @property
    def rounds(self) -> int:
        """Number of cipher rounds Nr."""
        return self._nr

    @property
    def round_keys(self) -> List[bytes]:
        """All Nr + 1 round keys (index 0 is the initial Add Key)."""
        return list(self._round_keys)

    def encrypt_block(
        self, plaintext: bytes, trace: Optional[TraceFn] = None
    ) -> bytes:
        """Encrypt one block (paper Fig. 2 schedule)."""
        state = self._as_state(plaintext)
        state = add_round_key(state, self._round_keys[0])
        _emit(trace, 0, "add_key", state)
        for rnd in range(1, self._nr + 1):
            state = sub_bytes(state)
            _emit(trace, rnd, "byte_sub", state)
            state = shift_rows(state)
            _emit(trace, rnd, "shift_row", state)
            if rnd != self._nr:  # the last round skips Mix Column
                state = mix_columns(state)
                _emit(trace, rnd, "mix_column", state)
            state = add_round_key(state, self._round_keys[rnd])
            _emit(trace, rnd, "add_key", state)
        return state.to_bytes()

    def decrypt_block(
        self, ciphertext: bytes, trace: Optional[TraceFn] = None
    ) -> bytes:
        """Decrypt one block — inverse functions in inverse order.

        The first decryption round skips IMix Column, mirroring the
        encryption's final round (paper §3).
        """
        state = self._as_state(ciphertext)
        for rnd in range(self._nr, 0, -1):
            state = add_round_key(state, self._round_keys[rnd])
            _emit(trace, rnd, "add_key", state)
            if rnd != self._nr:  # the first decrypt round skips IMix Column
                state = inv_mix_columns(state)
                _emit(trace, rnd, "imix_column", state)
            state = inv_shift_rows(state)
            _emit(trace, rnd, "ishift_row", state)
            state = inv_sub_bytes(state)
            _emit(trace, rnd, "ibyte_sub", state)
        state = add_round_key(state, self._round_keys[0])
        _emit(trace, 0, "add_key", state)
        return state.to_bytes()

    def _as_state(self, block: bytes) -> State:
        block = bytes(block)
        if len(block) != self._block_bytes:
            raise ValueError(
                f"block must be {self._block_bytes} bytes, got {len(block)}"
            )
        return State(block, self._nb)


class AES128(Rijndael):
    """The paper's configuration: 128-bit block, 128-bit key, 10 rounds."""

    def __init__(self, key: bytes):
        key = bytes(key)
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, got {len(key)}")
        super().__init__(key, block_bytes=16)


def encrypt_block(key: bytes, plaintext: bytes) -> bytes:
    """One-shot Rijndael encryption; sizes inferred from arguments."""
    return Rijndael(key, block_bytes=len(plaintext)).encrypt_block(plaintext)


def decrypt_block(key: bytes, ciphertext: bytes) -> bytes:
    """One-shot Rijndael decryption; sizes inferred from arguments."""
    return Rijndael(key, block_bytes=len(ciphertext)).decrypt_block(
        ciphertext
    )


def _emit(trace: Optional[TraceFn], rnd: int, name: str, state: State) -> None:
    if trace is not None:
        trace(rnd, name, state.copy())


def schedule_trace(key: bytes, plaintext: bytes) -> List[str]:
    """The encryption function-call schedule as readable lines.

    Regenerates the content of the paper's Fig. 2 (the encryption
    diagram): the ordered list of transforms with their round numbers.
    """
    lines: List[str] = []

    def _capture(rnd: int, name: str, _state: State) -> None:
        lines.append(f"round {rnd:2d}: {name}")

    Rijndael(key, block_bytes=len(plaintext)).encrypt_block(
        plaintext, trace=_capture
    )
    return lines
