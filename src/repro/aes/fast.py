"""T-table AES-128: the classic fast *software* implementation.

The paper's §1 motivation is that "at backbone communication channels
... it is not possible to lose processing speed running cryptography
algorithms in general software".  This module is that software
counterpart, done the way optimized software does it: the four round
transforms fuse into four 256-entry 32-bit tables (the "T-tables" of
the original Rijndael proposal), one lookup + XOR per state byte per
round.

It serves two purposes here:

1. a second, structurally different software implementation that must
   agree bit-for-bit with the straightforward model — a strong
   cross-check (the property suite runs them against each other);
2. the software-vs-hardware comparison bench: even the fast software
   formulation needs dozens of table lookups per block per core,
   while the IP streams a block per 50 clocks.

Tables are derived at import from the same GF(2^8) algebra as
everything else — no magic constants.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.aes.constants import SBOX
from repro.aes.key_schedule import expand_key
from repro.gf.galois import gf_mul

_MASK32 = 0xFFFFFFFF


def _build_t_tables() -> Tuple[Tuple[int, ...], ...]:
    """T0..T3: Te[x] = round-function contribution of one byte.

    T0[x] = (02·S[x], S[x], S[x], 03·S[x]) packed big-endian; T1..T3
    are byte rotations of T0.
    """
    t0: List[int] = []
    for x in range(256):
        s = SBOX[x]
        word = (
            (gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | gf_mul(s, 3)
        )
        t0.append(word)

    def rot8(word: int) -> int:
        return ((word >> 8) | (word << 24)) & _MASK32

    t1 = [rot8(w) for w in t0]
    t2 = [rot8(w) for w in t1]
    t3 = [rot8(w) for w in t2]
    return tuple(t0), tuple(t1), tuple(t2), tuple(t3)


T0, T1, T2, T3 = _build_t_tables()


class FastAES128:
    """Encrypt-only T-table AES-128.

    (Decryption would use the inverse tables; the reproduction's
    decrypt paths are covered by the straightforward model and the
    hardware, so only the encrypt tables are built here — matching
    how most deployed software implements CTR/GCM-style traffic.)
    """

    def __init__(self, key: bytes):
        key = bytes(key)
        if len(key) != 16:
            raise ValueError(f"AES-128 key must be 16 bytes, "
                             f"got {len(key)}")
        self._round_keys = expand_key(key, 10)

    def encrypt_block(self, block: bytes) -> bytes:
        block = bytes(block)
        if len(block) != 16:
            raise ValueError(f"block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        for rnd in range(1, 10):
            base = 4 * rnd
            t0 = (T0[s0 >> 24] ^ T1[(s1 >> 16) & 0xFF]
                  ^ T2[(s2 >> 8) & 0xFF] ^ T3[s3 & 0xFF]
                  ^ rk[base])
            t1 = (T0[s1 >> 24] ^ T1[(s2 >> 16) & 0xFF]
                  ^ T2[(s3 >> 8) & 0xFF] ^ T3[s0 & 0xFF]
                  ^ rk[base + 1])
            t2 = (T0[s2 >> 24] ^ T1[(s3 >> 16) & 0xFF]
                  ^ T2[(s0 >> 8) & 0xFF] ^ T3[s1 & 0xFF]
                  ^ rk[base + 2])
            t3 = (T0[s3 >> 24] ^ T1[(s0 >> 16) & 0xFF]
                  ^ T2[(s1 >> 8) & 0xFF] ^ T3[s2 & 0xFF]
                  ^ rk[base + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3

        # Final round: SubBytes + ShiftRows + AddKey (no MixColumns).
        def final(a: int, b: int, c: int, d: int, key_word: int) -> int:
            return (
                (SBOX[a >> 24] << 24)
                | (SBOX[(b >> 16) & 0xFF] << 16)
                | (SBOX[(c >> 8) & 0xFF] << 8)
                | SBOX[d & 0xFF]
            ) ^ key_word

        o0 = final(s0, s1, s2, s3, self._round_keys[40])
        o1 = final(s1, s2, s3, s0, self._round_keys[41])
        o2 = final(s2, s3, s0, s1, self._round_keys[42])
        o3 = final(s3, s0, s1, s2, self._round_keys[43])
        return b"".join(w.to_bytes(4, "big") for w in (o0, o1, o2, o3))

    def encrypt_ecb(self, data: bytes) -> bytes:
        """ECB over aligned data (for throughput measurements)."""
        data = bytes(data)
        if len(data) % 16:
            raise ValueError("data must be a multiple of 16 bytes")
        return b"".join(
            self.encrypt_block(data[i:i + 16])
            for i in range(0, len(data), 16)
        )


def t_table_memory_bits() -> int:
    """Software table footprint: 4 tables x 256 x 32 bits.

    Contrast with the hardware's 16384 S-box bits: the software trades
    8x the table memory for fused rounds — exactly the kind of
    resource the paper's FPGA design cannot spend.
    """
    return 4 * 256 * 32
