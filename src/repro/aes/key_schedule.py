"""Rijndael key schedule — expansion, KStran, and on-the-fly generators.

The paper's area trick is to never store the expanded key: round keys
are regenerated every block, one 32-bit word per clock, by the key
unit.  This module provides three views of the same schedule:

- :func:`expand_key` — the full FIPS-197 expansion (any Nk, any number
  of rounds), used as the golden reference;
- :func:`next_round_key` — the forward on-the-fly step (encryption):
  from round key r, compute round key r+1 (what the hardware's key unit
  does during the 4 ByteSub cycles of a round);
- :func:`previous_round_key` — the reverse on-the-fly step
  (decryption): from round key r, compute round key r-1.  Decryption
  starts from the *last* round key, which the device computes once per
  key load during its setup pass.

All words are big-endian 32-bit ints: byte 0 of the key is the most
significant byte of word 0 (FIPS-197 convention).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.aes.constants import RCON, SBOX

#: Words per round key for AES (Nb = 4).
WORDS_PER_ROUND_KEY = 4


def rot_word(word: int) -> int:
    """Rotate a 32-bit word left by one byte (paper Fig. 3, first step)."""
    _check_word(word)
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def sub_word(word: int) -> int:
    """Apply the S-box to each byte of a 32-bit word."""
    _check_word(word)
    return (
        (SBOX[(word >> 24) & 0xFF] << 24)
        | (SBOX[(word >> 16) & 0xFF] << 16)
        | (SBOX[(word >> 8) & 0xFF] << 8)
        | SBOX[word & 0xFF]
    )


def kstran(word: int, round_index: int) -> int:
    """The paper's KStran sub-function (Fig. 3).

    "It first shifts the word left.  Next, a Byte Sub function is
    executed.  After that, a xor operation is made with a constant
    determined by the round of operation."  The round constant lands in
    the most significant byte.
    """
    if round_index < 1 or round_index >= len(RCON):
        raise ValueError(f"round index out of range: {round_index}")
    return sub_word(rot_word(word)) ^ (RCON[round_index] << 24)


def expand_key(key: bytes, num_rounds: int, nb: int = 4) -> List[int]:
    """Full Rijndael key expansion.

    Returns ``nb * (num_rounds + 1)`` 32-bit words.  ``key`` may be 16,
    24 or 32 bytes (Nk = 4, 6, 8).  Matches FIPS-197 §5.2 including the
    extra SubWord for Nk = 8.
    """
    if len(key) not in (16, 24, 32):
        raise ValueError(f"key must be 16/24/32 bytes, got {len(key)}")
    nk = len(key) // 4
    total = nb * (num_rounds + 1)
    words = [
        int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)
    ]
    for i in range(nk, total):
        temp = words[i - 1]
        if i % nk == 0:
            temp = sub_word(rot_word(temp)) ^ (RCON[i // nk] << 24)
        elif nk > 6 and i % nk == 4:
            temp = sub_word(temp)
        words.append(words[i - nk] ^ temp)
    return words


def round_keys_from_words(
    words: Sequence[int], nb: int = 4
) -> List[bytes]:
    """Group expanded-key words into per-round key byte strings.

    Each round key is ``nb`` words packed big-endian, which is exactly
    the column-major byte order :func:`repro.aes.transforms.add_round_key`
    expects.
    """
    if len(words) % nb:
        raise ValueError("word count must be a multiple of Nb")
    keys = []
    for start in range(0, len(words), nb):
        chunk = words[start : start + nb]
        keys.append(b"".join(w.to_bytes(4, "big") for w in chunk))
    return keys


def next_round_key(
    current: Sequence[int], round_index: int
) -> Tuple[int, int, int, int]:
    """Forward on-the-fly step for AES-128 (Nk = Nb = 4).

    Given round key r-1 as 4 words, produce round key r.  Word 0 needs
    KStran of the previous word 3; words 1..3 are chained XORs.  The
    hardware computes one output word per ByteSub clock cycle, in this
    exact order.
    """
    w0, w1, w2, w3 = _check_round_key(current)
    n0 = w0 ^ kstran(w3, round_index)
    n1 = w1 ^ n0
    n2 = w2 ^ n1
    n3 = w3 ^ n2
    return (n0, n1, n2, n3)


def previous_round_key(
    current: Sequence[int], round_index: int
) -> Tuple[int, int, int, int]:
    """Reverse on-the-fly step for AES-128.

    Given round key r (produced by forward round ``round_index``),
    recover round key r-1.  The XOR chain inverts trivially; word 0
    then needs KStran of the *recovered* word 3, so hardware computes
    words 3, 2, 1 first and word 0 last — still one word per cycle.
    """
    w0, w1, w2, w3 = _check_round_key(current)
    p3 = w3 ^ w2
    p2 = w2 ^ w1
    p1 = w1 ^ w0
    p0 = w0 ^ kstran(p3, round_index)
    return (p0, p1, p2, p3)


def last_round_key(key: bytes, num_rounds: int = 10) -> Tuple[int, ...]:
    """The final round key — the decryption starting point.

    This is what the device's *setup pass* computes after ``wr_key``:
    it runs the forward schedule ``num_rounds`` times (4 clocks per
    round in hardware) and latches the result.
    """
    if len(key) != 16:
        raise ValueError("on-the-fly schedule is defined for 16-byte keys")
    words = tuple(
        int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(4)
    )
    for r in range(1, num_rounds + 1):
        words = next_round_key(words, r)
    return words


def _check_round_key(words: Sequence[int]) -> Tuple[int, int, int, int]:
    words = tuple(words)
    if len(words) != WORDS_PER_ROUND_KEY:
        raise ValueError("a round key is exactly 4 words")
    for w in words:
        _check_word(w)
    return words


def _check_word(word: int) -> None:
    # Deliberately do not echo the offending value: these words are
    # round-key material and exception text ends up in tracebacks.
    if not isinstance(word, int):
        raise ValueError(
            f"word must be an int, got {type(word).__name__}")
    if not 0 <= word <= 0xFFFFFFFF:
        raise ValueError("word out of 32-bit range")
