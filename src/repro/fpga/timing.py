"""Named-critical-path static timing: design + device → clock period.

Three candidate path classes cover the design (paper §4/§5):

1. **mix stage** — state register → (I)ShiftRow wiring → (Inv)Mix
   Column XOR network (depth from the GF(2) term structure, see
   :func:`repro.fpga.primitives.mix_stage_depth`) → merged Add Key →
   bypass mux → state source mux → state register.  The inverse
   network is one correction level deeper — the structural reason the
   decrypt device clocks slower (15 ns vs 14 ns on Acex1K).
2. **S-box read** — state register → address word-select mux → S-box
   ROM (asynchronous EAB access on Acex, a LUT mux-tree on Cyclone,
   a registered M4K read on the sync-ROM variant) → state source mux
   → state register.  On Acex this asynchronous EAB access is the
   encrypt device's critical path — the paper's remark that "the
   speed restriction is in the 32 bit parts".
3. **key schedule** — working key register → rotate (wiring) → KStran
   S-boxes → Rcon XOR → build XOR → build register.

The BOTH device inserts one direction-select mux level into each
class.  The clock period is the slowest path, rounded to the
nanosecond grid the paper reports on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.spec import ArchitectureSpec
from repro.fpga.devices import Device
from repro.fpga.primitives import mix_stage_depth
from repro.ip.control import Variant

#: Logic depth of a 256x8 ROM mapped into LUTs (optimized mux tree).
ROM_IN_LUTS_DEPTH = 3


@dataclass(frozen=True)
class PathTiming:
    """One analyzed path."""

    name: str
    delay_ns: float


def _extra_mux_levels(spec: ArchitectureSpec) -> int:
    """Direction-select levels added by the combined device."""
    return 1 if spec.variant is Variant.BOTH else 0


def _narrow_mux_levels(spec: ArchitectureSpec) -> int:
    """Word-select levels when the wide stage is narrower than 128."""
    return 1 if spec.wide_width != 128 else 0


def mix_path(spec: ArchitectureSpec, device: Device,
             inverse: bool) -> PathTiming:
    """Path class 1 for one direction."""
    levels = (
        mix_stage_depth(inverse)
        + 1  # last-round bypass / first-round IMixColumn skip mux
        + 1  # state source mux
        + _extra_mux_levels(spec)
        + _narrow_mux_levels(spec)
    )
    delay = device.t_overhead + levels * device.t_level
    name = "inv_mix_stage" if inverse else "mix_stage"
    return PathTiming(name, delay)


def sbox_path(spec: ArchitectureSpec, device: Device) -> PathTiming:
    """Path class 2: the (I)Byte Sub read."""
    mux_levels = 2 + _extra_mux_levels(spec)  # addr select + state source
    if device.supports_async_rom and not spec.sync_rom:
        delay = (
            device.t_overhead
            + device.t_rom_access
            + mux_levels * device.t_level
        )
        return PathTiming("sbox_eab_async", delay)
    if spec.sync_rom and device.memory is not None:
        # Registered read: the ROM splits the path; the worse half is
        # clock-to-data plus the source mux into the state register.
        delay = (
            device.t_overhead
            + device.t_rom_access
            + (1 + _extra_mux_levels(spec)) * device.t_level
        )
        return PathTiming("sbox_blockram_sync", delay)
    levels = ROM_IN_LUTS_DEPTH + mux_levels
    delay = device.t_overhead + levels * device.t_level
    return PathTiming("sbox_in_luts", delay)


def key_path(spec: ArchitectureSpec, device: Device) -> PathTiming:
    """Path class 3: KStran + schedule XORs."""
    if spec.key_schedule == "precomputed":
        # Round-key RAM read into the Add Key network: short.
        delay = device.t_overhead + device.t_rom_access
        return PathTiming("key_ram_read", delay)
    logic_levels = 2  # Rcon XOR + build XOR (rotate is wiring)
    if device.supports_async_rom and not spec.sync_rom:
        rom = device.t_rom_access
        return PathTiming(
            "kstran_eab",
            device.t_overhead + rom + logic_levels * device.t_level,
        )
    if spec.sync_rom and device.memory is not None:
        return PathTiming(
            "kstran_blockram_sync",
            device.t_overhead + device.t_rom_access
            + logic_levels * device.t_level,
        )
    levels = ROM_IN_LUTS_DEPTH + logic_levels
    return PathTiming(
        "kstran_in_luts", device.t_overhead + levels * device.t_level
    )


def analyze(spec: ArchitectureSpec,
            device: Device) -> Tuple[float, str, Dict[str, float]]:
    """All paths for a design point.

    Returns (clock period in ns, critical path name, all path delays).
    The period lands on the integer-nanosecond grid the paper reports.
    """
    paths = {}
    if spec.variant.can_encrypt:
        p = mix_path(spec, device, inverse=False)
        paths[p.name] = p.delay_ns
    if spec.variant.can_decrypt:
        p = mix_path(spec, device, inverse=True)
        paths[p.name] = p.delay_ns
    for p in (sbox_path(spec, device), key_path(spec, device)):
        paths[p.name] = p.delay_ns
    critical = max(paths, key=lambda name: paths[name])
    clock = round_clock(paths[critical])
    return clock, critical, paths


def round_clock(delay_ns: float) -> float:
    """Round a path delay to the 1 ns grid (half-up, like the paper)."""
    return float(math.floor(delay_ns + 0.5))


def clock_constraint(spec: ArchitectureSpec, device: Device) -> float:
    """The clock period the design is held to on a device, in ns.

    This is the Table 2 grid value the analytical model predicts; the
    graph STA (:mod:`repro.checks.sta`) uses it as the required period
    when computing slack, so a netlist change that lengthens any
    register-to-register path past the paper's published clock shows
    up as a ``sta.negative-slack`` finding.
    """
    clock, _, _ = analyze(spec, device)
    return clock
