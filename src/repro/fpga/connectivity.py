"""Block-level connectivity netlists of the paper's devices.

:mod:`repro.fpga.aes_netlists` answers "how big" (primitive counts
for the area model); this module answers "how wired": the same Figs.
8-9 structure expressed in the :mod:`repro.checks.netgraph` IR so the
DRC rules can verify the paper's invariants — every net driven exactly
once, every port connected, widths consistent, no combinational
feedback through the asynchronous S-box ROMs, exactly four ROMs in the
ByteSub bank and four in KStran, and the Table 1 pin budget.

The wiring mirrors :class:`repro.ip.core.RijndaelCore` block for
block: Data_In capture register + pending buffer, the 32/128-bit mixed
state path through the 4-S-box substitution unit, the on-the-fly key
unit with its KStran bank and Rcon generator, the round/step control
FSM, and the registered Out process.  Note the KStran address tap
(``kstran_tap``) and the schedule XOR layer are *separate* cells: the
tap is a function of the working register only, which is exactly why
the real hardware has no combinational loop through the KStran ROMs —
and why the DRC's cycle search stays clean here.
"""

from __future__ import annotations

from repro.checks.netgraph import CellKind, Design
from repro.ip.control import Variant
from repro.ip.interface import DEVICE_SIGNALS

#: Number of S-box ROMs per substitution bank (one per byte lane).
SBOX_LANES = 4

#: Timing role of every combinational cell in the paper designs,
#: consumed by the graph STA (:mod:`repro.checks.sta`) to pick a delay
#: without parsing cell names.  ROM cells are classified by their
#: :class:`~repro.checks.netgraph.CellKind` instead.  Roles:
#:
#: - ``wiring`` — pure routing (word split/join, the RotWord tap, the
#:   write-back placer: the real hardware places the substituted word
#:   with per-word register enables, not a mux layer);
#: - ``mux`` — one 2:1 select level;
#: - ``addr-mux`` — the S-box address word-select level;
#: - ``state-mux`` — the state source mux (one level, plus the
#:   direction-select level on the combined device);
#: - ``mix`` — the fused (I)ShiftRow/(I)MixColumn/AddKey network
#:   (depth from :func:`repro.fpga.primitives.mix_stage_depth` plus
#:   the bypass mux);
#: - ``sched-xor`` — the key-schedule Rcon XOR + ripple build XOR.
TIMING_ROLES = {
    "load_mux": "mux",
    "state_mux": "state-mux",
    "word_select": "addr-mux",
    "word_place": "wiring",
    "mix_network": "mix",
    "bytesub_split": "wiring",
    "bytesub_join": "wiring",
    "kstran_split": "wiring",
    "kstran_join": "wiring",
    "kstran_tap": "wiring",
    "sched_xor": "sched-xor",
    "data_ok_buf": "wiring",
}

#: Inter-block nets: name -> width.  Declared up front so the block
#: builders can connect in any order.
_NETS = {
    "data_in_q": 128, "buf_q": 128, "load_word": 128,
    "state_q": 128, "state_d": 128, "state_word": 32,
    "sbox_wb": 128, "sbox_out_word": 32, "mix_out": 128,
    "key_work": 128, "key_next": 128, "key0_q": 128,
    "kstran_in_word": 32, "kstran_out_word": 32, "rcon": 8,
    "state_sel": 2, "step": 3, "round_adv": 1, "last_round": 1,
    "buf_wr": 1, "buf_sel": 1, "out_en": 1, "data_ok_q": 1,
}


def paper_connectivity(variant: Variant = Variant.ENCRYPT,
                       name: str = "") -> Design:
    """Build the connectivity netlist of one shipped device."""
    design = Design(name or f"paper_{variant.value}")
    _pins(design, variant)
    for net_name, width in _NETS.items():
        design.add_net(net_name, width)
    _data_in(design)
    _state_path(design)
    _sbox_bank(design, "bytesub",
               addr_net="state_word", out_net="sbox_out_word")
    _key_unit(design)
    _sbox_bank(design, "kstran",
               addr_net="kstran_in_word", out_net="kstran_out_word")
    _control(design, variant)
    _out_process(design)
    return design


# ------------------------------------------------------------------- pins
def _pins(design: Design, variant: Variant) -> None:
    for spec in DEVICE_SIGNALS:
        if spec.both_only and variant is not Variant.BOTH:
            continue
        net_name = spec.name.replace("/", "_")
        design.add_net(net_name, spec.width)
        direction = "out" if spec.direction == "in" else "in"
        kind = (CellKind.PIN_IN if spec.direction == "in"
                else CellKind.PIN_OUT)
        design.add_cell(f"pin_{net_name}", kind, group="pins",
                        pad=(direction, spec.width))
        design.connect(net_name, f"pin_{net_name}", "pad")
    # The clock fans out to every register implicitly; the DRC only
    # needs to see it consumed once so it is not a dangling input.
    design.add_cell("clock_root", CellKind.SEQ, group="clock",
                    clk=("in", 1))
    design.connect("clk", "clock_root", "clk")


# -------------------------------------------------------- Data_In process
def _data_in(design: Design) -> None:
    design.add_cell("data_in_reg", CellKind.SEQ, group="interface",
                    d=("in", 128), en=("in", 1), q=("out", 128))
    design.connect("din", "data_in_reg", "d")
    design.connect("wr_data", "data_in_reg", "en")
    design.connect("data_in_q", "data_in_reg", "q")
    # One-deep pending buffer: lets the bus write the next block while
    # the engine runs (the paper's stated reason for registering din).
    design.add_cell("pending_buf", CellKind.SEQ, group="interface",
                    d=("in", 128), en=("in", 1), q=("out", 128))
    design.connect("data_in_q", "pending_buf", "d")
    design.connect("buf_wr", "pending_buf", "en")
    design.connect("buf_q", "pending_buf", "q")
    # Block-start source: capture register or the pending buffer.
    design.add_cell("load_mux", CellKind.COMB, group="interface",
                    a=("in", 128), b=("in", 128), sel=("in", 1),
                    y=("out", 128))
    design.connect("data_in_q", "load_mux", "a")
    design.connect("buf_q", "load_mux", "b")
    design.connect("buf_sel", "load_mux", "sel")
    design.connect("load_word", "load_mux", "y")


# ------------------------------------------------------------- state path
def _state_path(design: Design) -> None:
    # 3-way source mux: block load / S-box write-back / mix stage.
    design.add_cell("state_mux", CellKind.COMB, group="state",
                    load=("in", 128), sub=("in", 128),
                    mix=("in", 128), sel=("in", 2), y=("out", 128))
    design.connect("load_word", "state_mux", "load")
    design.connect("sbox_wb", "state_mux", "sub")
    design.connect("mix_out", "state_mux", "mix")
    design.connect("state_sel", "state_mux", "sel")
    design.connect("state_d", "state_mux", "y")
    design.add_cell("state_reg", CellKind.SEQ, group="state",
                    d=("in", 128), q=("out", 128))
    design.connect("state_d", "state_reg", "d")
    design.connect("state_q", "state_reg", "q")
    # Word select: which 32-bit chunk feeds the substitution unit.
    design.add_cell("word_select", CellKind.COMB, group="state",
                    state=("in", 128), sel=("in", 3), y=("out", 32))
    design.connect("state_q", "word_select", "state")
    design.connect("step", "word_select", "sel")
    design.connect("state_word", "word_select", "y")
    # Write-back placer: routes the substituted word into its slot.
    design.add_cell("word_place", CellKind.COMB, group="state",
                    word=("in", 32), state=("in", 128),
                    sel=("in", 3), y=("out", 128))
    design.connect("sbox_out_word", "word_place", "word")
    design.connect("state_q", "word_place", "state")
    design.connect("step", "word_place", "sel")
    design.connect("sbox_wb", "word_place", "y")
    # Fused ShiftRow / MixColumn / AddKey stage (1 cycle, 128 bits).
    design.add_cell("mix_network", CellKind.COMB, group="mix",
                    state=("in", 128), key=("in", 128),
                    last=("in", 1), y=("out", 128))
    design.connect("state_q", "mix_network", "state")
    design.connect("key_work", "mix_network", "key")
    design.connect("last_round", "mix_network", "last")
    design.connect("mix_out", "mix_network", "y")


# ------------------------------------------------------------ S-box banks
def _sbox_bank(design: Design, group: str, addr_net: str,
               out_net: str) -> None:
    """One 4-ROM substitution bank: split word, 4 lookups, rejoin."""
    design.add_cell(f"{group}_split", CellKind.COMB, group=group,
                    word=("in", 32),
                    **{f"b{i}": ("out", 8) for i in range(SBOX_LANES)})
    design.connect(addr_net, f"{group}_split", "word")
    design.add_cell(f"{group}_join", CellKind.COMB, group=group,
                    y=("out", 32),
                    **{f"b{i}": ("in", 8) for i in range(SBOX_LANES)})
    design.connect(out_net, f"{group}_join", "y")
    for lane in range(SBOX_LANES):
        addr = f"{group}_addr{lane}"
        data = f"{group}_data{lane}"
        design.add_net(addr, 8)
        design.add_net(data, 8)
        design.connect(addr, f"{group}_split", f"b{lane}")
        design.add_cell(f"{group}_rom{lane}", CellKind.ROM,
                        group=group, addr=("in", 8), data=("out", 8))
        design.connect(addr, f"{group}_rom{lane}", "addr")
        design.connect(data, f"{group}_rom{lane}", "data")
        design.connect(data, f"{group}_join", f"b{lane}")


# --------------------------------------------------------------- key unit
def _key_unit(design: Design) -> None:
    # key0 latch (loaded on wr_key) and working register.
    design.add_cell("key0_reg", CellKind.SEQ, group="key",
                    d=("in", 128), en=("in", 1), q=("out", 128))
    design.connect("din", "key0_reg", "d")
    design.connect("wr_key", "key0_reg", "en")
    design.connect("key0_q", "key0_reg", "q")
    design.add_cell("key_work_reg", CellKind.SEQ, group="key",
                    d=("in", 128), q=("out", 128))
    design.connect("key_next", "key_work_reg", "d")
    design.connect("key_work", "key_work_reg", "q")
    # KStran address tap: RotWord of the working register's last word.
    # A function of the *register output only* — this separation is
    # what keeps the KStran path loop-free.
    design.add_cell("kstran_tap", CellKind.COMB, group="key",
                    work=("in", 128), tap=("out", 32))
    design.connect("key_work", "kstran_tap", "work")
    design.connect("kstran_in_word", "kstran_tap", "tap")
    # Schedule XOR layer: substituted word + Rcon + ripple XOR chain.
    design.add_cell("sched_xor", CellKind.COMB, group="key",
                    work=("in", 128), key0=("in", 128),
                    sub=("in", 32), rcon=("in", 8), y=("out", 128))
    design.connect("key_work", "sched_xor", "work")
    design.connect("key0_q", "sched_xor", "key0")
    design.connect("kstran_out_word", "sched_xor", "sub")
    design.connect("rcon", "sched_xor", "rcon")
    design.connect("key_next", "sched_xor", "y")
    # Rcon generator: an xtime register stepped once per round.
    design.add_cell("rcon_reg", CellKind.SEQ, group="key",
                    en=("in", 1), q=("out", 8))
    design.connect("round_adv", "rcon_reg", "en")
    design.connect("rcon", "rcon_reg", "q")


# ---------------------------------------------------------------- control
def _control(design: Design, variant: Variant) -> None:
    ports = {
        "setup": ("in", 1), "wr_data": ("in", 1), "wr_key": ("in", 1),
        "state_sel": ("out", 2), "step": ("out", 3),
        "round_adv": ("out", 1), "last_round": ("out", 1),
        "buf_wr": ("out", 1), "buf_sel": ("out", 1),
        "out_en": ("out", 1), "data_ok": ("out", 1),
    }
    if variant is Variant.BOTH:
        ports["encdec"] = ("in", 1)
    design.add_cell("control_fsm", CellKind.SEQ, group="control",
                    **ports)
    design.connect("setup", "control_fsm", "setup")
    design.connect("wr_data", "control_fsm", "wr_data")
    design.connect("wr_key", "control_fsm", "wr_key")
    if variant is Variant.BOTH:
        design.connect("enc_dec", "control_fsm", "encdec")
    for net in ("state_sel", "step", "round_adv", "last_round",
                "buf_wr", "buf_sel", "out_en"):
        design.connect(net, "control_fsm", net)
    design.connect("data_ok_q", "control_fsm", "data_ok")


# ------------------------------------------------------------ Out process
def _out_process(design: Design) -> None:
    design.add_cell("out_reg", CellKind.SEQ, group="interface",
                    d=("in", 128), en=("in", 1), q=("out", 128))
    design.connect("mix_out", "out_reg", "d")
    design.connect("out_en", "out_reg", "en")
    design.connect("dout", "out_reg", "q")
    design.add_cell("data_ok_buf", CellKind.COMB, group="interface",
                    a=("in", 1), y=("out", 1))
    design.connect("data_ok_q", "data_ok_buf", "a")
    design.connect("data_ok", "data_ok_buf", "y")
