"""FPGA synthesis-estimation substrate (the Quartus/Leonardo substitute).

The paper's evaluation is a table of fitter reports: logic cells,
embedded memory bits, pins, and achievable clock period for each device
variant on two Altera families.  We reproduce that flow:

1. :mod:`repro.fpga.aes_netlists` expands an
   :class:`~repro.arch.spec.ArchitectureSpec` into a structural
   :class:`~repro.fpga.netlist.Netlist` — named groups of flip-flops,
   LUT functions, ROM blocks and pins, with sizes derived from the
   datapath algebra (e.g. Mix Column LUT counts come from the xtime
   network structure, ROM bits from 256x8 S-boxes).
2. :mod:`repro.fpga.mapper` performs technology mapping onto a
   :class:`~repro.fpga.devices.Device`: register packing into logic
   elements, ROMs into asynchronous EABs where the family supports
   them (Acex1K) or decomposed into LUT mux-trees where it does not
   (Cyclone — the effect that doubles the Cyclone LC counts in
   Table 2).
3. :mod:`repro.fpga.timing` runs a named-critical-path static timing
   model to produce the clock period, and
4. :mod:`repro.fpga.report` assembles the fitter-style report row.

Per-device calibration constants (the stand-in for 2002-era vendor
tool quality) live in :mod:`repro.fpga.calibration` with provenance
notes; everything else is structure.
"""

from repro.fpga.devices import DEVICES, Device, device
from repro.fpga.netlist import Netlist
from repro.fpga.report import FitReport
from repro.fpga.synthesis import compile_spec

__all__ = [
    "DEVICES",
    "Device",
    "FitReport",
    "Netlist",
    "compile_spec",
    "device",
]
