"""One-call synthesis flow: spec + device → :class:`FitReport`.

This is the reproduction's equivalent of "compile the VHDL with
Leonardo Spectrum, fit and time with Quartus II" (paper §5).
"""

from __future__ import annotations

from typing import Iterable, List, Union

from repro.arch.spec import ArchitectureSpec, PAPER_SPECS
from repro.fpga.aes_netlists import build_netlist
from repro.fpga.devices import Device, device as lookup_device
from repro.fpga.mapper import map_netlist
from repro.fpga.report import FitReport
from repro.fpga.timing import analyze


def compile_spec(spec: ArchitectureSpec,
                 target: Union[Device, str],
                 strict: bool = True) -> FitReport:
    """Synthesize, map and time one architecture on one device."""
    dev = target if isinstance(target, Device) else lookup_device(target)
    netlist = build_netlist(spec)
    mapped = map_netlist(netlist, dev, sync_design=spec.sync_rom,
                         strict=strict)
    clock, critical, paths = analyze(spec, dev)
    fits = (
        mapped.logic_elements <= dev.logic_elements
        and mapped.pins <= dev.user_ios
        and (dev.memory is None
             or mapped.memory_blocks <= dev.memory.blocks)
    )
    return FitReport(
        spec=spec,
        device=dev,
        logic_elements=mapped.logic_elements,
        memory_bits=mapped.memory_bits,
        memory_blocks=mapped.memory_blocks,
        pins=mapped.pins,
        clock_ns=clock,
        critical_path=critical,
        path_delays=paths,
        fits=fits,
    )


def compile_table2(families: Iterable[str] = ("Acex1K", "Cyclone"),
                   sync_rom: bool = False) -> List[FitReport]:
    """All six fits of the paper's Table 2 (3 variants x 2 families)."""
    from repro.arch.spec import paper_spec

    reports = []
    for family in families:
        dev = lookup_device(family)
        for spec in PAPER_SPECS.values():
            run = spec
            if sync_rom:
                run = paper_spec(spec.variant, sync_rom=True)
            reports.append(compile_spec(run, dev))
    return reports
