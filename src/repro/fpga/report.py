"""Fitter-style reports — the rows of the paper's Table 2.

A :class:`FitReport` bundles the mapped resources, the timing result
and the derived performance figures for one (architecture, device)
pair, with the same fields and units the paper reports: logic cells
with occupancy %, memory bits with occupancy %, pins with occupancy %,
latency in ns, clock period in ns, and throughput in Mbps
(block size / latency).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.arch.spec import ArchitectureSpec, BLOCK_BITS
from repro.fpga.devices import Device


@dataclass(frozen=True)
class FitReport:
    """One synthesis/fit result."""

    spec: ArchitectureSpec
    device: Device
    logic_elements: int
    memory_bits: int
    memory_blocks: int
    pins: int
    clock_ns: float
    critical_path: str
    path_delays: Dict[str, float]
    #: Whether the design fits the device (LEs, memory blocks, pins).
    fits: bool = True

    # ------------------------------------------------------- derived
    @property
    def latency_cycles(self) -> int:
        return self.spec.block_latency_cycles

    @property
    def latency_ns(self) -> float:
        """Capture-to-result latency (the paper's 700/750/850 ns)."""
        return self.latency_cycles * self.clock_ns

    @property
    def throughput_mbps(self) -> float:
        """Throughput as the paper defines it: block size / latency.

        (1 Mbps = 1e6 bit/s; with ns latencies this is bits*1000/ns.)
        For pipelined designs the steady-state rate uses the block
        period instead of the latency.
        """
        period_cycles = self.spec.cycles_per_block_throughput
        return BLOCK_BITS * 1000.0 / (period_cycles * self.clock_ns)

    @property
    def logic_pct(self) -> float:
        return 100.0 * self.logic_elements / self.device.logic_elements

    @property
    def memory_pct(self) -> float:
        total = self.device.memory_bits
        return 100.0 * self.memory_bits / total if total else 0.0

    @property
    def pin_pct(self) -> float:
        return 100.0 * self.pins / self.device.user_ios

    @property
    def efficiency_mbps_per_kle(self) -> float:
        """Throughput per 1000 logic cells (area-efficiency metric)."""
        return self.throughput_mbps / (self.logic_elements / 1000.0)

    # ------------------------------------------------------ rendering
    def row(self) -> Dict[str, str]:
        """The Table 2 cell strings for this fit."""
        return {
            "LC's": f"{self.logic_elements}/{self.logic_pct:.0f}%",
            "Memory": f"{self.memory_bits}/{self.memory_pct:.0f}%",
            "Pins": f"{self.pins}/{self.pin_pct:.0f}%",
            "Latency": f"{self.latency_ns:.0f} ns",
            "Clk": f"{self.clock_ns:.0f} ns",
            "Throughput": f"{self.throughput_mbps:.0f} Mbps",
        }

    def render(self) -> str:
        """A one-fit report block."""
        lines = [
            f"== {self.spec.name} on {self.device.name} "
            f"({self.device.family}) =="
        ]
        for key, value in self.row().items():
            lines.append(f"  {key:<11}: {value}")
        lines.append(
            f"  critical   : {self.critical_path} "
            f"({self.path_delays[self.critical_path]:.1f} ns raw)"
        )
        return "\n".join(lines)


def render_table2(reports: Sequence[FitReport],
                  families: Sequence[str] = ("Acex1K", "Cyclone")) -> str:
    """Render a set of fits in the paper's Table 2 layout.

    Rows are grouped by design (Encrypt / Decrypt / Both), columns by
    device family, exactly like the paper.
    """
    by_key = {
        (r.spec.variant.value, r.device.family): r for r in reports
    }
    metrics = ("LC's", "Memory", "Pins", "Latency", "Clk", "Throughput")
    lines = [
        f"{'Design':<9}{'Metric':<12}"
        + "".join(f"{fam:<16}" for fam in families)
    ]
    lines.append("-" * (21 + 16 * len(families)))
    for variant in ("encrypt", "decrypt", "both"):
        for i, metric in enumerate(metrics):
            label = variant.capitalize() if i == 0 else ""
            cells = []
            for family in families:
                report = by_key.get((variant, family))
                cells.append(report.row()[metric] if report else "-")
            lines.append(
                f"{label:<9}{metric:<12}"
                + "".join(f"{cell:<16}" for cell in cells)
            )
        lines.append("-" * (21 + 16 * len(families)))
    return "\n".join(lines)
