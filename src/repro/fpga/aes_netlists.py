"""Structural netlists for the paper's devices and their design-space
siblings.

The inventory mirrors the RTL model in :mod:`repro.ip` block for
block.  For the paper's exact design points
(``sub_width=32, wide_width=128``) the group sizes are:

====================  ======  ==========  =================================
group                 LUTs    flip-flops  notes
====================  ======  ==========  =================================
data_in               4       128 (u)     Data_In register + write control
out                   12      130 (u)     Out register, data_ok strobe
state                 256     128 (p)     state words + 3-way source mux
key_regs              256     384 (p/u)   key0 latch (u), work + mux, build
key_last              0       128 (u)     last-round-key latch (setup pass)
kstran                24      8 (p)       Rcon generator + Rcon XOR
sbox_addr             64      0           ByteSub word-select (4:1 x 32)
control               42      26 (p)      round/step/setup FSM
mix_enc / mix_dec     432/496 0           fused SR-MC-AK net + bypass mux
both_select           657     0           direction muxes (BOTH only)
pins                  —       —           261 (+1 enc/dec on BOTH)
====================  ======  ==========  =================================

(u) = unpacked register (fed from pins/wires, costs a whole LE);
(p) = packed with its driving LUT.  The mix-network counts are not
hand-written — they derive from the GF(2) term structure via
:mod:`repro.fpga.primitives`; InvMixColumn uses the shared
correction-form (see :func:`primitives.inv_mix_network_luts`).

The BOTH device follows the paper's "combine the two devices"
construction: one interface/state/key-register set, duplicated
direction networks, duplicated KStran S-box banks (hence 32768 memory
bits in Table 2), plus the ``both_select`` direction-mux layer.
"""

from __future__ import annotations

from repro.arch.spec import ArchitectureSpec
from repro.fpga.netlist import Netlist
from repro.fpga.primitives import (
    inv_mix_network_luts,
    mix_network_luts,
    mux_luts,
)
from repro.ip.control import Variant
from repro.ip.interface import pin_count

#: Bits in one state/key register bank.
_BANK = 128


def build_netlist(spec: ArchitectureSpec) -> Netlist:
    """Expand an architecture spec into a structural netlist."""
    nl = Netlist(spec.name)
    _interface(nl, spec)
    _state(nl, spec)
    _key_unit(nl, spec)
    _sbox_unit(nl, spec)
    _mix_networks(nl, spec)
    _control(nl, spec)
    if spec.variant is Variant.BOTH:
        _both_select(nl, spec)
    nl.add_pins("pins", pin_count(spec.variant))
    return nl


def _interface(nl: Netlist, spec: ArchitectureSpec) -> None:
    # Data_In register: fed straight from din pins with a write enable.
    nl.add_ff("data_in", _BANK, packed=False)
    nl.add_luts("data_in", 4)  # buffer-valid / capture control
    # Out register + data_ok strobe.
    nl.add_ff("out", _BANK, packed=False)
    nl.add_ff("out", 2, packed=False)
    nl.add_luts("out", 12)


def _state(nl: Netlist, spec: ArchitectureSpec) -> None:
    # State words with a 3-way source mux (sbox write-back / mix stage /
    # block load); the paper's mixed design keeps the full 128-bit bank
    # regardless of datapath width.
    nl.add_ff("state", _BANK, packed=True)
    nl.add_luts("state", mux_luts(_BANK, 3))


def _key_unit(nl: Netlist, spec: ArchitectureSpec) -> None:
    if spec.key_schedule == "precomputed":
        # Round keys held in a RAM (11 x 128 bits) written once per
        # key load; address counter + write port glue.
        nl.add_rom("key_ram", 16, 128)  # 2048-bit block, 11 words used
        nl.add_luts("key_regs", 96)
        nl.add_ff("key_regs", 8, packed=True)
        nl.add_ff("key_regs", _BANK, packed=False)  # key0 latch
        return
    # On-the-fly unit: key0 latch (unpacked), working register with its
    # source mux, build register packed with the schedule XORs.
    nl.add_ff("key_regs", _BANK, packed=False)
    nl.add_ff("key_regs", _BANK, packed=True)
    nl.add_luts("key_regs", mux_luts(_BANK, 2))
    nl.add_ff("key_regs", _BANK, packed=True)
    nl.add_luts("key_regs", _BANK)  # schedule XOR per build bit
    # Last-round-key latch: every variant carries the same key unit
    # (the paper's "very similar structure"); the setup pass fills it.
    nl.add_ff("key_last", _BANK, packed=False)
    # Rcon generator (xtime register) + Rcon XOR into the top byte.
    nl.add_ff("kstran", 8, packed=True)
    nl.add_luts("kstran", 24)


def _sbox_unit(nl: Netlist, spec: ArchitectureSpec) -> None:
    # Data S-boxes: spec.data_sbox_count ROMs of 256x8; the address
    # word-select mux picks which state chunk feeds the unit.  The
    # BOTH device keeps separate forward/inverse banks; the direction
    # suffix tells the memory allocator which tables are never read in
    # the same cycle (so an EAB can hold one of each).
    if spec.variant is Variant.BOTH:
        per_direction = spec.data_sbox_count // 2
        nl.add_rom("sbox_data_enc", 256, 8, per_direction)
        nl.add_rom("sbox_data_dec", 256, 8, per_direction)
    else:
        nl.add_rom("sbox_data", 256, 8, spec.data_sbox_count)
    ways = 128 // spec.sub_width
    nl.add_luts("sbox_addr", mux_luts(spec.sub_width, ways))
    if spec.key_schedule == "on_the_fly":
        if spec.variant is Variant.BOTH:
            per_direction = spec.kstran_sbox_count // 2
            nl.add_rom("sbox_kstran_enc", 256, 8, per_direction)
            nl.add_rom("sbox_kstran_dec", 256, 8, per_direction)
        else:
            nl.add_rom("sbox_kstran", 256, 8, spec.kstran_sbox_count)
    if spec.sync_rom:
        # Registered ROM outputs (pipeline registers).
        nl.add_ff("sbox_pipeline", spec.sub_width, packed=False)


def _mix_networks(nl: Netlist, spec: ArchitectureSpec) -> None:
    columns = spec.wide_width // 32
    rounds = spec.unrolled_rounds
    narrow_mux = (
        mux_luts(spec.wide_width, 128 // spec.wide_width)
        if spec.wide_width != 128 else 0
    )
    if spec.variant.can_encrypt:
        luts = mix_network_luts(columns) + spec.wide_width  # bypass mux
        nl.add_luts("mix_enc", (luts + narrow_mux) * rounds)
    if spec.variant is Variant.DECRYPT:
        luts = inv_mix_network_luts(columns) + spec.wide_width
        nl.add_luts("mix_dec", (luts + narrow_mux) * rounds)
    elif spec.variant is Variant.BOTH:
        # The combined device routes the decrypt path through the
        # *shared* forward MixColumn network (InvMC = correction o MC),
        # so it only adds the correction layer; the first-round skip
        # and input-steering muxes live in the both_select group.
        correction = inv_mix_network_luts(columns) - mix_network_luts(
            columns
        )
        nl.add_luts("mix_dec", correction * rounds)


def _control(nl: Netlist, spec: ArchitectureSpec) -> None:
    # Round counter (4) + step counter (3) + top FSM (2) + setup-pass
    # counters (7) + decode terms.
    nl.add_ff("control", 26, packed=True)
    nl.add_luts("control", 42)


def _both_select(nl: Netlist, spec: ArchitectureSpec) -> None:
    """Direction-mux layer of the combined device.

    One 2:1 mux layer per shared resource that both direction networks
    drive or consume: state source, mix-stage input, key-build source,
    S-box bank output, KStran address, Out source — plus the extra
    FSM terms and the enc/dec sampling register.
    """
    nl.add_luts("both_select", mux_luts(_BANK, 2))  # state source
    nl.add_luts("both_select", mux_luts(_BANK, 2))  # mix-stage input
    nl.add_luts("both_select", mux_luts(_BANK, 2))  # key build source
    nl.add_luts("both_select", mux_luts(spec.sub_width, 2) * 4)  # sbox bank
    nl.add_luts("both_select", mux_luts(32, 2))  # KStran address
    nl.add_luts("both_select", mux_luts(64, 2))  # Out source
    nl.add_luts("both_select", 49)  # direction FSM terms + enc/dec glue
    nl.add_ff("both_select", 1, packed=True)
