"""Altera device database for the families the paper (and its Table 3
baselines) target.

Capacities are the published datasheet numbers:

- **EP1K100FC484-1** (Acex 1K): 4992 LEs, 12 EABs of 4096 bits each
  (49152 bits, asynchronous-read capable), 333 user I/O.  The paper's
  16384-bit encrypt design occupies 33 % of EAB bits and 261 of 333
  pins = 78 % — both matching Table 2 exactly.
- **EP1C20F400C6** (Cyclone): 20060 LEs, 64 M4K blocks of 4608 bits
  (294912 bits, *synchronous-only* — the reason Table 2 shows 0
  memory bits and roughly doubled LE counts on Cyclone), 301 user I/O.
- Flex 10KA / Apex 20K / Apex 20KE parts for the Table 3 literature
  baselines.

Timing parameters (``t_level``, ``t_overhead``, ``t_rom_access``) are
calibrated per family in :mod:`repro.fpga.calibration` and injected
here; see that module for the fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class MemoryBlockKind:
    """One kind of embedded memory block on a device."""

    name: str
    bits_per_block: int
    blocks: int
    supports_async_read: bool

    @property
    def total_bits(self) -> int:
        return self.bits_per_block * self.blocks


@dataclass(frozen=True)
class Device:
    """One FPGA part: capacities plus family timing parameters."""

    name: str
    family: str
    logic_elements: int
    memory: Optional[MemoryBlockKind]
    user_ios: int
    #: Effective delay of one logic level (LUT + local routing), ns.
    t_level: float
    #: Fixed per-path overhead (clock-to-out + setup + skew), ns.
    t_overhead: float
    #: Embedded-memory access time (async read, or sync clock-to-data), ns.
    t_rom_access: float
    #: Incremental routing delay charged per traversed cell by the
    #: graph STA (:mod:`repro.checks.sta`).  The calibrated families
    #: fold routing into ``t_level``/``t_overhead``, so this defaults
    #: to zero; it exists so a device with long-line-dominated routing
    #: can be modeled without re-fitting the level delay.
    t_route: float = 0.0

    @property
    def memory_bits(self) -> int:
        """Total embedded memory bits."""
        return self.memory.total_bits if self.memory else 0

    @property
    def supports_async_rom(self) -> bool:
        """Whether S-box ROMs can live in embedded memory combinationally."""
        return bool(self.memory and self.memory.supports_async_read)

    def occupancy(self, les: int, mem_bits: int,
                  pins: int) -> Dict[str, float]:
        """Utilization fractions for a fit (the Table 2 percentages)."""
        return {
            "logic": les / self.logic_elements,
            "memory": (mem_bits / self.memory_bits) if self.memory_bits
            else 0.0,
            "pins": pins / self.user_ios,
        }


#: All parts the reproduction knows about, keyed by part number.
DEVICES: Dict[str, Device] = {}


def _add(dev: Device) -> Device:
    DEVICES[dev.name] = dev
    return dev


# The paper's two implementation targets -------------------------------
EP1K100 = _add(
    Device(
        name="EP1K100FC484-1",
        family="Acex1K",
        logic_elements=4992,
        memory=MemoryBlockKind("EAB", 4096, 12, supports_async_read=True),
        user_ios=333,
        t_level=2.0,
        t_overhead=3.0,
        t_rom_access=7.0,
    )
)

EP1C20 = _add(
    Device(
        name="EP1C20F400C6",
        family="Cyclone",
        logic_elements=20060,
        memory=MemoryBlockKind("M4K", 4608, 64, supports_async_read=False),
        user_ios=301,
        t_level=1.5,
        t_overhead=2.0,
        t_rom_access=4.5,
    )
)

# Table 3 baseline targets ---------------------------------------------
EPF10K250A = _add(
    Device(
        name="EPF10K250ARC240-1",
        family="Flex10KA",
        logic_elements=12160,
        memory=MemoryBlockKind("EAB", 2048, 20, supports_async_read=True),
        user_ios=189,
        t_level=2.6,
        t_overhead=2.2,
        t_rom_access=8.0,
    )
)

EP20K400 = _add(
    Device(
        name="EP20K400BC652-1",
        family="Apex20K",
        logic_elements=16640,
        memory=MemoryBlockKind("ESB", 2048, 104, supports_async_read=True),
        user_ios=502,
        t_level=2.0,
        t_overhead=1.8,
        t_rom_access=6.5,
    )
)

EP20K400E = _add(
    Device(
        name="EP20K400EBC652-1X",
        family="Apex20KE",
        logic_elements=16640,
        memory=MemoryBlockKind("ESB", 2048, 104, supports_async_read=True),
        user_ios=488,
        t_level=1.8,
        t_overhead=1.6,
        t_rom_access=5.5,
    )
)


def device(name: str) -> Device:
    """Look a part up by exact part number or by family alias.

    Family aliases ("Acex1K", "Cyclone", ...) resolve to the part the
    paper used from that family.
    """
    if name in DEVICES:
        return DEVICES[name]
    by_family = {dev.family.lower(): dev for dev in DEVICES.values()}
    try:
        return by_family[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from None
