"""Structural netlist: what a synthesizer sees before technology mapping.

A :class:`Netlist` is a bag of primitive entries organized into named
groups (``"state"``, ``"mix_network"``, ``"kstran"``, ...).  The
primitives match the granularity a 2002-era FPGA flow worked at:

- ``luts`` — 4-input-or-fewer logic functions (one LE each after
  mapping; a function wider than 4 inputs must be entered pre-
  decomposed by the netlist builder, which knows the logic structure);
- ``ff_packed`` — flip-flops whose D input is one of the group's LUTs
  (register packing makes them free in LE terms);
- ``ff_unpacked`` — flip-flops fed directly by a wire/pin (consume a
  whole LE on these families, which cannot merge unrelated logic into
  a register-only LE);
- ``rom`` — an asynchronous-read ROM block (words x width), the
  S-boxes;
- ``pins`` — device I/O.

Groups keep the report interpretable and let the BOTH variant express
structural sharing ("these groups appear once, those per direction").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple


@dataclass(frozen=True)
class RomBlock:
    """One ROM instance (e.g. a 256x8 S-box)."""

    words: int
    width: int
    count: int = 1

    @property
    def bits(self) -> int:
        return self.words * self.width * self.count

    @property
    def address_bits(self) -> int:
        bits = 0
        while (1 << bits) < self.words:
            bits += 1
        return bits


@dataclass
class Group:
    """One named cluster of primitives."""

    name: str
    luts: int = 0
    ff_packed: int = 0
    ff_unpacked: int = 0
    pins: int = 0
    roms: List[RomBlock] = field(default_factory=list)

    @property
    def flipflops(self) -> int:
        return self.ff_packed + self.ff_unpacked

    @property
    def rom_bits(self) -> int:
        return sum(rom.bits for rom in self.roms)


class Netlist:
    """A named design as a collection of groups."""

    def __init__(self, name: str):
        self.name = name
        self._groups: Dict[str, Group] = {}

    def group(self, name: str) -> Group:
        """Get-or-create a group."""
        if name not in self._groups:
            self._groups[name] = Group(name)
        return self._groups[name]

    def add_luts(self, group: str, count: int) -> None:
        """Add combinational 4-LUT functions to a group."""
        self._check_count(count)
        self.group(group).luts += count

    def add_ff(self, group: str, count: int, packed: bool) -> None:
        """Add flip-flops; ``packed`` means fed by one of the group's LUTs."""
        self._check_count(count)
        if packed:
            self.group(group).ff_packed += count
        else:
            self.group(group).ff_unpacked += count

    def add_rom(self, group: str, words: int, width: int,
                count: int = 1) -> None:
        """Add ROM blocks (S-boxes and friends)."""
        self._check_count(count)
        if words < 2 or width < 1:
            raise ValueError("ROM must have >=2 words and >=1 bit width")
        self.group(group).roms.append(RomBlock(words, width, count))

    def add_pins(self, group: str, count: int) -> None:
        """Add device pins."""
        self._check_count(count)
        self.group(group).pins += count

    def merge(self, other: "Netlist", prefix: str = "") -> None:
        """Absorb another netlist's groups (optionally prefixed)."""
        for group in other.groups():
            target = self.group(prefix + group.name)
            target.luts += group.luts
            target.ff_packed += group.ff_packed
            target.ff_unpacked += group.ff_unpacked
            target.pins += group.pins
            target.roms.extend(group.roms)

    # -------------------------------------------------------------- queries
    def groups(self) -> Iterator[Group]:
        """All groups in insertion order."""
        return iter(self._groups.values())

    @property
    def total_luts(self) -> int:
        return sum(g.luts for g in self._groups.values())

    @property
    def total_ff(self) -> int:
        return sum(g.flipflops for g in self._groups.values())

    @property
    def total_ff_unpacked(self) -> int:
        return sum(g.ff_unpacked for g in self._groups.values())

    @property
    def total_rom_bits(self) -> int:
        return sum(g.rom_bits for g in self._groups.values())

    @property
    def total_pins(self) -> int:
        return sum(g.pins for g in self._groups.values())

    def rom_blocks(self) -> List[Tuple[str, RomBlock]]:
        """Every ROM instance with its owning group name."""
        out: List[Tuple[str, RomBlock]] = []
        for group in self._groups.values():
            out.extend((group.name, rom) for rom in group.roms)
        return out

    def summary(self) -> str:
        """Human-readable per-group breakdown."""
        lines = [
            f"netlist {self.name}: {self.total_luts} LUTs, "
            f"{self.total_ff} FFs ({self.total_ff_unpacked} unpacked), "
            f"{self.total_rom_bits} ROM bits, {self.total_pins} pins"
        ]
        for group in self._groups.values():
            lines.append(
                f"  {group.name:<18} luts={group.luts:<5} "
                f"ff={group.flipflops:<5} rom={group.rom_bits:<6} "
                f"pins={group.pins}"
            )
        return "\n".join(lines)

    @staticmethod
    def _check_count(count: int) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
