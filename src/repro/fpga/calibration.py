"""Calibration constants for the synthesis-estimation flow.

An analytic netlist model cannot reproduce the *absolute* output of a
2002 Leonardo Spectrum + Quartus II flow — logic duplication, failed
packing and routing-driven replication inflate real LE counts above
the structural minimum.  Standard practice (then and now) is to
calibrate an area model against a small number of vendor-tool anchor
results and validate on the rest.  We do exactly that, with the
paper's own Table 2 as the anchor set:

- :data:`LOGIC_FIT` — ratio of synthesized LEs to structural LUT
  count, fitted so the **Acex1K encrypt** cell matches the paper
  exactly (one scalar).  Its fitted value (~1.43) is a typical
  2002-era inflation factor for XOR-heavy datapaths.
- :data:`ROM_LUT_FIT` — ratio of synthesized LEs to the Shannon-
  decomposition LUT count for a ROM forced into logic, fitted so the
  **Cyclone encrypt** cell matches exactly.  Fitted ~0.98: Quartus'
  mux-tree mapping is essentially the analytic decomposition.

Every other Table 2 cell (decrypt and both on each family, all memory
bit counts, pins, clocks, latencies, throughputs) is a *prediction* of
the structural model — the reproduction tests hold them to the paper
within ±3 % for LEs and exactly for the rest.
"""

from __future__ import annotations

from repro.fpga.primitives import mix_network_luts, rom_as_luts

# ----------------------------------------------------------- anchor data
#: Paper Table 2, Acex1K encrypt row: logic cells.
ANCHOR_ACEX_ENCRYPT_LCS = 2114
#: Paper Table 2, Cyclone encrypt row: logic cells.
ANCHOR_CYCLONE_ENCRYPT_LCS = 4057
#: S-boxes in the encrypt device (4 ByteSub + 4 KStran).
_ENCRYPT_SBOXES = 8

# -------------------------------------------- structural encrypt inventory
# (mirrors repro.fpga.aes_netlists._paper_base/_mix_groups; kept in sync
# by a unit test so the anchor cannot silently drift from the builder)
#: Unpacked flip-flops of the paper's device: Data_In (128), Out
#: (128 + 2 strobe), cipher-key latch (128), last-round-key latch (128).
BASE_UNPACKED_FF = 514
#: Structural LUTs shared by every variant: state source mux (256),
#: round-key working mux (128), key build XORs (128), KStran Rcon logic
#: (24), S-box address word-select (96), round/step/setup FSM (42),
#: bus-control glue (16).
BASE_LUTS = 256 + 128 + 128 + 24 + 96 + 42 + 16
#: The forward mix stage: MixColumn with AddKey merged (304) plus the
#: last-round bypass mux (128).
ENCRYPT_MIX_LUTS = mix_network_luts() + 128


def _logic_fit() -> float:
    structural = BASE_LUTS + ENCRYPT_MIX_LUTS
    return (ANCHOR_ACEX_ENCRYPT_LCS - BASE_UNPACKED_FF) / structural


def _rom_lut_fit() -> float:
    per_sbox_observed = (
        ANCHOR_CYCLONE_ENCRYPT_LCS - ANCHOR_ACEX_ENCRYPT_LCS
    ) / _ENCRYPT_SBOXES
    return per_sbox_observed / rom_as_luts(256, 8)


#: LEs per structural LUT (fitted on the Acex encrypt anchor).
LOGIC_FIT: float = _logic_fit()

#: LEs per Shannon-decomposition LUT for logic-mapped ROMs (fitted on
#: the Cyclone encrypt anchor).
ROM_LUT_FIT: float = _rom_lut_fit()

#: Tolerance the reproduction tests allow on predicted LE counts.
LC_TOLERANCE = 0.03
