"""Netlist building blocks with structurally-derived LUT counts.

Everything here is computed from logic structure, not fitted:

- XOR trees from the exact GF(2) term counts of the (Inv)MixColumn
  linear maps (extracted from :mod:`repro.ip.datapath` by linearity);
- multiplexers from fan-in arithmetic on 4-input LUTs;
- ROM-to-LUT decomposition from Shannon expansion (the Cyclone case).

The only fitted quantities live in :mod:`repro.fpga.calibration`.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, List, Tuple

from repro.ip.datapath import inv_mix_column_word, mix_column_word

#: LUT fan-in on every family modeled here (Acex/Flex/Apex/Cyclone LEs).
LUT_INPUTS = 4


def xor_tree_luts(terms: int) -> int:
    """4-LUTs needed for an XOR of ``terms`` inputs (balanced tree).

    Each 4-LUT absorbs 4 leaves at the first level and 3 more per
    additional LUT (one input chains the partial result):
    ceil((n - 1) / 3).
    """
    if terms < 0:
        raise ValueError("term count must be non-negative")
    if terms <= 1:
        return 0
    return math.ceil((terms - 1) / 3)


def mux_luts(bits: int, ways: int) -> int:
    """4-LUTs for a ``ways``:1 mux on a ``bits``-wide word.

    A 2:1 mux fits one LUT per bit (3 inputs); wider selects build a
    mux2 tree: ways-1 mux2 nodes per bit.
    """
    if bits < 0 or ways < 1:
        raise ValueError("bits >= 0 and ways >= 1 required")
    if ways == 1:
        return 0
    return bits * (ways - 1)


@lru_cache(maxsize=None)
def _linear_map_terms(which: str) -> Tuple[int, ...]:
    """Per-output-bit XOR term counts of a 32->32 GF(2)-linear map.

    Extracted by probing the actual datapath function with unit
    vectors, so the area model can never drift from the functional
    model.
    """
    fn: Callable[[int], int] = {
        "mix": mix_column_word,
        "inv_mix": inv_mix_column_word,
    }[which]
    basis: List[int] = [fn(1 << j) for j in range(32)]
    return tuple(
        sum((column >> i) & 1 for column in basis) for i in range(32)
    )


def mix_column_terms() -> Tuple[int, ...]:
    """XOR terms per output bit of MixColumn (min 5, max 7)."""
    return _linear_map_terms("mix")


def inv_mix_column_terms() -> Tuple[int, ...]:
    """XOR terms per output bit of InvMixColumn (11..19) — the depth
    behind the decrypt datapath's longer clock period."""
    return _linear_map_terms("inv_mix")


def mix_network_luts(columns: int = 4, add_key: bool = True) -> int:
    """LUTs of the MixColumn network over ``columns`` columns.

    The AddKey XOR merges into each output bit's tree root (+1 term),
    which is how synthesis implements the fused
    ShiftRow->MixColumn->AddKey stage.  ShiftRow itself is wiring.
    """
    extra = 1 if add_key else 0
    per_column = sum(
        xor_tree_luts(t + extra) for t in mix_column_terms()
    )
    return per_column * columns


def inv_mix_network_luts(columns: int = 4, add_key: bool = True,
                         shared: bool = True) -> int:
    """LUTs of the InvMixColumn network.

    ``shared=True`` models the classic decomposition
    InvMixColumns = MixColumns o correction, where the correction adds
    xtime^2 terms pairwise (b0^=xt2(b0^b2), b1^=xt2(b1^b3)); it costs
    ~0.5 LUT/bit on top of the forward network and is the only
    structure consistent with the paper's tiny encrypt->decrypt LC
    delta (2217 - 2114 = 103 LCs).  ``shared=False`` gives the flat
    network (688 LUTs per 128 bits) for the ablation bench.
    """
    if shared:
        correction = 16 * columns  # 2 byte-pairs x 8 bits per column
        return mix_network_luts(columns, add_key) + correction
    extra = 1 if add_key else 0
    per_column = sum(
        xor_tree_luts(t + extra) for t in inv_mix_column_terms()
    )
    return per_column * columns


def rom_as_luts(words: int, width: int) -> int:
    """4-LUTs for a ROM decomposed into logic (Shannon expansion).

    Per output bit: ``words / 16`` leaf LUTs covering 4 address bits,
    plus a mux2 tree over the remaining address bits
    (``words/16 - 1`` nodes).  A 256x8 S-box comes to 31 LUTs/bit =
    248 — within 2 % of the per-S-box cost observed between the
    paper's Acex and Cyclone columns ((4057-2114)/8 = 243).
    """
    if words < 16 or words & (words - 1):
        raise ValueError("ROM words must be a power of two >= 16")
    leaves = words // 16
    mux_nodes = leaves - 1
    return (leaves + mux_nodes) * width


def xor_network_depth(terms: int) -> int:
    """Logic levels of a balanced 4-LUT XOR tree over ``terms`` inputs."""
    if terms <= 1:
        return 0
    depth = 0
    while terms > 1:
        terms = math.ceil(terms / LUT_INPUTS)
        depth += 1
    return depth


def mix_stage_depth(inverse: bool, shared: bool = True) -> int:
    """Logic levels of the 128-bit mix stage (excluding muxes).

    Forward: worst output bit has 7 terms + key = 8 -> 2 LUT levels,
    plus the xtime conditional level = 3.  Inverse (shared form): +1
    correction level = 4.  These depths drive the timing model and
    are the structural reason decrypt clocks slower in Table 2.
    """
    base = 1 + xor_network_depth(max(mix_column_terms()) + 1)
    if not inverse:
        return base
    if shared:
        return base + 1
    return 1 + xor_network_depth(max(inv_mix_column_terms()) + 1)
