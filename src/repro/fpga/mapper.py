"""Technology mapping: structural netlist → device resources.

Rules (matching how Quartus/Leonardo treat these families):

- Every LUT consumes a logic element; flip-flops packed with their
  driving LUT are free, unpacked flip-flops consume an LE of their
  own (no unrelated packing on these families).
- The :data:`~repro.fpga.calibration.LOGIC_FIT` factor scales the
  structural LUT count to synthesized LEs (calibrated once; see that
  module).
- ROMs go to embedded memory blocks when the family can read them the
  way the design needs (asynchronously for the paper's design,
  synchronously for the sync-ROM variant); otherwise they are
  decomposed into LUT mux-trees — the Cyclone effect in Table 2.
- Memory *bits* are counted as utilized table bits (the paper's and
  Quartus' convention); block allocation packs mutually-exclusive
  tables two-per-block where the block is larger than one S-box.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.fpga.calibration import LOGIC_FIT, ROM_LUT_FIT
from repro.fpga.devices import Device
from repro.fpga.netlist import Netlist
from repro.fpga.primitives import rom_as_luts


class MappingError(ValueError):
    """Raised when a design cannot fit the target device."""


@dataclass(frozen=True)
class MapResult:
    """Post-mapping resource usage."""

    logic_elements: int
    memory_bits: int
    memory_blocks: int
    pins: int
    roms_in_logic: bool


def roms_fit_memory(netlist: Netlist, device: Device,
                    sync_design: bool) -> bool:
    """Whether this design's ROMs can use the device's memory blocks.

    Asynchronous designs need asynchronous-read blocks; synchronous
    (registered-read) designs work on either kind.
    """
    if device.memory is None:
        return False
    if not sync_design and not device.memory.supports_async_read:
        return False
    return True


def map_netlist(netlist: Netlist, device: Device,
                sync_design: bool = False,
                strict: bool = True) -> MapResult:
    """Map a netlist onto a device; raises :class:`MappingError` when
    over capacity (unless ``strict=False``, for exploration sweeps)."""
    use_memory = roms_fit_memory(netlist, device, sync_design)

    rom_luts = 0.0
    memory_bits = 0
    memory_blocks = 0
    if use_memory:
        memory_bits = netlist.total_rom_bits
        memory_blocks = _allocate_blocks(netlist, device)
        if memory_blocks > device.memory.blocks:
            message = (
                f"{netlist.name}: needs {memory_blocks} "
                f"{device.memory.name} blocks, {device.name} has "
                f"{device.memory.blocks}"
            )
            if strict:
                raise MappingError(message)
    else:
        for _, rom in netlist.rom_blocks():
            rom_luts += rom_as_luts(rom.words, rom.width) * rom.count

    les = math.ceil(
        netlist.total_ff_unpacked
        + LOGIC_FIT * netlist.total_luts
        + ROM_LUT_FIT * rom_luts
    )
    if strict and les > device.logic_elements:
        raise MappingError(
            f"{netlist.name}: needs {les} LEs, {device.name} has "
            f"{device.logic_elements}"
        )
    if strict and netlist.total_pins > device.user_ios:
        raise MappingError(
            f"{netlist.name}: needs {netlist.total_pins} pins, "
            f"{device.name} has {device.user_ios}"
        )
    return MapResult(
        logic_elements=les,
        memory_bits=memory_bits,
        memory_blocks=memory_blocks,
        pins=netlist.total_pins,
        roms_in_logic=not use_memory and bool(netlist.rom_blocks()),
    )


def _allocate_blocks(netlist: Netlist, device: Device) -> int:
    """Memory blocks consumed, packing direction-exclusive table pairs.

    Tables read in the same cycle each need their own single-port
    block.  The exception is the combined device's forward/inverse
    banks: a ``<name>_enc`` table and its ``<name>_dec`` partner are
    never read in the same cycle, so a 4096-bit EAB carries one of
    each as a 512x8 ROM with a bank-select address bit — which is how
    the paper's BOTH device fits 16 S-boxes into 12 EABs.
    """
    assert device.memory is not None
    block_bits = device.memory.bits_per_block
    by_group: Dict[str, List[int]] = {}
    for group, rom in netlist.rom_blocks():
        by_group.setdefault(group, []).extend(
            [rom.words * rom.width] * rom.count
        )
    if not by_group:
        return 0
    blocks = 0
    paired = set()
    for group, sizes in by_group.items():
        if group in paired:
            continue
        partner = _direction_partner(group)
        if partner and partner in by_group:
            partner_sizes = by_group[partner]
            paired.add(partner)
            pairs = min(len(sizes), len(partner_sizes))
            for a, b in zip(sizes, partner_sizes):
                if a + b <= block_bits:
                    blocks += 1
                else:
                    blocks += math.ceil(a / block_bits)
                    blocks += math.ceil(b / block_bits)
            leftovers = sizes[pairs:] + partner_sizes[pairs:]
            blocks += sum(math.ceil(s / block_bits) for s in leftovers)
        else:
            blocks += sum(math.ceil(s / block_bits) for s in sizes)
    return blocks


def _direction_partner(group: str) -> "str | None":
    """The mutually-exclusive partner group name, if any."""
    if group.endswith("_enc"):
        return group[:-4] + "_dec"
    if group.endswith("_dec"):
        return group[:-4] + "_enc"
    return None
