"""Multi-process serving: a worker pool under a supervisor.

One asyncio process tops out where the GIL does; this module is the
ROADMAP's answer — N :class:`~repro.serve.server.CryptoServer`
processes, each with its own engine and thread pool, plus the
lifecycle machinery to run them as one service:

- **Workers** — spawned with the ``multiprocessing`` ``spawn`` start
  method (fork would duplicate a live event loop and pool threads;
  spawn re-imports this module cleanly, which is why
  :func:`_worker_main` must stay module-level).  Each worker reports
  its bound data and admin ports back through a pipe, installs a
  SIGTERM handler that runs the server's drain-then-stop, and exits 0
  on a clean stop.
- **Topologies** — the default puts workers on OS-assigned ports
  behind the session-sharded :class:`~repro.serve.gateway.Gateway`;
  with ``shared_port`` set, all workers serve one port directly
  (``SO_REUSEPORT`` where the platform has it, a pre-fork shared
  listener passed through the process boundary otherwise) and no
  gateway runs.
- **Supervisor** — monitors worker processes; a worker that dies with
  a nonzero exit code is restarted under the same shard name with
  exponential backoff (a clean exit 0 is taken as intentional and
  shrinks the pool).  Restarts re-register the new port with the
  gateway, so a session's shard placement survives the crash.
- **Cluster** — the composition the CLI's ``repro-aes cluster``
  runs: supervisor plus gateway, one ``start``/``stop`` pair, with a
  client SHUTDOWN frame at the gateway triggering the whole
  drain-then-stop fan-out (gateway first — ``/readyz`` flips and
  in-flight requests drain — then SIGTERM to every worker).
"""

from __future__ import annotations

import asyncio
import logging
import multiprocessing
import signal
import socket
import time
from dataclasses import dataclass
from multiprocessing.connection import Connection
from typing import Callable, Dict, Optional, Tuple

from repro.obs.metrics import global_registry
from repro.serve.gateway import BackendSpec, Gateway, GatewayConfig
from repro.serve.server import CryptoServer, ServeConfig

_LOG = logging.getLogger(__name__)

_REGISTRY = global_registry()
_RESTARTS = _REGISTRY.counter(
    "repro_cluster_restarts_total",
    "Worker processes restarted by the supervisor, by shard",
    labels=("shard",),
)
_WORKERS_UP = _REGISTRY.gauge(
    "repro_cluster_workers",
    "Worker processes currently alive under the supervisor",
)


@dataclass
class ClusterConfig:
    """Tuning knobs of one :class:`Cluster`.

    Worker-facing fields mirror :class:`ServeConfig` (``worker_tasks``
    is the per-worker ``ServeConfig.workers``); the rest parameterize
    the gateway and the supervisor.
    """

    host: str = "127.0.0.1"
    #: Worker processes in the pool.
    workers: int = 2
    #: Gateway listen port (``0`` = OS-assigned).
    gateway_port: int = 0
    #: Gateway admin/scrape plane; ``None`` leaves it off.
    admin_port: Optional[int] = None
    #: Direct mode: all workers share this one port and no gateway
    #: runs.  ``0`` asks the OS for a free port up front.
    shared_port: Optional[int] = None
    #: Force (True) or forbid (False) ``SO_REUSEPORT`` in direct
    #: mode; ``None`` auto-detects.  With it off, one pre-fork
    #: listening socket is passed to every worker instead.
    reuse_port: Optional[bool] = None
    #: Per-worker bounded request queue depth.
    queue_depth: int = 64
    #: Per-worker asyncio worker tasks (``ServeConfig.workers``).
    worker_tasks: int = 4
    request_timeout: float = 10.0
    io_timeout: float = 60.0
    drain_timeout: float = 5.0
    #: Gateway per-shard in-flight cap (the shedding valve).
    shed_inflight: int = 128
    ring_replicas: int = 64
    window_s: float = 60.0
    slo_threshold_s: float = 0.25
    #: Cadence of the gateway's worker ``/readyz`` probes.
    health_interval_s: float = 0.25
    #: Whether workers get their own admin planes (the gateway's
    #: probes and the per-shard CI scrapes need them).
    worker_admin: bool = True
    #: Budget for a spawned worker to report its ports.
    start_timeout_s: float = 30.0
    #: Cadence of the supervisor's liveness sweep.
    monitor_interval_s: float = 0.05
    restart_backoff_s: float = 0.1
    restart_backoff_max_s: float = 2.0
    #: A worker alive longer than this has its backoff reset.
    restart_reset_s: float = 5.0


def _worker_main(index: int, conn: Connection,
                 options: Dict[str, object],
                 shared: Optional[socket.socket]) -> None:
    """Worker process entry point (module-level: the ``spawn`` start
    method pickles the target by qualified name and re-imports it)."""
    asyncio.run(_worker_async(index, conn, options, shared))


async def _worker_async(index: int, conn: Connection,
                        options: Dict[str, object],
                        shared: Optional[socket.socket]) -> None:
    config = ServeConfig(**options)  # type: ignore[arg-type]
    server = CryptoServer(config)
    await server.start(sock=shared)
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop_requested.set)
    admin_port = (server.admin_address[1]
                  if config.admin_port is not None else 0)
    conn.send((server.address[1], admin_port))
    # Stop on SIGTERM from the supervisor or on a remote SHUTDOWN
    # frame (wait_stopped fires when the frame's stop() completes).
    signal_task = loop.create_task(stop_requested.wait())
    served_task = loop.create_task(server.wait_stopped())
    await asyncio.wait({signal_task, served_task},
                       return_when=asyncio.FIRST_COMPLETED)
    await server.stop()
    for task in (signal_task, served_task):
        task.cancel()
    await asyncio.gather(signal_task, served_task,
                         return_exceptions=True)
    conn.close()


def _make_shared_socket(host: str, port: int,
                        reuse_port: Optional[bool]) -> \
        Tuple[socket.socket, bool]:
    """The direct-mode shared socket, bound up front.

    With ``SO_REUSEPORT`` (returns ``(sock, True)``): the socket is
    bound but **not** listening — it only holds the port reservation
    (the kernel balances connections across *listening* sockets, so
    a non-listening placeholder never steals one) while each worker
    binds its own listening socket on the same port.  Without it
    (``(sock, False)``): the socket is listening and is passed to
    every worker, which accept on the shared file descriptor.

    Runs in synchronous context only (constructor time): socket
    syscalls must stay off the event loop.
    """
    use_reuseport = (hasattr(socket, "SO_REUSEPORT")
                     if reuse_port is None else reuse_port)
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        if use_reuseport:
            sock.setsockopt(socket.SOL_SOCKET,
                            socket.SO_REUSEPORT, 1)
            sock.bind((host, port))
            return sock, True
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        return sock, False
    except BaseException:
        sock.close()
        raise


@dataclass
class WorkerHandle:
    """One live worker process as the supervisor tracks it."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    conn: Connection
    host: str
    port: int = 0
    admin_port: int = 0
    #: Consecutive crash-restarts (reset after ``restart_reset_s``).
    restarts: int = 0
    started_at: float = 0.0

    @property
    def shard(self) -> str:
        """The stable routing identity: survives restarts."""
        return f"worker-{self.index}"


class Supervisor:
    """Spawn, watch, restart and stop the worker pool.

    ``on_worker_up`` / ``on_worker_down`` fire on the event loop as
    workers join and leave — the cluster wires them to the gateway's
    backend registry, so ring membership tracks process liveness.
    """

    def __init__(self, config: Optional[ClusterConfig] = None, *,
                 on_worker_up: Optional[
                     Callable[[WorkerHandle], None]] = None,
                 on_worker_down: Optional[
                     Callable[[WorkerHandle], None]] = None) -> None:
        self.config = config or ClusterConfig()
        self._on_worker_up = on_worker_up
        self._on_worker_down = on_worker_down
        self._ctx = multiprocessing.get_context("spawn")
        self._handles: Dict[int, WorkerHandle] = {}
        self._monitor_task: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._stopped = asyncio.Event()
        self._shared_sock: Optional[socket.socket] = None
        self._workers_rebind = False
        if self.config.shared_port is not None:
            self._shared_sock, self._workers_rebind = \
                _make_shared_socket(self.config.host,
                                    self.config.shared_port,
                                    self.config.reuse_port)

    def handles(self) -> Tuple[WorkerHandle, ...]:
        """The live worker handles, by index."""
        return tuple(self._handles[index]
                     for index in sorted(self._handles))

    @property
    def shared_address(self) -> Tuple[str, int]:
        """Direct mode's shared (host, port)."""
        if self._shared_sock is None:
            raise RuntimeError("not in shared-socket mode")
        host, port = self._shared_sock.getsockname()[:2]
        return host, port

    # ------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spawn the pool, wait for every worker, start the watch."""
        if self._monitor_task is not None:
            raise RuntimeError("supervisor already started")
        for index in range(max(1, self.config.workers)):
            handle = await self._spawn(index, restarts=0)
            self._handles[index] = handle
            _WORKERS_UP.inc()
            if self._on_worker_up is not None:
                self._on_worker_up(handle)
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor()
        )

    async def stop(self) -> None:
        """SIGTERM every worker (drain-then-stop inside), then reap;
        stragglers past the drain budget are killed.  Idempotent."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            await asyncio.gather(self._monitor_task,
                                 return_exceptions=True)
            self._monitor_task = None
        for handle in self._handles.values():
            if handle.process.is_alive():
                handle.process.terminate()
        deadline = time.monotonic() + self.config.drain_timeout + 5.0
        for handle in self._handles.values():
            while (handle.process.is_alive()
                   and time.monotonic() < deadline):
                await asyncio.sleep(0.02)
            if handle.process.is_alive():  # pragma: no cover
                handle.process.kill()
            handle.process.join(timeout=1.0)
            handle.conn.close()
            _WORKERS_UP.dec()
            if self._on_worker_down is not None:
                self._on_worker_down(handle)
        self._handles.clear()
        if self._shared_sock is not None:
            self._shared_sock.close()
        self._stopped.set()

    # --------------------------------------------------------- spawning
    def _worker_options(self, index: int) -> Dict[str, object]:
        config = self.config
        port = 0
        reuse = False
        if self._shared_sock is not None and self._workers_rebind:
            port = self._shared_sock.getsockname()[1]
            reuse = True
        return {
            "host": config.host,
            "port": port,
            "reuse_port": reuse,
            "queue_depth": config.queue_depth,
            "workers": config.worker_tasks,
            "request_timeout": config.request_timeout,
            "io_timeout": config.io_timeout,
            "drain_timeout": config.drain_timeout,
            "admin_port": 0 if config.worker_admin else None,
            "window_s": config.window_s,
            "slo_threshold_s": config.slo_threshold_s,
        }

    async def _spawn(self, index: int,
                     restarts: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        shared = (self._shared_sock
                  if (self._shared_sock is not None
                      and not self._workers_rebind) else None)
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, child_conn, self._worker_options(index),
                  shared),
            name=f"repro-serve-worker-{index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = WorkerHandle(index=index, process=process,
                              conn=parent_conn,
                              host=self.config.host,
                              restarts=restarts,
                              started_at=time.monotonic())
        deadline = time.monotonic() + self.config.start_timeout_s
        try:
            # poll(0) + sleep: never a blocking recv on the loop.
            while not parent_conn.poll(0):
                if (not process.is_alive()
                        or time.monotonic() > deadline):
                    process.terminate()
                    raise RuntimeError(
                        f"worker {index} failed to start"
                    )
                await asyncio.sleep(0.01)
        except asyncio.CancelledError:
            # Stopped mid-spawn: do not leak the half-started child.
            process.terminate()
            raise
        handle.port, handle.admin_port = parent_conn.recv()
        _LOG.info("worker %d serving on %s:%d (admin port %d)",
                  index, handle.host, handle.port,
                  handle.admin_port)
        return handle

    # ------------------------------------------------------ monitoring
    async def _monitor(self) -> None:
        interval = self.config.monitor_interval_s
        while True:
            await asyncio.sleep(interval)
            for index in sorted(self._handles):
                handle = self._handles[index]
                if handle.process.is_alive():
                    continue
                _WORKERS_UP.dec()
                if self._on_worker_down is not None:
                    self._on_worker_down(handle)
                exitcode = handle.process.exitcode
                if exitcode == 0:
                    # A clean exit is intentional (remote SHUTDOWN):
                    # shrink the pool rather than fight the operator.
                    _LOG.info("worker %d exited cleanly", index)
                    self._handles.pop(index, None)
                    continue
                await self._restart(handle, exitcode)

    async def _restart(self, handle: WorkerHandle,
                       exitcode: Optional[int]) -> None:
        index = handle.index
        restarts = handle.restarts + 1
        if (time.monotonic() - handle.started_at
                > self.config.restart_reset_s):
            restarts = 1
        delay = min(
            self.config.restart_backoff_max_s,
            self.config.restart_backoff_s * (2.0 ** (restarts - 1)),
        )
        _LOG.warning(
            "worker %d died (exit %s); restarting in %.2fs",
            index, exitcode, delay,
        )
        _RESTARTS.labels(shard=handle.shard).inc()
        handle.conn.close()
        await asyncio.sleep(delay)
        if self._stopping:
            return
        try:
            replacement = await self._spawn(index, restarts=restarts)
        except RuntimeError:
            _LOG.error("worker %d failed to restart; giving up",
                       index)
            self._handles.pop(index, None)
            return
        self._handles[index] = replacement
        _WORKERS_UP.inc()
        if self._on_worker_up is not None:
            self._on_worker_up(replacement)


class Cluster:
    """Supervisor plus gateway behind one ``start``/``stop`` pair."""

    def __init__(self,
                 config: Optional[ClusterConfig] = None) -> None:
        self.config = config or ClusterConfig()
        self.gateway: Optional[Gateway] = None
        if self.config.shared_port is None:
            self.gateway = Gateway(
                GatewayConfig(
                    host=self.config.host,
                    port=self.config.gateway_port,
                    admin_port=self.config.admin_port,
                    io_timeout=self.config.io_timeout,
                    drain_timeout=self.config.drain_timeout,
                    shed_inflight=self.config.shed_inflight,
                    health_interval_s=self.config.health_interval_s,
                    ring_replicas=self.config.ring_replicas,
                    window_s=self.config.window_s,
                    slo_threshold_s=self.config.slo_threshold_s,
                ),
                on_shutdown=self._shutdown_requested,
            )
        self.supervisor = Supervisor(
            self.config,
            on_worker_up=self._worker_up,
            on_worker_down=self._worker_down,
        )
        self._stopped = asyncio.Event()

    # ------------------------------------------------- worker tracking
    def _worker_up(self, handle: WorkerHandle) -> None:
        if self.gateway is not None:
            self.gateway.add_backend(BackendSpec(
                shard=handle.shard,
                host=handle.host,
                port=handle.port,
                admin_port=handle.admin_port or None,
            ))

    def _worker_down(self, handle: WorkerHandle) -> None:
        if self.gateway is not None:
            self.gateway.remove_backend(handle.shard)

    async def _shutdown_requested(self) -> None:
        await self.stop()

    # ------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Spawn the workers, then open the gateway over them."""
        await self.supervisor.start()
        if self.gateway is not None:
            await self.gateway.start()

    async def stop(self) -> None:
        """Drain-then-stop, outside in: gateway first (``/readyz``
        flips, in-flight requests drain), then the worker pool."""
        if self.gateway is not None:
            await self.gateway.stop()
        await self.supervisor.stop()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    @property
    def address(self) -> Tuple[str, int]:
        """Where clients connect: the gateway, or the shared port."""
        if self.gateway is not None:
            return self.gateway.address
        return self.supervisor.shared_address


__all__ = [
    "Cluster",
    "ClusterConfig",
    "Supervisor",
    "WorkerHandle",
]
