"""The network serving layer: BatchEngine traffic over the wire.

``repro.serve`` turns the repository's crypto stack into a service —
the first subsystem where the batching layer (:mod:`repro.perf`) and
the observability layer (:mod:`repro.obs`) meet real concurrency.
It is stdlib-only asyncio, in three legs:

- :mod:`repro.serve.protocol` — the versioned, length-prefixed
  binary frame format (the network analogue of the pin-level bus
  protocol in ``docs/protocol.md``), with explicit up-front limits
  and a codec that rejects malformed frames without killing the
  connection loop.
- :mod:`repro.serve.server` — the asyncio TCP server: per-connection
  key sessions, a bounded request queue for backpressure, per-request
  timeouts, graceful drain-then-shutdown, and ECB/CTR/GCM executed
  through :func:`repro.perf.engine.default_engine`, instrumented into
  the :mod:`repro.obs` registry.
- :mod:`repro.serve.client` — the async client with connect/request
  timeouts and capped, jittered exponential backoff, plus the
  :func:`~repro.serve.client.run_load` and
  :func:`~repro.serve.client.run_session_load` closed-loop load
  generators.
- :mod:`repro.serve.gateway` — the session-sharded cluster gateway:
  consistent-hash routing of session ids over worker backends, with
  health probes, shedding and connection draining.
- :mod:`repro.serve.cluster` — multi-process workers under a
  supervisor (spawn, monitor, restart-on-crash, drain-then-stop),
  composed with the gateway as one service.

``repro-aes serve``, ``repro-aes cluster`` and ``repro-aes loadgen``
expose the pieces on the command line; ``docs/serving.md`` is the
protocol and semantics reference.
"""

from repro.serve.client import (
    CryptoClient,
    LoadReport,
    RequestFailed,
    RetryPolicy,
    derive_session_key,
    run_load,
    run_session_load,
)
from repro.serve.cluster import (
    Cluster,
    ClusterConfig,
    Supervisor,
    WorkerHandle,
)
from repro.serve.gateway import (
    BackendSpec,
    Gateway,
    GatewayConfig,
    HashRing,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MAX_PAYLOAD_BYTES,
    VERSION,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    decode_frame,
    encode_frame,
)
from repro.serve.server import CryptoServer, ServeConfig, Session

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "VERSION",
    "BackendSpec",
    "Cluster",
    "ClusterConfig",
    "CryptoClient",
    "CryptoServer",
    "Frame",
    "FrameError",
    "Gateway",
    "GatewayConfig",
    "HashRing",
    "LoadReport",
    "Mode",
    "Op",
    "RequestFailed",
    "RetryPolicy",
    "ServeConfig",
    "Session",
    "Status",
    "Supervisor",
    "WorkerHandle",
    "decode_frame",
    "encode_frame",
    "derive_session_key",
    "run_load",
    "run_session_load",
]
