"""The network serving layer: BatchEngine traffic over the wire.

``repro.serve`` turns the repository's crypto stack into a service —
the first subsystem where the batching layer (:mod:`repro.perf`) and
the observability layer (:mod:`repro.obs`) meet real concurrency.
It is stdlib-only asyncio, in three legs:

- :mod:`repro.serve.protocol` — the versioned, length-prefixed
  binary frame format (the network analogue of the pin-level bus
  protocol in ``docs/protocol.md``), with explicit up-front limits
  and a codec that rejects malformed frames without killing the
  connection loop.
- :mod:`repro.serve.server` — the asyncio TCP server: per-connection
  key sessions, a bounded request queue for backpressure, per-request
  timeouts, graceful drain-then-shutdown, and ECB/CTR/GCM executed
  through :func:`repro.perf.engine.default_engine`, instrumented into
  the :mod:`repro.obs` registry.
- :mod:`repro.serve.client` — the async client with connect/request
  timeouts and capped, jittered exponential backoff, plus the
  :func:`~repro.serve.client.run_load` closed-loop load generator.

``repro-aes serve`` and ``repro-aes loadgen`` expose both ends on the
command line; ``docs/serving.md`` is the protocol and semantics
reference.
"""

from repro.serve.client import (
    CryptoClient,
    LoadReport,
    RequestFailed,
    RetryPolicy,
    run_load,
)
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    MAX_PAYLOAD_BYTES,
    VERSION,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    decode_frame,
    encode_frame,
)
from repro.serve.server import CryptoServer, ServeConfig, Session

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "VERSION",
    "CryptoClient",
    "CryptoServer",
    "Frame",
    "FrameError",
    "LoadReport",
    "Mode",
    "Op",
    "RequestFailed",
    "RetryPolicy",
    "ServeConfig",
    "Session",
    "Status",
    "decode_frame",
    "encode_frame",
    "run_load",
]
