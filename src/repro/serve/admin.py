"""The admin/scrape plane: a minimal asyncio HTTP sidecar.

A :class:`CryptoServer` started with an ``admin_port`` binds this
second listener next to the frame protocol.  It speaks just enough
HTTP/1.1 for a scraper, a load balancer or ``curl``:

- ``GET /metrics`` — the Prometheus text exposition (process-global
  registry plus the server's windowed quantile families);
- ``GET /healthz`` — liveness: 200 whenever the process can answer;
- ``GET /readyz`` — readiness, drain-aware: 200 while serving, 503
  once :meth:`CryptoServer.stop` has begun (so a gateway stops
  routing to a draining instance before its socket closes);
- ``GET /quantiles`` — the windowed p50/p95/p99/max/burn-rate
  snapshot as JSON (what ``repro-aes loadgen`` scrapes to print
  server-observed latency next to client-observed);
- ``GET /trace`` — the process tracer's events plus its wall-clock
  epoch, JSON; ``{"enabled": false}`` while tracing is off.  A
  client merges these onto its own timeline with
  :meth:`repro.obs.tracing.Tracer.add_events`.

The plane is deliberately inert: every handler renders
already-aggregated numbers, no endpoint accepts a body, mutates
state or touches a :class:`~repro.serve.server.Session` — the
``taint.secret-in-*`` lint pack guards that boundary (a corpus case
proves it fires if session state ever reaches a response here).
Reads are bounded in both bytes and seconds, mirroring the frame
protocol's discipline: a stalled or hostile scraper costs one
connection, never the event loop.
"""

from __future__ import annotations

import asyncio
import json
import logging
from typing import Callable, Dict, Optional, Tuple

from repro.obs.tracing import active_tracer

_LOG = logging.getLogger(__name__)

#: Longest accepted request line / single header line, bytes.
MAX_LINE_BYTES = 4096
#: Most header lines read before the request is rejected.
MAX_HEADER_LINES = 64

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}


class AdminServer:
    """The HTTP sidecar; all content comes from injected callables,
    so the plane itself holds no serving state (and no secrets)."""

    def __init__(self, host: str, port: int, *,
                 metrics_text: Callable[[], str],
                 quantiles: Callable[[], Dict[str, object]],
                 ready: Callable[[], bool],
                 io_timeout: float = 10.0) -> None:
        self._host = host
        self._port = port
        self._metrics_text = metrics_text
        self._quantiles = quantiles
        self._ready = ready
        self._io_timeout = io_timeout
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the admin listener."""
        if self._server is not None:
            raise RuntimeError("admin server already started")
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None:
            raise RuntimeError("admin server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    async def stop(self) -> None:
        """Close the listener; in-flight responses finish on close."""
        if self._server is None:
            return
        self._server.close()
        try:
            await asyncio.wait_for(self._server.wait_closed(), 5.0)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        self._server = None

    # ----------------------------------------------------- connections
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            status, content_type, body = await self._handle(reader)
            payload = body.encode()
            head = (
                f"HTTP/1.1 {status} {_STATUS_TEXT[status]}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n"
                f"\r\n"
            ).encode("ascii")
            writer.write(head)
            writer.write(payload)
            await asyncio.wait_for(writer.drain(), self._io_timeout)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # scraper vanished or stalled; nothing to answer
        except Exception:  # pragma: no cover - defensive
            _LOG.exception("admin request failed")
        finally:
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), 5.0)
            except (asyncio.TimeoutError, ConnectionError):
                pass

    async def _readline(self, reader: asyncio.StreamReader) -> bytes:
        line = await asyncio.wait_for(reader.readline(),
                                      self._io_timeout)
        if len(line) > MAX_LINE_BYTES:
            raise ValueError("header line exceeds the line limit")
        return line

    async def _handle(self, reader: asyncio.StreamReader
                      ) -> Tuple[int, str, str]:
        """Parse one request, route it, return (status, type, body)."""
        try:
            request_line = (await self._readline(reader)).decode(
                "ascii", "replace"
            )
            parts = request_line.split()
            if len(parts) != 3:
                return 400, "text/plain", "malformed request line\n"
            method, target, _version = parts
            # Drain (and bound) the headers; none are interpreted.
            for _ in range(MAX_HEADER_LINES):
                line = await self._readline(reader)
                if line in (b"\r\n", b"\n", b""):
                    break
            else:
                return 400, "text/plain", "too many headers\n"
        except (ValueError, asyncio.TimeoutError):
            return 400, "text/plain", "malformed request\n"
        if method != "GET":
            return 405, "text/plain", "admin plane is GET-only\n"
        path = target.split("?", 1)[0]
        return self._route(path)

    # --------------------------------------------------------- routing
    def _route(self, path: str) -> Tuple[int, str, str]:
        if path == "/healthz":
            return 200, "text/plain", "ok\n"
        if path == "/readyz":
            if self._ready():
                return 200, "text/plain", "ready\n"
            return 503, "text/plain", "draining\n"
        if path == "/metrics":
            return (200, "text/plain; version=0.0.4",
                    self._metrics_text())
        if path == "/quantiles":
            return (200, "application/json",
                    json.dumps(self._quantiles(), sort_keys=True)
                    + "\n")
        if path == "/trace":
            return (200, "application/json",
                    json.dumps(_trace_body()) + "\n")
        return 404, "text/plain", f"no such endpoint {path}\n"


def _trace_body() -> Dict[str, object]:
    """The ``/trace`` payload: events plus the tracer's wall-clock
    epoch, which lets another process shift them onto its timeline."""
    tracer = active_tracer()
    if tracer is None:
        return {"enabled": False, "events": []}
    return {
        "enabled": True,
        "epoch_unix": tracer.epoch_unix,
        "events": tracer.events(),
    }


__all__ = ["AdminServer", "MAX_HEADER_LINES", "MAX_LINE_BYTES"]
