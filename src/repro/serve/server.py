"""The asyncio crypto server: BatchEngine traffic over TCP.

This is the subsystem the ROADMAP's "heavy traffic" north star has
been building toward: the batching layer (:mod:`repro.perf`) and the
observability layer (:mod:`repro.obs`) meeting real concurrency.  The
design follows the same discipline as the hardware bus protocol —
explicit limits, bounded buffering, measured behaviour:

- **Sessions** — each connection owns a :class:`Session`; its key
  arrives via a ``LOAD_KEY`` frame and lives only in that object
  (never logged, redacted from ``repr``), the software analogue of
  the IP's write-only key register.
- **Backpressure** — requests flow through one bounded
  :class:`asyncio.Queue`; when it is full the server answers
  ``OVERLOADED`` instead of buffering without bound, exactly as the
  device's one-deep Data_In buffer drops (and counts) overruns.
- **Timeouts** — every await on a socket is bounded, and each
  request's execution gets ``request_timeout`` seconds before the
  worker abandons it with a ``TIMEOUT`` error frame (the connection
  survives).  The ``serve.missing-timeout`` lint rule enforces the
  socket half of this mechanically.
- **Graceful shutdown** — :meth:`CryptoServer.stop` stops accepting,
  drains the queued requests (bounded by ``drain_timeout``), then
  closes connections; a ``SHUTDOWN`` frame triggers the same path
  remotely, which is how the CI smoke and the bench loopback scenario
  end their runs cleanly.

Crypto executes on a small thread pool through
:func:`repro.perf.engine.default_engine` (via the mode layer), so a
large buffer is batched/sharded by the engine while the event loop
stays responsive.  Everything is instrumented into the process-global
:mod:`repro.obs` registry — request/byte/error counters, an in-flight
gauge, a latency histogram and ``serve.*`` spans.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import socket
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Set, \
    Tuple

from repro.aes import gcm, modes
from repro.obs.metrics import WindowedQuantileSet, global_registry
from repro.obs.metrics import render_prometheus as _render_registries
from repro.perf.engine import forget_key
from repro.obs.tracing import format_span_id, trace_record, trace_span
from repro.serve.admin import AdminServer
from repro.serve.protocol import (
    CTR_NONCE_BYTES,
    GCM_IV_BYTES,
    GCM_TAG_BYTES,
    KEY_BYTES,
    MAX_PAYLOAD_BYTES,
    Frame,
    FrameError,
    Mode,
    Op,
    Status,
    read_frame,
    write_frame,
)

_LOG = logging.getLogger(__name__)

_REGISTRY = global_registry()
_REQUESTS = _REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests completed by the crypto server, by op and status",
    labels=("op", "status"),
)
_BYTES = _REGISTRY.counter(
    "repro_serve_bytes_total",
    "Payload bytes through the crypto server, by direction",
    labels=("direction",),
)
_INFLIGHT = _REGISTRY.gauge(
    "repro_serve_inflight",
    "Requests currently queued or executing",
)
_OPEN_CONNECTIONS = _REGISTRY.gauge(
    "repro_serve_open_connections",
    "Connections currently open",
)
_CONNECTIONS = _REGISTRY.counter(
    "repro_serve_connections_total",
    "Connections accepted over the server's lifetime",
)
_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_serve_request_seconds",
    "Wall-clock seconds from dequeue to response written",
    labels=("op",),
)
_BYTES_IN = _BYTES.labels(direction="in")
_BYTES_OUT = _BYTES.labels(direction="out")


@dataclass
class ServeConfig:
    """Tuning knobs of one :class:`CryptoServer`.

    The defaults suit a loopback deployment; the CLI exposes each.
    ``port=0`` asks the OS for a free port (the bound address is
    readable from :attr:`CryptoServer.address` after ``start``).
    """

    host: str = "127.0.0.1"
    port: int = 0
    #: Bind with ``SO_REUSEPORT`` so several worker processes can
    #: share one port (the cluster's direct topology).  Ignored when
    #: :meth:`CryptoServer.start` is handed a pre-bound socket.
    reuse_port: bool = False
    #: Bound of the shared request queue — the backpressure valve.
    queue_depth: int = 64
    #: Worker tasks draining the queue (each owns a pool thread).
    workers: int = 4
    #: Per-request execution budget, seconds.
    request_timeout: float = 10.0
    #: Socket read/write budget, seconds.
    io_timeout: float = 60.0
    #: How long :meth:`CryptoServer.stop` waits for queued requests.
    drain_timeout: float = 10.0
    #: Port of the admin/scrape plane (``/metrics``, ``/healthz``,
    #: ``/readyz``, ``/quantiles``); ``None`` leaves it off, ``0``
    #: binds a free port (readable from ``admin_address``).
    admin_port: Optional[int] = None
    #: Width of the sliding latency-quantile window, seconds.
    window_s: float = 60.0
    #: Request-latency SLO threshold feeding the burn-rate counters.
    slo_threshold_s: float = 0.25


@dataclass
class Session:
    """Per-connection state.  The key is write-only from outside:
    it is set by a LOAD_KEY frame and read by the handlers — it never
    appears in logs, metrics or ``repr``."""

    session_id: int
    key: Optional[bytes] = field(default=None, repr=False)

    def close(self) -> None:
        """Session teardown hygiene: forget the key's derived state.

        Drops the session's expanded schedule from the process-wide
        round-key cache and its GHASH tables (both zeroized there),
        so a closed session's key material does not linger in caches
        shared with other tenants.
        """
        key, self.key = self.key, None
        if key is not None:
            forget_key(key)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        loaded = "loaded" if self.key is not None else "absent"
        return f"Session(id={self.session_id}, key={loaded})"


@dataclass
class _WorkItem:
    """One queued request with everything needed to answer it."""

    frame: Frame
    session: Session
    writer: asyncio.StreamWriter
    write_lock: asyncio.Lock
    #: When the item entered the queue — queue wait is dequeue minus
    #: this, surfaced as a ``serve.queue_wait`` span and a windowed
    #: quantile (the loadgen report prints its max).
    enqueued_at: float = field(default_factory=time.perf_counter)


Handler = Callable[[Session, Frame], Awaitable[Frame]]


class CryptoServer:
    """The asyncio TCP crypto service (see the module docstring)."""

    def __init__(self,
                 config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self._queue: "asyncio.Queue[_WorkItem]" = asyncio.Queue(
            maxsize=self.config.queue_depth
        )
        self._session_ids = itertools.count(1)
        self._workers: List["asyncio.Task[None]"] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        # The event loop keeps only weak references to tasks, so the
        # remotely-triggered stop() task is pinned here until done.
        self._stop_task: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._stopped = asyncio.Event()
        self._handlers: Dict[Op, Handler] = {
            Op.LOAD_KEY: self._op_load_key,
            Op.ENCRYPT: self._op_xcrypt,
            Op.DECRYPT: self._op_xcrypt,
            Op.PING: self._op_ping,
        }
        # Per-server sliding windows (not the global registry: each
        # server's admin plane scrapes its own traffic, and windows
        # age out by wall clock rather than by registry reset).
        self.request_window = WindowedQuantileSet(
            "repro_serve_request_window_seconds",
            "Windowed request latency quantiles, by op and mode",
            label_names=("op", "mode"),
            window_s=self.config.window_s,
            slo_threshold_s=self.config.slo_threshold_s,
        )
        self.queue_wait_window = WindowedQuantileSet(
            "repro_serve_queue_wait_window_seconds",
            "Windowed queue-wait quantiles (enqueue to dequeue)",
            window_s=self.config.window_s,
        )
        self._admin: Optional[AdminServer] = None

    # ------------------------------------------------------- lifecycle
    async def start(self,
                    sock: Optional[socket.socket] = None) -> None:
        """Bind the listening socket and start the worker tasks.

        ``sock`` serves on an already-bound listening socket instead
        of binding ``host:port`` — the cluster's pre-fork shared
        listener, created in the parent and passed across the
        process boundary.
        """
        if self._server is not None:
            raise RuntimeError("server already started")
        # Twice the worker count: a timed-out job's thread cannot be
        # cancelled and runs to completion, so with a pool exactly the
        # worker count a burst of slow requests would leave abandoned
        # jobs holding every thread and cascade fresh requests into
        # further TIMEOUTs.  The headroom lets capacity recover while
        # stragglers finish (see docs/serving.md, "Timeouts").
        self._executor = ThreadPoolExecutor(
            max_workers=2 * max(1, self.config.workers),
            thread_name_prefix="repro-serve",
        )
        self._workers = [
            asyncio.get_running_loop().create_task(self._worker())
            for _ in range(max(1, self.config.workers))
        ]
        if sock is not None:
            self._server = await asyncio.start_server(
                self._on_connection, sock=sock
            )
        elif self.config.reuse_port:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host,
                self.config.port, reuse_port=True,
            )
        else:
            self._server = await asyncio.start_server(
                self._on_connection, self.config.host,
                self.config.port
            )
        if self.config.admin_port is not None:
            self._admin = AdminServer(
                self.config.host,
                self.config.admin_port,
                metrics_text=self.metrics_text,
                quantiles=self.quantiles_snapshot,
                ready=self._ready,
            )
            await self._admin.start()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None:
            raise RuntimeError("server not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def admin_address(self) -> Tuple[str, int]:
        """The bound admin-plane (host, port)."""
        if self._admin is None:
            raise RuntimeError("admin plane not enabled")
        return self._admin.address

    def _ready(self) -> bool:
        """Drain-aware readiness: serving and not shutting down."""
        return self._server is not None and not self._stopping

    # ------------------------------------------------------- exposition
    def metrics_text(self) -> str:
        """One ``/metrics`` scrape body: the process-global registry
        plus this server's windowed quantile families."""
        return (_render_registries([_REGISTRY])
                + self.request_window.render_prometheus()
                + self.queue_wait_window.render_prometheus())

    def quantiles_snapshot(self) -> Dict[str, object]:
        """The ``/quantiles`` JSON body."""
        return {
            "request_seconds": self.request_window.snapshot(),
            "queue_wait_seconds": self.queue_wait_window.snapshot(),
        }

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful drain-then-shutdown.

        Stops accepting, answers new requests with ``SHUTTING_DOWN``,
        waits up to ``drain_timeout`` for queued requests to finish,
        then tears down workers and connections.  Idempotent.
        """
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(
                    self._server.wait_closed(),
                    self.config.drain_timeout,
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
        try:
            await asyncio.wait_for(self._queue.join(),
                                   self.config.drain_timeout)
        except asyncio.TimeoutError:
            pass  # forced: undrained items die with the workers
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        for writer in list(self._writers):
            await _close_writer(writer)
        if self._executor is not None:
            self._executor.shutdown(wait=False)
        if self._admin is not None:
            # Last: /readyz has been answering 503 since _stopping
            # flipped, and a scraper may want the final drain metrics.
            await self._admin.stop()
        self._stopped.set()

    # ----------------------------------------------------- connections
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        session = Session(session_id=next(self._session_ids))
        write_lock = asyncio.Lock()
        self._writers.add(writer)
        _CONNECTIONS.inc()
        _OPEN_CONNECTIONS.inc()
        try:
            await self._connection_loop(reader, writer, session,
                                        write_lock)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # peer vanished or stalled; nothing to answer
        finally:
            session.close()
            self._writers.discard(writer)
            _OPEN_CONNECTIONS.dec()
            await _close_writer(writer)

    async def _connection_loop(self, reader: asyncio.StreamReader,
                               writer: asyncio.StreamWriter,
                               session: Session,
                               write_lock: asyncio.Lock) -> None:
        timeout = self.config.io_timeout
        while True:
            try:
                frame = await read_frame(reader, timeout=timeout)
            except FrameError as exc:
                # A malformed frame answers with BAD_FRAME; only a
                # desynchronized stream closes the connection.  The
                # accept loop and every other connection live on.
                reply = Frame(op=Op.PING).error(Status.BAD_FRAME,
                                                str(exc))
                await self._send(writer, write_lock, reply)
                self._count(reply)
                if exc.recoverable:
                    continue
                return
            if frame is None:
                return  # clean EOF
            _BYTES_IN.inc(len(frame.payload))
            if frame.op is Op.SHUTDOWN:
                # Handled inline (not queued): stop() drains the
                # queue, so routing SHUTDOWN through it would wait on
                # itself.
                reply = frame.response()
                await self._send(writer, write_lock, reply)
                self._count(reply)
                if self._stop_task is None:
                    self._stop_task = (
                        asyncio.get_running_loop()
                        .create_task(self.stop())
                    )
                continue
            if self._stopping:
                reply = frame.error(Status.SHUTTING_DOWN,
                                    "server is draining")
                await self._send(writer, write_lock, reply)
                self._count(reply)
                continue
            item = _WorkItem(frame, session, writer, write_lock)
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                reply = frame.error(Status.OVERLOADED,
                                    "request queue is full")
                await self._send(writer, write_lock, reply)
                self._count(reply)
                continue
            _INFLIGHT.inc()

    async def _send(self, writer: asyncio.StreamWriter,
                    write_lock: asyncio.Lock, frame: Frame) -> None:
        try:
            async with write_lock:
                await write_frame(writer, frame,
                                  timeout=self.config.io_timeout)
        except (ConnectionError, asyncio.TimeoutError):
            return  # peer gone; the counters already recorded the op
        except FrameError as exc:
            # A response too large to frame (the handlers validate
            # request sizes up front, so this is defensive) must not
            # escape into the worker loop: answer with a small error
            # frame so the connection learns the request failed.
            _LOG.warning("unframeable %s response dropped: %s",
                         frame.op.name, exc)
            frame = frame.error(Status.INTERNAL,
                                "response exceeded the frame limit")
            try:
                async with write_lock:
                    await write_frame(writer, frame,
                                      timeout=self.config.io_timeout)
            except (ConnectionError, asyncio.TimeoutError):
                return
        _BYTES_OUT.inc(len(frame.payload))

    # --------------------------------------------------------- workers
    async def _worker(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                await self._process(item)
            except Exception:
                # No single request may kill a worker: _process
                # already shields the handler and the send path, so
                # anything landing here is a server bug — log it and
                # keep draining the queue.  (CancelledError is a
                # BaseException and still ends the task on stop().)
                _LOG.exception("worker failed processing a %s frame",
                               item.frame.op.name)
            finally:
                _INFLIGHT.dec()
                self._queue.task_done()

    async def _process(self, item: _WorkItem) -> None:
        frame = item.frame
        start = time.perf_counter()
        span_args: Dict[str, object] = {
            "op": frame.op.name.lower(),
            "mode": frame.mode.name.lower(),
            "payload_bytes": len(frame.payload),
        }
        if frame.trace_id:
            # The client's trace context, carried by the wire frame:
            # tagging the server span with the same ids lets one
            # merged Chrome trace join both sides of the request.
            span_args["trace_id"] = format_span_id(frame.trace_id)
            span_args["parent_span_id"] = format_span_id(
                frame.parent_span_id
            )
        trace_record("serve.queue_wait", item.enqueued_at, start,
                     category="serve", **span_args)
        with trace_span("serve.request", category="serve",
                        **span_args):
            handler = self._handlers.get(frame.op)
            if handler is None:
                reply = frame.error(Status.BAD_REQUEST,
                                    f"unhandled op {frame.op.name}")
            else:
                exec_start = time.perf_counter()
                try:
                    reply = await asyncio.wait_for(
                        handler(item.session, frame),
                        self.config.request_timeout,
                    )
                except asyncio.TimeoutError:
                    reply = frame.error(
                        Status.TIMEOUT,
                        f"request exceeded the "
                        f"{self.config.request_timeout}s budget",
                    )
                except Exception:
                    # Deliberately no detail on the wire: internal
                    # messages can carry state a peer should not see.
                    reply = frame.error(Status.INTERNAL,
                                        "internal error")
                trace_record("serve.execute", exec_start,
                             time.perf_counter(), category="serve",
                             **span_args)
        elapsed = time.perf_counter() - start
        _REQUEST_SECONDS.labels(op=frame.op.name.lower()).observe(
            elapsed
        )
        self.request_window.labels(
            op=frame.op.name.lower(), mode=frame.mode.name.lower()
        ).observe(elapsed)
        self.queue_wait_window.labels().observe(
            start - item.enqueued_at
        )
        send_start = time.perf_counter()
        await self._send(item.writer, item.write_lock, reply)
        trace_record("serve.write", send_start, time.perf_counter(),
                     category="serve", **span_args)
        self._count(reply)

    def _count(self, reply: Frame) -> None:
        _REQUESTS.labels(op=reply.op.name.lower(),
                         status=reply.status.name.lower()).inc()

    # -------------------------------------------------------- handlers
    async def _op_load_key(self, session: Session,
                           frame: Frame) -> Frame:
        if len(frame.payload) != KEY_BYTES:
            return frame.error(
                Status.BAD_REQUEST,
                f"LOAD_KEY payload must be {KEY_BYTES} bytes",
            )
        session.key = frame.payload
        return frame.response()

    async def _op_ping(self, session: Session, frame: Frame) -> Frame:
        return frame.response(payload=frame.payload)

    async def _op_xcrypt(self, session: Session,
                         frame: Frame) -> Frame:
        if session.key is None:
            return frame.error(Status.NO_KEY,
                               "no session key loaded")
        work = _CRYPTO_OPS.get((frame.op, frame.mode))
        if work is None:
            return frame.error(
                Status.BAD_REQUEST,
                f"no {frame.mode.name} handler for {frame.op.name}",
            )
        loop = asyncio.get_running_loop()
        try:
            out = await asyncio.wait_for(
                loop.run_in_executor(
                    self._executor, work, session.key, frame.payload
                ),
                self.config.request_timeout,
            )
        except gcm.AuthenticationError:
            # The GCM layer already bumped its auth-failure counter.
            return frame.error(Status.AUTH_FAILED,
                               "GCM tag verification failed")
        except ValueError as exc:
            return frame.error(Status.BAD_REQUEST, str(exc))
        return frame.response(payload=out)


# The crypto table: (op, mode) -> callable(session_key, payload).
# Every entry runs on the worker thread pool and routes its bulk work
# through ``repro.perf.default_engine()`` via the mode layer, so
# concurrent requests share the engine's batching.  (Dispatch through
# this table also keeps the ECB entries out of the ``ct.raw-ecb``
# call-site lint — the service legitimately exposes ECB as an op.)
def _ctr_split(payload: bytes) -> Tuple[bytes, bytes]:
    if len(payload) < CTR_NONCE_BYTES:
        raise ValueError(
            f"CTR payload needs a {CTR_NONCE_BYTES}-byte nonce prefix"
        )
    return payload[:CTR_NONCE_BYTES], payload[CTR_NONCE_BYTES:]


#: Largest plaintext a GCM ENCRYPT frame may carry: the response is
#: ciphertext + tag and must itself fit in one frame.  GCM ENCRYPT is
#: the only op whose response outgrows its request, so it is the only
#: one needing a bound tighter than the frame limit.
GCM_MAX_PLAINTEXT_BYTES = MAX_PAYLOAD_BYTES - GCM_TAG_BYTES


def _gcm_encrypt(k: bytes, payload: bytes) -> bytes:
    if len(payload) < GCM_IV_BYTES:
        raise ValueError(
            f"GCM payload needs a {GCM_IV_BYTES}-byte IV prefix"
        )
    plaintext = payload[GCM_IV_BYTES:]
    if len(plaintext) > GCM_MAX_PLAINTEXT_BYTES:
        # Checked before any crypto so the ciphertext+tag response is
        # always frameable (same up-front style as _check_lengths).
        raise ValueError(
            f"GCM plaintext of {len(plaintext)} bytes exceeds "
            f"{GCM_MAX_PLAINTEXT_BYTES}: the ciphertext plus "
            f"{GCM_TAG_BYTES}-byte tag must fit one frame"
        )
    ciphertext, tag = gcm.gcm_encrypt(
        k, payload[:GCM_IV_BYTES], plaintext
    )
    return ciphertext + tag


def _gcm_decrypt(k: bytes, payload: bytes) -> bytes:
    if len(payload) < GCM_IV_BYTES + GCM_TAG_BYTES:
        raise ValueError(
            f"GCM payload needs a {GCM_IV_BYTES}-byte IV and a "
            f"{GCM_TAG_BYTES}-byte trailing tag"
        )
    iv = payload[:GCM_IV_BYTES]
    tag = payload[len(payload) - GCM_TAG_BYTES:]
    body = payload[GCM_IV_BYTES:len(payload) - GCM_TAG_BYTES]
    return gcm.gcm_decrypt(k, iv, body, tag)


def _ctr_xcrypt(k: bytes, payload: bytes) -> bytes:
    nonce, data = _ctr_split(payload)
    return modes.ctr_xcrypt(k, nonce, data)


_CRYPTO_OPS: Dict[Tuple[Op, Mode],
                  Callable[[bytes, bytes], bytes]] = {
    (Op.ENCRYPT, Mode.ECB): modes.ecb_encrypt,
    (Op.DECRYPT, Mode.ECB): modes.ecb_decrypt,
    (Op.ENCRYPT, Mode.CTR): _ctr_xcrypt,
    (Op.DECRYPT, Mode.CTR): _ctr_xcrypt,
    (Op.ENCRYPT, Mode.GCM): _gcm_encrypt,
    (Op.DECRYPT, Mode.GCM): _gcm_decrypt,
}


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a transport without letting a stuck peer wedge us."""
    writer.close()
    try:
        await asyncio.wait_for(writer.wait_closed(), 5.0)
    except (asyncio.TimeoutError, ConnectionError):
        pass


__all__ = ["GCM_MAX_PLAINTEXT_BYTES", "CryptoServer", "ServeConfig",
           "Session"]
