"""The wire protocol of the crypto service: versioned binary frames.

The paper's deployment story (§2) is a network link protected by the
Rijndael IP after an asymmetric key exchange; :mod:`repro.serve` is
the software realization of that link, and this module is its
normative wire format — the network analogue of the pin-level bus
protocol in ``docs/protocol.md``.

A frame is a 4-byte big-endian length prefix followed by a fixed
18-byte header and a payload::

    +--------+-------+---------+----+------+--------+
    | length | magic | version | op | mode | status |
    | 4      | 2     | 1       | 1  | 1    | 1      |
    +--------+-------+---------+----+------+--------+
    | session id | request id | payload |
    | 4          | 8          | ...     |
    +------------+------------+---------+

The length prefix counts the header plus payload (never itself).
Limits are explicit and enforced *before* any allocation or crypto,
in the same up-front style as :func:`repro.aes.gcm._check_lengths`:
an oversized length prefix is rejected as soon as the 4 bytes are
read, so a hostile peer cannot make the server buffer an arbitrary
payload.  Malformed frames raise :class:`FrameError`; the error's
``recoverable`` flag tells the connection loop whether the byte
stream is still framed (bad magic inside a well-sized frame) or
desynchronized beyond repair (truncation, oversized prefix).

Requests carry ``status == Status.OK``; responses echo the request's
``op``/``mode``/``request_id`` and set ``status`` to the verdict.
Error responses put a short UTF-8 diagnostic in the payload — never
key material.

Version :data:`TRACE_VERSION` frames additionally carry a 16-byte
trace context (trace id + parent span id) between the header and the
payload, letting a client stitch its ``request`` span to the
server's ``serve.request`` span in one merged Chrome trace.  The
extension is negotiated downward: a version-1 peer answers a traced
frame with a well-delimited ``BAD_FRAME``, and the client falls back
to plain frames for the rest of the connection.
"""

from __future__ import annotations

import asyncio
import enum
import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Two magic bytes opening every frame body ("RJ" for Rijndael).
MAGIC = b"RJ"

#: Protocol version this module speaks.  A peer announcing any other
#: version is rejected with a recoverable :class:`FrameError` — the
#: frame is well-delimited, so the connection survives.
VERSION = 1

#: Negotiated extension version: identical to :data:`VERSION` frames
#: except that a 16-byte trace context (trace id + parent span id,
#: two big-endian u64s) sits between the header and the payload.  A
#: peer that only speaks version 1 rejects such a frame with a
#: well-delimited BAD_FRAME response, which the client takes as the
#: signal to fall back to plain version-1 frames — so tracing is
#: strictly opt-in on the wire and v1 deployments interoperate.
TRACE_VERSION = 2

#: Frame header layout past the length prefix: magic, version, op,
#: mode, status, session id, request id.
_HEADER = struct.Struct(">2sBBBBIQ")
HEADER_BYTES = _HEADER.size

#: The optional trace-context extension of :data:`TRACE_VERSION`
#: frames: trace id, then parent span id.
_TRACE_EXT = struct.Struct(">QQ")
TRACE_EXT_BYTES = _TRACE_EXT.size

#: Hard cap on one frame's payload.  Mirrors the up-front operand
#: limits of :func:`repro.aes.gcm._check_lengths`: the bound is
#: checked on lengths alone, before any buffer exists.  1 MiB per
#: frame keeps the server's worst-case buffering bounded while still
#: covering the bench payload sizes; bulk transfers chunk client-side.
MAX_PAYLOAD_BYTES = 1 << 20

#: Largest legal length-prefix value (header + trace extension +
#: payload) — sized so a traced frame still carries a full payload.
MAX_FRAME_BYTES = HEADER_BYTES + TRACE_EXT_BYTES + MAX_PAYLOAD_BYTES


class Op(enum.IntEnum):
    """Request operations the service understands."""

    LOAD_KEY = 1     #: payload = 16-byte AES-128 session key
    ENCRYPT = 2      #: payload per :class:`Mode`, returns ciphertext
    DECRYPT = 3      #: payload per :class:`Mode`, returns plaintext
    PING = 4         #: payload echoed back verbatim
    SHUTDOWN = 5     #: ask the server to drain and stop


class Mode(enum.IntEnum):
    """Cipher mode selector for ENCRYPT/DECRYPT frames.

    Payload conventions (all lengths in bytes):

    - ``ECB`` — payload is the 16-aligned data; response is the
      transformed data.
    - ``CTR`` — payload is an 8-byte nonce followed by data of any
      length; encrypt and decrypt are the same operation.
    - ``GCM`` — encrypt: 12-byte IV + plaintext, response is
      ciphertext + 16-byte tag; decrypt: 12-byte IV + ciphertext +
      16-byte tag, response is the plaintext (or an ``AUTH_FAILED``
      error frame releasing nothing).
    """

    RAW = 0          #: no cipher mode (LOAD_KEY / PING / SHUTDOWN)
    ECB = 1
    CTR = 2
    GCM = 3


class Status(enum.IntEnum):
    """Response verdicts (requests always carry ``OK``)."""

    OK = 0
    BAD_FRAME = 1        #: frame failed to decode
    BAD_REQUEST = 2      #: frame decoded but the payload is invalid
    NO_KEY = 3           #: crypto op before any LOAD_KEY
    AUTH_FAILED = 4      #: GCM tag verification failed
    TIMEOUT = 5          #: per-request execution budget exhausted
    OVERLOADED = 6       #: bounded request queue is full
    SHUTTING_DOWN = 7    #: server is draining; no new work accepted
    INTERNAL = 8         #: unexpected server-side failure


#: Statuses a client may transparently retry: transient server-side
#: conditions where the request itself was well-formed.
RETRYABLE_STATUSES = frozenset(
    {Status.TIMEOUT, Status.OVERLOADED, Status.SHUTTING_DOWN}
)

#: GCM geometry shared by client and server: IV and tag sizes.
GCM_IV_BYTES = 12
GCM_TAG_BYTES = 16
CTR_NONCE_BYTES = 8
KEY_BYTES = 16


class FrameError(ValueError):
    """A frame failed to decode.

    ``recoverable`` is True when the byte stream is still framed
    (the bad bytes were confined to one well-delimited frame) and the
    connection loop may answer with a ``BAD_FRAME`` response and keep
    reading; False when the stream is desynchronized (truncated read,
    oversized length prefix) and the connection must close.
    """

    def __init__(self, message: str,
                 recoverable: bool = True) -> None:
        super().__init__(message)
        self.recoverable = recoverable


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame.

    ``trace_id`` / ``parent_span_id`` are the optional trace context:
    both zero on plain version-1 frames; either nonzero makes the
    frame encode as a :data:`TRACE_VERSION` frame carrying the
    16-byte extension.  Responses echo the request's context so the
    client can stitch its span to the server's.
    """

    op: Op
    mode: Mode = Mode.RAW
    status: Status = Status.OK
    session_id: int = 0
    request_id: int = 0
    payload: bytes = field(default=b"", repr=False)
    trace_id: int = 0
    parent_span_id: int = 0

    def response(self, status: Status = Status.OK,
                 payload: bytes = b"") -> "Frame":
        """The response frame answering this request."""
        return Frame(op=self.op, mode=self.mode, status=status,
                     session_id=self.session_id,
                     request_id=self.request_id, payload=payload,
                     trace_id=self.trace_id,
                     parent_span_id=self.parent_span_id)

    def error(self, status: Status, message: str = "") -> "Frame":
        """An error response; the diagnostic rides in the payload."""
        return self.response(status, message.encode("utf-8"))


#: Length prefix and header packed as one struct, so the send path
#: materializes the fixed-size head in a single allocation and never
#: concatenates it with the payload.
_WIRE_HEAD = struct.Struct(">I2sBBBBIQ")

#: The traced variant: prefix, header and the 16-byte trace context
#: in one 38-byte pack — still a single allocation for the head.
_WIRE_HEAD_TRACE = struct.Struct(">I2sBBBBIQQQ")


def encode_frame_views(frame: Frame) -> Tuple[bytes, bytes]:
    """Serialize ``frame`` as ``(head, payload)`` — the zero-copy form.

    ``head`` is the 4-byte length prefix and 18-byte header in one
    22-byte buffer (38 bytes when the frame carries a trace context);
    ``payload`` is the frame's own payload object, untouched, when it
    is already immutable ``bytes`` (the codec's one defensive copy
    happens only for mutable payload types).  Writing both parts back
    to back puts exactly ``encode_frame``'s bytes on the wire without
    ever building the concatenation.
    """
    payload = frame.payload
    if not isinstance(payload, bytes):
        payload = bytes(payload)
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_PAYLOAD_BYTES}-byte frame limit"
        )
    if frame.trace_id or frame.parent_span_id:
        head = _WIRE_HEAD_TRACE.pack(
            HEADER_BYTES + TRACE_EXT_BYTES + len(payload),
            MAGIC, TRACE_VERSION, int(frame.op), int(frame.mode),
            int(frame.status), frame.session_id & 0xFFFFFFFF,
            frame.request_id & 0xFFFFFFFFFFFFFFFF,
            frame.trace_id & 0xFFFFFFFFFFFFFFFF,
            frame.parent_span_id & 0xFFFFFFFFFFFFFFFF,
        )
        return head, payload
    head = _WIRE_HEAD.pack(
        HEADER_BYTES + len(payload),
        MAGIC, VERSION, int(frame.op), int(frame.mode),
        int(frame.status), frame.session_id & 0xFFFFFFFF,
        frame.request_id & 0xFFFFFFFFFFFFFFFF,
    )
    return head, payload


def encode_frame(frame: Frame) -> bytes:
    """Serialize ``frame`` to one length-prefixed wire buffer.

    Compatibility entry point for callers that want a single
    ``bytes``; the streaming send path uses
    :func:`encode_frame_views` and never joins the parts.
    """
    return b"".join(encode_frame_views(frame))


def decode_payload(header: bytes, payload: bytes,
                   trace: Optional[Tuple[int, int]] = None) -> Frame:
    """Decode a frame from its 18-byte header and payload, already
    split by the transport — the length was parsed exactly once by
    the caller and the payload buffer is adopted as-is (no copy).

    ``trace`` is the already-split 16-byte trace context of a
    :data:`TRACE_VERSION` frame as ``(trace_id, parent_span_id)``;
    when the transport did not split it (``None``), the extension is
    taken from the front of ``payload`` instead.

    Raises :class:`FrameError` on any malformation; every failure
    here is *recoverable* — the caller consumed exactly the framed
    byte count, so the stream stays aligned.
    """
    if len(header) != HEADER_BYTES:
        raise FrameError(
            f"header split must be exactly {HEADER_BYTES} bytes, "
            f"got {len(header)}"
        )
    magic, version, op, mode, status, session_id, request_id = \
        _HEADER.unpack(header)
    if magic != MAGIC:
        # Diagnostics carry lengths and enum values only — echoing
        # the received bytes would reflect attacker-controlled data
        # back onto the wire in the BAD_FRAME response.
        raise FrameError(f"bad magic (want {MAGIC!r})")
    if version != VERSION and version != TRACE_VERSION:
        raise FrameError(
            f"protocol version mismatch: peer speaks {version}, "
            f"this build speaks {VERSION} "
            f"(or {TRACE_VERSION} with the trace extension)"
        )
    trace_id = parent_span_id = 0
    if version == TRACE_VERSION:
        if trace is None:
            if len(payload) < TRACE_EXT_BYTES:
                raise FrameError(
                    f"traced frame carries {len(payload)} body "
                    f"bytes past the header, too few for the "
                    f"{TRACE_EXT_BYTES}-byte trace context"
                )
            trace = _TRACE_EXT.unpack_from(payload)
            payload = payload[TRACE_EXT_BYTES:]
        trace_id, parent_span_id = trace
    try:
        frame_op = Op(op)
        frame_mode = Mode(mode)
        frame_status = Status(status)
    except ValueError as exc:
        raise FrameError(f"unknown field value: {exc}") from None
    return Frame(op=frame_op, mode=frame_mode, status=frame_status,
                 session_id=session_id, request_id=request_id,
                 payload=payload, trace_id=trace_id,
                 parent_span_id=parent_span_id)


def decode_body(body: bytes) -> Frame:
    """Decode a frame body (everything after the length prefix).

    Raises :class:`FrameError` on any malformation; every failure
    here is *recoverable* — the caller consumed exactly the framed
    byte count, so the stream stays aligned.
    """
    if len(body) < HEADER_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes is shorter than the "
            f"{HEADER_BYTES}-byte header"
        )
    return decode_payload(body[:HEADER_BYTES], body[HEADER_BYTES:])


def decode_frame(data: bytes) -> Frame:
    """Decode one complete length-prefixed frame from ``data``.

    The byte count must match the prefix exactly; this is the
    non-streaming entry point the codec tests exercise.
    """
    if len(data) < 4:
        raise FrameError("frame shorter than the length prefix",
                         recoverable=False)
    body_len = int.from_bytes(data[:4], "big")
    if body_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"length prefix {body_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit",
            recoverable=False,
        )
    if len(data) - 4 != body_len:
        raise FrameError(
            f"frame truncated: prefix promises {body_len} bytes, "
            f"got {len(data) - 4}",
            recoverable=False,
        )
    return decode_body(data[4:])


async def read_frame(reader: asyncio.StreamReader,
                     timeout: Optional[float] = None) -> Optional[Frame]:
    """Read one frame from a stream; ``None`` on clean EOF.

    Every await is bounded by ``timeout`` (``None`` waits forever —
    callers on untrusted sockets pass a real number).  EOF *between*
    frames returns ``None``; EOF inside a frame raises an
    unrecoverable :class:`FrameError`, as does an oversized length
    prefix — in both cases the stream cannot be re-synchronized and
    the connection must close.
    """
    try:
        prefix = await asyncio.wait_for(reader.readexactly(4), timeout)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean EOF on a frame boundary
        raise FrameError("connection closed mid-prefix",
                         recoverable=False) from None
    body_len = int.from_bytes(prefix, "big")
    if body_len > MAX_FRAME_BYTES:
        raise FrameError(
            f"length prefix {body_len} exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit",
            recoverable=False,
        )
    try:
        if body_len < HEADER_BYTES:
            # Undersized frames go through decode_body so the
            # failure classifies exactly as before (recoverable:
            # the promised byte count was fully consumed).
            body = await asyncio.wait_for(
                reader.readexactly(body_len), timeout
            )
            return decode_body(body)
        header = await asyncio.wait_for(
            reader.readexactly(HEADER_BYTES), timeout
        )
        remaining = body_len - HEADER_BYTES
        trace: Optional[Tuple[int, int]] = None
        if header[2] == TRACE_VERSION and remaining >= TRACE_EXT_BYTES:
            # The trace context is read as its own 16-byte chunk so
            # the payload buffer below is still adopted unsliced; an
            # undersized traced frame skips this read and classifies
            # in decode_payload (recoverable — fully consumed).
            ext = await asyncio.wait_for(
                reader.readexactly(TRACE_EXT_BYTES), timeout
            )
            trace = _TRACE_EXT.unpack(ext)
            remaining -= TRACE_EXT_BYTES
        payload = await asyncio.wait_for(
            reader.readexactly(remaining), timeout
        )
    except asyncio.IncompleteReadError:
        raise FrameError("connection closed mid-frame",
                         recoverable=False) from None
    # The length was parsed exactly once (above); the payload bytes
    # land in the frame as the very object readexactly produced.
    return decode_payload(header, payload, trace)


async def write_frame(writer: asyncio.StreamWriter, frame: Frame,
                      timeout: Optional[float] = None) -> None:
    """Serialize ``frame`` and drain the transport, bounded by
    ``timeout`` so a stalled peer cannot wedge the writer.

    Head and payload are written as two parts — the transport
    buffers them back to back, so no joined copy of the frame is
    ever built (see :func:`encode_frame_views`).
    """
    head, payload = encode_frame_views(frame)
    writer.write(head)
    if payload:
        writer.write(payload)
    await asyncio.wait_for(writer.drain(), timeout)


__all__ = [
    "CTR_NONCE_BYTES",
    "GCM_IV_BYTES",
    "GCM_TAG_BYTES",
    "HEADER_BYTES",
    "KEY_BYTES",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "MAX_PAYLOAD_BYTES",
    "RETRYABLE_STATUSES",
    "TRACE_EXT_BYTES",
    "TRACE_VERSION",
    "VERSION",
    "Frame",
    "FrameError",
    "Mode",
    "Op",
    "Status",
    "decode_body",
    "decode_frame",
    "decode_payload",
    "encode_frame",
    "encode_frame_views",
    "read_frame",
    "write_frame",
]
