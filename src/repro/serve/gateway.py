"""Session-sharded gateway: consistent-hash routing over workers.

The cluster topology (see ``docs/serving.md``, "Cluster") puts N
single-process :class:`~repro.serve.server.CryptoServer` workers
behind one asyncio router.  The router speaks the existing frame
protocol of :mod:`repro.serve.protocol` on both sides — the trace
extension included, so a traced request is visible end to end — and
routes every frame by its **session id** through a consistent-hash
ring, so a session's keyed state (the worker-side round-key and GHASH
caches) always lands on the same worker.

Design points, in the same bounded/measured discipline as the server:

- **Consistent hashing** (:class:`HashRing`) — ``blake2b``-based so
  placement is deterministic across processes and Python runs
  (``hash()`` is salted per process and would re-shard every
  restart).  Virtual nodes keep the load spread even; removing one
  member remaps only that member's arc of the ring.
- **Affinity** — a frame with a nonzero session id hashes by that id;
  anonymous (session id 0) connections hash by a gateway-assigned
  per-connection id, so a plain client's LOAD_KEY and its follow-up
  requests still land on one worker.
- **Shedding** — each shard has an in-flight cap; beyond it the
  gateway answers ``OVERLOADED`` itself (retryable), the same valve
  as the server's bounded queue, one hop earlier.
- **Health** — backends that expose an admin plane are probed on
  ``/readyz``; a draining or dead worker leaves the ring until the
  probe recovers, and its in-flight requests are answered with
  retryable errors the client's backoff absorbs.
- **Draining** — :meth:`Gateway.stop` flips ``/readyz``, stops
  accepting, waits for in-flight requests, then closes connections.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import itertools
import logging
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Set, \
    Tuple

from repro.obs.metrics import WindowedQuantileSet, global_registry
from repro.obs.metrics import render_prometheus as _render_registries
from repro.serve.admin import AdminServer
from repro.serve.protocol import (
    Frame,
    FrameError,
    Op,
    Status,
    read_frame,
    write_frame,
)

_LOG = logging.getLogger(__name__)

_REGISTRY = global_registry()
_ROUTED = _REGISTRY.counter(
    "repro_gateway_requests_total",
    "Frames the gateway handled, by shard and outcome",
    labels=("shard", "outcome"),
)
_G_CONNECTIONS = _REGISTRY.counter(
    "repro_gateway_connections_total",
    "Client connections accepted by the gateway",
)
_G_OPEN = _REGISTRY.gauge(
    "repro_gateway_open_connections",
    "Client connections currently open on the gateway",
)
_BACKEND_UP = _REGISTRY.gauge(
    "repro_gateway_backend_up",
    "Whether a backend shard is in the routing ring (1) or not (0)",
    labels=("shard",),
)


class HashRing:
    """Consistent-hash ring over named members.

    Points come from ``blake2b`` (not the builtin ``hash``, which is
    salted per process): the same members produce the same ring in
    every process, so a restarted gateway — or a test running the
    lookup in a subprocess — places every session identically.  Each
    member contributes ``replicas`` virtual nodes; a key maps to the
    first point clockwise from its own hash, so removing a member
    remaps only the keys on that member's arcs (~1/N of the space).
    """

    def __init__(self, replicas: int = 64) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._members: Set[str] = set()

    @staticmethod
    def _point(data: bytes) -> int:
        digest = hashlib.blake2b(data, digest_size=8).digest()
        return int.from_bytes(digest, "big")

    def add(self, member: str) -> None:
        """Insert ``member``'s virtual nodes (idempotent)."""
        if member in self._members:
            return
        self._members.add(member)
        for index in range(self.replicas):
            token = f"{member}#{index}".encode("utf-8")
            bisect.insort(self._points, (self._point(token), member))

    def remove(self, member: str) -> None:
        """Remove ``member``'s virtual nodes (idempotent)."""
        if member not in self._members:
            return
        self._members.discard(member)
        self._points = [
            point for point in self._points if point[1] != member
        ]

    def members(self) -> Tuple[str, ...]:
        """The current members, sorted."""
        return tuple(sorted(self._members))

    def lookup(self, sid: int) -> Optional[str]:
        """The member owning session ``sid``; ``None`` on an empty
        ring.  Session ids are routing identifiers, not secrets —
        nothing here is constant-time and nothing needs to be."""
        if not self._points:
            return None
        point = self._point(
            (sid & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "big")
        )
        index = bisect.bisect_left(self._points, (point, ""))
        if index == len(self._points):
            index = 0
        return self._points[index][1]


@dataclass(frozen=True)
class BackendSpec:
    """One worker as the gateway sees it.

    ``shard`` is the stable routing identity (``worker-<i>``): a
    restarted worker re-registers under the same shard name even
    though its port changed, so the ring — and every session's
    placement — survives the restart.
    """

    shard: str
    host: str
    port: int
    admin_port: Optional[int] = None


@dataclass
class _BackendState:
    """Mutable per-backend bookkeeping."""

    spec: BackendSpec
    healthy: bool = True
    #: Requests forwarded and not yet answered, across all client
    #: connections — the shedding valve reads this.
    inflight: int = 0


@dataclass
class _Pending:
    """One forwarded request awaiting its response."""

    frame: Frame
    started: float = field(default_factory=time.perf_counter)


@dataclass
class _Upstream:
    """One gateway-to-worker connection owned by one client
    connection (connections are not pooled across clients: the
    worker's per-connection Session keys must stay per-client)."""

    shard: str
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter
    pending: Dict[int, _Pending] = field(default_factory=dict)
    pump_task: Optional["asyncio.Task[None]"] = None


class _GatewayConn:
    """One accepted client connection and its upstream fan-out."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter,
                 fallback_key: int) -> None:
        self.reader = reader
        self.writer = writer
        #: Hash key for session-id-0 frames: per-connection, so an
        #: anonymous connection still pins to one worker.
        self.fallback_key = fallback_key
        self.write_lock = asyncio.Lock()
        self.upstreams: Dict[str, _Upstream] = {}

    async def close(self) -> None:
        """Cancel the pumps and close every transport."""
        for upstream in list(self.upstreams.values()):
            if upstream.pump_task is not None:
                upstream.pump_task.cancel()
        for upstream in list(self.upstreams.values()):
            if upstream.pump_task is not None:
                await asyncio.gather(upstream.pump_task,
                                     return_exceptions=True)
        self.upstreams.clear()
        await _close_writer(self.writer)


@dataclass
class GatewayConfig:
    """Tuning knobs of one :class:`Gateway`."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Admin/scrape plane (``/metrics``, ``/readyz``, ...); ``None``
    #: leaves it off, ``0`` binds a free port.
    admin_port: Optional[int] = None
    #: Budget for dialing a worker, seconds.
    connect_timeout: float = 5.0
    #: Socket read/write budget, seconds (both sides).
    io_timeout: float = 60.0
    #: How long :meth:`Gateway.stop` waits for in-flight requests.
    drain_timeout: float = 5.0
    #: Per-shard in-flight cap — the shedding valve.
    shed_inflight: int = 128
    #: Cadence of the ``/readyz`` probes, seconds.
    health_interval_s: float = 0.25
    #: Budget for one probe round-trip, seconds.
    health_timeout_s: float = 2.0
    #: Virtual nodes per ring member.
    ring_replicas: int = 64
    #: Width of the sliding latency-quantile window, seconds.
    window_s: float = 60.0
    #: Routed-request-latency SLO threshold for the burn counters.
    slo_threshold_s: float = 0.25


class Gateway:
    """The session-sharded frame router (see the module docstring).

    ``on_shutdown`` is called (once) when a client sends a SHUTDOWN
    frame: the cluster wires it to its own stop, so the remote-drain
    path of the single-process server keeps working one level up.
    """

    def __init__(self, config: Optional[GatewayConfig] = None,
                 on_shutdown: Optional[
                     Callable[[], Awaitable[None]]] = None) -> None:
        self.config = config or GatewayConfig()
        self._on_shutdown = on_shutdown
        self._ring = HashRing(replicas=self.config.ring_replicas)
        self._backends: Dict[str, _BackendState] = {}
        self._conns: Set[_GatewayConn] = set()
        self._conn_keys = itertools.count(0x67570000)
        self._server: Optional[asyncio.base_events.Server] = None
        self._admin: Optional[AdminServer] = None
        self._health_task: Optional["asyncio.Task[None]"] = None
        # Pinned: the loop holds only weak references to tasks.
        self._shutdown_task: Optional["asyncio.Task[None]"] = None
        self._stopping = False
        self._stopped = asyncio.Event()
        #: Routed-request latency (forward to response), per shard.
        self.request_window = WindowedQuantileSet(
            "repro_gateway_request_window_seconds",
            "Windowed routed-request latency quantiles, by shard",
            label_names=("shard",),
            window_s=self.config.window_s,
            slo_threshold_s=self.config.slo_threshold_s,
        )

    # ------------------------------------------------------- membership
    def add_backend(self, spec: BackendSpec) -> None:
        """Register (or re-register) a worker under its shard name.

        Re-adding an existing shard replaces its address — how a
        restarted worker with a fresh port rejoins under the same
        ring identity.
        """
        previous = self._backends.get(spec.shard)
        if previous is not None:
            self._ring.remove(spec.shard)
        self._backends[spec.shard] = _BackendState(spec=spec)
        self._ring.add(spec.shard)
        _BACKEND_UP.labels(shard=spec.shard).set(1.0)

    def remove_backend(self, shard: str) -> None:
        """Drop a shard from the ring; live connections drain out."""
        self._ring.remove(shard)
        self._backends.pop(shard, None)
        _BACKEND_UP.labels(shard=shard).set(0.0)

    def shard_for(self, session_id: int) -> Optional[str]:
        """Where a (nonzero) session id routes right now."""
        return self._ring.lookup(session_id)

    def shards(self) -> Tuple[str, ...]:
        """Shards currently in the routing ring."""
        return self._ring.members()

    # ------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind the listener (and admin plane), start health probes."""
        if self._server is not None:
            raise RuntimeError("gateway already started")
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        if self.config.admin_port is not None:
            self._admin = AdminServer(
                self.config.host,
                self.config.admin_port,
                metrics_text=self.metrics_text,
                quantiles=self.quantiles_snapshot,
                ready=self._ready,
            )
            await self._admin.start()
        self._health_task = asyncio.get_running_loop().create_task(
            self._health_loop()
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — useful with ``port=0``."""
        if self._server is None:
            raise RuntimeError("gateway not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    @property
    def admin_address(self) -> Tuple[str, int]:
        """The bound admin-plane (host, port)."""
        if self._admin is None:
            raise RuntimeError("admin plane not enabled")
        return self._admin.address

    def _ready(self) -> bool:
        """Drain-aware readiness: accepting and somewhere to route."""
        return (self._server is not None and not self._stopping
                and any(state.healthy
                        for state in self._backends.values()))

    def metrics_text(self) -> str:
        """One ``/metrics`` scrape body: the process-global registry
        plus the gateway's per-shard windowed quantiles."""
        return (_render_registries([_REGISTRY])
                + self.request_window.render_prometheus())

    def quantiles_snapshot(self) -> Dict[str, object]:
        """The ``/quantiles`` JSON body."""
        return {"routed_seconds": self.request_window.snapshot()}

    async def wait_stopped(self) -> None:
        """Block until :meth:`stop` has completed."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Drain, then stop: flip ``/readyz``, stop accepting, wait
        for in-flight requests (bounded by ``drain_timeout``), close
        connections, stop the admin plane last.  Idempotent."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       self.config.drain_timeout)
            except asyncio.TimeoutError:  # pragma: no cover
                pass
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while loop.time() < deadline and any(
                upstream.pending
                for conn in self._conns
                for upstream in conn.upstreams.values()):
            await asyncio.sleep(0.02)
        if self._health_task is not None:
            self._health_task.cancel()
            await asyncio.gather(self._health_task,
                                 return_exceptions=True)
            self._health_task = None
        for conn in list(self._conns):
            await conn.close()
        if self._admin is not None:
            # Last: /readyz has answered 503 since _stopping flipped.
            await self._admin.stop()
        self._stopped.set()

    # ----------------------------------------------------- connections
    async def _on_connection(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        conn = _GatewayConn(reader, writer,
                            fallback_key=next(self._conn_keys))
        self._conns.add(conn)
        _G_CONNECTIONS.inc()
        _G_OPEN.inc()
        try:
            await self._conn_loop(conn)
        except (ConnectionError, asyncio.TimeoutError):
            pass  # peer vanished or stalled; nothing to answer
        finally:
            self._conns.discard(conn)
            _G_OPEN.dec()
            await conn.close()

    async def _conn_loop(self, conn: _GatewayConn) -> None:
        timeout = self.config.io_timeout
        while True:
            try:
                frame = await read_frame(conn.reader, timeout=timeout)
            except FrameError as exc:
                # Same discipline as the server: a malformed frame
                # answers BAD_FRAME; only a desynchronized stream
                # closes the connection.  This is also what keeps the
                # v2-to-v1 trace downgrade working through the proxy.
                reply = Frame(op=Op.PING).error(Status.BAD_FRAME,
                                                str(exc))
                await self._reply(conn, reply)
                if exc.recoverable:
                    continue
                return
            if frame is None:
                return  # clean EOF
            if frame.op is Op.SHUTDOWN:
                # Answered at the gateway: SHUTDOWN means "stop the
                # service", and the service is now the cluster.
                await self._reply(conn, frame.response())
                if (self._on_shutdown is not None
                        and self._shutdown_task is None):
                    self._shutdown_task = (
                        asyncio.get_running_loop()
                        .create_task(self._on_shutdown())
                    )
                continue
            if self._stopping:
                await self._reply(conn, frame.error(
                    Status.SHUTTING_DOWN, "gateway is draining"))
                continue
            await self._route(conn, frame)

    async def _route(self, conn: _GatewayConn, frame: Frame) -> None:
        key = frame.session_id or conn.fallback_key
        shard = self._ring.lookup(key)
        if shard is None:
            _ROUTED.labels(shard="none", outcome="no_backend").inc()
            await self._reply(conn, frame.error(
                Status.OVERLOADED, "no healthy backend"))
            return
        state = self._backends[shard]
        if state.inflight >= self.config.shed_inflight:
            _ROUTED.labels(shard=shard, outcome="shed").inc()
            await self._reply(conn, frame.error(
                Status.OVERLOADED,
                f"shard {shard} is saturated"))
            return
        upstream = conn.upstreams.get(shard)
        if upstream is None:
            try:
                upstream = await self._dial(conn, state)
            except (OSError, asyncio.TimeoutError):
                # The probe loop will confirm, but the failed dial is
                # evidence enough to stop routing there now.
                _ROUTED.labels(shard=shard,
                               outcome="unreachable").inc()
                self._set_health(state, False)
                await self._reply(conn, frame.error(
                    Status.OVERLOADED,
                    f"shard {shard} is unreachable"))
                return
        upstream.pending[frame.request_id] = _Pending(frame=frame)
        state.inflight += 1
        try:
            await write_frame(upstream.writer, frame,
                              timeout=self.config.io_timeout)
        except (ConnectionError, asyncio.TimeoutError, FrameError):
            # The pump notices the dead transport and answers every
            # pending request (this one included) retryably.
            upstream.writer.close()

    async def _dial(self, conn: _GatewayConn,
                    state: _BackendState) -> _Upstream:
        spec = state.spec
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(spec.host, spec.port),
            self.config.connect_timeout,
        )
        upstream = _Upstream(shard=spec.shard, reader=reader,
                             writer=writer)
        upstream.pump_task = asyncio.get_running_loop().create_task(
            self._pump(conn, state, upstream)
        )
        conn.upstreams[spec.shard] = upstream
        return upstream

    async def _pump(self, conn: _GatewayConn, state: _BackendState,
                    upstream: _Upstream) -> None:
        """Relay one upstream's responses back to the client."""
        shard = upstream.shard
        try:
            while True:
                try:
                    response = await read_frame(
                        upstream.reader,
                        timeout=self.config.io_timeout,
                    )
                except asyncio.TimeoutError:
                    if upstream.pending:
                        break  # wedged with work owed: fail it
                    continue  # idle between frames: keep waiting
                if response is None:
                    break  # worker closed the connection
                pending = upstream.pending.pop(response.request_id,
                                               None)
                if pending is not None:
                    state.inflight -= 1
                    self.request_window.labels(shard=shard).observe(
                        time.perf_counter() - pending.started
                    )
                    _ROUTED.labels(shard=shard,
                                   outcome="forwarded").inc()
                await self._reply(conn, response)
        except (ConnectionError, FrameError):
            pass
        finally:
            await self._drop_upstream(conn, state, upstream)

    async def _drop_upstream(self, conn: _GatewayConn,
                             state: _BackendState,
                             upstream: _Upstream) -> None:
        """Close a dead upstream and answer its in-flight requests
        with retryable errors (the client's backoff absorbs them and
        the retry re-dials — possibly a restarted worker)."""
        conn.upstreams.pop(upstream.shard, None)
        await _close_writer(upstream.writer)
        if not upstream.pending:
            return
        _LOG.warning(
            "shard %s connection lost with %d request(s) in flight",
            upstream.shard, len(upstream.pending),
        )
        for pending in upstream.pending.values():
            state.inflight -= 1
            _ROUTED.labels(shard=upstream.shard,
                           outcome="backend_lost").inc()
            await self._reply(conn, pending.frame.error(
                Status.OVERLOADED,
                f"shard {upstream.shard} connection lost; retry"))
        upstream.pending.clear()

    async def _reply(self, conn: _GatewayConn, frame: Frame) -> None:
        try:
            async with conn.write_lock:
                await write_frame(conn.writer, frame,
                                  timeout=self.config.io_timeout)
        except (ConnectionError, asyncio.TimeoutError, FrameError):
            pass  # client gone; the pump/loop will notice

    # ---------------------------------------------------------- health
    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.health_interval_s)
            for state in list(self._backends.values()):
                spec = state.spec
                if spec.admin_port is None:
                    continue  # no admin plane: trust the dial path
                healthy = await _probe_ready(
                    spec.host, spec.admin_port,
                    self.config.health_timeout_s,
                )
                self._set_health(state, healthy)

    def _set_health(self, state: _BackendState,
                    healthy: bool) -> None:
        if self._backends.get(state.spec.shard) is not state:
            return  # removed (or replaced) while probing
        if healthy == state.healthy:
            return
        state.healthy = healthy
        shard = state.spec.shard
        if healthy:
            self._ring.add(shard)
            _LOG.info("shard %s ready; restored to the ring", shard)
        else:
            self._ring.remove(shard)
            _LOG.warning("shard %s not ready; left the ring", shard)
        _BACKEND_UP.labels(shard=shard).set(1.0 if healthy else 0.0)


async def _probe_ready(host: str, port: int,
                       timeout: float) -> bool:
    """One ``GET /readyz`` against a worker admin plane."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        return False
    try:
        writer.write(b"GET /readyz HTTP/1.1\r\nHost: gateway\r\n"
                     b"Connection: close\r\n\r\n")
        await asyncio.wait_for(writer.drain(), timeout)
        status_line = await asyncio.wait_for(reader.readline(),
                                             timeout)
        return b" 200 " in status_line
    except (OSError, asyncio.TimeoutError):
        return False
    finally:
        writer.close()
        try:
            await asyncio.wait_for(writer.wait_closed(), timeout)
        except (OSError, asyncio.TimeoutError):
            pass


async def _close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a transport without letting a stuck peer wedge us."""
    writer.close()
    try:
        await asyncio.wait_for(writer.wait_closed(), 5.0)
    except (asyncio.TimeoutError, ConnectionError):
        pass


__all__ = [
    "BackendSpec",
    "Gateway",
    "GatewayConfig",
    "HashRing",
]
